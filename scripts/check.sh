#!/bin/sh
# Pre-merge gate: formatting, lints (deny warnings, all targets so the
# benches compile too), then the full test suite. Run from anywhere in
# the repository; everything is offline (deps are vendored in vendor/).
set -eu
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# Covers every [[bench]] target in crates/bench (components, figures,
# ablations, executor, store, ingest, obs_overhead);
# scripts/bench_ingest.sh runs the ingest comparison end-to-end and
# records BENCH_ingest.json.
echo "==> cargo build --workspace --benches --examples"
cargo build --workspace --benches --examples

echo "==> cargo test -q --workspace"
cargo test -q --workspace

# Observability smoke: simulate a small fixture and classify it with
# --trace/--stats-out/--populations-csv, validating the artefacts (valid
# trace JSON, balanced spans, golden stats key set) in-process — no jq.
echo "==> observability smoke (cargo test -p lastmile-cli --test observability)"
cargo test -q -p lastmile-cli --test observability

echo "OK: fmt, clippy, benches, tests, observability smoke all green"
