#!/bin/sh
# Pre-merge gate: formatting, lints (deny warnings, all targets so the
# benches compile too), then the full test suite. Run from anywhere in
# the repository; everything is offline (deps are vendored in vendor/).
set -eu
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# Covers every [[bench]] target in crates/bench (components, figures,
# ablations, executor, store, ingest, obs_overhead, serve);
# scripts/bench_ingest.sh and scripts/bench_serve.sh run the ingest and
# serving comparisons end-to-end and record BENCH_ingest.json /
# BENCH_serve.json.
echo "==> cargo build --workspace --benches --examples"
cargo build --workspace --benches --examples

echo "==> cargo test -q --workspace"
cargo test -q --workspace

# Ingest smoke: every form × mode combination of classify over a small
# corpus (plus a corrupted copy) must produce --json output and a
# quarantine dump byte-identical to the serial reference path — the
# invariant the parallel zero-copy framer is held to.
echo "==> ingest smoke (BENCH_SMOKE=1 scripts/bench_ingest.sh)"
BENCH_SMOKE=1 sh scripts/bench_ingest.sh

# Fleet smoke: generate a small scenario fleet from the checked-in spec
# (deterministic corpus + primed snapshot), classify it cold and warm
# (byte-identical), and score the verdicts against the ground-truth
# sidecar with the CI gates armed — recall >= 0.7 on the planted
# congested ASes, zero false positives on the adversarial
# peering-congestion ASes.
echo "==> fleet smoke (BENCH_SMOKE=1 scripts/bench_fleet.sh)"
BENCH_SMOKE=1 sh scripts/bench_fleet.sh

# Observability smoke: simulate a small fixture and classify it with
# --trace/--stats-out/--populations-csv, validating the artefacts (valid
# trace JSON, balanced spans, golden stats key set) in-process — no jq.
echo "==> observability smoke (cargo test -p lastmile-cli --test observability)"
cargo test -q -p lastmile-cli --test observability

# Serve smoke: the daemon on a fixture corpus — /healthz, one classify,
# then a clean SIGTERM shutdown. The full serving contract (byte
# identity, backpressure, drain) is pinned by the serve_e2e test run
# above; this step proves the shipped binary serves over a real socket.
if command -v curl >/dev/null 2>&1; then
    echo "==> serve smoke (daemon + curl /healthz + classify + SIGTERM)"
    smoke=$(mktemp -d)
    serve_pid=
    smoke_cleanup() {
        [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null && wait "$serve_pid" 2>/dev/null
        rm -rf "$smoke"
    }
    trap smoke_cleanup EXIT
    cargo build -q -p lastmile-cli
    target/debug/lastmile simulate --scenario anchor --out "$smoke" --days 3 >/dev/null 2>&1
    target/debug/lastmile serve --traceroutes "$smoke/traceroutes.jsonl" \
        --probes "$smoke/probes.json" --addr 127.0.0.1:0 \
        --ready-file "$smoke/ready" >/dev/null 2>"$smoke/serve.log" &
    serve_pid=$!
    i=0
    while [ ! -s "$smoke/ready" ]; do
        i=$((i + 1))
        [ "$i" -le 300 ] || { echo "serve never became ready" >&2; cat "$smoke/serve.log" >&2; exit 1; }
        kill -0 "$serve_pid" 2>/dev/null || { cat "$smoke/serve.log" >&2; exit 1; }
        sleep 0.1
    done
    addr=$(head -n1 "$smoke/ready")
    curl -sf "http://$addr/healthz" | grep -q '"status": *"ok"'
    curl -sf "http://$addr/v1/classify" | grep -q '"class"'
    kill "$serve_pid"
    wait "$serve_pid"
    serve_pid=
    grep -q "\[serve\] shutdown: drained" "$smoke/serve.log"

    # Live-ingest smoke: restart the daemon in live mode with one probe's
    # records withheld, feed them back through BOTH intake paths (corpus
    # append + POST), wait for the re-analysis epoch to land, and require
    # /v1/classify to be byte-identical to a cold classify --json over
    # the union corpus — the observatory's core contract.
    echo "==> live-ingest smoke (watch + POST -> epoch swap -> cold-union byte identity)"
    grep -v '"prb_id":6005' "$smoke/traceroutes.jsonl" >"$smoke/live.jsonl"
    grep '"prb_id":6005' "$smoke/traceroutes.jsonl" >"$smoke/withheld.jsonl"
    head -n 200 "$smoke/withheld.jsonl" >"$smoke/post.jsonl"
    tail -n +201 "$smoke/withheld.jsonl" >"$smoke/append.jsonl"
    : >"$smoke/ready-live"
    target/debug/lastmile serve --traceroutes "$smoke/live.jsonl" \
        --probes "$smoke/probes.json" --addr 127.0.0.1:0 \
        --ready-file "$smoke/ready-live" --watch --watch-poll-ms 50 \
        --reanalyze-debounce-ms 100 --live-spool "$smoke/spool.jsonl" \
        >/dev/null 2>"$smoke/serve-live.log" &
    serve_pid=$!
    i=0
    while [ ! -s "$smoke/ready-live" ]; do
        i=$((i + 1))
        [ "$i" -le 300 ] || { echo "live serve never became ready" >&2; cat "$smoke/serve-live.log" >&2; exit 1; }
        kill -0 "$serve_pid" 2>/dev/null || { cat "$smoke/serve-live.log" >&2; exit 1; }
        sleep 0.1
    done
    addr=$(head -n1 "$smoke/ready-live")
    curl -sf "http://$addr/v1/classify" >"$smoke/baseline.json"
    cat "$smoke/append.jsonl" >>"$smoke/live.jsonl"
    # The POST returns only after the records hit the spool, so the union
    # corpus (and its cold reference output) is final from here on.
    curl -sf -X POST --data-binary @"$smoke/post.jsonl" \
        "http://$addr/v1/traceroutes" | grep -q '"accepted": *200'
    cat "$smoke/live.jsonl" "$smoke/spool.jsonl" >"$smoke/union.jsonl"
    target/debug/lastmile classify --traceroutes "$smoke/union.jsonl" \
        --probes "$smoke/probes.json" --json 2>/dev/null >"$smoke/cold.json"
    cmp -s "$smoke/baseline.json" "$smoke/cold.json" && {
        echo "live smoke is vacuous: union output equals baseline" >&2
        exit 1
    }
    i=0
    while :; do
        curl -sf "http://$addr/v1/classify" >"$smoke/live-now.json"
        cmp -s "$smoke/live-now.json" "$smoke/cold.json" && break
        i=$((i + 1))
        [ "$i" -le 600 ] || { echo "live /v1/classify never converged to cold union classify" >&2; cat "$smoke/serve-live.log" >&2; exit 1; }
        sleep 0.1
    done
    kill "$serve_pid"
    wait "$serve_pid"
    serve_pid=
    grep -q "\[serve\] shutdown: drained" "$smoke/serve-live.log"

    # Loadgen smoke: a tight heavy budget plus a slowed heavy handler
    # force real admission sheds; the loadgen binary itself exits
    # nonzero unless attempted == ok + shed + errors, so a plain run is
    # the accounting assertion. The burst report must show sheds (the
    # budget engaged) and the ladder report must carry rungs.
    echo "==> loadgen smoke (burst + ladder vs a budgeted daemon; shed accounting must balance)"
    : >"$smoke/ready-lg"
    target/debug/lastmile serve --traceroutes "$smoke/traceroutes.jsonl" \
        --probes "$smoke/probes.json" --addr 127.0.0.1:0 \
        --ready-file "$smoke/ready-lg" --serve-workers 2 \
        --serve-budget-heavy 1 --serve-heavy-delay-ms 50 \
        >/dev/null 2>"$smoke/serve-lg.log" &
    serve_pid=$!
    i=0
    while [ ! -s "$smoke/ready-lg" ]; do
        i=$((i + 1))
        [ "$i" -le 300 ] || { echo "budgeted serve never became ready" >&2; cat "$smoke/serve-lg.log" >&2; exit 1; }
        kill -0 "$serve_pid" 2>/dev/null || { cat "$smoke/serve-lg.log" >&2; exit 1; }
        sleep 0.1
    done
    addr=$(head -n1 "$smoke/ready-lg")
    target/debug/lastmile loadgen --addr "$addr" --profile burst \
        --requests 16 --bursts 2 --out "$smoke/burst.json" 2>/dev/null
    grep -q '"shed": [1-9]' "$smoke/burst.json" || {
        echo "loadgen burst never hit the heavy budget" >&2
        cat "$smoke/burst.json" >&2
        exit 1
    }
    target/debug/lastmile loadgen --addr "$addr" --profile ladder \
        --rates 40,80 --dwell-ms 400 --mix classify=2,series=1,healthz=1 \
        --out "$smoke/ladder.json" 2>/dev/null
    grep -q '"offered_rps"' "$smoke/ladder.json" || {
        echo "loadgen ladder report has no rungs" >&2
        cat "$smoke/ladder.json" >&2
        exit 1
    }
    kill "$serve_pid"
    wait "$serve_pid"
    serve_pid=
    grep -q "\[serve\] shutdown: drained" "$smoke/serve-lg.log"

    # Ops-plane smoke: the daemon with the self-scraper and access log
    # armed, a loadgen burst to move the counters, then validate the
    # artefacts with the repo's own `lastmile lint` (no jq/promtool):
    # the Prometheus exposition must lint clean, the self-scraped
    # timeline must hold at least two samples, and every access-log
    # line must be a well-formed JSON object.
    echo "==> ops smoke (prom exposition + timeline + access log, all linted)"
    : >"$smoke/ready-ops"
    target/debug/lastmile serve --traceroutes "$smoke/traceroutes.jsonl" \
        --probes "$smoke/probes.json" --addr 127.0.0.1:0 \
        --ready-file "$smoke/ready-ops" --serve-workers 2 \
        --serve-budget-heavy 1 --serve-heavy-delay-ms 50 \
        --ops-sample-ms 100 --access-log "$smoke/access.jsonl" \
        >/dev/null 2>"$smoke/serve-ops.log" &
    serve_pid=$!
    i=0
    while [ ! -s "$smoke/ready-ops" ]; do
        i=$((i + 1))
        [ "$i" -le 300 ] || { echo "ops serve never became ready" >&2; cat "$smoke/serve-ops.log" >&2; exit 1; }
        kill -0 "$serve_pid" 2>/dev/null || { cat "$smoke/serve-ops.log" >&2; exit 1; }
        sleep 0.1
    done
    addr=$(head -n1 "$smoke/ready-ops")
    target/debug/lastmile loadgen --addr "$addr" --profile burst \
        --requests 16 --bursts 2 --out "$smoke/ops-burst.json" 2>/dev/null
    sleep 0.3
    curl -sf "http://$addr/metrics?format=prom" >"$smoke/metrics.prom"
    target/debug/lastmile lint --prom "$smoke/metrics.prom"
    samples=$(curl -sf "http://$addr/v1/ops/timeline?metric=request_rate" | grep -o '"t":' | wc -l)
    [ "${samples:-0}" -ge 2 ] || {
        echo "ops timeline too sparse ($samples samples)" >&2
        exit 1
    }
    kill "$serve_pid"
    wait "$serve_pid"
    serve_pid=
    grep -q "\[serve\] shutdown: drained" "$smoke/serve-ops.log"
    [ -s "$smoke/access.jsonl" ] || { echo "access log is empty" >&2; exit 1; }
    target/debug/lastmile lint --access-log "$smoke/access.jsonl"
    smoke_cleanup
    trap - EXIT
else
    echo "==> serve smoke skipped (curl not found)"
fi

echo "OK: fmt, clippy, benches, tests, observability, fleet, serve, loadgen and ops smoke all green"
