#!/bin/sh
# Serving perf record: run the `lastmile serve` daemon (in live mode) on
# a simulated corpus, drive each endpoint family with curl, then run a
# mixed ingest-while-serving workload (POST /v1/traceroutes batches and
# corpus-file appends interleaved with classify reads), and collect the
# daemon's own /metrics document (per-endpoint latency histograms, queue
# gauges, live ingest/epoch counters) into BENCH_serve.json. Offline;
# uses only the repo's binary and curl.
#
# The criterion benchmark (cargo bench -p lastmile-bench --bench serve)
# prices the parser, serializer, and loopback round-trip in-process;
# this script records end-to-end request latency as the daemon sees it.
set -eu
cd "$(dirname "$0")/.."

command -v curl >/dev/null 2>&1 || { echo "bench_serve.sh needs curl" >&2; exit 1; }

echo "==> cargo build --release -q -p lastmile-cli"
cargo build --release -q -p lastmile-cli
bin=target/release/lastmile

work=$(mktemp -d)
serve_pid=
cleanup() {
    [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null && wait "$serve_pid" 2>/dev/null
    rm -rf "$work"
}
trap cleanup EXIT

echo "==> simulate 3 days of the anchor scenario"
"$bin" simulate --scenario anchor --out "$work" --days 3 >/dev/null 2>&1

echo "==> start daemon on an ephemeral port (live mode: --watch + POST spool)"
"$bin" serve --traceroutes "$work/traceroutes.jsonl" --probes "$work/probes.json" \
    --addr 127.0.0.1:0 --ready-file "$work/ready" \
    --watch --watch-poll-ms 100 --reanalyze-debounce-ms 200 \
    --live-spool "$work/spool.jsonl" >/dev/null 2>"$work/serve.log" &
serve_pid=$!
i=0
while [ ! -s "$work/ready" ]; do
    i=$((i + 1))
    if [ "$i" -gt 300 ]; then
        echo "daemon never became ready:" >&2
        cat "$work/serve.log" >&2
        exit 1
    fi
    kill -0 "$serve_pid" 2>/dev/null || { cat "$work/serve.log" >&2; exit 1; }
    sleep 0.1
done
addr=$(head -n1 "$work/ready")

classify_n=200
series_n=200
healthz_n=200
populations_n=50
echo "==> drive $classify_n classify / $series_n series / $healthz_n healthz / $populations_n populations requests"
asn=$(curl -sf "http://$addr/v1/populations?format=csv" | sed -n '2p' | cut -d, -f1)
n=0; while [ "$n" -lt "$healthz_n" ]; do curl -sf -o /dev/null "http://$addr/healthz"; n=$((n + 1)); done
n=0; while [ "$n" -lt "$classify_n" ]; do curl -sf -o /dev/null "http://$addr/v1/classify/$asn"; n=$((n + 1)); done
n=0; while [ "$n" -lt "$series_n" ]; do curl -sf -o /dev/null "http://$addr/v1/series/$asn"; n=$((n + 1)); done
n=0; while [ "$n" -lt "$populations_n" ]; do curl -sf -o /dev/null "http://$addr/v1/populations?format=csv"; n=$((n + 1)); done

# Mixed ingest-while-serving workload: interleave POST batches and
# corpus-file appends with classify reads, so the recorded latency
# histograms include requests answered while the live engine is busy
# re-analyzing, and the live gauges (records_ingested, reanalyses,
# epoch, swap_nanos) land in the /metrics document captured below.
post_batches=8
post_batch_lines=50
append_batches=4
append_batch_lines=50
mixed_classify_per_round=10
ingest_classify_n=$((post_batches * mixed_classify_per_round))
echo "==> mixed workload: $((post_batches * post_batch_lines)) POSTed + $((append_batches * append_batch_lines)) appended records interleaved with $ingest_classify_n classify requests"
head -n $((post_batches * post_batch_lines)) "$work/traceroutes.jsonl" >"$work/posts.jsonl"
head -n $((append_batches * append_batch_lines)) "$work/traceroutes.jsonl" >"$work/appends.jsonl"
b=0
while [ "$b" -lt "$post_batches" ]; do
    start=$((b * post_batch_lines + 1))
    sed -n "${start},$((start + post_batch_lines - 1))p" "$work/posts.jsonl" >"$work/batch.jsonl"
    curl -sf -o /dev/null -X POST --data-binary @"$work/batch.jsonl" "http://$addr/v1/traceroutes"
    if [ "$b" -lt "$append_batches" ]; then
        start=$((b * append_batch_lines + 1))
        sed -n "${start},$((start + append_batch_lines - 1))p" "$work/appends.jsonl" >>"$work/traceroutes.jsonl"
    fi
    n=0; while [ "$n" -lt "$mixed_classify_per_round" ]; do curl -sf -o /dev/null "http://$addr/v1/classify"; n=$((n + 1)); done
    b=$((b + 1))
done

expected_ingested=$((post_batches * post_batch_lines + append_batches * append_batch_lines))
echo "==> wait for the live engine to analyze all $expected_ingested ingested records"
i=0
while :; do
    doc=$(curl -sf "http://$addr/metrics" | tr -d ' \n')
    ingested=$(printf '%s' "$doc" | sed -n 's/.*"records_ingested":\([0-9]*\).*/\1/p')
    lag=$(printf '%s' "$doc" | sed -n 's/.*"ingest_lag":\([0-9]*\).*/\1/p')
    [ "${ingested:-0}" -ge "$expected_ingested" ] && [ "${lag:-1}" -eq 0 ] && break
    i=$((i + 1))
    if [ "$i" -gt 600 ]; then
        echo "live engine never caught up (ingested=${ingested:-?} lag=${lag:-?}):" >&2
        cat "$work/serve.log" >&2
        exit 1
    fi
    sleep 0.1
done

curl -sf "http://$addr/metrics" >"$work/metrics.json"

echo "==> graceful shutdown"
kill "$serve_pid"
wait "$serve_pid"
serve_pid=
grep -q "\[serve\] shutdown: drained" "$work/serve.log" || {
    echo "daemon did not report a drained shutdown:" >&2
    cat "$work/serve.log" >&2
    exit 1
}

out=BENCH_serve.json
# Host context, so numbers from different machines/toolchains are never
# compared as if they were one series.
cores=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)
rustc_version=$(rustc --version 2>/dev/null || echo unknown)
timestamp=$(date -u +%Y-%m-%dT%H:%M:%SZ)
{
    printf '{\n  "bench": "serve",\n  "host": {"cores": %s, "rustc": "%s", "timestamp_utc": "%s"},\n' \
        "$cores" "$rustc_version" "$timestamp"
    printf '  "requests": {"classify": %s, "series": %s, "healthz": %s, "populations": %s, "ingest_classify": %s},\n' \
        "$classify_n" "$series_n" "$healthz_n" "$populations_n" "$ingest_classify_n"
    printf '  "ingest": {"posted_records": %s, "appended_records": %s},\n' \
        "$((post_batches * post_batch_lines))" "$((append_batches * append_batch_lines))"
    printf '  "metrics": '
    tr -d '\n' <"$work/metrics.json"
    printf '\n}\n'
} >"$out"
echo "OK: wrote $out"
