#!/bin/sh
# Serving perf record: run the `lastmile serve` daemon (live mode, with
# an explicit heavy-class admission budget) on a simulated corpus and
# drive it with the repo's own open-loop load harness — `lastmile
# loadgen` — through all three profiles:
#
#   burst   thundering herds of classify requests (accept-queue shape)
#   ladder  stepped offered rates dwelling per rung: the
#           throughput-vs-latency curve with per-rung shed rates
#   fanout  a weighted endpoint mix including POST /v1/traceroutes
#           intake floods racing live re-analysis epochs
#
# Each profile writes its own JSON report (per-endpoint latency
# histograms, shed accounting that must satisfy attempted == ok + shed +
# errors — the loadgen binary exits nonzero otherwise); this script
# merges them with the daemon's final /metrics document and host context
# into BENCH_serve.json. Offline; uses the repo's binary plus curl for
# the metrics poll.
#
# The criterion benchmark (cargo bench -p lastmile-bench --bench serve)
# prices the parser, serializer, and loopback round-trip in-process;
# this script records end-to-end open-loop behavior as a client sees it.
set -eu
cd "$(dirname "$0")/.."

command -v curl >/dev/null 2>&1 || { echo "bench_serve.sh needs curl" >&2; exit 1; }

echo "==> cargo build --release -q -p lastmile-cli"
cargo build --release -q -p lastmile-cli
bin=target/release/lastmile

work=$(mktemp -d)
serve_pid=
cleanup() {
    [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null && wait "$serve_pid" 2>/dev/null
    rm -rf "$work"
}
trap cleanup EXIT

echo "==> simulate 3 days of the anchor scenario"
"$bin" simulate --scenario anchor --out "$work" --days 3 >/dev/null 2>&1
# Intake flood payload: real corpus lines, 25 per POST.
head -n 400 "$work/traceroutes.jsonl" >"$work/posts.jsonl"

workers=2
budget_heavy=1
echo "==> start daemon (live spool, $workers workers, heavy budget $budget_heavy)"
"$bin" serve --traceroutes "$work/traceroutes.jsonl" --probes "$work/probes.json" \
    --addr 127.0.0.1:0 --ready-file "$work/ready" \
    --serve-workers "$workers" --serve-budget-heavy "$budget_heavy" \
    --reanalyze-debounce-ms 200 \
    --live-spool "$work/spool.jsonl" >/dev/null 2>"$work/serve.log" &
serve_pid=$!
i=0
while [ ! -s "$work/ready" ]; do
    i=$((i + 1))
    if [ "$i" -gt 300 ]; then
        echo "daemon never became ready:" >&2
        cat "$work/serve.log" >&2
        exit 1
    fi
    kill -0 "$serve_pid" 2>/dev/null || { cat "$work/serve.log" >&2; exit 1; }
    sleep 0.1
done
addr=$(head -n1 "$work/ready")

# Warm the snapshot serializer once before measuring.
curl -sf -o /dev/null "http://$addr/v1/classify"

echo "==> loadgen burst: 32-wide thundering herds x5 on the heavy endpoint"
"$bin" loadgen --addr "$addr" --profile burst --mix classify=1 \
    --requests 32 --bursts 5 --out "$work/burst.json"

echo "==> loadgen ladder: offered 50..800 rps, 1.5s dwell per rung"
# Reads serve pre-serialized epoch bytes, so this curve typically stays
# flat on one core — that IS the result worth recording; the knee is
# demonstrated by the budgeted ladder below.
"$bin" loadgen --addr "$addr" --profile ladder --mix classify=1 \
    --rates 50,100,200,400,800 --dwell-ms 1500 --concurrency 16 \
    --out "$work/ladder.json"
grep -q '"offered_rps"' "$work/ladder.json" || {
    echo "ladder report has no rungs" >&2
    exit 1
}

echo "==> loadgen fanout: read mix + intake POST flood racing live epochs (80 rps, 6s)"
"$bin" loadgen --addr "$addr" --profile fanout \
    --mix classify=4,classify_asn=2,series=2,populations=1,healthz=1,intake=1 \
    --post-file "$work/posts.jsonl" --post-batch 25 \
    --rate 80 --duration-ms 6000 --concurrency 16 \
    --out "$work/fanout.json"

echo "==> wait for the live engine to analyze everything the flood posted"
i=0
while :; do
    doc=$(curl -sf "http://$addr/metrics" | tr -d ' \n')
    lag=$(printf '%s' "$doc" | sed -n 's/.*"ingest_lag":\([0-9]*\).*/\1/p')
    reanalyses=$(printf '%s' "$doc" | sed -n 's/.*"reanalyses":\([0-9]*\).*/\1/p')
    [ "${lag:-1}" -eq 0 ] && [ "${reanalyses:-0}" -ge 1 ] && break
    i=$((i + 1))
    if [ "$i" -gt 600 ]; then
        echo "live engine never caught up (lag=${lag:-?} reanalyses=${reanalyses:-?}):" >&2
        cat "$work/serve.log" >&2
        exit 1
    fi
    sleep 0.1
done

curl -sf "http://$addr/metrics" >"$work/metrics.json"

# Price the Prometheus exposition: sequential scrapes of the full
# `?format=prom` render (every counter, gauge, and populated histogram
# family) timed wall-clock. Each iteration pays a curl process spawn
# too, so mean_us_per_scrape is an upper bound — the number exists to
# catch encoding-cost blowups, not to be a microbenchmark (the
# in-process cost is priced by cargo bench -p lastmile-bench).
prom_scrapes=100
echo "==> price the prom exposition ($prom_scrapes sequential scrapes)"
curl -sf -o /dev/null "http://$addr/metrics?format=prom"
prom_start=$(date +%s%N)
i=0
while [ "$i" -lt "$prom_scrapes" ]; do
    curl -sf -o "$work/metrics.prom" "http://$addr/metrics?format=prom"
    i=$((i + 1))
done
prom_end=$(date +%s%N)
prom_total_ms=$(((prom_end - prom_start) / 1000000))
prom_mean_us=$(((prom_end - prom_start) / prom_scrapes / 1000))
prom_bytes=$(wc -c <"$work/metrics.prom" | tr -d ' ')
"$bin" lint --prom "$work/metrics.prom"

echo "==> graceful shutdown"
kill "$serve_pid"
wait "$serve_pid"
serve_pid=
grep -q "\[serve\] shutdown: drained" "$work/serve.log" || {
    echo "daemon did not report a drained shutdown:" >&2
    cat "$work/serve.log" >&2
    exit 1
}

# Second daemon: same budget, but the heavy handler simulates a
# deployment where classify costs ~15ms (on-demand rendering, larger
# documents) instead of pre-serialized epoch bytes. One budgeted slot
# then saturates near 65 rps, so this ladder shows the knee and the
# per-rung shed rates the admission controller produces — labeled
# synthetic in the output so the two curves are never conflated.
heavy_delay_ms=15
echo "==> budgeted ladder: heavy handler slowed ${heavy_delay_ms}ms, offered 25..200 rps"
: >"$work/ready-shed"
"$bin" serve --traceroutes "$work/traceroutes.jsonl" --probes "$work/probes.json" \
    --addr 127.0.0.1:0 --ready-file "$work/ready-shed" \
    --serve-workers "$workers" --serve-budget-heavy "$budget_heavy" \
    --serve-heavy-delay-ms "$heavy_delay_ms" >/dev/null 2>"$work/serve-shed.log" &
serve_pid=$!
i=0
while [ ! -s "$work/ready-shed" ]; do
    i=$((i + 1))
    if [ "$i" -gt 300 ]; then
        echo "budgeted daemon never became ready:" >&2
        cat "$work/serve-shed.log" >&2
        exit 1
    fi
    kill -0 "$serve_pid" 2>/dev/null || { cat "$work/serve-shed.log" >&2; exit 1; }
    sleep 0.1
done
addr=$(head -n1 "$work/ready-shed")
"$bin" loadgen --addr "$addr" --profile ladder --mix classify=1 \
    --rates 25,50,100,200 --dwell-ms 1500 --concurrency 16 \
    --out "$work/ladder_shed.json"
grep -q '"shed": [1-9]' "$work/ladder_shed.json" || {
    echo "budgeted ladder never shed" >&2
    cat "$work/ladder_shed.json" >&2
    exit 1
}
kill "$serve_pid"
wait "$serve_pid"
serve_pid=
grep -q "\[serve\] shutdown: drained" "$work/serve-shed.log" || {
    echo "budgeted daemon did not report a drained shutdown:" >&2
    cat "$work/serve-shed.log" >&2
    exit 1
}

out=BENCH_serve.json
# Host context, so numbers from different machines/toolchains are never
# compared as if they were one series.
cores=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)
rustc_version=$(rustc --version 2>/dev/null || echo unknown)
timestamp=$(date -u +%Y-%m-%dT%H:%M:%SZ)
{
    printf '{\n  "bench": "serve",\n  "host": {"cores": %s, "rustc": "%s", "timestamp_utc": "%s"},\n' \
        "$cores" "$rustc_version" "$timestamp"
    printf '  "server": {"workers": %s, "budget_heavy": %s},\n' "$workers" "$budget_heavy"
    printf '  "prom_exposition": {"scrapes": %s, "total_ms": %s, "mean_us_per_scrape": %s, "body_bytes": %s},\n' \
        "$prom_scrapes" "$prom_total_ms" "$prom_mean_us" "$prom_bytes"
    printf '  "ladder_shed_server": {"workers": %s, "budget_heavy": %s, "synthetic_heavy_delay_ms": %s},\n' \
        "$workers" "$budget_heavy" "$heavy_delay_ms"
    printf '  "profiles": {\n    "burst": '
    tr -d '\n' <"$work/burst.json"
    printf ',\n    "ladder": '
    tr -d '\n' <"$work/ladder.json"
    printf ',\n    "fanout": '
    tr -d '\n' <"$work/fanout.json"
    printf ',\n    "ladder_shed": '
    tr -d '\n' <"$work/ladder_shed.json"
    printf '\n  },\n  "metrics": '
    tr -d '\n' <"$work/metrics.json"
    printf '\n}\n'
} >"$out"
echo "OK: wrote $out"
