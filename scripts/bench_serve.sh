#!/bin/sh
# Serving perf record: run the `lastmile serve` daemon on a simulated
# corpus, drive each endpoint family with curl, and collect the daemon's
# own /metrics document (per-endpoint latency histograms, queue gauges)
# into BENCH_serve.json. Offline; uses only the repo's binary and curl.
#
# The criterion benchmark (cargo bench -p lastmile-bench --bench serve)
# prices the parser, serializer, and loopback round-trip in-process;
# this script records end-to-end request latency as the daemon sees it.
set -eu
cd "$(dirname "$0")/.."

command -v curl >/dev/null 2>&1 || { echo "bench_serve.sh needs curl" >&2; exit 1; }

echo "==> cargo build --release -q -p lastmile-cli"
cargo build --release -q -p lastmile-cli
bin=target/release/lastmile

work=$(mktemp -d)
serve_pid=
cleanup() {
    [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null && wait "$serve_pid" 2>/dev/null
    rm -rf "$work"
}
trap cleanup EXIT

echo "==> simulate 3 days of the anchor scenario"
"$bin" simulate --scenario anchor --out "$work" --days 3 >/dev/null 2>&1

echo "==> start daemon on an ephemeral port"
"$bin" serve --traceroutes "$work/traceroutes.jsonl" --probes "$work/probes.json" \
    --addr 127.0.0.1:0 --ready-file "$work/ready" >/dev/null 2>"$work/serve.log" &
serve_pid=$!
i=0
while [ ! -s "$work/ready" ]; do
    i=$((i + 1))
    if [ "$i" -gt 300 ]; then
        echo "daemon never became ready:" >&2
        cat "$work/serve.log" >&2
        exit 1
    fi
    kill -0 "$serve_pid" 2>/dev/null || { cat "$work/serve.log" >&2; exit 1; }
    sleep 0.1
done
addr=$(head -n1 "$work/ready")

classify_n=200
series_n=200
healthz_n=200
populations_n=50
echo "==> drive $classify_n classify / $series_n series / $healthz_n healthz / $populations_n populations requests"
asn=$(curl -sf "http://$addr/v1/populations?format=csv" | sed -n '2p' | cut -d, -f1)
n=0; while [ "$n" -lt "$healthz_n" ]; do curl -sf -o /dev/null "http://$addr/healthz"; n=$((n + 1)); done
n=0; while [ "$n" -lt "$classify_n" ]; do curl -sf -o /dev/null "http://$addr/v1/classify/$asn"; n=$((n + 1)); done
n=0; while [ "$n" -lt "$series_n" ]; do curl -sf -o /dev/null "http://$addr/v1/series/$asn"; n=$((n + 1)); done
n=0; while [ "$n" -lt "$populations_n" ]; do curl -sf -o /dev/null "http://$addr/v1/populations?format=csv"; n=$((n + 1)); done

curl -sf "http://$addr/metrics" >"$work/metrics.json"

echo "==> graceful shutdown"
kill "$serve_pid"
wait "$serve_pid"
serve_pid=
grep -q "\[serve\] shutdown: drained" "$work/serve.log" || {
    echo "daemon did not report a drained shutdown:" >&2
    cat "$work/serve.log" >&2
    exit 1
}

out=BENCH_serve.json
# Host context, so numbers from different machines/toolchains are never
# compared as if they were one series.
cores=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)
rustc_version=$(rustc --version 2>/dev/null || echo unknown)
timestamp=$(date -u +%Y-%m-%dT%H:%M:%SZ)
{
    printf '{\n  "bench": "serve",\n  "host": {"cores": %s, "rustc": "%s", "timestamp_utc": "%s"},\n' \
        "$cores" "$rustc_version" "$timestamp"
    printf '  "requests": {"classify": %s, "series": %s, "healthz": %s, "populations": %s},\n' \
        "$classify_n" "$series_n" "$healthz_n" "$populations_n"
    printf '  "metrics": '
    tr -d '\n' <"$work/metrics.json"
    printf '\n}\n'
} >"$out"
echo "OK: wrote $out"
