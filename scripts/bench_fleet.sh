#!/bin/sh
# Fleet perf record: the multi-AS scaling curve of the scenario-fleet
# pipeline. For each rung of an AS-count ladder (16 / 40 / 100 ASes)
# the script generates the corpus (`fleet gen`, snapshot primed), runs a
# cold and a warm `classify` over it, scores the verdicts against the
# ground-truth sidecar, and records wall times + the score document into
# BENCH_fleet.json. Offline; uses only the repo's own binary.
#
# BENCH_SMOKE=1 runs a fast correctness-only pass instead: the 9-AS
# scripts/fleet_smoke.json spec end-to-end with the scorer's CI gates
# armed (recall >= 0.7, zero peering false positives). No timings are
# recorded and BENCH_fleet.json is not touched.
set -eu
cd "$(dirname "$0")/.."

echo "==> cargo build --release -q -p lastmile-cli"
cargo build --release -q -p lastmile-cli
bin=target/release/lastmile

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

now_ms() {
    # Millisecond wall clock (GNU date; the CI container has it).
    date +%s%3N
}

# run_rung NAME SPEC OUTVAR-PREFIX: gen + cold/warm classify + score.
run_rung() {
    rung_name=$1
    rung_spec=$2
    rung_dir="$work/$rung_name"
    "$bin" lint --fleet "$rung_spec" 2>/dev/null

    t0=$(now_ms)
    "$bin" fleet gen --spec "$rung_spec" --out "$rung_dir" --seed 646 \
        --cache-dir "$rung_dir/cache" >/dev/null 2>&1
    t1=$(now_ms)
    rung_gen_ms=$((t1 - t0))

    start=$(grep -o '"start": *[0-9]*' "$rung_dir/truth.json" | head -n1 | grep -o '[0-9]*')
    end=$(grep -o '"end": *[0-9]*' "$rung_dir/truth.json" | head -n1 | grep -o '[0-9]*')
    rung_traceroutes=$(wc -l <"$rung_dir/traceroutes.jsonl")
    rung_probes=$(grep -c '"id"' "$rung_dir/probes.json")

    t0=$(now_ms)
    "$bin" classify --traceroutes "$rung_dir/traceroutes.jsonl" \
        --probes "$rung_dir/probes.json" --start "$start" --end "$end" \
        --json >"$rung_dir/classified.json" 2>/dev/null
    t1=$(now_ms)
    rung_cold_ms=$((t1 - t0))

    t0=$(now_ms)
    "$bin" classify --traceroutes "$rung_dir/traceroutes.jsonl" \
        --probes "$rung_dir/probes.json" --start "$start" --end "$end" \
        --cache-dir "$rung_dir/cache" --cache ro \
        --json >"$rung_dir/classified_warm.json" 2>/dev/null
    t1=$(now_ms)
    rung_warm_ms=$((t1 - t0))

    cmp "$rung_dir/classified.json" "$rung_dir/classified_warm.json" || {
        echo "FAIL: $rung_name warm classify differs from cold" >&2
        exit 1
    }

    "$bin" fleet score --truth "$rung_dir/truth.json" \
        --classified "$rung_dir/classified.json" \
        --json >"$rung_dir/score.json"
}

if [ "${BENCH_SMOKE:-0}" = "1" ]; then
    echo "==> smoke: scripts/fleet_smoke.json end-to-end with gates armed"
    run_rung smoke scripts/fleet_smoke.json
    "$bin" fleet score --truth "$work/smoke/truth.json" \
        --classified "$work/smoke/classified.json" \
        --min-recall 0.7 --max-peering-fp 0 >/dev/null
    echo "OK: fleet smoke passed (gen deterministic corpus, warm==cold classify, score gates green)"
    exit 0
fi

# The ladder: 16- and 40-AS specs generated here, the 100-AS spec is the
# checked-in scripts/fleet_100as.json (EXPERIMENTS.md's recipe).
cat >"$work/fleet_16as.json" <<'EOF'
{
    "name": "fleet-16as",
    "days": 7,
    "classes": {
        "severe": 2, "mild": 2, "low": 2, "clean": 6,
        "transient": 1, "adversarial_weekly": 1,
        "adversarial_peering": 1, "adversarial_route_shift": 1
    },
    "probes_per_as": {"min": 3, "max": 6}
}
EOF
cat >"$work/fleet_40as.json" <<'EOF'
{
    "name": "fleet-40as",
    "days": 7,
    "classes": {
        "severe": 3, "mild": 3, "low": 3, "clean": 24,
        "transient": 2, "adversarial_weekly": 1,
        "adversarial_peering": 2, "adversarial_route_shift": 2
    },
    "probes_per_as": {"min": 3, "max": 6}
}
EOF

out=BENCH_fleet.json
cores=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)
rustc_version=$(rustc --version 2>/dev/null || echo unknown)
timestamp=$(date -u +%Y-%m-%dT%H:%M:%SZ)
printf '{\n  "bench": "fleet",\n  "host": {"cores": %s, "rustc": "%s", "timestamp_utc": "%s"},\n  "rungs": [\n' \
    "$cores" "$rustc_version" "$timestamp" >"$out"
first=1
for rung in 16:$work/fleet_16as.json 40:$work/fleet_40as.json 100:scripts/fleet_100as.json; do
    ases=${rung%%:*}
    spec=${rung#*:}
    echo "==> rung: $ases ASes ($spec)"
    run_rung "as$ases" "$spec"
    [ "$first" -eq 1 ] || printf ',\n' >>"$out"
    first=0
    printf '    {"ases": %s, "probes": %s, "traceroutes": %s, "gen_ms": %s, "classify_cold_ms": %s, "classify_warm_ms": %s,\n     "score": ' \
        "$ases" "$rung_probes" "$rung_traceroutes" \
        "$rung_gen_ms" "$rung_cold_ms" "$rung_warm_ms" >>"$out"
    tr -d '\n' <"$work/as$ases/score.json" | sed 's/  */ /g' >>"$out"
    printf '}' >>"$out"
done
printf '\n  ]\n}\n' >>"$out"
echo "OK: wrote $out"
