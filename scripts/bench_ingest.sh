#!/bin/sh
# Ingest perf record: classify a simulated dataset in both wire forms
# (JSON Lines and top-level array) on the serial reference path and at
# --ingest-threads 1 / auto, collecting each run's --stats-out document
# into BENCH_ingest.json. Offline; uses only the repo's own binary.
#
# The criterion benchmark (cargo bench -p lastmile-bench --bench ingest)
# prices the raw decode loop in-process; this script records the same
# comparison end-to-end through the CLI, stats plumbing included.
#
# BENCH_SMOKE=1 runs a fast correctness-only pass instead: a one-day
# corpus (plus a deliberately corrupted copy) is classified in every
# form × mode combination and each parallel mode's --json output and
# quarantine dump must be byte-identical to the serial reference path.
# No timings are recorded and BENCH_ingest.json is not touched — this is
# the cross-mode identity check scripts/check.sh runs on every change.
set -eu
cd "$(dirname "$0")/.."

echo "==> cargo build --release -q -p lastmile-cli"
cargo build --release -q -p lastmile-cli
bin=target/release/lastmile

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

if [ "${BENCH_SMOKE:-0}" = "1" ]; then
    echo "==> smoke: simulate 1 day of the anchor scenario"
    "$bin" simulate --scenario anchor --out "$work" --days 1 >/dev/null 2>&1
    jsonl="$work/traceroutes.jsonl"
    array="$work/traceroutes.json"
    { printf '['; sed '$!s/$/,/' "$jsonl"; printf ']'; } >"$array"
    # A corrupted copy exercises quarantine identity: a torn record and
    # a non-JSON line spliced between intact records.
    corrupt="$work/corrupt.jsonl"
    {
        head -n 3 "$jsonl"
        printf '{"torn": \nnot json at all\n'
        tail -n +4 "$jsonl"
    } >"$corrupt"
    for form in lines array corrupt; do
        case $form in
            lines) file=$jsonl ;;
            array) file=$array ;;
            corrupt) file=$corrupt ;;
        esac
        for mode in serial 1 0; do
            case $mode in
                serial) args="--ingest-serial" label=serial ;;
                *) args="--ingest-threads $mode" label="threads$mode" ;;
            esac
            echo "==> smoke: classify $form $label"
            # shellcheck disable=SC2086 # $args is intentionally word-split
            "$bin" classify --traceroutes "$file" --probes "$work/probes.json" \
                $args --json --quarantine "$work/q.$form.$label.jsonl" \
                >"$work/out.$form.$label.json" 2>/dev/null
            if [ "$label" != serial ]; then
                cmp "$work/out.$form.serial.json" "$work/out.$form.$label.json" || {
                    echo "FAIL: $form $label classify --json differs from serial" >&2
                    exit 1
                }
                cmp "$work/q.$form.serial.jsonl" "$work/q.$form.$label.jsonl" || {
                    echo "FAIL: $form $label quarantine dump differs from serial" >&2
                    exit 1
                }
            fi
        done
    done
    # The corrupted corpus must actually have quarantined something, or
    # the quarantine identity above is vacuous.
    [ -s "$work/q.corrupt.serial.jsonl" ] || {
        echo "FAIL: corrupted corpus produced an empty quarantine dump" >&2
        exit 1
    }
    echo "OK: ingest smoke passed (classify --json and quarantine byte-identical across modes)"
    exit 0
fi

echo "==> simulate 3 days of the anchor scenario"
"$bin" simulate --scenario anchor --out "$work" --days 3 >/dev/null 2>&1
jsonl="$work/traceroutes.jsonl"
array="$work/traceroutes.json"
# Same records as a top-level JSON array.
{ printf '['; sed '$!s/$/,/' "$jsonl"; printf ']'; } >"$array"

out=BENCH_ingest.json
# Host context, so numbers from different machines/toolchains are never
# compared as if they were one series.
cores=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)
rustc_version=$(rustc --version 2>/dev/null || echo unknown)
timestamp=$(date -u +%Y-%m-%dT%H:%M:%SZ)
printf '{\n  "bench": "ingest",\n  "host": {"cores": %s, "rustc": "%s", "timestamp_utc": "%s"},\n  "cases": [\n' \
    "$cores" "$rustc_version" "$timestamp" >"$out"
first=1
for form in lines array; do
    case $form in
        lines) file=$jsonl ;;
        array) file=$array ;;
    esac
    for mode in serial 1 0; do
        case $mode in
            serial)
                args="--ingest-serial"
                label=serial
                ;;
            *)
                args="--ingest-threads $mode"
                label="threads$mode"
                ;;
        esac
        echo "==> classify $form $label"
        # shellcheck disable=SC2086 # $args is intentionally word-split
        "$bin" classify --traceroutes "$file" --probes "$work/probes.json" \
            $args --stats-out "$work/stats.json" >/dev/null 2>&1
        [ "$first" -eq 1 ] || printf ',\n' >>"$out"
        first=0
        printf '    {"form": "%s", "mode": "%s", "stats": ' "$form" "$label" >>"$out"
        tr -d '\n' <"$work/stats.json" >>"$out"
        printf '}' >>"$out"
    done
done
printf '\n  ]\n}\n' >>"$out"
echo "OK: wrote $out"
