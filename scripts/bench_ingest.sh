#!/bin/sh
# Ingest perf record: classify a simulated dataset in both wire forms
# (JSON Lines and top-level array) on the serial reference path and at
# --ingest-threads 1 / auto, collecting each run's --stats-out document
# into BENCH_ingest.json. Offline; uses only the repo's own binary.
#
# The criterion benchmark (cargo bench -p lastmile-bench --bench ingest)
# prices the raw decode loop in-process; this script records the same
# comparison end-to-end through the CLI, stats plumbing included.
set -eu
cd "$(dirname "$0")/.."

echo "==> cargo build --release -q -p lastmile-cli"
cargo build --release -q -p lastmile-cli
bin=target/release/lastmile

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

echo "==> simulate 3 days of the anchor scenario"
"$bin" simulate --scenario anchor --out "$work" --days 3 >/dev/null 2>&1
jsonl="$work/traceroutes.jsonl"
array="$work/traceroutes.json"
# Same records as a top-level JSON array.
{ printf '['; sed '$!s/$/,/' "$jsonl"; printf ']'; } >"$array"

out=BENCH_ingest.json
# Host context, so numbers from different machines/toolchains are never
# compared as if they were one series.
cores=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)
rustc_version=$(rustc --version 2>/dev/null || echo unknown)
timestamp=$(date -u +%Y-%m-%dT%H:%M:%SZ)
printf '{\n  "bench": "ingest",\n  "host": {"cores": %s, "rustc": "%s", "timestamp_utc": "%s"},\n  "cases": [\n' \
    "$cores" "$rustc_version" "$timestamp" >"$out"
first=1
for form in lines array; do
    case $form in
        lines) file=$jsonl ;;
        array) file=$array ;;
    esac
    for mode in serial 1 0; do
        case $mode in
            serial)
                args="--ingest-serial"
                label=serial
                ;;
            *)
                args="--ingest-threads $mode"
                label="threads$mode"
                ;;
        esac
        echo "==> classify $form $label"
        # shellcheck disable=SC2086 # $args is intentionally word-split
        "$bin" classify --traceroutes "$file" --probes "$work/probes.json" \
            $args --stats-out "$work/stats.json" >/dev/null 2>&1
        [ "$first" -eq 1 ] || printf ',\n' >>"$out"
        first=0
        printf '    {"form": "%s", "mode": "%s", "stats": ' "$form" "$label" >>"$out"
        tr -d '\n' <"$work/stats.json" >>"$out"
        printf '}' >>"$out"
    done
done
printf '\n  ]\n}\n' >>"$out"
echo "OK: wrote $out"
