//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! ships the narrow slice of `rand` it actually uses as a path crate:
//!
//! * [`rngs::SmallRng`] — xoshiro256++ (the algorithm `rand` 0.8 uses for
//!   `SmallRng` on 64-bit targets), seeded from a `u64` via the same
//!   SplitMix64 expansion as `rand_core`, so seed-addressed simulation
//!   streams keep the statistical properties the repo's calibration
//!   constants were measured against;
//! * [`SeedableRng::seed_from_u64`];
//! * [`Rng::gen`] for the primitive types the simulator draws
//!   (`u64`, `u32`, `f64`, `bool`) with `rand`'s `Standard` semantics
//!   (`f64` = 53 high bits into `[0, 1)`);
//! * [`Rng::gen_range`] over half-open and inclusive integer/float
//!   ranges.
//!
//! Anything outside this surface is intentionally absent; extend it here
//! rather than adding a registry dependency.

/// Core RNG interface: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (high half of `next_u64`, as xoshiro
    /// recommends using the upper bits).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs constructible from a small seed.
pub trait SeedableRng: Sized {
    /// Derive a full RNG state from a `u64` seed (SplitMix64 expansion,
    /// matching `rand_core`'s default implementation).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling of a "standard" value of a primitive type — the subset of
/// `rand`'s `Standard` distribution the workspace uses.
pub trait SampleStandard {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl SampleStandard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 high bits into [0, 1): rand 0.8's Standard for f64.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Widening-multiply rejection sampling (unbiased).
                let v = unbiased_below(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = unbiased_below(rng, span);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A uniform draw in `[0, span)` by 64-bit widening multiply with
/// rejection of the biased low region.
fn unbiased_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u64 {
    debug_assert!(span > 0 && span <= u64::MAX as u128 + 1);
    if span > u64::MAX as u128 {
        return rng.next_u64();
    }
    let span = span as u64;
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        let (hi, lo) = {
            let wide = (v as u128) * (span as u128);
            ((wide >> 64) as u64, wide as u64)
        };
        if lo <= zone {
            return hi;
        }
    }
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit: f64 = SampleStandard::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        let unit: f64 = SampleStandard::sample(rng);
        lo + unit * (hi - lo)
    }
}

/// User-facing RNG methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A value of a standard-sampleable primitive type.
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value in the given range.
    fn gen_range<T, Rge: SampleRange<T>>(&mut self, range: Rge) -> T {
        range.sample_single(self)
    }

    /// A biased coin flip.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete RNGs.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the `SmallRng` algorithm of `rand` 0.8 on 64-bit
    /// platforms. Fast, small state, excellent statistical quality for
    /// simulation (not cryptographic).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(mut seed: u64) -> SmallRng {
            // SplitMix64 expansion of the seed into the 256-bit state —
            // never produces the all-zero state xoshiro cannot escape.
            let mut s = [0u64; 4];
            for slot in &mut s {
                seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = seed;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                *slot = z ^ (z >> 31);
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let (x, y, z) = (a.gen::<u64>(), b.gen::<u64>(), c.gen::<u64>());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn unit_f64_in_range_and_spread() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < 0.01 && hi > 0.99);
    }

    #[test]
    fn gen_range_respects_bounds_and_covers() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&b| b), "{seen:?}");
        for _ in 0..1_000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let f = rng.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let p = hits as f64 / 20_000.0;
        assert!((p - 0.25).abs() < 0.02, "{p}");
    }
}
