//! Offline vendored `#[derive(Serialize, Deserialize)]` for the vendored
//! `serde` subset (see `vendor/README.md`).
//!
//! Implemented with the bare `proc_macro` API (no `syn`/`quote` in the
//! offline environment): the item is parsed from its token trees and the
//! impls are emitted as source strings. The supported shapes are exactly
//! the ones this workspace uses:
//!
//! * structs with named fields (any visibility, no generics);
//! * `#[serde(transparent)]` single-field tuple structs;
//! * enums of unit variants and/or one-field (newtype) variants,
//!   externally tagged (`"V1"` / `{"RootDns": 8}`);
//! * field attributes `#[serde(rename = "...")]` and
//!   `#[serde(skip_serializing_if = "path")]`;
//! * missing `Option<...>` fields deserialize as `None`; any other
//!   missing field is an error; unknown input fields are ignored.
//!
//! Unsupported shapes panic at compile time with a message naming this
//! file, so a future use of a wider serde surface fails loudly.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed field of a named struct.
struct Field {
    name: String,
    json_name: String,
    ty: String,
    skip_if: Option<String>,
    is_option: bool,
}

/// A parsed enum variant: unit or newtype.
struct Variant {
    name: String,
    has_payload: bool,
}

/// What the derive input turned out to be.
enum Shape {
    NamedStruct(Vec<Field>),
    TransparentTuple,
    Enum(Vec<Variant>),
}

struct Container {
    name: String,
    shape: Shape,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let c = parse(input);
    gen_serialize(&c)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let c = parse(input);
    gen_deserialize(&c)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

/// Attribute content relevant to us.
#[derive(Default)]
struct SerdeAttrs {
    transparent: bool,
    rename: Option<String>,
    skip_if: Option<String>,
}

/// Pull `#[serde(...)]` data out of a `# [ ... ]` attribute group, if it
/// is one; returns `true` when the tokens at `i` formed any attribute.
fn eat_attribute(tokens: &[TokenTree], i: &mut usize, attrs: &mut SerdeAttrs) -> bool {
    if !matches!(&tokens[*i], TokenTree::Punct(p) if p.as_char() == '#') {
        return false;
    }
    let Some(TokenTree::Group(g)) = tokens.get(*i + 1) else {
        return false;
    };
    if g.delimiter() != Delimiter::Bracket {
        return false;
    }
    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
    if let Some(TokenTree::Ident(id)) = inner.first() {
        if id.to_string() == "serde" {
            if let Some(TokenTree::Group(args)) = inner.get(1) {
                parse_serde_args(&args.stream().into_iter().collect::<Vec<_>>(), attrs);
            }
        }
    }
    *i += 2;
    true
}

/// Parse the inside of `#[serde( ... )]`.
fn parse_serde_args(args: &[TokenTree], attrs: &mut SerdeAttrs) {
    let mut i = 0;
    while i < args.len() {
        match &args[i] {
            TokenTree::Ident(id) => {
                let key = id.to_string();
                // `key = "value"` or bare `key`.
                if matches!(args.get(i + 1), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
                    let val = match args.get(i + 2) {
                        Some(TokenTree::Literal(l)) => unquote(&l.to_string()),
                        other => {
                            panic!("serde_derive: expected string after {key} =, got {other:?}")
                        }
                    };
                    match key.as_str() {
                        "rename" => attrs.rename = Some(val),
                        "skip_serializing_if" => attrs.skip_if = Some(val),
                        other => panic!("serde_derive: unsupported attribute {other}"),
                    }
                    i += 3;
                } else {
                    match key.as_str() {
                        "transparent" => attrs.transparent = true,
                        other => panic!("serde_derive: unsupported attribute {other}"),
                    }
                    i += 1;
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' => i += 1,
            other => panic!("serde_derive: unexpected token in #[serde(..)]: {other}"),
        }
    }
}

/// Strip the quotes of a string literal.
fn unquote(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

/// Skip a visibility marker (`pub`, `pub(crate)`, ...).
fn eat_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(&tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

fn parse(input: TokenStream) -> Container {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut container_attrs = SerdeAttrs::default();
    while i < tokens.len() && eat_attribute(&tokens, &mut i, &mut container_attrs) {}
    eat_visibility(&tokens, &mut i);

    let kw = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected struct/enum, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic types are not supported (type {name})");
    }

    let shape = match kw.as_str() {
        "struct" => match &tokens[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Shape::NamedStruct(
                parse_named_fields(&g.stream().into_iter().collect::<Vec<_>>()),
            ),
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                if !container_attrs.transparent {
                    panic!(
                        "serde_derive: tuple struct {name} requires #[serde(transparent)] \
                         (only transparent newtypes are supported)"
                    );
                }
                Shape::TransparentTuple
            }
            other => panic!("serde_derive: unsupported struct body for {name}: {other}"),
        },
        "enum" => match &tokens[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(&g.stream().into_iter().collect::<Vec<_>>()))
            }
            other => panic!("serde_derive: unsupported enum body for {name}: {other}"),
        },
        other => panic!("serde_derive: cannot derive for {other} {name}"),
    };
    Container { name, shape }
}

fn parse_named_fields(tokens: &[TokenTree]) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut attrs = SerdeAttrs::default();
        while i < tokens.len() && eat_attribute(tokens, &mut i, &mut attrs) {}
        if i >= tokens.len() {
            break;
        }
        eat_visibility(tokens, &mut i);
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected field name, got {other}"),
        };
        i += 1;
        assert!(
            matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ':'),
            "serde_derive: expected `:` after field {name}"
        );
        i += 1;
        // The type runs until a comma at zero angle-bracket depth.
        let mut ty_tokens: Vec<String> = Vec::new();
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                _ => {}
            }
            ty_tokens.push(tokens[i].to_string());
            i += 1;
        }
        let ty = ty_tokens.join(" ");
        let is_option = ty_tokens.first().is_some_and(|t| t == "Option");
        fields.push(Field {
            json_name: attrs.rename.unwrap_or_else(|| name.clone()),
            name,
            ty,
            skip_if: attrs.skip_if,
            is_option,
        });
    }
    fields
}

fn parse_variants(tokens: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut attrs = SerdeAttrs::default();
        while i < tokens.len() && eat_attribute(tokens, &mut i, &mut attrs) {}
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected variant name, got {other}"),
        };
        i += 1;
        let mut has_payload = false;
        if let Some(TokenTree::Group(g)) = tokens.get(i) {
            match g.delimiter() {
                Delimiter::Parenthesis => {
                    has_payload = true;
                    i += 1;
                }
                other => panic!("serde_derive: unsupported variant {name} body {other:?}"),
            }
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, has_payload });
    }
    variants
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(c: &Container) -> String {
    let name = &c.name;
    let body = match &c.shape {
        Shape::NamedStruct(fields) => {
            let mut out = String::from(
                "let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Content)> = \
                 ::std::vec::Vec::new();\n",
            );
            for f in fields {
                let push = format!(
                    "fields.push((::std::string::String::from(\"{json}\"), \
                     ::serde::Serialize::to_content(&self.{name})));",
                    json = f.json_name,
                    name = f.name
                );
                match &f.skip_if {
                    Some(pred) => {
                        out.push_str(&format!("if !({pred}(&self.{})) {{ {push} }}\n", f.name));
                    }
                    None => {
                        out.push_str(&push);
                        out.push('\n');
                    }
                }
            }
            out.push_str("::serde::Content::Map(fields)");
            out
        }
        Shape::TransparentTuple => "::serde::Serialize::to_content(&self.0)".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                if v.has_payload {
                    arms.push_str(&format!(
                        "{name}::{v} (inner) => ::serde::Content::Map(vec![\
                         (::std::string::String::from(\"{v}\"), \
                          ::serde::Serialize::to_content(inner))]),\n",
                        v = v.name
                    ));
                } else {
                    arms.push_str(&format!(
                        "{name}::{v} => ::serde::Content::Str(::std::string::String::from(\"{v}\")),\n",
                        v = v.name
                    ));
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_content(&self) -> ::serde::Content {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(c: &Container) -> String {
    let name = &c.name;
    let body = match &c.shape {
        Shape::NamedStruct(fields) => {
            let mut inits = String::new();
            for f in fields {
                let missing = if f.is_option {
                    "::std::option::Option::None".to_string()
                } else {
                    format!(
                        "return ::std::result::Result::Err(\
                         ::serde::DeError::missing_field(\"{}\", \"{name}\"))",
                        f.json_name
                    )
                };
                inits.push_str(&format!(
                    "{field}: match ::serde::content_get(map, \"{json}\") {{\n\
                     ::std::option::Option::Some(v) => \
                     <{ty} as ::serde::Deserialize>::from_content(v)?,\n\
                     ::std::option::Option::None => {missing},\n}},\n",
                    field = f.name,
                    json = f.json_name,
                    ty = f.ty
                ));
            }
            format!(
                "let map = match c {{\n\
                 ::serde::Content::Map(m) => m,\n\
                 _ => return ::std::result::Result::Err(\
                 ::serde::DeError::expected(\"object\", \"{name}\")),\n}};\n\
                 ::std::result::Result::Ok({name} {{\n{inits}}})"
            )
        }
        Shape::TransparentTuple => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_content(c)?))")
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut newtype_arms = String::new();
            for v in variants {
                if v.has_payload {
                    newtype_arms.push_str(&format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}(\
                         ::serde::Deserialize::from_content(&m[0].1)?)),\n",
                        v = v.name
                    ));
                } else {
                    unit_arms.push_str(&format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}),\n",
                        v = v.name
                    ));
                }
            }
            format!(
                "match c {{\n\
                 ::serde::Content::Str(s) => match s.as_str() {{\n{unit_arms}\
                 other => ::std::result::Result::Err(\
                 ::serde::DeError::unknown_variant(other, \"{name}\")),\n}},\n\
                 ::serde::Content::Map(m) if m.len() == 1 => match m[0].0.as_str() {{\n{newtype_arms}\
                 other => ::std::result::Result::Err(\
                 ::serde::DeError::unknown_variant(other, \"{name}\")),\n}},\n\
                 _ => ::std::result::Result::Err(\
                 ::serde::DeError::expected(\"variant of\", \"{name}\")),\n}}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_content(c: &::serde::Content) -> \
         ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}\n"
    )
}
