//! Offline vendored subset of the `proptest` API.
//!
//! Implements the strategy combinators and the `proptest!` test macro the
//! workspace uses, without shrinking: a failing case panics immediately
//! and reports the case number and the per-case seed so the failure can
//! be replayed (case generation is deterministic in the test name and
//! case index).
//!
//! Supported surface (extend here before reaching for the registry):
//! ranges as strategies (`0u8..=32`, `-1e6f64..1e6`), [`any`],
//! [`Just`], tuple strategies up to 8 elements, `prop_map`,
//! `prop::collection::vec`, `prop_oneof!`, `proptest!` with
//! `#![proptest_config(..)]`, and `prop_assert!`/`prop_assert_eq!`.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// The RNG handed to strategies by the runner.
pub struct TestRng(SmallRng);

impl TestRng {
    /// Deterministic per-case RNG: mix the test-name hash with the case
    /// index so every case is reproducible from the failure report.
    pub fn for_case(name_seed: u64, case: u64) -> TestRng {
        TestRng(SmallRng::seed_from_u64(
            name_seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }

    fn gen_f64(&mut self) -> f64 {
        self.0.gen()
    }
}

/// FNV-1a of the test path — the stable per-test seed base.
pub fn name_seed(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A generator of values of type `Value`.
///
/// Unlike upstream there is no value tree and no shrinking; strategies
/// are cheap, cloneable generator objects.
pub trait Strategy: Clone {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> U + Clone,
    {
        Map { inner: self, f }
    }

    /// Type-erase this strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
    }
}

/// A reference-counted, type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U + Clone,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

// --------------------------------------------------------- range strategies

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// 128-bit ranges need their own sampler: the vendored `rand` subset has
// no 128-bit `gen_range`. Classic modulo-with-rejection keeps it unbiased.
fn gen_u128_below(rng: &mut TestRng, span: u128) -> u128 {
    debug_assert!(span > 0);
    let zone = u128::MAX - (u128::MAX - span + 1) % span;
    loop {
        let v = ((rng.0.gen::<u64>() as u128) << 64) | rng.0.gen::<u64>() as u128;
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! int128_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "proptest: empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                self.start.wrapping_add(gen_u128_below(rng, span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "proptest: empty range");
                let span = (hi as i128).wrapping_sub(lo as i128) as u128;
                let Some(span) = span.checked_add(1) else {
                    // Full-width range: every bit pattern is valid.
                    return ((rng.0.gen::<u64>() as u128) << 64) as $t
                        | rng.0.gen::<u64>() as u128 as $t;
                };
                lo.wrapping_add(gen_u128_below(rng, span) as $t)
            }
        }
    )*};
}

int128_range_strategies!(u128, i128);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.0.gen_range(self.clone())
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.0.gen_range(self.clone())
    }
}

// --------------------------------------------------------------- any::<T>()

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.0.gen()
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.0.gen::<u64>() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        ((rng.0.gen::<u64>() as u128) << 64) | rng.0.gen::<u64>() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

/// The strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

// Manual impl: `derive(Clone)` would wrongly require `T: Clone` even
// though the phantom `fn() -> T` is always `Clone`.
impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(std::marker::PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Any value of `T`: `any::<u32>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// ------------------------------------------------------------------- tuples

macro_rules! tuple_strategies {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6)
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7)
}

// -------------------------------------------------------------- collections

/// `prop::collection` and re-exports, mirroring `proptest::prelude::prop`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Acceptable size arguments for [`vec`].
    pub trait IntoSizeRange {
        /// Inclusive (lo, hi) element-count bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.lo == self.hi {
                self.lo
            } else {
                self.lo + (rng.gen_f64() * (self.hi - self.lo + 1) as f64) as usize
            }
            .min(self.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of `size` elements drawn from `element`.
    pub fn vec<S: Strategy, R: IntoSizeRange>(element: S, size: R) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        VecStrategy { element, lo, hi }
    }
}

// ------------------------------------------------------------------- runner

/// Runner configuration, set with `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Everything a property-test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };

    /// The `prop::` namespace (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Assert inside a property (panics with the formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Weighted choice between strategies producing the same value type:
/// `prop_oneof![3 => strat_a, 1 => strat_b]` or `prop_oneof![a, b, c]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {{
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat)),)+
        ])
    }};
    ($($strat:expr),+ $(,)?) => {{
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat)),)+
        ])
    }};
}

/// The strategy built by [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<T> Union<T> {
    /// A weighted union of type-erased strategies.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| w).sum();
        assert!(total > 0, "prop_oneof! weights sum to zero");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = (rng.gen_f64() * self.total as f64) as u32;
        pick = pick.min(self.total - 1);
        for (w, strat) in &self.arms {
            if pick < *w {
                return strat.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weight bookkeeping")
    }
}

/// Define property tests:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn holds(v in my_strategy(), x in 0u32..10) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (@cfg($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let seed = $crate::name_seed(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cfg.cases as u64 {
                let mut __rng = $crate::TestRng::for_case(seed, case);
                // Generate all inputs first (in declaration order), then
                // run the property; a panic reports the failing case.
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }));
                if let Err(payload) = result {
                    eprintln!(
                        "proptest case {case}/{} failed (test {}, seed {seed:#x})",
                        cfg.cases,
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    struct Wrap(u32);

    fn arb_wrap() -> impl Strategy<Value = Wrap> {
        (0u32..100).prop_map(Wrap)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3u8..=7, y in -2.5f64..2.5, mut v in prop::collection::vec(0u32..10, 2..5)) {
            prop_assert!((3..=7).contains(&x));
            prop_assert!((-2.5..2.5).contains(&y));
            prop_assert!(v.len() >= 2 && v.len() < 5);
            v.push(0);
            prop_assert!(v.iter().all(|&e| e < 10));
        }

        #[test]
        fn maps_and_tuples_compose(w in arb_wrap(), (a, b) in (0u32..5, 10u32..15)) {
            prop_assert!(w.0 < 100);
            prop_assert!(a < 5 && (10..15).contains(&b));
        }

        #[test]
        fn oneof_draws_every_arm(picks in prop::collection::vec(prop_oneof![
            3 => (0u32..1).prop_map(|_| "heavy"),
            1 => Just("light"),
        ], 64..65)) {
            // With 64 draws the 3:1 union statistically hits both arms;
            // assert only that every value is one of the arms.
            prop_assert!(picks.iter().all(|&p| p == "heavy" || p == "light"));
        }
    }

    #[test]
    fn cases_are_deterministic_per_name() {
        let mut a = TestRng::for_case(crate::name_seed("x"), 3);
        let mut b = TestRng::for_case(crate::name_seed("x"), 3);
        let sa = (0u64..u64::MAX).generate(&mut a);
        let sb = (0u64..u64::MAX).generate(&mut b);
        assert_eq!(sa, sb);
    }
}
