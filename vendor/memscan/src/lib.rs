//! Bulk byte scanning in word-sized strides (SWAR — "SIMD within a
//! register"): find the first occurrence of one, two, or three needle
//! bytes, or of a JSON structural byte, without examining the haystack
//! one byte at a time.
//!
//! This is the dependency-free stand-in for the `memchr` crate that the
//! ingest framing hot loops use (the build environment has no registry
//! access; see `vendor/README.md`). The interface is deliberately tiny:
//! every function returns the index of the *first* match, scanning
//! 8 bytes per step with portable `u64` arithmetic — no `unsafe`, no
//! platform intrinsics, no alignment requirements
//! (`u64::from_le_bytes` over `chunks_exact` compiles to unaligned
//! loads on every target that has them).
//!
//! ## How the zero-byte trick works
//!
//! For a word `x`, `(x - 0x0101..) & !x & 0x8080..` sets bit 7 of every
//! byte of `x` that is `0x00`. Borrow propagation can set *additional*
//! high bits, but only in bytes **above** the lowest true zero byte —
//! so the lowest set bit of the mask always marks a real match, which
//! is the only bit these functions consume (`trailing_zeros / 8` under
//! little-endian byte order = first match in memory order). XOR-ing the
//! haystack word with a broadcast needle turns "find the needle" into
//! "find the zero byte"; OR-ing several needles' masks keeps the
//! lowest-set-bit guarantee, because each mask's false positives sit
//! above that mask's own first true match.

const LO: u64 = 0x0101_0101_0101_0101;
const HI: u64 = 0x8080_8080_8080_8080;
const F7: u64 = 0x7F7F_7F7F_7F7F_7F7F;
const WORD: usize = 8;

/// Bytes per scan word. Callers that walk [`json_scan_mask`] words
/// advance by this much per mask.
pub const WORD_BYTES: usize = WORD;

/// Broadcast one byte into every lane of a word.
#[inline(always)]
fn splat(b: u8) -> u64 {
    LO * u64::from(b)
}

/// High-bit mask of the zero bytes of `x` (lowest set bit exact; see
/// the module docs for the false-positive caveat above it).
#[inline(always)]
fn zero_bytes(x: u64) -> u64 {
    x.wrapping_sub(LO) & !x & HI
}

/// Byte index of the lowest set high bit (little-endian word order).
#[inline(always)]
fn first_set(mask: u64) -> usize {
    (mask.trailing_zeros() / 8) as usize
}

#[inline(always)]
fn load(chunk: &[u8]) -> u64 {
    u64::from_le_bytes(chunk.try_into().expect("exact word chunk"))
}

/// Exact high-bit mask of the zero bytes of `x`: every zero lane is
/// flagged and no other lane is. Costs a couple more operations than
/// [`zero_bytes`], but the result is safe to iterate bit by bit —
/// there are no false positives anywhere, not just below the first
/// match. (Per-lane `(x & 0x7F) + 0x7F` carries into bit 7 exactly when
/// the low 7 bits are non-zero, and cannot carry across lanes.)
#[inline(always)]
fn zero_bytes_exact(x: u64) -> u64 {
    !(((x & F7) + F7) | x | F7)
}

/// Load one scan word from the first [`WORD_BYTES`] bytes of `chunk`
/// (little-endian, so lane 0 = first byte in memory).
#[inline(always)]
pub fn load_word(chunk: &[u8]) -> u64 {
    load(&chunk[..WORD])
}

/// Lane index (0–7, memory order) of the lowest set bit of a scan mask.
#[inline(always)]
pub fn first_lane(mask: u64) -> usize {
    first_set(mask)
}

/// High bit of `lane`, for masking single lanes out of a scan mask.
#[inline(always)]
pub fn lane_bit(lane: usize) -> u64 {
    0x80u64 << (lane * 8)
}

/// Exact per-lane mask (high bit of each matching lane) of the bytes a
/// JSON element scanner dispatches on: `"`, `\`, `,`, `{`, `}`, `[`,
/// `]` — nothing else matches, every occurrence matches. Built from
/// [`zero_bytes_exact`] so callers can walk *all* set bits of one word,
/// updating string/escape/depth state per byte, instead of re-scanning
/// from each structural byte. The `0x20` fold maps `[`/`]` onto `{`/`}`
/// (exactly those pairs — see [`find_json_struct`]); the quote,
/// backslash, and comma are matched unfolded, so their fold aliases
/// (0x02 → `"`, 0x0C → `,`) cannot produce false lanes.
#[inline(always)]
pub fn json_scan_mask(w: u64) -> u64 {
    json_scan_mask_nocomma(w) | comma_lanes(w)
}

/// [`json_scan_mask`] without the comma lanes. A scanner at bracket
/// depth > 0 never acts on a comma, so it can start from this mask and
/// OR in [`comma_lanes`] only for words (or word tails, via
/// [`lanes_after`]) where depth is 0 — skipping the object-field and
/// nested-array separators that dominate dense JSON.
#[inline(always)]
pub fn json_scan_mask_nocomma(w: u64) -> u64 {
    let folded = w | splat(0x20);
    zero_bytes_exact(w ^ splat(b'"'))
        | zero_bytes_exact(w ^ splat(b'\\'))
        | zero_bytes_exact(folded ^ splat(b'{'))
        | zero_bytes_exact(folded ^ splat(b'}'))
}

/// Exact per-lane mask of the `,` bytes of `w`.
#[inline(always)]
pub fn comma_lanes(w: u64) -> u64 {
    zero_bytes_exact(w ^ splat(b','))
}

/// Exact per-lane mask of the `"` bytes of `w`.
#[inline(always)]
pub fn quote_lanes(w: u64) -> u64 {
    zero_bytes_exact(w ^ splat(b'"'))
}

/// Exact per-lane mask of the `\` bytes of `w`.
#[inline(always)]
pub fn backslash_lanes(w: u64) -> u64 {
    zero_bytes_exact(w ^ splat(b'\\'))
}

/// Exact per-lane mask of the `{` `}` `[` `]` bytes of `w` (the `0x20`
/// fold maps each square bracket onto its curly sibling — exactly those
/// pairs, see [`find_json_struct`]).
#[inline(always)]
pub fn brace_lanes(w: u64) -> u64 {
    let folded = w | splat(0x20);
    zero_bytes_exact(folded ^ splat(b'{')) | zero_bytes_exact(folded ^ splat(b'}'))
}

/// Superset of [`brace_lanes`] at half the cost: after the `0x20` fold,
/// `{` (0x7B) and `}` (0x7D) differ only in bits 1–2, so masking those
/// out merges all four brackets into one compare against 0x79. The only
/// other bytes landing in that class are `Y` `y` `_` and DEL — callers
/// must re-read the byte at each set lane (a scanner dispatching on the
/// actual byte treats the strays as no-ops; none of them occur outside
/// strings in JSON anyway).
#[inline(always)]
pub fn braceish_lanes(w: u64) -> u64 {
    zero_bytes_exact(((w | splat(0x20)) & !splat(0x06)) ^ splat(0x79))
}

/// Compact a per-lane high-bit mask to one bit per lane: bit `i` of the
/// result = lane `i`'s high bit. The multiply gathers the byte-spaced
/// bits into the top byte (each wanted product bit `56 + i` is hit by
/// exactly one (lane, constant-bit) pair; everything else lands below
/// 56 or wraps away).
#[inline(always)]
pub fn compact(mask: u64) -> u8 {
    ((mask >> 7).wrapping_mul(0x0102_0408_1020_4080) >> 56) as u8
}

/// Per-lane running parity of a compact mask: bit `i` of the result =
/// XOR of bits `0..=i`. With the compact quote mask of a word this is
/// the "inside a string literal" mask — each opening quote flips every
/// later lane until its closing quote flips them back (XOR the whole
/// result with `0xFF` when the word *starts* inside a string).
#[inline(always)]
pub fn prefix_xor(m: u8) -> u8 {
    let mut p = m;
    p ^= p << 1;
    p ^= p << 2;
    p ^= p << 4;
    p
}

/// Compact-mask counterpart of [`lanes_after`]: every bit strictly
/// after `lane` (empty for the last lane).
#[inline(always)]
pub fn compact_lanes_after(lane: usize) -> u8 {
    (0xFFu16 << (lane + 1)) as u8
}

/// [`compact`] over two adjacent words: bit `i` = lane `i` of `m0`,
/// bit `8 + i` = lane `i` of `m1` — one 16-lane mask for a 16-byte
/// stride.
#[inline(always)]
pub fn compact2(m0: u64, m1: u64) -> u16 {
    u16::from(compact(m0)) | u16::from(compact(m1)) << 8
}

/// [`prefix_xor`] over a 16-lane compact mask.
#[inline(always)]
pub fn prefix_xor16(m: u16) -> u16 {
    let mut p = m;
    p ^= p << 1;
    p ^= p << 2;
    p ^= p << 4;
    p ^= p << 8;
    p
}

/// [`compact_lanes_after`] for a 16-lane compact mask.
#[inline(always)]
pub fn compact_lanes_after16(lane: usize) -> u16 {
    (0xFFFFu32 << (lane + 1)) as u16
}

/// Whether `w` contains byte `b` anywhere. Uses the cheap inexact
/// [`zero_bytes`] mask — its false positives only affect *positions*,
/// never presence, so this is an exact yes/no at three ALU ops.
#[inline(always)]
pub fn has_byte(w: u64, b: u8) -> bool {
    zero_bytes(w ^ splat(b)) != 0
}

/// [`compact`] over four adjacent words: one 32-lane mask for a
/// 32-byte stride (bit `8 * word + i` = lane `i` of `m[word]`).
#[inline(always)]
pub fn compact4(m: [u64; 4]) -> u32 {
    u32::from(compact(m[0]))
        | u32::from(compact(m[1])) << 8
        | u32::from(compact(m[2])) << 16
        | u32::from(compact(m[3])) << 24
}

/// [`prefix_xor`] over a 32-lane compact mask.
#[inline(always)]
pub fn prefix_xor32(m: u32) -> u32 {
    let mut p = m;
    p ^= p << 1;
    p ^= p << 2;
    p ^= p << 4;
    p ^= p << 8;
    p ^= p << 16;
    p
}

/// [`compact_lanes_after`] for a 32-lane compact mask.
#[inline(always)]
pub fn compact_lanes_after32(lane: usize) -> u32 {
    (0xFFFF_FFFFu64 << (lane + 1)) as u32
}

/// Mask selecting every lane strictly after `lane` (empty for the last
/// lane).
#[inline(always)]
pub fn lanes_after(lane: usize) -> u64 {
    match lane + 1 {
        WORD.. => 0,
        next => !0u64 << (next * 8),
    }
}

/// Index of the first occurrence of `needle` in `haystack`.
#[inline]
pub fn memchr(needle: u8, haystack: &[u8]) -> Option<usize> {
    let t = splat(needle);
    let mut offset = 0;
    // Two words per iteration: long needle-free runs (line scanning)
    // pay one branch per 16 bytes.
    while offset + 2 * WORD <= haystack.len() {
        let m0 = zero_bytes(load(&haystack[offset..offset + WORD]) ^ t);
        let m1 = zero_bytes(load(&haystack[offset + WORD..offset + 2 * WORD]) ^ t);
        if m0 | m1 != 0 {
            return Some(if m0 != 0 {
                offset + first_set(m0)
            } else {
                offset + WORD + first_set(m1)
            });
        }
        offset += 2 * WORD;
    }
    let mut chunks = haystack[offset..].chunks_exact(WORD);
    for chunk in &mut chunks {
        let m = zero_bytes(load(chunk) ^ t);
        if m != 0 {
            return Some(offset + first_set(m));
        }
        offset += WORD;
    }
    chunks
        .remainder()
        .iter()
        .position(|&b| b == needle)
        .map(|i| offset + i)
}

/// Index of the first occurrence of `n1` or `n2` in `haystack`.
#[inline]
pub fn memchr2(n1: u8, n2: u8, haystack: &[u8]) -> Option<usize> {
    let t1 = splat(n1);
    let t2 = splat(n2);
    let mut chunks = haystack.chunks_exact(WORD);
    let mut offset = 0;
    for chunk in &mut chunks {
        let w = load(chunk);
        let m = zero_bytes(w ^ t1) | zero_bytes(w ^ t2);
        if m != 0 {
            return Some(offset + first_set(m));
        }
        offset += WORD;
    }
    chunks
        .remainder()
        .iter()
        .position(|&b| b == n1 || b == n2)
        .map(|i| offset + i)
}

/// Index of the first occurrence of `n1`, `n2`, or `n3` in `haystack`.
#[inline]
pub fn memchr3(n1: u8, n2: u8, n3: u8, haystack: &[u8]) -> Option<usize> {
    let t1 = splat(n1);
    let t2 = splat(n2);
    let t3 = splat(n3);
    let mut chunks = haystack.chunks_exact(WORD);
    let mut offset = 0;
    for chunk in &mut chunks {
        let w = load(chunk);
        let m = zero_bytes(w ^ t1) | zero_bytes(w ^ t2) | zero_bytes(w ^ t3);
        if m != 0 {
            return Some(offset + first_set(m));
        }
        offset += WORD;
    }
    chunks
        .remainder()
        .iter()
        .position(|&b| b == n1 || b == n2 || b == n3)
        .map(|i| offset + i)
}

/// Whether `b` is a JSON structural byte for an element scanner: `"`,
/// `{`, `}`, `[`, `]`, and (when `commas` is set) `,`.
#[inline(always)]
pub fn is_json_struct(b: u8, commas: bool) -> bool {
    matches!(b, b'"' | b'{' | b'}' | b'[' | b']') || (commas && b == b',')
}

/// Index of the first JSON structural byte in `haystack`.
///
/// Scans for all five bracket/quote bytes in three zero-byte tests per
/// word: OR-ing `0x20` into every lane folds `[` (0x5B) onto `{` (0x7B)
/// and `]` (0x5D) onto `}` (0x7D) — exactly those pairs and nothing
/// else, since `b | 0x20 == 0x7B` iff `b ∈ {0x5B, 0x7B}` (and likewise
/// for 0x7D). The quote and the optional comma are matched on the
/// *unfolded* word, so bytes that merely fold onto them (0x02 → 0x22,
/// 0x0C → 0x2C) cannot produce false matches. Callers exclude commas
/// while bracket depth is positive, where a comma does not change
/// scanner state — skipping them in-word instead of stopping at every
/// object field separator.
#[inline]
pub fn find_json_struct(haystack: &[u8], commas: bool) -> Option<usize> {
    let quote = splat(b'"');
    let open = splat(b'{');
    let close = splat(b'}');
    let comma = splat(b',');
    let fold = splat(0x20);
    let mut chunks = haystack.chunks_exact(WORD);
    let mut offset = 0;
    for chunk in &mut chunks {
        let w = load(chunk);
        let folded = w | fold;
        let mut m = zero_bytes(w ^ quote) | zero_bytes(folded ^ open) | zero_bytes(folded ^ close);
        if commas {
            m |= zero_bytes(w ^ comma);
        }
        if m != 0 {
            return Some(offset + first_set(m));
        }
        offset += WORD;
    }
    chunks
        .remainder()
        .iter()
        .position(|&b| is_json_struct(b, commas))
        .map(|i| offset + i)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random bytes (xorshift64*), registry-free.
    fn noise(seed: u64, len: usize) -> Vec<u8> {
        let mut x = seed | 1;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 56) as u8
            })
            .collect()
    }

    fn naive(pred: impl Fn(u8) -> bool, hay: &[u8]) -> Option<usize> {
        hay.iter().position(|&b| pred(b))
    }

    #[test]
    fn memchr_matches_naive_at_every_offset_and_length() {
        let hay = noise(7, 300);
        for len in 0..hay.len() {
            for start in 0..4.min(len + 1) {
                let h = &hay[start..len.max(start)];
                for needle in [0u8, b'\n', b'"', 0x80, 0xFF, hay[len / 2 % hay.len()]] {
                    assert_eq!(
                        memchr(needle, h),
                        naive(|b| b == needle, h),
                        "needle={needle:#x} start={start} len={len}"
                    );
                }
            }
        }
    }

    #[test]
    fn memchr_finds_needle_in_every_word_lane() {
        for pos in 0..40 {
            let mut hay = vec![b'a'; 40];
            hay[pos] = b'\n';
            assert_eq!(memchr(b'\n', &hay), Some(pos));
        }
        assert_eq!(memchr(b'\n', &[]), None);
        assert_eq!(memchr(b'\n', b"no newline here....."), None);
    }

    #[test]
    fn memchr2_and_memchr3_match_naive() {
        let hay = noise(99, 257);
        for len in [0, 1, 7, 8, 9, 15, 16, 17, 63, 64, 65, 255, 256, 257] {
            let h = &hay[..len];
            assert_eq!(
                memchr2(b'"', b'\\', h),
                naive(|b| b == b'"' || b == b'\\', h)
            );
            assert_eq!(
                memchr3(b'"', b'\\', b'\n', h),
                naive(|b| b == b'"' || b == b'\\' || b == b'\n', h)
            );
        }
        // First of the two needles wins regardless of which needle it is.
        assert_eq!(memchr2(b'a', b'b', b"xxbxa"), Some(2));
        assert_eq!(memchr2(b'a', b'b', b"xxaxb"), Some(2));
    }

    #[test]
    fn zero_and_high_bytes_are_exact() {
        // 0x00 and >= 0x80 are the classic SWAR trap cases.
        let hay = [0x00, 0x7F, 0x80, 0xFF, 0x00, 0x80];
        assert_eq!(memchr(0x00, &hay), Some(0));
        assert_eq!(memchr(0x80, &hay), Some(2));
        assert_eq!(memchr(0xFF, &hay), Some(3));
        assert_eq!(memchr2(0xFF, 0x80, &hay), Some(2));
    }

    #[test]
    fn json_struct_matches_naive_and_rejects_fold_aliases() {
        let structural = br#"x"x{x}x[x]x,x"#;
        for commas in [false, true] {
            assert_eq!(
                find_json_struct(structural, commas),
                naive(|b| is_json_struct(b, commas), structural)
            );
        }
        // Bytes that fold onto the bracket lanes must not match: `;`
        // (0x3B), `=` (0x3D), `_`, DEL, and the comma's unfolded
        // neighbour 0x0C.
        let aliases = b"\x3b\x3d_\x7fyY\x0c\x02";
        assert_eq!(find_json_struct(aliases, true), None);
        // Exhaustive: agreement with the naive predicate on noise, at
        // lengths around word boundaries.
        let hay = noise(3, 130);
        for len in 0..hay.len() {
            for commas in [false, true] {
                assert_eq!(
                    find_json_struct(&hay[..len], commas),
                    naive(|b| is_json_struct(b, commas), &hay[..len]),
                    "len={len} commas={commas}"
                );
            }
        }
    }

    #[test]
    fn every_structural_byte_is_found_in_every_lane() {
        for needle in [b'"', b'{', b'}', b'[', b']', b','] {
            for pos in 0..24 {
                let mut hay = vec![b'0'; 24];
                hay[pos] = needle;
                let commas = needle == b',';
                assert_eq!(
                    find_json_struct(&hay, commas),
                    Some(pos),
                    "needle={} pos={pos}",
                    needle as char
                );
            }
        }
        // Commas are invisible when excluded.
        assert_eq!(find_json_struct(b"0,0,0,0,0,0,0,0,0,{", false), Some(18));
    }

    /// The scan-word bytes the mask must flag, and only them.
    fn scan_byte(b: u8) -> bool {
        matches!(b, b'"' | b'\\' | b',' | b'{' | b'}' | b'[' | b']')
    }

    #[test]
    fn json_scan_mask_is_exact_in_every_lane() {
        // Exactness is the whole contract: callers iterate ALL set bits,
        // so a false positive anywhere (not just below the first match)
        // corrupts framing state. Check every byte value in every lane,
        // with adversarial neighbours (0x00 and 0xFF border cases for
        // the SWAR add, plus a real structural byte to the left).
        for lane in 0..WORD {
            for neighbour in [0x00u8, 0xFF, b'a', b'{'] {
                for b in 0..=255u8 {
                    let mut bytes = [neighbour; WORD];
                    bytes[lane] = b;
                    let m = json_scan_mask(load_word(&bytes));
                    let got = m & lane_bit(lane) != 0;
                    assert_eq!(
                        got,
                        scan_byte(b),
                        "byte {b:#04x} lane {lane} neighbour {neighbour:#04x}"
                    );
                }
            }
        }
    }

    #[test]
    fn json_scan_mask_agrees_with_naive_on_noise() {
        let hay = noise(11, 256);
        for chunk in hay.chunks_exact(WORD) {
            let m = json_scan_mask(load_word(chunk));
            for (lane, &b) in chunk.iter().enumerate() {
                assert_eq!(
                    m & lane_bit(lane) != 0,
                    scan_byte(b),
                    "byte {b:#04x} lane {lane}"
                );
            }
        }
    }

    #[test]
    fn first_lane_and_lane_bit_round_trip() {
        for lane in 0..WORD {
            assert_eq!(first_lane(lane_bit(lane)), lane);
        }
    }

    #[test]
    fn compact_prefix_xor_and_lane_masks_agree_with_naive() {
        // compact: every single-lane mask and a noise sweep.
        for lane in 0..WORD {
            assert_eq!(compact(lane_bit(lane)), 1 << lane);
        }
        let hay = noise(23, 256);
        for chunk in hay.chunks_exact(WORD) {
            let w = load_word(chunk);
            for (lanes, pred) in [
                (quote_lanes(w), b'"'),
                (backslash_lanes(w), b'\\'),
                (comma_lanes(w), b','),
            ] {
                let naive: u8 = chunk
                    .iter()
                    .enumerate()
                    .filter(|(_, &b)| b == pred)
                    .map(|(i, _)| 1u8 << i)
                    .fold(0, |a, b| a | b);
                assert_eq!(compact(lanes), naive, "byte {pred:#04x} chunk {chunk:?}");
            }
            let naive_braces: u8 = chunk
                .iter()
                .enumerate()
                .filter(|(_, &b)| matches!(b, b'{' | b'}' | b'[' | b']'))
                .map(|(i, _)| 1u8 << i)
                .fold(0, |a, b| a | b);
            assert_eq!(compact(brace_lanes(w)), naive_braces, "chunk {chunk:?}");
        }
        // prefix_xor: running parity, every 8-bit value.
        for m in 0..=255u8 {
            let mut parity = 0u8;
            let mut want = 0u8;
            for i in 0..8 {
                parity ^= (m >> i) & 1;
                want |= parity << i;
            }
            assert_eq!(prefix_xor(m), want, "m={m:#010b}");
        }
        // lanes_after fills whole lanes; its high bits per lane must
        // compact to the same selector compact_lanes_after builds.
        for lane in 0..WORD {
            assert_eq!(compact(lanes_after(lane) & HI), compact_lanes_after(lane));
        }
    }

    #[test]
    fn sixteen_lane_helpers_agree_with_their_eight_lane_halves() {
        let hay = noise(57, 160);
        for pair in hay.chunks_exact(2 * WORD) {
            let (m0, m1) = (quote_lanes(load_word(&pair[..WORD])), {
                quote_lanes(load_word(&pair[WORD..]))
            });
            let c = compact2(m0, m1);
            assert_eq!(c as u8, compact(m0));
            assert_eq!((c >> 8) as u8, compact(m1));
        }
        for m in [0u16, 1, 0x8000, 0x0101, 0xFFFF, 0b1001_0010_0100_1000] {
            let mut parity = 0u16;
            let mut want = 0u16;
            for i in 0..16 {
                parity ^= (m >> i) & 1;
                want |= parity << i;
            }
            assert_eq!(prefix_xor16(m), want, "m={m:#018b}");
        }
        for lane in 0..16 {
            let after = compact_lanes_after16(lane);
            for k in 0..16 {
                assert_eq!(after & (1 << k) != 0, k > lane, "lane={lane} k={k}");
            }
        }
    }

    #[test]
    fn thirtytwo_lane_helpers_agree_with_their_eight_lane_quarters() {
        let hay = noise(58, 320);
        for quad in hay.chunks_exact(4 * WORD) {
            let ms = [
                quote_lanes(load_word(&quad[..WORD])),
                quote_lanes(load_word(&quad[WORD..2 * WORD])),
                quote_lanes(load_word(&quad[2 * WORD..3 * WORD])),
                quote_lanes(load_word(&quad[3 * WORD..])),
            ];
            let c = compact4(ms);
            for (i, &m) in ms.iter().enumerate() {
                assert_eq!((c >> (8 * i)) as u8, compact(m), "word {i}");
            }
        }
        for m in [0u32, 1, 0x8000_0000, 0x0101_0101, u32::MAX, 0x9248_1249] {
            let mut parity = 0u32;
            let mut want = 0u32;
            for i in 0..32 {
                parity ^= (m >> i) & 1;
                want |= parity << i;
            }
            assert_eq!(prefix_xor32(m), want, "m={m:#034b}");
        }
        for lane in 0..32 {
            let after = compact_lanes_after32(lane);
            for k in 0..32 {
                assert_eq!(after & (1u32 << k) != 0, k > lane, "lane={lane} k={k}");
            }
        }
    }

    #[test]
    fn braceish_is_a_cheap_superset_of_braces() {
        // Exactly the four brackets plus the four documented strays, in
        // every lane, for every byte value.
        for b in 0u8..=255 {
            let stray = matches!(b, b'Y' | b'y' | b'_' | 0x7F);
            let bracket = matches!(b, b'{' | b'}' | b'[' | b']');
            for lane in 0..WORD {
                let mut bytes = [b'a'; WORD];
                bytes[lane] = b;
                let m = braceish_lanes(load_word(&bytes));
                assert_eq!(
                    m & lane_bit(lane) != 0,
                    bracket || stray,
                    "b={b:#04x} lane={lane}"
                );
            }
        }
        let hay = noise(60, 256);
        for w in hay.chunks_exact(WORD).map(load_word) {
            assert_eq!(
                braceish_lanes(w) & brace_lanes(w),
                brace_lanes(w),
                "braceish must contain every true bracket lane"
            );
        }
    }

    #[test]
    fn has_byte_matches_naive_contains() {
        let hay = noise(59, 256);
        for w in hay.chunks_exact(WORD).map(load_word) {
            for b in [0u8, b'\\', b'"', b'{', 0x80, 0xFF] {
                let naive = w.to_le_bytes().contains(&b);
                assert_eq!(has_byte(w, b), naive, "w={w:#018x} b={b:#04x}");
            }
        }
        assert!(has_byte(load_word(b"abc\\defg"), b'\\'));
        assert!(!has_byte(load_word(b"abcdefgh"), b'\\'));
    }

    #[test]
    fn prefix_xor_marks_string_interiors() {
        // The quote mask of `a"bc"d,"` is 0b1001_0010; running parity
        // marks lanes 1..=3 (the string body plus its opening quote)
        // and lane 7 (a string left open into the next word).
        let q = compact(quote_lanes(load_word(b"a\"bc\"d,\"")));
        assert_eq!(q, 0b1001_0010);
        assert_eq!(prefix_xor(q), 0b1000_1110);
    }

    #[test]
    fn comma_split_and_lanes_after_reassemble_the_full_mask() {
        let hay = noise(42, 128);
        for chunk in hay.chunks_exact(WORD) {
            let w = load_word(chunk);
            assert_eq!(
                json_scan_mask_nocomma(w) | comma_lanes(w),
                json_scan_mask(w)
            );
            assert_eq!(json_scan_mask_nocomma(w) & comma_lanes(w), 0);
        }
        let w = load_word(b",a,b,c,,");
        assert_eq!(
            comma_lanes(w),
            lane_bit(0) | lane_bit(2) | lane_bit(4) | lane_bit(6) | lane_bit(7)
        );
        for lane in 0..WORD {
            let after = lanes_after(lane);
            for k in 0..WORD {
                assert_eq!(after & lane_bit(k) != 0, k > lane, "lane={lane} k={k}");
            }
        }
    }
}
