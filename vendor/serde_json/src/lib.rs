//! Offline vendored subset of the `serde_json` API.
//!
//! Text layer over the vendored `serde` crate's [`Content`] data model:
//! a recursive-descent parser, compact and pretty writers, a dynamic
//! [`Value`] with the indexing/comparison sugar the workspace's tests
//! use, and a [`json!`] macro for object literals with expression values.
//!
//! Floats are formatted with Rust's `{:?}`, which produces the shortest
//! decimal string that round-trips to the same bits — the behaviour of
//! upstream serde_json's `float_roundtrip` feature. Combined with Rust's
//! correctly-rounded `str::parse::<f64>`, every finite f64 survives a
//! text round trip bit for bit (what `tests/atlas_wire.rs` relies on).
//!
//! Object order: parsing and serialization both preserve field order
//! (structs serialize in declaration order, like upstream).

use serde::{Content, Deserialize, Serialize};
use std::fmt;

// ------------------------------------------------------------------ Value

/// A JSON number: integer forms are kept exact, everything else is f64.
#[derive(Clone, Copy, Debug)]
pub enum Number {
    /// A non-negative integer token.
    PosInt(u64),
    /// A negative integer token.
    NegInt(i64),
    /// A token with a fraction or exponent.
    Float(f64),
}

impl Number {
    /// This number as f64 (always possible, maybe lossy).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(v) => v as f64,
            Number::NegInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }

    /// This number as u64, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(v) => Some(v),
            Number::NegInt(v) => u64::try_from(v).ok(),
            Number::Float(_) => None,
        }
    }

    /// This number as i64, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(v) => i64::try_from(v).ok(),
            Number::NegInt(v) => Some(v),
            Number::Float(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Number) -> bool {
        match (self.as_i64(), other.as_i64()) {
            (Some(a), Some(b)) => a == b,
            _ => match (self.as_u64(), other.as_u64()) {
                (Some(a), Some(b)) => a == b,
                _ => self.as_f64() == other.as_f64(),
            },
        }
    }
}

/// A dynamically-typed JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    /// Field order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// This value as f64, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// This value as u64, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// This value as i64, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Is this `null`?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Field lookup on objects (`None` on missing key or non-object).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn from_content(c: &Content) -> Value {
        match c {
            Content::Null => Value::Null,
            Content::Bool(b) => Value::Bool(*b),
            Content::I64(v) => {
                if *v >= 0 {
                    Value::Number(Number::PosInt(*v as u64))
                } else {
                    Value::Number(Number::NegInt(*v))
                }
            }
            Content::U64(v) => Value::Number(Number::PosInt(*v)),
            Content::F64(v) => Value::Number(Number::Float(*v)),
            Content::Str(s) => Value::String(s.clone()),
            Content::Seq(items) => Value::Array(items.iter().map(Value::from_content).collect()),
            Content::Map(fields) => Value::Object(
                fields
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::from_content(v)))
                    .collect(),
            ),
        }
    }

    fn to_content(&self) -> Content {
        match self {
            Value::Null => Content::Null,
            Value::Bool(b) => Content::Bool(*b),
            Value::Number(Number::PosInt(v)) => Content::U64(*v),
            Value::Number(Number::NegInt(v)) => Content::I64(*v),
            Value::Number(Number::Float(v)) => Content::F64(*v),
            Value::String(s) => Content::Str(s.clone()),
            Value::Array(items) => Content::Seq(items.iter().map(Value::to_content).collect()),
            Value::Object(fields) => Content::Map(
                fields
                    .iter()
                    .map(|(k, v)| (k.clone(), v.to_content()))
                    .collect(),
            ),
        }
    }
}

impl Serialize for Value {
    fn to_content(&self) -> Content {
        Value::to_content(self)
    }
}

impl Deserialize for Value {
    fn from_content(c: &Content) -> Result<Value, serde::DeError> {
        Ok(Value::from_content(c))
    }
}

/// Missing object keys index to this shared `null` (upstream behaviour
/// for shared references).
static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

macro_rules! value_int_eq {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match self {
                    Value::Number(n) => match n.as_i64() {
                        Some(v) => i64::try_from(*other).map(|o| v == o).unwrap_or(false),
                        None => n.as_u64().and_then(|v| u64::try_from(*other).ok().map(|o| v == o))
                            .unwrap_or(false),
                    },
                    _ => false,
                }
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

value_int_eq!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_content(&Value::to_content(self), &mut out, None, 0);
        f.write_str(&out)
    }
}

// ------------------------------------------------------------------ errors

/// A parse (or structure) error with a byte offset where available.
#[derive(Clone, Debug)]
pub struct Error {
    msg: String,
    offset: Option<usize>,
}

impl Error {
    fn at(msg: impl Into<String>, offset: usize) -> Error {
        Error {
            msg: msg.into(),
            offset: Some(offset),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(off) => write!(f, "{} at byte {}", self.msg, off),
            None => f.write_str(&self.msg),
        }
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error {
            msg: e.to_string(),
            offset: None,
        }
    }
}

// ------------------------------------------------------------------ parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::at(format!("expected `{}`", b as char), self.pos))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::at(format!("expected `{kw}`"), self.pos))
        }
    }

    fn value(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Content::Str),
            Some(b't') => self.eat_keyword("true").map(|_| Content::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|_| Content::Bool(false)),
            Some(b'n') => self.eat_keyword("null").map(|_| Content::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(other) => Err(Error::at(
                format!("unexpected character `{}`", other as char),
                self.pos,
            )),
            None => Err(Error::at("unexpected end of input", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(fields));
                }
                _ => return Err(Error::at("expected `,` or `}` in object", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(Error::at("expected `,` or `]` in array", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // Input is a &str, so slices at char boundaries are UTF-8.
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::at("invalid UTF-8 in string", start))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::at("unterminated escape", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                self.eat_keyword("\\u")?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::at("invalid low surrogate", self.pos));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(ch.ok_or_else(|| Error::at("invalid \\u escape", self.pos))?);
                        }
                        other => {
                            return Err(Error::at(
                                format!("invalid escape `\\{}`", other as char),
                                self.pos,
                            ))
                        }
                    }
                }
                Some(_) => return Err(Error::at("control character in string", self.pos)),
                None => return Err(Error::at("unterminated string", self.pos)),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::at("truncated \\u escape", self.pos))?;
        let s = std::str::from_utf8(hex).map_err(|_| Error::at("bad \\u escape", self.pos))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::at("bad \\u escape", self.pos))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::at("bad number", start))?;
        if !is_float {
            if text.starts_with('-') {
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(Content::I64(v));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::at(format!("invalid number `{text}`"), start))
    }

    fn finish(mut self, c: Content) -> Result<Content, Error> {
        self.skip_ws();
        if self.pos == self.bytes.len() {
            Ok(c)
        } else {
            Err(Error::at("trailing characters", self.pos))
        }
    }
}

fn parse_content(text: &str) -> Result<Content, Error> {
    let mut p = Parser::new(text);
    let c = p.value()?;
    p.finish(c)
}

// ------------------------------------------------------------------ writer

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        // `{:?}` is shortest-round-trip: parses back to the same bits.
        let s = format!("{v:?}");
        out.push_str(&s);
    } else {
        // JSON has no NaN/Infinity; upstream writes null.
        out.push_str("null");
    }
}

/// Write content as JSON. `indent = None` is compact; `Some(step)` is
/// pretty with `step`-space indentation at nesting `depth`.
fn write_content(c: &Content, out: &mut String, indent: Option<usize>, depth: usize) {
    let (nl, pad, sep) = match indent {
        Some(step) => ("\n", " ".repeat(step * (depth + 1)), ": "),
        None => ("", String::new(), ":"),
    };
    let close_pad = match indent {
        Some(step) => " ".repeat(step * depth),
        None => String::new(),
    };
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(*v, out),
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                write_content(item, out, indent, depth + 1);
            }
            out.push_str(nl);
            out.push_str(&close_pad);
            out.push(']');
        }
        Content::Map(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad);
                write_escaped(k, out);
                out.push_str(sep);
                write_content(v, out, indent, depth + 1);
            }
            out.push_str(nl);
            out.push_str(&close_pad);
            out.push('}');
        }
    }
}

// ------------------------------------------------------------------ API

/// Parse JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let content = parse_content(text)?;
    Ok(T::from_content(&content)?)
}

/// Serialize to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, None, 0);
    Ok(out)
}

/// Serialize to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, Some(2), 0);
    Ok(out)
}

/// Convert any serializable value into a dynamic [`Value`].
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    Value::from_content(&value.to_content())
}

/// Build a [`Value`] from a literal: `json!({"key": expr, ...})`,
/// `json!([expr, ...])`, `json!(null)`, or `json!(expr)`.
///
/// Unlike upstream, nested *literals* must be wrapped in their own
/// `json!` call (values are parsed as plain Rust expressions) — the
/// workspace only uses flat literals with expression values.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $(($key.to_string(), $crate::to_value(&$value)),)*
        ])
    };
    ([ $($value:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$value) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_writes_basic_documents() {
        let v: Value = from_str(r#"{"a": 1, "b": [true, null, "x\n"], "c": -2.5}"#).unwrap();
        assert_eq!(v["a"], 1);
        assert_eq!(v["b"][0], true);
        assert!(v["b"][1].is_null());
        assert_eq!(v["b"][2], "x\n");
        assert_eq!(v["c"].as_f64().unwrap(), -2.5);
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"a":1,"b":[true,null,"x\n"],"c":-2.5}"#
        );
    }

    #[test]
    fn rejects_garbage_and_trailing_text() {
        assert!(from_str::<Value>("not-json").is_err());
        assert!(from_str::<Value>("{\"a\":1} extra").is_err());
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("").is_err());
    }

    #[test]
    fn floats_round_trip_bit_for_bit() {
        for &v in &[
            0.1f64,
            0.62,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            1.7976931348623157e308,
            -12345.678901234567,
            5.0,
        ] {
            let text = to_string(&v).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "{v} -> {text}");
        }
    }

    #[test]
    fn integers_keep_exactness() {
        let v: Value = from_str("9007199254740993").unwrap(); // 2^53 + 1
        assert_eq!(v.as_u64(), Some(9_007_199_254_740_993));
        let v: Value = from_str("-42").unwrap();
        assert_eq!(v.as_i64(), Some(-42));
    }

    #[test]
    fn json_macro_builds_objects_in_order() {
        let amp: Option<f64> = Some(3.5);
        let doc = json!({
            "asn": 64520u32,
            "class": "Severe",
            "amp": amp,
            "none": Option::<f64>::None,
        });
        assert_eq!(
            to_string(&doc).unwrap(),
            r#"{"asn":64520,"class":"Severe","amp":3.5,"none":null}"#
        );
    }

    #[test]
    fn pretty_output_is_reparseable() {
        let doc = json!({"a": vec![1u32, 2], "b": "x"});
        let pretty = to_string_pretty(&doc).unwrap();
        assert!(
            pretty.contains("\n  \"a\": [\n    1,\n    2\n  ]"),
            "{pretty}"
        );
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn unicode_escapes_parse() {
        // Raw UTF-8 passes through; \u escapes (incl. a surrogate pair)
        // decode to the same characters.
        let v: Value = from_str(r#""é😀""#).unwrap();
        assert_eq!(v, "é😀");
        let v: Value = from_str("\"\\u00e9\\ud83d\\ude00\"").unwrap();
        assert_eq!(v, "é😀");
    }
}
