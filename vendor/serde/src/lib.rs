//! Offline vendored subset of the `serde` API.
//!
//! The build environment has no access to crates.io, so the workspace
//! ships its own serialization layer under the `serde` name. Instead of
//! serde's generic `Serializer`/`Deserializer` visitor architecture, this
//! subset pivots on a single JSON-shaped data model, [`Content`]: types
//! serialize *into* it and deserialize *from* it, and the vendored
//! `serde_json` maps it to and from text. That is exactly the power this
//! workspace needs (Atlas wire JSON, probe metadata, report export) at a
//! small fraction of the surface.
//!
//! The derive macros (`#[derive(Serialize, Deserialize)]`) are re-exported
//! from the vendored `serde_derive`; see its crate docs for the supported
//! shapes and attributes.

use std::collections::BTreeMap;
use std::fmt;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

pub use serde_derive::{Deserialize, Serialize};

/// The JSON-shaped data model every type serializes through.
///
/// Maps are ordered field lists (struct field order / insertion order is
/// preserved on output, like serde_json's struct serialization).
#[derive(Clone, Debug, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    Map(Vec<(String, Content)>),
}

/// Look a key up in a [`Content::Map`] body (first match).
pub fn content_get<'a>(map: &'a [(String, Content)], key: &str) -> Option<&'a Content> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// A deserialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// A free-form error.
    pub fn custom(msg: impl Into<String>) -> DeError {
        DeError(msg.into())
    }

    /// "expected X for type T".
    pub fn expected(what: &str, ty: &str) -> DeError {
        DeError(format!("expected {what} for {ty}"))
    }

    /// A required field was absent.
    pub fn missing_field(field: &str, ty: &str) -> DeError {
        DeError(format!("missing field `{field}` in {ty}"))
    }

    /// An enum string/key did not name a variant.
    pub fn unknown_variant(got: &str, ty: &str) -> DeError {
        DeError(format!("unknown variant `{got}` for {ty}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Serialization into the [`Content`] model.
pub trait Serialize {
    /// This value as content.
    fn to_content(&self) -> Content;
}

/// Deserialization out of the [`Content`] model.
pub trait Deserialize: Sized {
    /// Build a value from content.
    fn from_content(c: &Content) -> Result<Self, DeError>;
}

// ----------------------------------------------------------- primitives

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<bool, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("boolean", "bool")),
        }
    }
}

macro_rules! signed_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<$t, DeError> {
                let v: i64 = match c {
                    Content::I64(v) => *v,
                    Content::U64(v) => i64::try_from(*v)
                        .map_err(|_| DeError::expected("integer in range", stringify!($t)))?,
                    _ => return Err(DeError::expected("integer", stringify!($t))),
                };
                <$t>::try_from(v).map_err(|_| DeError::expected("integer in range", stringify!($t)))
            }
        }
    )*};
}

signed_impls!(i8, i16, i32, i64, isize);

macro_rules! unsigned_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<$t, DeError> {
                let v: u64 = match c {
                    Content::U64(v) => *v,
                    Content::I64(v) => u64::try_from(*v)
                        .map_err(|_| DeError::expected("unsigned integer", stringify!($t)))?,
                    _ => return Err(DeError::expected("integer", stringify!($t))),
                };
                <$t>::try_from(v).map_err(|_| DeError::expected("integer in range", stringify!($t)))
            }
        }
    )*};
}

unsigned_impls!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<f64, DeError> {
        match c {
            Content::F64(v) => Ok(*v),
            Content::I64(v) => Ok(*v as f64),
            Content::U64(v) => Ok(*v as f64),
            _ => Err(DeError::expected("number", "f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<f32, DeError> {
        f64::from_content(c).map(|v| v as f32)
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<String, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", "String")),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

// ----------------------------------------------------------- containers

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Option<T>, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Vec<T>, DeError> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            _ => Err(DeError::expected("array", "Vec")),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_content(c: &Content) -> Result<std::collections::BTreeSet<T>, DeError> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            _ => Err(DeError::expected("array", "BTreeSet")),
        }
    }
}

/// Types usable as JSON object keys (JSON keys are strings; integer keys
/// round-trip through their decimal form, as in serde_json).
pub trait MapKey: Ord + Sized {
    /// Key as a JSON object key.
    fn to_key(&self) -> String;
    /// Key parsed back from a JSON object key.
    fn from_key(key: &str) -> Result<Self, DeError>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<String, DeError> {
        Ok(key.to_string())
    }
}

macro_rules! int_key_impls {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<$t, DeError> {
                key.parse()
                    .map_err(|_| DeError::expected("integer key", stringify!($t)))
            }
        }
    )*};
}

int_key_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_content()))
                .collect(),
        )
    }
}

impl<K: MapKey, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_content(c: &Content) -> Result<BTreeMap<K, V>, DeError> {
        match c {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_content(v)?)))
                .collect(),
            _ => Err(DeError::expected("object", "BTreeMap")),
        }
    }
}

// ----------------------------------------------------------- std::net

macro_rules! display_string_impls {
    ($($t:ty => $what:literal),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::Str(self.to_string())
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<$t, DeError> {
                match c {
                    Content::Str(s) => s
                        .parse()
                        .map_err(|_| DeError::expected($what, stringify!($t))),
                    _ => Err(DeError::expected("string", stringify!($t))),
                }
            }
        }
    )*};
}

display_string_impls!(
    IpAddr => "an IP address string",
    Ipv4Addr => "an IPv4 address string",
    Ipv6Addr => "an IPv6 address string"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_and_missing_semantics() {
        assert_eq!(Option::<u32>::from_content(&Content::Null).unwrap(), None);
        assert_eq!(
            Option::<u32>::from_content(&Content::I64(5)).unwrap(),
            Some(5)
        );
        assert_eq!(Option::<u32>::to_content(&None), Content::Null);
    }

    #[test]
    fn numeric_cross_acceptance() {
        // Integer tokens must deserialize into f64 fields (JSON "5").
        assert_eq!(f64::from_content(&Content::I64(5)).unwrap(), 5.0);
        assert_eq!(u32::from_content(&Content::I64(7)).unwrap(), 7);
        assert!(u32::from_content(&Content::I64(-1)).is_err());
        assert!(u8::from_content(&Content::U64(256)).is_err());
    }

    #[test]
    fn map_keys_round_trip_integers() {
        let mut m = BTreeMap::new();
        m.insert(64500u32, "a".to_string());
        let c = m.to_content();
        assert_eq!(
            c,
            Content::Map(vec![("64500".into(), Content::Str("a".into()))])
        );
        let back: BTreeMap<u32, String> = Deserialize::from_content(&c).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn ip_addresses_are_strings() {
        let ip: IpAddr = "192.168.1.1".parse().unwrap();
        assert_eq!(ip.to_content(), Content::Str("192.168.1.1".into()));
        let back = IpAddr::from_content(&Content::Str("192.168.1.1".into())).unwrap();
        assert_eq!(back, ip);
    }
}
