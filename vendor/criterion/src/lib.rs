//! Offline vendored subset of the `criterion` API.
//!
//! Provides the `criterion_group!`/`criterion_main!` harness surface and a
//! straightforward timing loop: per benchmark it calibrates an iteration
//! count from a warm-up run, takes `sample_size` samples, and prints
//! median/min/max ns per iteration (plus throughput when configured).
//! There is no statistics engine, no HTML report, and no baseline store.
//!
//! CLI behaviour: any argument list is accepted (cargo passes `--bench`
//! and filter strings through). A non-flag argument filters benchmarks by
//! substring; `--test` runs every benchmark body exactly once, which
//! keeps `cargo test --benches` cheap.

pub use std::hint::black_box;

use std::time::{Duration, Instant};

/// Units for reporting how much work one iteration does.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `group/function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter: `name/param`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id that is just a parameter (inside a named group).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Types accepted wherever a benchmark name is expected.
pub trait IntoBenchmarkId {
    /// The printable id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The timing handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` executions of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

#[derive(Clone, Copy)]
struct GroupConfig {
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl Default for GroupConfig {
    fn default() -> GroupConfig {
        GroupConfig {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            throughput: None,
        }
    }
}

/// The benchmark runner.
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let mut filter = None;
        let mut test_mode = false;
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => test_mode = true,
                // Flags with a value we must consume and ignore.
                "--save-baseline" | "--baseline" | "--load-baseline" | "--profile-time"
                | "--sample-size" | "--measurement-time" | "--warm-up-time" => {
                    args.next();
                }
                a if a.starts_with("--") => {}
                a => filter = Some(a.to_string()),
            }
        }
        Criterion { filter, test_mode }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            config: GroupConfig::default(),
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_id();
        self.run_one(&id, GroupConfig::default(), f);
        self
    }

    fn run_one<F>(&mut self, id: &str, config: GroupConfig, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        if self.test_mode {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            println!("test {id} ... ok");
            return;
        }

        // Warm-up / calibration: one iteration, then scale the batch so
        // one sample costs measurement_time / sample_size.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed.max(Duration::from_nanos(1));
        let per_sample = config.measurement_time / config.sample_size as u32;
        let iters = (per_sample.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut samples_ns: Vec<f64> = Vec::with_capacity(config.sample_size);
        for _ in 0..config.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        samples_ns.sort_by(|a, c| a.total_cmp(c));
        let median = samples_ns[samples_ns.len() / 2];
        let min = samples_ns[0];
        let max = samples_ns[samples_ns.len() - 1];

        let thr = match config.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:>12.2} Melem/s", n as f64 / median * 1e3)
            }
            Some(Throughput::Bytes(n)) => {
                format!(
                    "  {:>12.2} MiB/s",
                    n as f64 / median * 1e9 / (1024.0 * 1024.0)
                )
            }
            None => String::new(),
        };
        println!(
            "{id:<48} {:>14} ns/iter  (min {:>12}, max {:>12}, {} samples x {} iters){thr}",
            fmt_ns(median),
            fmt_ns(min),
            fmt_ns(max),
            samples_ns.len(),
            iters,
        );
    }

    /// Accepted for API compatibility; configuration is fixed.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}e9", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.1}e6", ns / 1e6)
    } else {
        format!("{ns:.1}")
    }
}

/// A group of benchmarks sharing configuration and a name prefix.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    config: GroupConfig,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark (upstream minimum is 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(2);
        self
    }

    /// Target wall time spent measuring each benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.config.measurement_time = t;
        self
    }

    /// Report throughput alongside time.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.config.throughput = Some(throughput);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into_id());
        let config = self.config;
        self.criterion.run_one(&id, config, f);
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (report separation only; nothing is buffered).
    pub fn finish(self) {}
}

/// Collect benchmark functions into a runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut calls = 0u64;
        let mut b = Bencher {
            iters: 5,
            elapsed: Duration::ZERO,
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 5);
        assert!(b.elapsed > Duration::ZERO || calls == 5);
    }

    #[test]
    fn ids_compose() {
        assert_eq!(BenchmarkId::from_parameter(64).into_id(), "64");
        assert_eq!(BenchmarkId::new("fft", 256).into_id(), "fft/256");
    }
}
