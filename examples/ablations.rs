//! Quality-side ablations of the paper's design choices.
//!
//! The paper motivates each pipeline stage qualitatively; this example
//! quantifies them on simulated ground truth by re-running detection with
//! one choice flipped at a time:
//!
//! * median vs **mean** per-bin statistic (outlier robustness);
//! * 30-minute vs **5-minute** bins (transient-congestion leakage);
//! * ≥3-traceroutes sanity filter vs **none** (disconnected-probe noise);
//! * Welch averaging vs a **single periodogram** (spectral noise).
//!
//! Run with: `cargo run --release --example ablations`

use lastmile_repro::core::aggregate::aggregate_median;
use lastmile_repro::core::detect::detect;
use lastmile_repro::core::pipeline::{AsPipeline, PipelineConfig};
use lastmile_repro::dsp::spectrum::prominent_peak;
use lastmile_repro::dsp::welch::{welch_peak_to_peak, WelchConfig};
use lastmile_repro::netsim::world::ProbeSpec;
use lastmile_repro::netsim::{IspConfig, TracerouteEngine, World};
use lastmile_repro::timebase::{BinSpec, MeasurementPeriod, TzOffset};

fn main() {
    // Ground truth: a mildly congested AS (target daily amplitude ~2 ms).
    let mut b = World::builder(99);
    b.add_isp(IspConfig::legacy_pppoe(
        65001,
        "ABL",
        "JP",
        TzOffset::JST,
        4.7,
    ));
    b.add_probes(65001, 8, &ProbeSpec::simple().with_old_versions(0.3));
    let world = b.build();
    let engine = TracerouteEngine::new(&world);
    let period = MeasurementPeriod::september_2019();

    let mut traceroutes = Vec::new();
    for probe in world.probes() {
        engine.for_each_traceroute(probe, &period.range(), |tr| traceroutes.push(tr));
    }
    println!(
        "ablation study: {} traceroutes, 8 probes, 15 days\n",
        traceroutes.len()
    );
    println!(
        "{:<34} {:>10} {:>9} {:>8}",
        "variant", "amplitude", "daily?", "class"
    );

    let run_variant = |name: &str, cfg: PipelineConfig| {
        let mut p = AsPipeline::new(cfg, period.range());
        for tr in &traceroutes {
            p.ingest(tr);
        }
        let analysis = p.finish();
        match &analysis.detection {
            Some(d) => println!(
                "{:<34} {:>8.2}ms {:>9} {:>8}",
                name, d.daily_amplitude_ms, d.prominent_is_daily, d.class
            ),
            None => println!("{name:<34} (no detection)"),
        }
        analysis
    };

    // Baseline: the paper's configuration.
    let baseline = run_variant("paper (30min bins, median, >=3)", PipelineConfig::paper());

    // 5-minute bins: transient spikes leak back in.
    let mut five = PipelineConfig::paper();
    five.bin = BinSpec::new(300);
    run_variant("5-minute bins", five);

    // No sanity filter: disconnected-probe bins survive.
    let mut nofilter = PipelineConfig::paper();
    nofilter.min_traceroutes_per_bin = 1;
    run_variant("no sanity filter (>=1 tr/bin)", nofilter);

    // Mean aggregation: rebuild per-probe series with mean-of-samples by
    // re-aggregating the medians with a mean across probes. (The per-bin
    // median inside a probe is kept; the cross-probe combine switches.)
    {
        let series: Vec<_> = baseline.probe_series.clone();
        let agg = aggregate_median(&series, &period.range(), BinSpec::thirty_minutes(), 2);
        // Mean-combine: recompute from the same series by averaging.
        let mut mean_signal = Vec::new();
        for (i, (_, median_v)) in agg.iter().enumerate() {
            let bin = BinSpec::thirty_minutes().bin_index(period.start()) + i as i64;
            let vals: Vec<f64> = series.iter().filter_map(|s| s.get(bin)).collect();
            let mean = if vals.is_empty() {
                median_v.unwrap_or(0.0)
            } else {
                vals.iter().sum::<f64>() / vals.len() as f64
            };
            mean_signal.push(mean);
        }
        let d = detect(&mean_signal, BinSpec::thirty_minutes()).expect("signal is contiguous");
        println!(
            "{:<34} {:>8.2}ms {:>9} {:>8}",
            "mean across probes", d.daily_amplitude_ms, d.prominent_is_daily, d.class
        );
    }

    // Single periodogram instead of Welch averaging.
    {
        let signal = baseline.aggregated.contiguous().expect("coverage high");
        let cfg = WelchConfig {
            segment_len: signal.len(),
            ..WelchConfig::for_daily_analysis(2.0)
        };
        let spec = welch_peak_to_peak(&signal, &cfg).expect("signal analyses");
        let peak = prominent_peak(&spec).expect("peak exists");
        println!(
            "{:<34} {:>8.2}ms {:>9} {:>8}",
            "single periodogram (no Welch avg)",
            peak.amplitude,
            peak.is_daily(),
            "-"
        );
    }

    println!("\nreading: the paper's choices keep the amplitude estimate close to the");
    println!("planted ~2 ms while staying robust; the mean combine overshoots (heavy-tail");
    println!("probes drag it), and unfiltered/short-bin variants admit more noise.");
}
