//! Quickstart: detect persistent last-mile congestion in one AS.
//!
//! Builds a two-ISP world (one congested legacy-PPPoE network, one clean
//! fiber network), simulates two weeks of RIPE Atlas built-in traceroutes,
//! runs the paper's pipeline, and prints the classification — plus a taste
//! of the Atlas JSON wire format the pipeline also accepts.
//!
//! Run with: `cargo run --release --example quickstart`

use lastmile_repro::atlas::json::to_atlas_json;
use lastmile_repro::core::pipeline::PipelineConfig;
use lastmile_repro::netsim::world::ProbeSpec;
use lastmile_repro::netsim::{IspConfig, TracerouteEngine, World};
use lastmile_repro::runner::{analyze_population, ProbeSelection};
use lastmile_repro::timebase::{MeasurementPeriod, TimeRange, TzOffset};

fn main() {
    // 1. A small Internet: a congested and a clean eyeball network.
    let mut builder = World::builder(42);
    builder.add_isp(IspConfig::legacy_pppoe(
        64501,
        "CongestedNet",
        "JP",
        TzOffset::JST,
        5.0, // 5 ms peak queuing
    ));
    builder.add_isp(IspConfig::clean(64502, "CleanFiber", "DE", TzOffset::CET));
    builder.add_probes(64501, 6, &ProbeSpec::simple());
    builder.add_probes(64502, 6, &ProbeSpec::simple());
    let world = builder.build();

    // 2. Run the paper's pipeline over September 2019.
    let period = MeasurementPeriod::september_2019();
    println!("analysing period {period} ({} days)\n", period.days());
    for asn in [64501, 64502] {
        let analysis = analyze_population(
            &world,
            asn,
            &period,
            PipelineConfig::paper(),
            &ProbeSelection::regular(),
        );
        let name = &world.as_for(asn).unwrap().config.name;
        let detection = analysis
            .detection
            .as_ref()
            .expect("population is analysable");
        println!("AS{asn} ({name}):");
        println!("  probes used            : {}", analysis.probes_used());
        println!("  congestion class       : {}", analysis.class());
        println!(
            "  daily p2p amplitude    : {:.2} ms",
            detection.daily_amplitude_ms
        );
        println!(
            "  prominent freq (c/h)   : {:?}",
            detection.prominent_frequency()
        );
        println!(
            "  peak aggregated delay  : {:.2} ms",
            analysis.aggregated.max().unwrap_or(0.0)
        );
        println!();
    }

    // 3. The same traceroutes in the RIPE Atlas wire format.
    let engine = TracerouteEngine::new(&world);
    let probe = &world.probes()[0];
    let hour = TimeRange::new(period.start(), period.start() + 3600);
    if let Some(tr) = engine.probe_traceroutes(probe, &hour).first() {
        println!(
            "an Atlas-format traceroute document:\n{}",
            to_atlas_json(tr, probe.meta.public_addr)
        );
    }
}
