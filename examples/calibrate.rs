//! Calibration utility: measures the ratio between a scenario's
//! `peak_queuing_ms` dial and the daily peak-to-peak amplitude the
//! detector reports, which pins
//! `lastmile_netsim::scenarios::PEAK_DELAY_PER_AMPLITUDE`.
//!
//! Run with: `cargo run --release --example calibrate`

use lastmile_repro::core::pipeline::PipelineConfig;
use lastmile_repro::netsim::world::ProbeSpec;
use lastmile_repro::netsim::{IspConfig, World};
use lastmile_repro::runner::{analyze_population, ProbeSelection};
use lastmile_repro::timebase::{MeasurementPeriod, TzOffset};

fn main() {
    let period = MeasurementPeriod::september_2019();
    println!("peak_queuing_ms -> detected daily p2p amplitude (ratio)");
    for peak in [0.5, 1.0, 2.0, 4.0, 8.0, 16.0] {
        let mut ratios = Vec::new();
        for seed in [1u64, 2, 3] {
            let mut b = World::builder(seed);
            b.add_isp(IspConfig::legacy_pppoe(
                65001,
                "CAL",
                "JP",
                TzOffset::JST,
                peak,
            ));
            b.add_probes(65001, 10, &ProbeSpec::simple());
            let w = b.build();
            let analysis = analyze_population(
                &w,
                65001,
                &period,
                PipelineConfig::paper(),
                &ProbeSelection::regular(),
            );
            let d = analysis.detection.expect("detection must run");
            ratios.push(peak / d.daily_amplitude_ms);
            println!(
                "  peak {peak:>5.1} seed {seed}: amp {:.3} ms (daily={}, prom={:.1}) ratio {:.3}",
                d.daily_amplitude_ms,
                d.prominent_is_daily,
                d.prominent.map(|p| p.prominence).unwrap_or(0.0),
                peak / d.daily_amplitude_ms
            );
        }
        let mean: f64 = ratios.iter().sum::<f64>() / ratios.len() as f64;
        println!("  => mean ratio {mean:.3}");
    }
}
