//! The §4 Tokyo case study: last-mile delays of Japan's three major
//! eyeball networks cross-validated against CDN access logs.
//!
//! Reproduces the analyses behind Figures 5, 6 and 7: aggregated queuing
//! delay for ISP_A/B (shared legacy PPPoE) vs ISP_C (own fiber),
//! broadband vs mobile CDN throughput, and the Spearman correlation
//! between the two.
//!
//! Run with: `cargo run --release --example tokyo_case_study`

use lastmile_repro::cdnlog::{
    binned_median_throughput, CdnGeneratorConfig, CdnLogGenerator, LogFilter,
};
use lastmile_repro::core::correlate::{delay_throughput_rho, join_by_time};
use lastmile_repro::core::pipeline::PipelineConfig;
use lastmile_repro::netsim::scenarios::tokyo::*;
use lastmile_repro::netsim::ServiceClass;
use lastmile_repro::runner::{analyze_population, ProbeSelection};
use lastmile_repro::stats::median;
use lastmile_repro::timebase::{BinSpec, MeasurementPeriod};

fn main() {
    let world = tokyo_world(20190919);
    let period = MeasurementPeriod::tokyo_cdn_2019();
    let cdn = CdnLogGenerator::new(&world, CdnGeneratorConfig::default_tokyo(7));

    println!(
        "Tokyo case study, {} ({} days)\n",
        period.label(),
        period.days()
    );
    println!(
        "{:<8} {:>6} {:>12} {:>12} {:>14} {:>14} {:>8}",
        "ISP", "probes", "max delay", "bb night", "bb peak(21h)", "mobile min", "rho"
    );

    for (name, asn) in [
        ("ISP_A", ISP_A_ASN),
        ("ISP_B", ISP_B_ASN),
        ("ISP_C", ISP_C_ASN),
    ] {
        // Delay side (Figure 5): Tokyo probes only.
        let analysis = analyze_population(
            &world,
            asn,
            &period,
            PipelineConfig::paper(),
            &ProbeSelection::in_area("Tokyo"),
        );

        // Throughput side (Figure 6).
        let broadband_logs = cdn.generate(asn, ServiceClass::BroadbandV4, &period.range());
        let filter = LogFilter::paper_broadband();
        let kept: Vec<_> = filter
            .apply(&broadband_logs, world.registry())
            .cloned()
            .collect();
        let bb = binned_median_throughput(kept.iter(), BinSpec::fifteen_minutes());

        let mobile_logs = cdn.generate(asn, ServiceClass::Mobile, &period.range());
        let mfilter = LogFilter::paper_mobile();
        let mkept: Vec<_> = mfilter
            .apply(&mobile_logs, world.registry())
            .cloned()
            .collect();
        let mobile = binned_median_throughput(mkept.iter(), BinSpec::fifteen_minutes());

        let med_at = |series: &[(lastmile_repro::timebase::UnixTime, f64)], hour: u8| {
            let v: Vec<f64> = series
                .iter()
                .filter(|(t, _)| t.hour_of_day() == hour)
                .map(|&(_, v)| v)
                .collect();
            median(&v).unwrap_or(f64::NAN)
        };
        let night = med_at(&bb, 19); // 04:00 JST
        let peak = med_at(&bb, 12); // 21:00 JST
        let mobile_min = mobile.iter().map(|&(_, v)| v).fold(f64::INFINITY, f64::min);

        // Correlation (Figure 7).
        let pairs = join_by_time(&analysis.aggregated, bb.iter().copied());
        let rho = delay_throughput_rho(&pairs).unwrap_or(f64::NAN);

        println!(
            "{:<8} {:>6} {:>10.2}ms {:>8.1}Mbps {:>10.1}Mbps {:>10.1}Mbps {:>8.2}",
            name,
            analysis.probes_used(),
            analysis.aggregated.max().unwrap_or(0.0),
            night,
            peak,
            mobile_min,
            rho,
        );
    }

    println!("\npaper's shape: ISP_A/B peak-hour delay up & throughput halved (rho ~ -0.6),");
    println!("ISP_C flat delay, stable throughput (rho ~ 0.0), mobile always > 20 Mbps.");

    // Delay-side IPv4 vs IPv6 (the substrate extension behind Appendix C:
    // the v6 built-ins ride IPoE past the congested PPPoE equipment).
    use lastmile_repro::netsim::TracerouteEngine;
    let engine = TracerouteEngine::new(&world);
    println!("\nIPv4 vs IPv6 last-mile delay swing (evening minus night, first probe):");
    for (name, asn) in [("ISP_A", ISP_A_ASN), ("ISP_C", ISP_C_ASN)] {
        let probe = world
            .probes_in(asn)
            .find(|p| p.participation > 0.7)
            .expect("a participating probe exists");
        let lastmile = |t: &lastmile_repro::atlas::TracerouteResult| -> Option<f64> {
            Some(t.first_public_hop()?.rtts().next()? - t.last_private_hop()?.rtts().next()?)
        };
        let swing = |trs: &[lastmile_repro::atlas::TracerouteResult]| {
            let med_at = |h: u8| {
                let v: Vec<f64> = trs
                    .iter()
                    .filter(|t| t.timestamp.hour_of_day() == h)
                    .filter_map(lastmile)
                    .collect();
                median(&v).unwrap_or(f64::NAN)
            };
            med_at(12) - med_at(19) // 21:00 JST minus 04:00 JST
        };
        let v4 = engine.probe_traceroutes(probe, &period.range());
        let v6 = engine.probe_traceroutes_v6(probe, &period.range());
        println!(
            "  {name}: v4 {:+.2} ms, v6 {:+.2} ms",
            swing(&v4),
            swing(&v6)
        );
    }
}
