//! The §6 BBR discussion, quantified.
//!
//! "We believe the original version of BBR that disregards packet loss may
//! be detrimental in the context of persistent last-mile congestion, as it
//! may put more burden to already overwhelmed devices."
//!
//! This example takes ISP_D's overwhelmed legacy segment at peak hour and
//! sweeps the share of traffic running BBRv1 / BBRv2 / loss-based TCP,
//! reporting the extra standing queue the non-backing-off flows impose and
//! the throughput each algorithm extracts.
//!
//! Run with: `cargo run --release --example bbr_discussion`

use lastmile_repro::cdnlog::cc::{mixed_traffic_queue_ms, CongestionControl};
use lastmile_repro::netsim::scenarios::anchor::{anchor_world, ISP_D_ASN};
use lastmile_repro::netsim::ServiceClass;
use lastmile_repro::timebase::{CivilDate, CivilDateTime};

fn main() {
    let world = anchor_world(8);
    // Wednesday 2019-09-25, 21:00 JST (12:00 UTC): ISP_D's nightly peak.
    let peak = CivilDateTime::new(CivilDate::new(2019, 9, 25), 12, 0, 0).to_unix();
    let night = CivilDateTime::new(CivilDate::new(2019, 9, 25), 19, 0, 0).to_unix();

    for (label, t) in [
        ("peak hour (21:00 JST)", peak),
        ("off-peak (04:00 JST)", night),
    ] {
        let state = world
            .access_state(ISP_D_ASN, ServiceClass::BroadbandV4, t)
            .expect("ISP_D offers broadband");
        println!(
            "{label}: RTT {:.1} ms, loss {:.2}%",
            state.rtt_ms(),
            state.loss_rate * 100.0
        );
        println!(
            "  {:<26} {:>12} {:>18}",
            "algorithm", "throughput", "standing queue"
        );
        for cc in [
            CongestionControl::LossBased,
            CongestionControl::BbrV1,
            CongestionControl::BbrV2,
        ] {
            println!(
                "  {:<26} {:>8.1} Mbps {:>15.1} ms",
                cc.name(),
                cc.throughput_mbps(&state, 50.0),
                cc.standing_queue_ms(&state),
            );
        }
        println!("  BBRv1 traffic share -> extra queue imposed on everyone:");
        for share in [0.0, 0.1, 0.25, 0.5, 1.0] {
            let q = mixed_traffic_queue_ms(
                &state,
                &[
                    (CongestionControl::BbrV1, share),
                    (CongestionControl::LossBased, 1.0 - share),
                ],
            );
            println!("    {:>4.0}% BBRv1 -> +{q:.1} ms", share * 100.0);
        }
        println!();
    }
    println!("reading: at peak, loss-based flows back off (the Figure 6 throughput drop)");
    println!("while BBRv1 sustains full rate AND parks an extra bandwidth-delay product in");
    println!("the already-overwhelmed PPPoE buffer; BBRv2's loss ceiling sheds that burden.");
}
