//! The COVID-19 survey (§3.2): how many ASes host persistently congested
//! probes before vs during the April 2020 lockdowns?
//!
//! Runs a reduced-scale version of the paper's 646-AS survey (size is a
//! CLI argument) over September 2019 and April 2020 and prints the class
//! breakdown, the reported-AS jump (paper: 45 → 70, +55%), and the rank
//! distribution of the newly congested networks.
//!
//! Run with: `cargo run --release --example covid_survey -- 200`

use lastmile_repro::core::detect::CongestionClass;
use lastmile_repro::netsim::scenarios::survey::{survey_world, SurveyConfig};
use lastmile_repro::runner::{eyeballs_from_ground_truth, run_survey, SurveyOptions};
use lastmile_repro::timebase::MeasurementPeriod;

fn main() {
    let n_ases: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(150);
    println!("building a {n_ases}-AS survey world (paper scale: 646)...");
    let scenario = survey_world(&SurveyConfig {
        seed: 2020,
        n_ases,
        max_probes_per_as: 10,
    });
    let eyeballs = eyeballs_from_ground_truth(&scenario.ground_truth);

    let periods = [
        MeasurementPeriod::september_2019(),
        MeasurementPeriod::april_2020(),
    ];
    println!("simulating and classifying 2 periods x {n_ases} ASes...");
    let report = run_survey(
        &scenario.world,
        &periods,
        &eyeballs,
        &SurveyOptions::default(),
    );

    println!("\n{}", report.render_text());

    let sep = periods[0].id();
    let apr = periods[1].id();
    let before = report.reported_count(sep);
    let after = report.reported_count(apr);
    println!(
        "reported ASes: {before} -> {after} ({:+.0}%; paper: 45 -> 70, +55%)",
        (after as f64 / before as f64 - 1.0) * 100.0
    );

    // Which ASes newly crossed the threshold, and how large are they?
    let newly: Vec<u32> = report
        .period_rows(apr)
        .filter(|r| r.class.is_reported())
        .filter(|r| {
            report
                .period_rows(sep)
                .any(|s| s.asn == r.asn && s.class == CongestionClass::None)
        })
        .map(|r| r.asn)
        .collect();
    println!("\nASes congested only under lockdown: {}", newly.len());
    let top1k = newly
        .iter()
        .filter(|&&asn| eyeballs.rank_of(asn).is_some_and(|r| r <= 1000))
        .count();
    println!("  of which in the top-1000 eyeball ranks: {top1k}");

    println!("\nrank-bucket breakdown in April 2020 (Figure 4 view):");
    for (bucket, classes) in report.rank_breakdown(apr) {
        let total: usize = classes.values().sum();
        let reported: usize = classes
            .iter()
            .filter(|(c, _)| c.is_reported())
            .map(|(_, n)| n)
            .sum();
        println!("  {bucket:<14} {total:>4} ASes, {reported:>3} reported");
    }
}
