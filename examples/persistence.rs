//! Longitudinal persistence tracking — the extension behind the paper's
//! "congestion may recur over years" observation.
//!
//! Simulates three months of one eyeball AS whose shared segment becomes
//! congested for a five-week episode in the middle (a demand surge the
//! operator takes weeks to provision around), runs the paper's pipeline
//! over the whole span, and tracks the daily peak-to-peak amplitude with
//! a sliding Welch window — the continuous view between the paper's
//! half-month snapshots.
//!
//! Run with: `cargo run --release --example persistence`

use lastmile_repro::core::longitudinal::{longest_reported_run, sliding_daily_amplitude};
use lastmile_repro::core::pipeline::PipelineConfig;
use lastmile_repro::netsim::world::ProbeSpec;
use lastmile_repro::netsim::{IspConfig, World};
use lastmile_repro::runner::{analyze_population, ProbeSelection};
use lastmile_repro::timebase::{
    BinSpec, CivilDate, CivilDateTime, MeasurementPeriod, TimeRange, TzOffset,
};

fn main() {
    // Three months: June through August 2019.
    let span = TimeRange::new(
        CivilDate::new(2019, 6, 1).midnight(),
        CivilDate::new(2019, 9, 1).midnight(),
    );
    // The congestion episode: July 5 to August 9 (five weeks). We reuse
    // the world's "lockdown" lever as a generic demand-surge episode.
    let episode = TimeRange::new(
        CivilDate::new(2019, 7, 5).midnight(),
        CivilDate::new(2019, 8, 9).midnight(),
    );

    let mut b = World::builder(31);
    b.add_isp(
        IspConfig::legacy_pppoe(65001, "EpisodeNet", "JP", TzOffset::JST, 0.6)
            .with_lockdown_factor(7.0),
    );
    b.add_probes(65001, 8, &ProbeSpec::simple());
    let world = b.lockdown(episode).build();

    println!("simulating 92 days of traceroutes for 8 probes...");
    let analysis = analyze_population(
        &world,
        65001,
        &MeasurementPeriod::custom(span),
        PipelineConfig::paper(),
        &ProbeSelection::regular(),
    );
    let signal = analysis.aggregated.contiguous().expect("high coverage");

    println!("\nsliding 7-day window, 3.5-day step — daily p2p amplitude:\n");
    let points = sliding_daily_amplitude(
        &signal,
        span.start(),
        BinSpec::thirty_minutes(),
        7,
        3, // step: 3 days
    );
    for p in &points {
        let date = CivilDateTime::from_unix(p.window_start).date;
        let bar_len = (p.daily_amplitude_ms * 10.0).round() as usize;
        println!(
            "  {date}  {:>5.2} ms {:>9} |{}",
            p.daily_amplitude_ms,
            p.class().name(),
            "#".repeat(bar_len.min(60)),
        );
    }

    match longest_reported_run(&points, 7) {
        Some(run) => {
            let from = CivilDateTime::from_unix(run.start()).date;
            let to = CivilDateTime::from_unix(run.end()).date;
            println!(
                "\nlongest uninterrupted congested stretch: {from} .. {to} ({} days; episode planted 2019-07-05 .. 2019-08-09)",
                run.duration_secs() / 86_400
            );
        }
        None => println!("\nno reported window (unexpected for this scenario)"),
    }
}
