//! Appendix B (Figure 8): probes vs anchor in the same legacy-network AS.
//!
//! Atlas anchors live in datacenters, so they share the AS but not the
//! last mile. ISP_D's probes show tens of milliseconds of evening queuing
//! delay; its anchor stays flat — pinning the congestion to the access
//! segment.
//!
//! Run with: `cargo run --release --example anchor_vs_probe`

use lastmile_repro::core::pipeline::PipelineConfig;
use lastmile_repro::netsim::scenarios::anchor::{anchor_world, fig8_periods, ISP_D_ASN};
use lastmile_repro::runner::{analyze_population, ProbeSelection};

fn main() {
    let world = anchor_world(8);
    println!("ISP_D: probes vs anchor, four measurement periods\n");
    println!(
        "{:<10} {:>7} {:>16} {:>16} {:>10}",
        "period", "probes", "probes max (ms)", "anchor max (ms)", "class"
    );

    for period in fig8_periods() {
        let probes = analyze_population(
            &world,
            ISP_D_ASN,
            &period,
            PipelineConfig::paper(),
            &ProbeSelection::regular(),
        );
        let mut anchor_cfg = PipelineConfig::paper();
        anchor_cfg.min_probes = 1;
        anchor_cfg.min_probes_per_bin = 1;
        let anchor = analyze_population(
            &world,
            ISP_D_ASN,
            &period,
            anchor_cfg,
            &ProbeSelection::anchors(),
        );
        println!(
            "{:<10} {:>7} {:>16.2} {:>16.2} {:>10}",
            period.label(),
            probes.probes_used(),
            probes.aggregated.max().unwrap_or(0.0),
            anchor.aggregated.max().unwrap_or(0.0),
            probes.class(),
        );
    }

    println!("\npaper's shape: probes' delay rises to tens of ms at peak hours in every");
    println!("period (worst under the April 2020 lockdown); the anchor never moves.");
}
