//! End-to-end pipeline checks on small worlds: traceroute generation →
//! estimation → binning → aggregation → detection, with known ground
//! truth.

use lastmile_repro::core::detect::CongestionClass;
use lastmile_repro::core::pipeline::PipelineConfig;
use lastmile_repro::netsim::scenarios::anchor::{anchor_world, ISP_D_ASN};
use lastmile_repro::netsim::world::ProbeSpec;
use lastmile_repro::netsim::{IspConfig, World};
use lastmile_repro::runner::{analyze_population, ProbeSelection};
use lastmile_repro::timebase::{MeasurementPeriod, TzOffset};

fn two_isp_world(seed: u64, congested_peak_ms: f64) -> World {
    let mut b = World::builder(seed);
    b.add_isp(IspConfig::legacy_pppoe(
        65001,
        "HOT",
        "JP",
        TzOffset::JST,
        congested_peak_ms,
    ));
    b.add_isp(IspConfig::clean(65002, "COLD", "DE", TzOffset::CET));
    b.add_probes(65001, 6, &ProbeSpec::simple());
    b.add_probes(65002, 6, &ProbeSpec::simple());
    b.build()
}

#[test]
fn congested_as_is_detected_and_clean_as_is_not() {
    let w = two_isp_world(42, 8.0);
    let period = MeasurementPeriod::september_2019();
    let hot = analyze_population(
        &w,
        65001,
        &period,
        PipelineConfig::paper(),
        &ProbeSelection::regular(),
    );
    let cold = analyze_population(
        &w,
        65002,
        &period,
        PipelineConfig::paper(),
        &ProbeSelection::regular(),
    );

    let hot_detection = hot.detection.as_ref().expect("hot AS must be analysable");
    assert!(
        hot_detection.prominent_is_daily,
        "congestion must appear as a daily pattern"
    );
    assert_eq!(
        hot.class(),
        CongestionClass::Severe,
        "amp {}",
        hot_detection.daily_amplitude_ms
    );

    assert_eq!(cold.class(), CongestionClass::None);
    // The clean AS's daily amplitude is far below the reporting threshold.
    if let Some(d) = &cold.detection {
        assert!(
            d.daily_amplitude_ms < 0.3,
            "clean AS amplitude {}",
            d.daily_amplitude_ms
        );
    }
}

#[test]
fn aggregated_delay_peaks_in_local_evening() {
    let w = two_isp_world(7, 6.0);
    let period = MeasurementPeriod::september_2019();
    let hot = analyze_population(
        &w,
        65001,
        &period,
        PipelineConfig::paper(),
        &ProbeSelection::regular(),
    );
    // Compare the weekly fold at JST evening (21:00 = hour 12 UTC) vs
    // early morning (04:00 JST = 19:00 UTC).
    let folded = hot.aggregated.fold_weekly();
    assert!(!folded.is_empty());
    let mean_at_utc_hour = |h: f64| {
        let vals: Vec<f64> = folded
            .iter()
            .filter(|(hours, _)| (hours % 24.0 - h).abs() < 0.26)
            .map(|&(_, v)| v)
            .collect();
        vals.iter().sum::<f64>() / vals.len() as f64
    };
    let evening = mean_at_utc_hour(12.0);
    let night = mean_at_utc_hour(19.0);
    assert!(
        evening > night + 1.0,
        "evening {evening:.2} vs night {night:.2}"
    );
}

#[test]
fn anchors_stay_flat_while_probes_congest() {
    // Appendix B (Figure 8): same AS, probes vs anchor.
    let w = anchor_world(3);
    let period = MeasurementPeriod::september_2019();

    let probes = analyze_population(
        &w,
        ISP_D_ASN,
        &period,
        PipelineConfig::paper(),
        &ProbeSelection::regular(),
    );
    assert_eq!(probes.class(), CongestionClass::Severe);
    assert!(
        probes.aggregated.max().unwrap() > 10.0,
        "ISP_D probes peak in the tens of ms"
    );

    // The single anchor: not enough probes for detection by design, but
    // its aggregated signal must be essentially flat near zero.
    let mut cfg = PipelineConfig::paper();
    cfg.min_probes = 1;
    cfg.min_probes_per_bin = 1;
    let anchor = analyze_population(&w, ISP_D_ASN, &period, cfg, &ProbeSelection::anchors());
    assert_eq!(anchor.probes_used(), 1);
    let max = anchor.aggregated.max().expect("anchor has data");
    assert!(
        max < 1.0,
        "anchor max queuing delay {max:.3} ms must stay flat"
    );
}

#[test]
fn area_selection_restricts_probes() {
    let mut b = World::builder(5);
    b.add_isp(IspConfig::clean(65001, "X", "JP", TzOffset::JST));
    b.add_probes(65001, 4, &ProbeSpec::simple().in_area("Tokyo"));
    b.add_probes(65001, 3, &ProbeSpec::simple().in_area("Osaka"));
    let w = b.build();
    let period = MeasurementPeriod::september_2019();
    let tokyo = analyze_population(
        &w,
        65001,
        &period,
        PipelineConfig::paper(),
        &ProbeSelection::in_area("Tokyo"),
    );
    assert_eq!(tokyo.probes_used(), 4);
    let all = analyze_population(
        &w,
        65001,
        &period,
        PipelineConfig::paper(),
        &ProbeSelection::regular(),
    );
    assert_eq!(all.probes_used(), 7);
}

#[test]
fn covid_amplification_changes_class() {
    // An AS that is Low in normal times and Mild+ under lockdown.
    let mut b = World::builder(11);
    b.add_isp(
        IspConfig::legacy_pppoe(65001, "COVID", "US", TzOffset::US_EASTERN, 1.8)
            .with_lockdown_factor(3.0),
    );
    b.add_probes(65001, 6, &ProbeSpec::simple());
    let w = b.lockdown(MeasurementPeriod::april_2020().range()).build();

    let normal = analyze_population(
        &w,
        65001,
        &MeasurementPeriod::september_2019(),
        PipelineConfig::paper(),
        &ProbeSelection::regular(),
    );
    let covid = analyze_population(
        &w,
        65001,
        &MeasurementPeriod::april_2020(),
        PipelineConfig::paper(),
        &ProbeSelection::regular(),
    );
    let normal_amp = normal.detection.as_ref().unwrap().daily_amplitude_ms;
    let covid_amp = covid.detection.as_ref().unwrap().daily_amplitude_ms;
    assert!(
        covid_amp > normal_amp * 2.0,
        "lockdown must amplify: {normal_amp:.2} -> {covid_amp:.2}"
    );
    assert!(
        covid.class() > normal.class(),
        "{:?} -> {:?}",
        normal.class(),
        covid.class()
    );
}
