//! The §3 survey at reduced scale: detection quality against planted
//! ground truth, the COVID-19 jump, and rank/geography rollups.
//!
//! (The paper-scale 646-AS × 7-period survey runs in the experiment
//! harness, `lastmile-experiments`; here a 60-AS world keeps the test
//! suite fast while exercising the identical code path.)

use lastmile_repro::core::detect::CongestionClass;
use lastmile_repro::netsim::scenarios::survey::{survey_world, SurveyConfig};
use lastmile_repro::netsim::scenarios::GroundTruthClass;
use lastmile_repro::runner::{
    class_within_one, eyeballs_from_ground_truth, run_survey, SurveyOptions,
};
use lastmile_repro::timebase::MeasurementPeriod;

fn planted_to_class(g: GroundTruthClass) -> CongestionClass {
    match g {
        GroundTruthClass::NoDaily | GroundTruthClass::WeakDaily => CongestionClass::None,
        GroundTruthClass::Low => CongestionClass::Low,
        GroundTruthClass::Mild => CongestionClass::Mild,
        GroundTruthClass::Severe => CongestionClass::Severe,
    }
}

#[test]
fn survey_recovers_ground_truth_and_covid_jump() {
    let scenario = survey_world(&SurveyConfig::test_scale(2020, 60));
    let eyeballs = eyeballs_from_ground_truth(&scenario.ground_truth);
    let periods = [
        MeasurementPeriod::september_2019(),
        MeasurementPeriod::april_2020(),
    ];
    let report = run_survey(
        &scenario.world,
        &periods,
        &eyeballs,
        &SurveyOptions::default(),
    );

    let sep = MeasurementPeriod::september_2019().id();
    let apr = MeasurementPeriod::april_2020().id();
    assert_eq!(report.monitored(sep), 60);
    assert_eq!(report.monitored(apr), 60);

    // --- Detection quality: within one class of the planted truth for
    // the overwhelming majority, and exact for most.
    let mut within_one = 0usize;
    let mut exact = 0usize;
    for row in report.period_rows(sep) {
        let truth = scenario.truth_for(row.asn).expect("truth exists");
        let planted = planted_to_class(truth.class);
        if row.class == planted {
            exact += 1;
        }
        if class_within_one(row.class, planted) {
            within_one += 1;
        }
    }
    assert!(within_one >= 57, "within-one {within_one}/60");
    assert!(exact >= 48, "exact {exact}/60");

    // --- Reported counts grow under lockdown (the paper: +55%).
    let normal = report.reported_count(sep);
    let covid = report.reported_count(apr);
    assert!(normal >= 5, "normal reported {normal}");
    assert!(
        covid as f64 >= normal as f64 * 1.25,
        "lockdown must lift reported ASes: {normal} -> {covid}"
    );

    // --- ~90% of ASes are None in normal times.
    let none_fraction = 1.0 - normal as f64 / 60.0;
    assert!(none_fraction > 0.75, "None fraction {none_fraction:.2}");

    // --- Severe ASes detected in normal times sit in large eyeballs.
    // (Planted Severe is top-1000; borderline Mild ASes drifting into
    // Severe extend the range to the planted Mild ceiling of 2500.)
    let severe_ranks: Vec<u32> = report
        .period_rows(sep)
        .filter(|r| r.class == CongestionClass::Severe)
        .map(|r| r.rank.unwrap())
        .collect();
    assert!(!severe_ranks.is_empty());
    assert!(severe_ranks.iter().all(|&r| r <= 2500), "{severe_ranks:?}");
    assert!(severe_ranks.iter().any(|&r| r <= 1000), "{severe_ranks:?}");

    // --- The daily component dominates reported ASes.
    for row in report.period_rows(sep) {
        if row.class.is_reported() {
            assert!(
                row.prominent_is_daily,
                "reported AS{} must be daily",
                row.asn
            );
        }
    }
}

#[test]
fn survey_is_deterministic_across_thread_counts() {
    let scenario = survey_world(&SurveyConfig::test_scale(7, 24));
    let eyeballs = eyeballs_from_ground_truth(&scenario.ground_truth);
    let periods = [MeasurementPeriod::september_2019()];
    let one = run_survey(
        &scenario.world,
        &periods,
        &eyeballs,
        &SurveyOptions {
            threads: 1,
            ..Default::default()
        },
    );
    let many = run_survey(
        &scenario.world,
        &periods,
        &eyeballs,
        &SurveyOptions {
            threads: 6,
            ..Default::default()
        },
    );
    assert_eq!(one.rows().len(), many.rows().len());
    for (a, b) in one.rows().iter().zip(many.rows()) {
        assert_eq!(a.asn, b.asn);
        assert_eq!(a.class, b.class);
        assert_eq!(a.daily_amplitude_ms, b.daily_amplitude_ms);
    }
}

#[test]
fn amplitude_cdf_reflects_planted_mix() {
    let scenario = survey_world(&SurveyConfig::test_scale(99, 60));
    let eyeballs = eyeballs_from_ground_truth(&scenario.ground_truth);
    let periods = [MeasurementPeriod::september_2019()];
    let report = run_survey(
        &scenario.world,
        &periods,
        &eyeballs,
        &SurveyOptions::default(),
    );
    let cdf = report.daily_amplitude_cdf(MeasurementPeriod::september_2019().id());
    assert!(cdf.len() >= 20, "daily ASes in CDF: {}", cdf.len());
    // Most daily ASes are below the 0.5 ms reporting threshold (the paper:
    // ~83%), and a tail above 3 ms exists.
    let below = cdf.fraction_at_or_below(0.5);
    assert!(
        (0.6..0.97).contains(&below),
        "below-threshold fraction {below:.2}"
    );
    assert!(
        cdf.values().last().copied().unwrap() > 2.0,
        "a severe tail must exist"
    );
}
