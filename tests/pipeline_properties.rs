//! Property-based tests over the end-to-end pipeline: invariants that
//! must hold for *any* input the simulator (or the real Atlas platform)
//! could produce.

use lastmile_repro::atlas::{Hop, ProbeId, Reply, TracerouteResult};
use lastmile_repro::core::aggregate::aggregate_median;
use lastmile_repro::core::estimator::last_mile_samples;
use lastmile_repro::core::pipeline::{AsPipeline, PipelineConfig};
use lastmile_repro::core::series::ProbeSeriesBuilder;
use lastmile_repro::timebase::{BinSpec, TimeRange, UnixTime};
use proptest::prelude::*;
use std::net::IpAddr;

fn ip(s: &str) -> IpAddr {
    s.parse().unwrap()
}

/// Strategy: a plausible traceroute with 1..4 private hops then 0..3
/// public hops, arbitrary RTTs, occasional timeouts.
fn arb_traceroute(probe: u32) -> impl Strategy<Value = TracerouteResult> {
    let reply = prop_oneof![
        4 => (0.01f64..200.0).prop_map(Some),
        1 => Just(None),
    ];
    let private_hop = prop::collection::vec(reply.clone(), 1..=3).prop_map(|rtts| Hop {
        hop: 0,
        replies: rtts
            .into_iter()
            .map(|r| match r {
                Some(rtt) => Reply::answered(ip("192.168.1.1"), rtt),
                None => Reply::timeout(),
            })
            .collect(),
    });
    let public_hop = prop::collection::vec(reply, 1..=3).prop_map(|rtts| Hop {
        hop: 0,
        replies: rtts
            .into_iter()
            .map(|r| match r {
                Some(rtt) => Reply::answered(ip("20.0.0.1"), rtt),
                None => Reply::timeout(),
            })
            .collect(),
    });
    (
        prop::collection::vec(private_hop, 1..4),
        prop::collection::vec(public_hop, 0..3),
        0i64..86_400,
    )
        .prop_map(move |(private, public, t)| {
            let mut hops: Vec<Hop> = private.into_iter().chain(public).collect();
            for (i, h) in hops.iter_mut().enumerate() {
                h.hop = (i + 1) as u8;
            }
            TracerouteResult {
                probe: ProbeId(probe),
                msm_id: 5001,
                timestamp: UnixTime::from_secs(t),
                dst: ip("20.9.9.9"),
                src: ip("192.168.1.10"),
                hops,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The estimator yields at most 9 samples, and each sample is the
    /// difference of an answered public and an answered private RTT.
    #[test]
    fn estimator_sample_bounds(tr in arb_traceroute(1)) {
        let samples = last_mile_samples(&tr);
        prop_assert!(samples.len() <= 9);
        if let (Some(private), Some(public)) = (tr.last_private_hop(), tr.first_public_hop()) {
            let np = private.rtts().count();
            let nq = public.rtts().count();
            prop_assert_eq!(samples.len(), np * nq);
            let lo = public.rtts().fold(f64::INFINITY, f64::min)
                - private.rtts().fold(f64::NEG_INFINITY, f64::max);
            let hi = public.rtts().fold(f64::NEG_INFINITY, f64::max)
                - private.rtts().fold(f64::INFINITY, f64::min);
            for &s in &samples {
                prop_assert!(s >= lo - 1e-9 && s <= hi + 1e-9);
            }
        } else {
            prop_assert!(samples.is_empty());
        }
    }

    /// Queuing delay is non-negative and its minimum is exactly zero
    /// whenever the series is non-empty.
    #[test]
    fn queuing_delay_minimum_is_zero(trs in prop::collection::vec(arb_traceroute(7), 1..120)) {
        let mut b = ProbeSeriesBuilder::new(ProbeId(7), BinSpec::thirty_minutes(), 1);
        for tr in &trs {
            b.ingest(tr);
        }
        let q = b.finish().queuing_delay();
        if !q.is_empty() {
            let mut min = f64::INFINITY;
            for (_, v) in q.iter() {
                prop_assert!(v >= -1e-12, "negative queuing delay {}", v);
                min = min.min(v);
            }
            prop_assert!(min.abs() < 1e-12, "minimum must be zero, got {}", min);
        }
    }

    /// The aggregated median lies within the envelope of the per-probe
    /// values for every bin.
    #[test]
    fn aggregate_is_bounded_by_inputs(
        all_trs in prop::collection::vec(
            (1u32..5, prop::collection::vec(arb_traceroute(0), 1..40)),
            1..4
        )
    ) {
        let bin = BinSpec::thirty_minutes();
        let series: Vec<_> = all_trs
            .iter()
            .map(|(probe, trs)| {
                let mut b = ProbeSeriesBuilder::new(ProbeId(*probe), bin, 1);
                for tr in trs {
                    let mut tr = tr.clone();
                    tr.probe = ProbeId(*probe);
                    b.ingest(&tr);
                }
                b.finish().queuing_delay()
            })
            .collect();
        let range = TimeRange::new(UnixTime::from_secs(0), UnixTime::from_secs(86_400));
        let agg = aggregate_median(&series, &range, bin, 1);
        for (start, v) in agg.iter() {
            let Some(v) = v else { continue };
            let idx = bin.bin_index(start);
            let inputs: Vec<f64> = series.iter().filter_map(|s| s.get(idx)).collect();
            prop_assert!(!inputs.is_empty());
            let lo = inputs.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = inputs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12, "{} not in [{}, {}]", v, lo, hi);
        }
    }

    /// The pipeline never panics on arbitrary traceroute soup, and its
    /// outputs are structurally sane.
    #[test]
    fn pipeline_total_function(
        trs in prop::collection::vec((1u32..6, arb_traceroute(0)), 0..150)
    ) {
        let period = TimeRange::new(UnixTime::from_secs(0), UnixTime::from_secs(86_400));
        let mut p = AsPipeline::new(PipelineConfig::paper(), period);
        for (probe, tr) in &trs {
            let mut tr = tr.clone();
            tr.probe = ProbeId(*probe);
            p.ingest(&tr);
        }
        let analysis = p.finish();
        prop_assert!(analysis.probes_used() <= 5);
        prop_assert!(analysis.aggregated.coverage() >= 0.0);
        prop_assert!(analysis.aggregated.coverage() <= 1.0);
        for (_, v) in analysis.aggregated.iter() {
            if let Some(v) = v {
                prop_assert!(v.is_finite());
            }
        }
    }
}
