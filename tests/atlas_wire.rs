//! Wire-format compatibility: simulated traceroutes survive a round trip
//! through the RIPE Atlas JSON format without changing any analysis
//! result — so the pipeline can be pointed at real Atlas dumps.

use lastmile_repro::atlas::json::{parse_traceroutes, to_atlas_json};
use lastmile_repro::core::pipeline::{AsPipeline, PipelineConfig};
use lastmile_repro::netsim::world::ProbeSpec;
use lastmile_repro::netsim::{IspConfig, TracerouteEngine, World};
use lastmile_repro::timebase::{MeasurementPeriod, TimeRange, TzOffset};

#[test]
fn analysis_is_invariant_under_json_round_trip() {
    let mut b = World::builder(77);
    b.add_isp(IspConfig::legacy_pppoe(
        65001,
        "WIRE",
        "JP",
        TzOffset::JST,
        5.0,
    ));
    b.add_probes(65001, 4, &ProbeSpec::simple());
    let w = b.build();
    let engine = TracerouteEngine::new(&w);
    let period = MeasurementPeriod::september_2019();
    // Use the first 5 days to keep the JSON corpus small.
    let window = TimeRange::new(period.start(), period.start() + 5 * 86_400);

    let mut direct = AsPipeline::new(PipelineConfig::paper(), window);
    let mut json_lines = Vec::new();
    for probe in w.probes() {
        engine.for_each_traceroute(probe, &window, |tr| {
            json_lines.push(to_atlas_json(&tr, probe.meta.public_addr));
            direct.ingest(&tr);
        });
    }
    assert!(
        json_lines.len() > 10_000,
        "corpus size {}",
        json_lines.len()
    );

    // Re-parse the whole corpus as one Atlas API array.
    let corpus = format!("[{}]", json_lines.join(","));
    let parsed = parse_traceroutes(&corpus).expect("corpus must parse");
    assert_eq!(parsed.len(), json_lines.len());

    let mut from_json = AsPipeline::new(PipelineConfig::paper(), window);
    for tr in &parsed {
        from_json.ingest(tr);
    }

    let a = direct.finish();
    let b = from_json.finish();
    assert_eq!(a.probes_used(), b.probes_used());
    let av: Vec<_> = a.aggregated.iter().collect();
    let bv: Vec<_> = b.aggregated.iter().collect();
    assert_eq!(av, bv, "aggregated signals must match bit for bit");
    match (&a.detection, &b.detection) {
        (Some(da), Some(db)) => {
            assert_eq!(da.class, db.class);
            assert_eq!(da.daily_amplitude_ms, db.daily_amplitude_ms);
        }
        (None, None) => {}
        _ => panic!("detection presence differs"),
    }
}

#[test]
fn probe_address_resolves_to_asn_via_registry() {
    // §2.1: when the first public hop is not announced, the probe's own
    // public address resolves the last-mile ASN by longest prefix match.
    let mut b = World::builder(3);
    b.add_isp(IspConfig::clean(65001, "A", "DE", TzOffset::CET));
    b.add_isp(IspConfig::clean(65002, "B", "FR", TzOffset::CET));
    b.add_probes(65001, 3, &ProbeSpec::simple());
    b.add_probes(65002, 3, &ProbeSpec::simple());
    let w = b.build();
    for p in w.probes() {
        assert_eq!(w.registry().asn_of(p.meta.public_addr), Some(p.meta.asn));
        // The edge address also belongs to the same AS (infrastructure).
        assert_eq!(w.registry().asn_of(p.edge), Some(p.meta.asn));
    }
}
