//! Failure injection: the pipeline must degrade gracefully — never panic,
//! never fabricate detections — under the pathologies real measurement
//! data exhibits.

use lastmile_repro::atlas::{Hop, ProbeId, Reply, TracerouteResult};
use lastmile_repro::cdnlog::{binned_median_throughput, AccessLogRecord, CacheStatus};
use lastmile_repro::core::detect::CongestionClass;
use lastmile_repro::core::pipeline::{AsPipeline, PipelineConfig};
use lastmile_repro::timebase::{BinSpec, TimeRange, UnixTime};
use std::net::IpAddr;

fn ip(s: &str) -> IpAddr {
    s.parse().unwrap()
}

fn period() -> TimeRange {
    TimeRange::new(UnixTime::from_secs(0), UnixTime::from_secs(15 * 86_400))
}

fn good_tr(probe: u32, t: i64, last_mile_ms: f64) -> TracerouteResult {
    TracerouteResult {
        probe: ProbeId(probe),
        msm_id: 5001,
        timestamp: UnixTime::from_secs(t),
        dst: ip("20.9.9.9"),
        src: ip("192.168.1.10"),
        hops: vec![
            Hop {
                hop: 1,
                replies: vec![Reply::answered(ip("192.168.1.1"), 1.0); 3],
            },
            Hop {
                hop: 2,
                replies: vec![Reply::answered(ip("20.0.0.1"), 1.0 + last_mile_ms); 3],
            },
        ],
    }
}

#[test]
fn pathological_traceroutes_do_not_panic_or_pollute() {
    let mut p = AsPipeline::new(PipelineConfig::paper(), period());

    // A healthy baseline population.
    for probe in 1..=3 {
        for bin in 0..(15 * 48) {
            for i in 0..3 {
                p.ingest(&good_tr(probe, bin * 1800 + i * 400, 5.0));
            }
        }
    }

    // Pathology 1: empty traceroute (no hops at all).
    p.ingest(&TracerouteResult {
        hops: vec![],
        ..good_tr(1, 100, 0.0)
    });

    // Pathology 2: every hop timed out.
    p.ingest(&TracerouteResult {
        hops: vec![
            Hop {
                hop: 1,
                replies: vec![Reply::timeout(); 3],
            },
            Hop {
                hop: 2,
                replies: vec![Reply::timeout(); 3],
            },
        ],
        ..good_tr(1, 200, 0.0)
    });

    // Pathology 3: private-only path (no public hop ever).
    p.ingest(&TracerouteResult {
        hops: vec![
            Hop {
                hop: 1,
                replies: vec![Reply::answered(ip("192.168.1.1"), 0.5); 3],
            },
            Hop {
                hop: 2,
                replies: vec![Reply::answered(ip("10.0.0.1"), 1.0); 3],
            },
        ],
        ..good_tr(2, 300, 0.0)
    });

    // Pathology 4: public from the first hop (no last-mile span).
    p.ingest(&TracerouteResult {
        hops: vec![Hop {
            hop: 1,
            replies: vec![Reply::answered(ip("20.0.0.1"), 0.5); 3],
        }],
        ..good_tr(3, 400, 0.0)
    });

    // Pathology 5: wild RTT outliers in an otherwise sane traceroute.
    p.ingest(&TracerouteResult {
        hops: vec![
            Hop {
                hop: 1,
                replies: vec![Reply::answered(ip("192.168.1.1"), 1.0); 3],
            },
            Hop {
                hop: 2,
                replies: vec![Reply::answered(ip("20.0.0.1"), 90_000.0); 3],
            },
        ],
        ..good_tr(1, 500, 0.0)
    });

    let analysis = p.finish();
    // The flat population classifies None; the garbage changed nothing.
    assert_eq!(analysis.class(), CongestionClass::None);
    assert_eq!(analysis.probes_used(), 3);
    // The outlier traceroute was absorbed by the per-bin median.
    let max = analysis.aggregated.max().unwrap();
    assert!(max < 1.0, "outlier leaked into the aggregate: {max} ms");
}

#[test]
fn probe_that_vanishes_mid_period_is_handled() {
    let mut p = AsPipeline::new(PipelineConfig::paper(), period());
    // Three full-period probes plus one that dies after 3 days.
    for probe in 1..=3 {
        for bin in 0..(15 * 48) {
            for i in 0..3 {
                p.ingest(&good_tr(probe, bin * 1800 + i * 400, 5.0));
            }
        }
    }
    for bin in 0..(3 * 48) {
        for i in 0..3 {
            p.ingest(&good_tr(99, bin * 1800 + i * 400, 5.0));
        }
    }
    let analysis = p.finish();
    assert_eq!(analysis.probes_used(), 4);
    // Detection still runs on the surviving coverage.
    assert!(analysis.detection.is_some());
    assert_eq!(analysis.class(), CongestionClass::None);
}

#[test]
fn population_of_only_unusable_probes_yields_no_detection() {
    let mut p = AsPipeline::new(PipelineConfig::paper(), period());
    // Anchor-like paths only: public first hop, never a last-mile span.
    for probe in 1..=4 {
        for bin in 0..(15 * 48) {
            for i in 0..3 {
                p.ingest(&TracerouteResult {
                    hops: vec![Hop {
                        hop: 1,
                        replies: vec![Reply::answered(ip("20.0.0.1"), 0.5); 3],
                    }],
                    ..good_tr(probe, bin * 1800 + i * 400, 0.0)
                });
            }
        }
    }
    let analysis = p.finish();
    assert_eq!(analysis.probes_used(), 0, "no probe produced samples");
    assert!(analysis.detection.is_none());
    assert_eq!(analysis.class(), CongestionClass::None);
}

#[test]
fn sparse_population_keeps_aggregate_empty() {
    // Every probe reports only one bin in the whole period: coverage is
    // far below the spectral minimum; detection must refuse.
    let mut p = AsPipeline::new(PipelineConfig::paper(), period());
    for probe in 1..=5 {
        for i in 0..3 {
            p.ingest(&good_tr(probe, i * 400, 5.0));
        }
    }
    let analysis = p.finish();
    assert_eq!(analysis.probes_used(), 5);
    assert!(analysis.aggregated.coverage() < 0.01);
    assert!(analysis.detection.is_none());
}

#[test]
fn cdn_records_with_zero_or_negative_duration_are_skipped() {
    let mk = |t: i64, dur: f64| AccessLogRecord {
        client: ip("20.0.0.1"),
        timestamp: UnixTime::from_secs(t),
        bytes: 5_000_000,
        duration_ms: dur,
        cache: CacheStatus::Hit,
    };
    let records = vec![mk(0, 0.0), mk(1, -5.0), mk(2, 1000.0)];
    let series = binned_median_throughput(&records, BinSpec::fifteen_minutes());
    assert_eq!(series.len(), 1);
    assert!(
        (series[0].1 - 40.0).abs() < 1e-9,
        "only the valid record counts"
    );
}

#[test]
fn malformed_atlas_json_is_rejected_not_panicked() {
    use lastmile_repro::atlas::json::parse_traceroute;
    for bad in [
        "",
        "{",
        "[]",
        r#"{"type":"traceroute"}"#,
        r#"{"fw":1,"af":4,"dst_addr":"x","src_addr":"y","from":"z","msm_id":1,"prb_id":1,"timestamp":0,"proto":"ICMP","type":"traceroute","result":[]}"#,
    ] {
        assert!(parse_traceroute(bad).is_err(), "{bad:?} must fail to parse");
    }
}
