//! Survey executor invariants.
//!
//! The §3 driver schedules (AS, period) tasks onto worker threads from a
//! shared queue. Two properties must hold regardless of scheduling:
//!
//! * **Determinism** — the report is identical for every thread count
//!   (the simulation is seed-addressed and rows are sorted by
//!   `(asn, period)`), and identical to the static-chunk reference
//!   scheduler.
//! * **Failure isolation** — a panic while analysing one population is
//!   confined to that task: it becomes a [`SurveyFailure`] row instead
//!   of aborting the survey.

use lastmile_repro::core::report::SurveyReport;
use lastmile_repro::netsim::scenarios::survey::{survey_world, SurveyConfig, SurveyScenario};
use lastmile_repro::obs::RunMetrics;
use lastmile_repro::runner::{
    eyeballs_from_ground_truth, run_survey, run_survey_static_chunks, SurveyOptions,
};
use lastmile_repro::timebase::MeasurementPeriod;
use std::sync::Arc;

fn small_survey() -> SurveyScenario {
    survey_world(&SurveyConfig {
        seed: 7,
        n_ases: 60,
        max_probes_per_as: 5,
    })
}

fn periods() -> Vec<MeasurementPeriod> {
    MeasurementPeriod::survey_periods()
        .into_iter()
        .take(2)
        .collect()
}

/// Byte-level fingerprint of a report: `Debug` of every row is
/// shortest-roundtrip for floats, so equal strings mean bit-identical
/// values.
fn fingerprint(report: &SurveyReport) -> String {
    format!("{:?} | failures: {:?}", report.rows(), report.failures())
}

#[test]
fn report_is_identical_across_thread_counts() {
    let scenario = small_survey();
    let eyeballs = eyeballs_from_ground_truth(&scenario.ground_truth);
    let periods = periods();

    let run = |threads: usize| {
        let metrics = Arc::new(RunMetrics::new());
        let report = run_survey(
            &scenario.world,
            &periods,
            &eyeballs,
            &SurveyOptions {
                threads,
                metrics: Some(Arc::clone(&metrics)),
                ..Default::default()
            },
        );
        (fingerprint(&report), metrics.snapshot())
    };

    let (one, m1) = run(1);
    let (two, m2) = run(2);
    let (auto, _) = run(0);
    assert_eq!(one, two, "1 vs 2 threads");
    assert_eq!(one, auto, "1 vs auto threads");

    // Counters are scheduling-independent too (timings are not).
    assert_eq!(m1.traceroutes_ingested, m2.traceroutes_ingested);
    assert_eq!(m1.populations_analyzed, 60 * 2);
    assert_eq!(m1.populations_analyzed, m2.populations_analyzed);
    assert_eq!(m1.welch_segments, m2.welch_segments);
    assert!(m1.traceroutes_ingested > 0, "survey ingested nothing");
    assert_eq!(m1.tasks_failed, 0);
    assert!(m1.stage_nanos.wall > 0);

    // The work-stealing schedule changes nothing vs static chunks.
    let reference = run_survey_static_chunks(
        &scenario.world,
        &periods,
        &eyeballs,
        &SurveyOptions {
            threads: 2,
            ..Default::default()
        },
    );
    assert_eq!(one, fingerprint(&reference), "stealing vs static chunks");
}

#[test]
fn poisoned_population_fails_alone() {
    let scenario = small_survey();
    let eyeballs = eyeballs_from_ground_truth(&scenario.ground_truth);
    let periods = periods();
    let poisoned = scenario.ground_truth[1].asn;

    let metrics = Arc::new(RunMetrics::new());
    let report = run_survey(
        &scenario.world,
        &periods,
        &eyeballs,
        &SurveyOptions {
            threads: 2,
            metrics: Some(Arc::clone(&metrics)),
            inject_panic_asn: Some(poisoned),
            ..Default::default()
        },
    );

    // One failure per period for the poisoned AS, with the panic message.
    assert_eq!(report.failures().len(), periods.len());
    for f in report.failures() {
        assert_eq!(f.asn, poisoned);
        assert!(f.reason.contains("injected survey panic"), "{}", f.reason);
    }
    // Every other (AS, period) task still classified.
    assert_eq!(report.rows().len(), (60 - 1) * periods.len());
    assert!(report.rows().iter().all(|r| r.asn != poisoned));
    assert_eq!(metrics.snapshot().tasks_failed, periods.len() as u64);

    // And the same run without poison matches everywhere else.
    let clean = run_survey(
        &scenario.world,
        &periods,
        &eyeballs,
        &SurveyOptions {
            threads: 2,
            ..Default::default()
        },
    );
    assert!(clean.failures().is_empty());
    let clean_minus: Vec<String> = clean
        .rows()
        .iter()
        .filter(|r| r.asn != poisoned)
        .map(|r| format!("{r:?}"))
        .collect();
    let poisoned_rows: Vec<String> = report.rows().iter().map(|r| format!("{r:?}")).collect();
    assert_eq!(clean_minus, poisoned_rows);
}
