//! Store-backed survey acceptance.
//!
//! The contract of `lastmile-store` inside the §3 survey driver:
//!
//! * **Byte identity** — the `SurveyReport` is identical whether the
//!   store is absent, cold, warm, or loaded from an on-disk snapshot, at
//!   every thread count. The store holds full-bin medians only and the
//!   period-scoped queuing-delay baseline is recomputed per slice, so
//!   caching cannot change a single value.
//! * **Zero re-ingest when warm** — a warm run over stored probes
//!   consumes no traceroutes at all (`RunMetrics.traceroutes_ingested ==
//!   0`, `store.hits > 0`, `store.misses == 0`).
//! * **Graceful snapshot failure** — a snapshot from another data source
//!   is refused with a typed error and the run recomputes, still
//!   producing the identical report.

use lastmile_repro::core::report::SurveyReport;
use lastmile_repro::netsim::scenarios::survey::{survey_world, SurveyConfig, SurveyScenario};
use lastmile_repro::obs::{RunMetrics, RunMetricsSnapshot};
use lastmile_repro::runner::{eyeballs_from_ground_truth, run_survey, SurveyOptions};
use lastmile_repro::store::{SeriesStore, SnapshotError, StoreConfig};
use lastmile_repro::timebase::MeasurementPeriod;
use std::path::PathBuf;
use std::sync::Arc;

const WORLD_SEED: u64 = 11;

fn small_survey() -> SurveyScenario {
    survey_world(&SurveyConfig {
        seed: WORLD_SEED,
        n_ases: 20,
        max_probes_per_as: 3,
    })
}

/// `Debug` of every row is shortest-roundtrip for floats, so equal
/// strings mean bit-identical reports.
fn fingerprint(report: &SurveyReport) -> String {
    format!("{:?} | failures: {:?}", report.rows(), report.failures())
}

fn run_with(
    scenario: &SurveyScenario,
    threads: usize,
    store: Option<Arc<SeriesStore>>,
) -> (String, RunMetricsSnapshot) {
    let eyeballs = eyeballs_from_ground_truth(&scenario.ground_truth);
    let metrics = Arc::new(RunMetrics::new());
    let report = run_survey(
        &scenario.world,
        &MeasurementPeriod::survey_periods(),
        &eyeballs,
        &SurveyOptions {
            threads,
            metrics: Some(Arc::clone(&metrics)),
            store,
            ..Default::default()
        },
    );
    (fingerprint(&report), metrics.snapshot())
}

fn snapshot_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("lastmile-store-survey-test");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}-{}.lmss", std::process::id()))
}

#[test]
fn warm_survey_skips_all_ingest_and_reports_identically() {
    let scenario = small_survey();

    // Reference: no store at all.
    let (plain, plain_m) = run_with(&scenario, 2, None);
    assert!(plain_m.traceroutes_ingested > 0);
    assert_eq!(plain_m.store.hits + plain_m.store.misses, 0, "no store");

    // Cold store: every (probe, period) series misses once, then fills.
    let store = Arc::new(SeriesStore::default());
    let (cold, cold_m) = run_with(&scenario, 2, Some(Arc::clone(&store)));
    assert_eq!(cold, plain, "cold store vs no store");
    assert_eq!(
        cold_m.traceroutes_ingested, plain_m.traceroutes_ingested,
        "a cold store cannot save ingest"
    );
    assert!(cold_m.store.misses > 0);
    assert_eq!(cold_m.store.hits, 0, "7 disjoint periods cannot hit cold");
    assert!(cold_m.store.inserts > 0);

    // Warm store, two thread counts: zero traceroutes touched.
    for threads in [1, 4] {
        let (warm, warm_m) = run_with(&scenario, threads, Some(Arc::clone(&store)));
        assert_eq!(warm, plain, "warm store vs no store ({threads} threads)");
        assert_eq!(
            warm_m.traceroutes_ingested, 0,
            "warm run must not re-ingest a single traceroute ({threads} threads)"
        );
        assert_eq!(warm_m.traceroutes_out_of_period, 0);
        assert_eq!(warm_m.store.misses, 0, "{threads} threads");
        assert!(warm_m.store.hits > 0, "{threads} threads");
        // Filter statistics survive the cache: discarded-bin counts are
        // replayed from the store, not recomputed.
        assert_eq!(warm_m.bins_discarded_sanity, plain_m.bins_discarded_sanity);
        assert_eq!(warm_m.populations_analyzed, plain_m.populations_analyzed);
        assert_eq!(warm_m.welch_segments, plain_m.welch_segments);
    }

    // Disk round trip: save, load into a fresh store, run again.
    let path = snapshot_path("roundtrip");
    store.save_snapshot(&path, WORLD_SEED).unwrap();
    let (loaded, _) =
        SeriesStore::load_snapshot(&path, WORLD_SEED, StoreConfig::default()).unwrap();
    assert_eq!(loaded.len(), store.len());
    for threads in [1, 4] {
        let (disk, disk_m) = run_with(&scenario, threads, Some(Arc::new(SeriesStore::default())));
        // A fresh empty store recomputes -- sanity-check the baseline...
        assert_eq!(disk, plain);
        assert!(disk_m.traceroutes_ingested > 0);
    }
    let loaded = Arc::new(loaded);
    for threads in [1, 4] {
        let (disk, disk_m) = run_with(&scenario, threads, Some(Arc::clone(&loaded)));
        assert_eq!(
            disk, plain,
            "snapshot-loaded vs no store ({threads} threads)"
        );
        assert_eq!(disk_m.traceroutes_ingested, 0, "{threads} threads");
        assert_eq!(disk_m.store.misses, 0, "{threads} threads");
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn foreign_snapshot_is_refused_and_survey_recomputes() {
    let scenario = small_survey();
    let (plain, _) = run_with(&scenario, 2, None);

    // Build and save a store under the true world seed.
    let store = Arc::new(SeriesStore::default());
    run_with(&scenario, 2, Some(Arc::clone(&store)));
    let path = snapshot_path("foreign");
    store.save_snapshot(&path, WORLD_SEED).unwrap();

    // A different source fingerprint must be refused, typed.
    let err = SeriesStore::load_snapshot(&path, WORLD_SEED + 1, StoreConfig::default())
        .expect_err("foreign snapshot accepted");
    assert!(
        matches!(err, SnapshotError::SourceMismatch { found, expected }
            if found == WORLD_SEED && expected == WORLD_SEED + 1),
        "{err}"
    );

    // The graceful loader degrades to an empty store; the survey then
    // recomputes and still produces the identical report.
    let (empty, bytes, load_err) =
        SeriesStore::load_snapshot_or_empty(&path, WORLD_SEED + 1, StoreConfig::default());
    assert!(empty.is_empty());
    assert_eq!(bytes, 0);
    assert!(matches!(
        load_err,
        Some(SnapshotError::SourceMismatch { .. })
    ));
    let (recomputed, m) = run_with(&scenario, 2, Some(Arc::new(empty)));
    assert_eq!(recomputed, plain);
    assert!(m.traceroutes_ingested > 0, "recomputation ingests");
    assert!(m.store.inserts > 0, "and refills the store");
    let _ = std::fs::remove_file(&path);
}
