//! Pins the simulator→detector amplitude calibration.
//!
//! Scenario ground truth is written in *detected* daily peak-to-peak
//! amplitude; the simulator dial is peak queuing delay. The conversion
//! constant `PEAK_DELAY_PER_AMPLITUDE` was measured by
//! `examples/calibrate.rs`; this test fails if a change to the demand
//! model, queue law, engine noise, or Welch normalization silently shifts
//! the calibration.

use lastmile_repro::core::pipeline::PipelineConfig;
use lastmile_repro::netsim::scenarios::PEAK_DELAY_PER_AMPLITUDE;
use lastmile_repro::netsim::world::ProbeSpec;
use lastmile_repro::netsim::{IspConfig, World};
use lastmile_repro::runner::{analyze_population, ProbeSelection};
use lastmile_repro::timebase::{MeasurementPeriod, TzOffset};

#[test]
fn amplitude_calibration_holds() {
    let period = MeasurementPeriod::september_2019();
    let peak = 4.0;
    let mut ratios = Vec::new();
    for seed in [1u64, 2] {
        let mut b = World::builder(seed);
        b.add_isp(IspConfig::legacy_pppoe(
            65001,
            "CAL",
            "JP",
            TzOffset::JST,
            peak,
        ));
        b.add_probes(65001, 8, &ProbeSpec::simple());
        let w = b.build();
        let analysis = analyze_population(
            &w,
            65001,
            &period,
            PipelineConfig::paper(),
            &ProbeSelection::regular(),
        );
        let d = analysis.detection.expect("detection must run");
        assert!(d.prominent_is_daily, "calibration signal must be daily");
        ratios.push(peak / d.daily_amplitude_ms);
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    assert!(
        (mean / PEAK_DELAY_PER_AMPLITUDE - 1.0).abs() < 0.15,
        "measured ratio {mean:.3} drifted from pinned constant {PEAK_DELAY_PER_AMPLITUDE}"
    );
}
