//! The §4 Tokyo case study, end to end: delays (Fig. 5), CDN throughput
//! (Fig. 6), delay–throughput correlation (Fig. 7), and the IPv4/IPv6
//! comparison (Fig. 9 / Appendix C).

use lastmile_repro::cdnlog::{
    binned_median_throughput, CdnGeneratorConfig, CdnLogGenerator, LogFilter,
};
use lastmile_repro::core::correlate::{
    delay_throughput_rho, join_by_time, max_throughput_above_delay,
};
use lastmile_repro::core::pipeline::{PipelineConfig, PopulationAnalysis};
use lastmile_repro::netsim::scenarios::tokyo::*;
use lastmile_repro::netsim::ServiceClass;
use lastmile_repro::runner::{analyze_population, ProbeSelection};
use lastmile_repro::stats::median;
use lastmile_repro::timebase::{BinSpec, MeasurementPeriod};

fn tokyo_analysis(asn: u32) -> PopulationAnalysis {
    let w = tokyo_world(20190919);
    analyze_population(
        &w,
        asn,
        &MeasurementPeriod::tokyo_cdn_2019(),
        PipelineConfig::paper(),
        &ProbeSelection::in_area("Tokyo"),
    )
}

#[test]
fn fig5_legacy_isps_show_peak_delay_isp_c_stays_stable() {
    let a = tokyo_analysis(ISP_A_ASN);
    let b = tokyo_analysis(ISP_B_ASN);
    let c = tokyo_analysis(ISP_C_ASN);
    assert_eq!(a.probes_used(), 8);
    assert_eq!(b.probes_used(), 5);
    assert_eq!(c.probes_used(), 8);

    let max_a = a.aggregated.max().unwrap();
    let max_b = b.aggregated.max().unwrap();
    let max_c = c.aggregated.max().unwrap();
    assert!(max_a > 2.0, "ISP_A peak {max_a:.2}");
    assert!(max_b > 1.5, "ISP_B peak {max_b:.2}");
    // "by an order of magnitude lower" for ISP_C.
    assert!(max_c < max_a / 5.0, "ISP_C {max_c:.2} vs ISP_A {max_a:.2}");
}

/// Shared setup for the throughput-side tests.
fn throughput_series(
    asn: u32,
    class: ServiceClass,
    filter: LogFilter,
) -> Vec<(lastmile_repro::timebase::UnixTime, f64)> {
    let w = tokyo_world(20190919);
    let gen = CdnLogGenerator::new(&w, CdnGeneratorConfig::test_scale(99));
    let period = MeasurementPeriod::tokyo_cdn_2019();
    let logs = gen.generate(asn, class, &period.range());
    let kept: Vec<_> = filter.apply(&logs, w.registry()).cloned().collect();
    binned_median_throughput(kept.iter(), BinSpec::fifteen_minutes())
}

fn jst_peak_vs_night(series: &[(lastmile_repro::timebase::UnixTime, f64)]) -> (f64, f64) {
    let med_at = |hour: u8| {
        let vals: Vec<f64> = series
            .iter()
            .filter(|(t, _)| t.hour_of_day() == hour)
            .map(|&(_, v)| v)
            .collect();
        median(&vals).expect("bins exist at this hour")
    };
    (med_at(12), med_at(19)) // 21:00 JST vs 04:00 JST
}

#[test]
fn fig6_broadband_halves_at_peak_mobile_stays_above_20() {
    // ISP_A broadband: throughput during peak hours is less than half.
    let a = throughput_series(
        ISP_A_ASN,
        ServiceClass::BroadbandV4,
        LogFilter::paper_broadband(),
    );
    let (peak, night) = jst_peak_vs_night(&a);
    assert!(
        peak < night / 2.0,
        "ISP_A broadband peak {peak:.1} vs night {night:.1}"
    );

    // Mobile (different AS for ISP_A) stays above 20 Mbps at all hours.
    let m = throughput_series(ISP_A_ASN, ServiceClass::Mobile, LogFilter::paper_mobile());
    let min_mobile = m.iter().map(|&(_, v)| v).fold(f64::INFINITY, f64::min);
    assert!(min_mobile > 20.0, "mobile minimum median {min_mobile:.1}");

    // ISP_C broadband: no significant daily drop.
    let c = throughput_series(
        ISP_C_ASN,
        ServiceClass::BroadbandV4,
        LogFilter::paper_broadband(),
    );
    let (peak_c, night_c) = jst_peak_vs_night(&c);
    assert!(
        peak_c > night_c * 0.75,
        "ISP_C peak {peak_c:.1} vs night {night_c:.1}"
    );
}

#[test]
fn fig7_spearman_contrast() {
    // Delay side.
    let delay_a = tokyo_analysis(ISP_A_ASN).aggregated;
    let delay_c = tokyo_analysis(ISP_C_ASN).aggregated;
    // Throughput side.
    let thr_a = throughput_series(
        ISP_A_ASN,
        ServiceClass::BroadbandV4,
        LogFilter::paper_broadband(),
    );
    let thr_c = throughput_series(
        ISP_C_ASN,
        ServiceClass::BroadbandV4,
        LogFilter::paper_broadband(),
    );

    let pairs_a = join_by_time(&delay_a, thr_a);
    let pairs_c = join_by_time(&delay_c, thr_c);
    assert!(pairs_a.len() > 300, "join produced {} pairs", pairs_a.len());

    let rho_a = delay_throughput_rho(&pairs_a).unwrap();
    let rho_c = delay_throughput_rho(&pairs_c).unwrap();
    // Paper: rho = -0.6 for ISP_A, 0.0 for ISP_C.
    assert!(rho_a < -0.4, "ISP_A rho {rho_a:.2}");
    assert!(rho_c.abs() < 0.25, "ISP_C rho {rho_c:.2}");

    // "we always observe low throughput when aggregated delay is above 1ms"
    let night_max = pairs_a
        .iter()
        .map(|&(_, t)| t)
        .fold(f64::NEG_INFINITY, f64::max);
    let above_1ms = max_throughput_above_delay(&pairs_a, 1.0).unwrap();
    assert!(
        above_1ms < night_max * 0.75,
        "throughput above 1ms delay ({above_1ms:.1}) vs best ({night_max:.1})"
    );
}

#[test]
fn fig9_ipv6_avoids_the_peak_hour_drop() {
    for asn in [ISP_A_ASN, ISP_B_ASN] {
        let v4 = throughput_series(
            asn,
            ServiceClass::BroadbandV4,
            LogFilter::paper_broadband().family(false),
        );
        let v6 = throughput_series(
            asn,
            ServiceClass::BroadbandV6,
            LogFilter {
                exclude_mobile: false,
                ..LogFilter::paper_broadband()
            }
            .family(true),
        );
        let (v4_peak, _) = jst_peak_vs_night(&v4);
        let (v6_peak, v6_night) = jst_peak_vs_night(&v6);
        assert!(
            v6_peak > v4_peak * 1.5,
            "AS{asn}: v6 peak {v6_peak:.1} vs v4 peak {v4_peak:.1}"
        );
        assert!(
            v6_peak > v6_night * 0.75,
            "AS{asn}: v6 itself must not degrade"
        );
    }
    // ISP_C: v4 and v6 comparable.
    let v4 = throughput_series(
        ISP_C_ASN,
        ServiceClass::BroadbandV4,
        LogFilter::paper_broadband().family(false),
    );
    let v6 = throughput_series(
        ISP_C_ASN,
        ServiceClass::BroadbandV6,
        LogFilter {
            exclude_mobile: false,
            ..LogFilter::paper_broadband()
        }
        .family(true),
    );
    let (v4_peak, _) = jst_peak_vs_night(&v4);
    let (v6_peak, _) = jst_peak_vs_night(&v6);
    let ratio = v6_peak / v4_peak;
    assert!(
        (0.7..1.4).contains(&ratio),
        "ISP_C v6/v4 peak ratio {ratio:.2}"
    );
}

#[test]
fn mobile_filter_separates_populations() {
    // A mixed log feed (broadband + nothing else on the broadband ASN)
    // must lose its mobile entries in the broadband view. ISP_A's mobile
    // service lives on its own ASN, so here we check via the mobile ASN's
    // prefix role instead.
    let w = tokyo_world(20190919);
    let gen = CdnLogGenerator::new(&w, CdnGeneratorConfig::test_scale(99));
    let period = MeasurementPeriod::tokyo_cdn_2019();
    let mobile_logs = gen.generate(ISP_A_ASN, ServiceClass::Mobile, &period.range());
    assert!(!mobile_logs.is_empty());
    let broadband_view = LogFilter::paper_broadband();
    let kept = broadband_view.apply(&mobile_logs, w.registry()).count();
    assert_eq!(
        kept, 0,
        "mobile clients must be filtered out of the broadband view"
    );
}
