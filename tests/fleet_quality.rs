//! Fleet scoring quality at tiny probe populations ("Less is More").
//!
//! The paper's inclusion threshold is just 3 probes per AS, so the fleet
//! subsampling knob must hold up there: biased (informed) 3-probe
//! selections keep detection intact, uniform 3-probe draws degrade
//! *gracefully* — most draws still detect strong congestion, and no draw
//! ever turns a clean or peering-congested AS into a false positive.

use lastmile_repro::core::detect::CongestionClass;
use lastmile_repro::core::pipeline::{AsPipeline, PipelineConfig, PopulationAnalysis};
use lastmile_repro::netsim::fleet::{
    build_fleet, select_probes, ClassMix, FleetLabel, FleetScenario, FleetSpec, SampleMode,
};
use lastmile_repro::netsim::TracerouteEngine;
use lastmile_repro::prefix::Asn;

fn fleet() -> FleetScenario {
    // Large populations so a 3-probe draw is a real subsample.
    let spec = FleetSpec {
        name: "quality".to_string(),
        days: 5,
        classes: ClassMix {
            severe: 2,
            clean: 1,
            adversarial_peering: 1,
            ..ClassMix::default()
        },
        probes_min: 12,
        probes_max: 15,
    };
    build_fleet(&spec, 77)
}

/// Analyze an AS using only the given probe subset (empty = all probes).
fn analyze(
    scenario: &FleetScenario,
    engine: &TracerouteEngine,
    asn: Asn,
    subset: Option<&[lastmile_repro::atlas::ProbeId]>,
) -> PopulationAnalysis {
    let window = scenario.window;
    let mut pipeline = AsPipeline::new(PipelineConfig::paper(), window);
    for probe in scenario.world.probes_in(asn) {
        if subset.is_some_and(|ids| !ids.contains(&probe.meta.id)) {
            continue;
        }
        engine.for_each_traceroute(probe, &window, |tr| pipeline.ingest(&tr));
    }
    pipeline.finish()
}

#[test]
fn three_probe_populations_degrade_gracefully() {
    let scenario = fleet();
    let engine = TracerouteEngine::new(&scenario.world);
    let severe: Vec<Asn> = scenario
        .truth
        .iter()
        .filter(|t| t.label == FleetLabel::Severe)
        .map(|t| t.asn)
        .collect();
    let silent: Vec<Asn> = scenario
        .truth
        .iter()
        .filter(|t| !t.label.expect_reported())
        .map(|t| t.asn)
        .collect();
    assert_eq!((severe.len(), silent.len()), (2, 2));

    // Full populations: the baseline the subsamples are judged against.
    for &asn in &severe {
        let a = analyze(&scenario, &engine, asn, None);
        assert_ne!(a.class(), CongestionClass::None, "AS{asn} full population");
    }

    // Biased 3-probe selection models informed vantage-point choice:
    // detection of severe congestion must survive intact.
    for &asn in &severe {
        let ids = select_probes(&scenario.world, asn, 3, SampleMode::Biased, 1);
        assert_eq!(ids.len(), 3);
        let a = analyze(&scenario, &engine, asn, Some(&ids));
        assert_ne!(
            a.class(),
            CongestionClass::None,
            "AS{asn} biased 3-probe selection must still detect"
        );
    }

    // Uniform 3-probe draws are the honest "whatever probes exist" model.
    // Some draws land on low-participation probes and miss — that's the
    // graceful part — but the majority of draws must still detect.
    let mut detected = 0usize;
    let mut draws = 0usize;
    for &asn in &severe {
        for sample_seed in 1..=5 {
            let ids = select_probes(&scenario.world, asn, 3, SampleMode::Uniform, sample_seed);
            assert_eq!(ids.len(), 3);
            let a = analyze(&scenario, &engine, asn, Some(&ids));
            draws += 1;
            if a.class() != CongestionClass::None {
                detected += 1;
            }
        }
    }
    assert!(
        detected * 2 > draws,
        "uniform 3-probe draws must mostly detect severe congestion: {detected}/{draws}"
    );

    // No subsample — biased or uniform, any seed — may invent congestion
    // on an AS the detector should stay silent about. The peering AS is
    // the critical one: its queue sits beyond the edge.
    for &asn in &silent {
        for (mode, sample_seed) in [
            (SampleMode::Biased, 1),
            (SampleMode::Uniform, 1),
            (SampleMode::Uniform, 2),
            (SampleMode::Uniform, 3),
        ] {
            let ids = select_probes(&scenario.world, asn, 3, mode, sample_seed);
            let a = analyze(&scenario, &engine, asn, Some(&ids));
            assert_eq!(
                a.class(),
                CongestionClass::None,
                "AS{asn} ({mode:?}, seed {sample_seed}) must stay silent"
            );
        }
    }
}

#[test]
fn subsampled_corpus_never_exceeds_full_population_quality() {
    let scenario = fleet();
    let engine = TracerouteEngine::new(&scenario.world);
    // Sanity on the knob itself: a subset is honored (probes_used) and a
    // request beyond the population falls back to every probe.
    let asn = scenario.truth[0].asn;
    let ids = select_probes(&scenario.world, asn, 3, SampleMode::Uniform, 4);
    let a = analyze(&scenario, &engine, asn, Some(&ids));
    assert_eq!(a.probes_used(), 3);
    let all = scenario.world.probes_in(asn).count();
    let ids = select_probes(&scenario.world, asn, 10_000, SampleMode::Uniform, 4);
    assert_eq!(ids.len(), all);
}
