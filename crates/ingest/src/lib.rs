//! # lastmile-ingest
//!
//! Parallel, bounded-memory ingest of Atlas-format traceroute files: the
//! data plane between bytes on disk and the analysis pipelines.
//!
//! Real Atlas built-in dumps are tens of gigabytes per day of
//! newline-delimited documents with routine truncation and interleaved
//! garbage; the API's list form is one giant JSON array. Both must be
//! decoded without ever holding the whole file, fast enough that cold
//! runs are not bound by a single parsing core, and without letting one
//! poisoned record kill the run. This crate does exactly that:
//!
//! ```text
//!  file ──► framing reader ──► bounded batch queue ──► N parse workers
//!           (DocSplitter,          (backpressure)        (serde + model
//!            one thread)                                  conversion,
//!                                                         catch_unwind)
//!                     ┌──────────────────────────────────────┘
//!                     ▼
//!           bounded result queue ──► caller thread (`on_record`,
//!                                    quarantine collection)
//! ```
//!
//! * **Framing** reuses [`lastmile_atlas::framing::DocSplitter`]: JSON
//!   Lines and top-level JSON arrays are split into record-aligned byte
//!   frames incrementally, so peak memory is bounded by the chunk size
//!   plus the queues — never by the file.
//! * **Backpressure**: both queues are `sync_channel`s. A slow consumer
//!   stalls the workers, which stall the framer, which stops reading.
//! * **Determinism**: records are delivered to `on_record` in arrival
//!   order, which varies with thread count — by design. Every consumer
//!   in this workspace accumulates per-probe/per-bin multisets (min,
//!   max, medians, maps keyed by probe), which are order-independent
//!   reductions, so reports are byte-identical at any `threads` value.
//!   The CLI's end-to-end tests pin this.
//! * **Quarantine**: a malformed record is captured — offset, raw bytes,
//!   and a typed reason ([`QuarantineKind`]: framing / JSON / model
//!   conversion / worker panic) — not just counted, so `--quarantine`
//!   can reproduce the bad records for offline triage. A record that
//!   panics its worker is caught by a per-record `catch_unwind` and
//!   quarantined like any other.
//!
//! `on_record` runs on the caller's thread, so consumers need no
//! locking; [`ingest_file`] returns an [`IngestSummary`] with counts,
//! quarantined records (sorted by byte offset), and per-stage timers.

use lastmile_atlas::framing::{DocSplitter, Frame};
use lastmile_atlas::json::AtlasTraceroute;
use lastmile_atlas::TracerouteResult;
use lastmile_obs::{trace, Histogram, LiveProgress};
use std::io::Read;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;

/// Why a record was quarantined instead of delivered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QuarantineKind {
    /// The bytes could not be framed as a document (truncated final
    /// document, content after the top-level array close).
    Framing,
    /// The document is not valid JSON of the Atlas traceroute shape
    /// (includes invalid UTF-8).
    Json,
    /// Valid JSON that does not convert to the internal model (bad
    /// address, non-traceroute type).
    Model,
    /// Decoding the record panicked its worker; the panic was caught
    /// and isolated to this record.
    WorkerPanic,
}

impl QuarantineKind {
    /// Stable lower-case name, used in `--stats` JSON and the
    /// `--quarantine` dump.
    pub fn name(self) -> &'static str {
        match self {
            QuarantineKind::Framing => "framing",
            QuarantineKind::Json => "json",
            QuarantineKind::Model => "model",
            QuarantineKind::WorkerPanic => "worker_panic",
        }
    }
}

/// One malformed record, captured for triage.
#[derive(Clone, Debug)]
pub struct Quarantined {
    /// Absolute byte offset of the record in the input.
    pub offset: u64,
    pub kind: QuarantineKind,
    /// Human-readable error detail.
    pub detail: String,
    /// The record's raw bytes.
    pub record: Vec<u8>,
}

/// What one ingest did: delivered/quarantined counts, bytes, timers.
#[derive(Debug, Default)]
pub struct IngestSummary {
    /// Records decoded and delivered to `on_record`.
    pub parsed: u64,
    /// Bytes read from the input.
    pub bytes_read: u64,
    /// Malformed records, sorted by byte offset.
    pub quarantined: Vec<Quarantined>,
    /// Nanoseconds the framing reader spent splitting (one thread,
    /// excludes IO and queue blocking).
    pub frame_nanos: u64,
    /// Nanoseconds spent parsing, summed across workers.
    pub decode_nanos: u64,
    /// Elapsed time of the whole ingest.
    pub wall_nanos: u64,
    /// Deepest the bounded batch queue got, in batches (0 on the serial
    /// path, which has no queue). Pinned at `queue_batches` means the
    /// parse workers are the bottleneck; near zero means framing/IO is.
    pub queue_max_depth: u64,
    /// Per-record decode latency, collected only when
    /// [`IngestOptions::record_latency`] is set; empty otherwise.
    pub decode_hist: Histogram,
}

impl IngestSummary {
    /// Total quarantined records (the CLI's "skipped" count).
    pub fn skipped(&self) -> u64 {
        self.quarantined.len() as u64
    }

    /// Quarantined records of one kind.
    pub fn quarantined_of(&self, kind: QuarantineKind) -> u64 {
        self.quarantined.iter().filter(|q| q.kind == kind).count() as u64
    }
}

/// Ingest tuning. Peak memory is bounded regardless of file size: every
/// in-flight batch pins the read-chunk buffer(s) its records point into
/// (records are `(chunk, range)` slices, not copies), so the worker
/// pipeline holds at most roughly `(queue_batches + threads + 1) ×
/// chunk_bytes` at once; the serial path holds one chunk.
#[derive(Clone, Debug)]
pub struct IngestOptions {
    /// Parse worker threads; `0` (the default) means one per available
    /// core, like the survey executor.
    pub threads: usize,
    /// Run the retained single-threaded reference path instead of the
    /// worker pipeline. Same framing, same quarantine semantics; kept
    /// for byte-identity tests and benchmarks against the serial
    /// baseline.
    pub serial: bool,
    /// Records per batch handed to a worker.
    pub batch_records: usize,
    /// Bounded batch-queue capacity, in batches.
    pub queue_batches: usize,
    /// Read chunk size in bytes.
    pub chunk_bytes: usize,
    /// Collect a per-record decode-latency histogram into
    /// [`IngestSummary::decode_hist`]. Off by default: two clock reads
    /// per record are cheap but not free, and most runs only want the
    /// distribution when `--stats` asked for it.
    pub record_latency: bool,
    /// Live gauges for a `--progress` heartbeat: bytes read, records
    /// decoded, and batch-queue depth are updated *while the ingest
    /// runs* (the summary only lands when it returns).
    pub progress: Option<Arc<LiveProgress>>,
    /// Test hook: panic while decoding the record at this byte offset,
    /// exercising per-record panic isolation from integration tests.
    #[doc(hidden)]
    pub inject_panic_offset: Option<u64>,
}

impl Default for IngestOptions {
    fn default() -> IngestOptions {
        IngestOptions {
            threads: 0,
            serial: false,
            batch_records: 64,
            queue_batches: 8,
            chunk_bytes: 256 * 1024,
            record_latency: false,
            progress: None,
            inject_panic_offset: None,
        }
    }
}

/// Bytes of one framed record travelling to a worker.
///
/// The framing reader reads each chunk into an `Arc<Vec<u8>>`; the
/// splitter's zero-copy contract (a document completing inside the fed
/// chunk is emitted as a subslice of it) lets the common case ride to
/// the parse workers as a `(buffer, range)` pair sharing that chunk
/// allocation — no per-record copy. Only a record spanning a chunk
/// boundary (at most one per chunk) is copied out of the splitter's
/// carry buffer.
enum RecordBytes {
    /// A subslice of a shared chunk buffer (whole-chunk records).
    Shared {
        buf: Arc<Vec<u8>>,
        start: usize,
        len: usize,
    },
    /// An owned copy (records spanning a chunk boundary).
    Owned(Vec<u8>),
}

impl RecordBytes {
    fn as_slice(&self) -> &[u8] {
        match self {
            RecordBytes::Shared { buf, start, len } => &buf[*start..*start + *len],
            RecordBytes::Owned(v) => v,
        }
    }
}

/// One framed record travelling to a worker.
type Batch = Vec<(u64, RecordBytes)>;

/// One decoded batch travelling back to the caller.
enum Delivery {
    Records(Vec<TracerouteResult>),
    Quarantined(Quarantined),
}

/// Ingest a traceroute file (JSON Lines or a top-level JSON array),
/// calling `on_record` on the caller's thread for each decoded record.
/// Delivery order is unspecified under `threads > 1`; see the crate docs
/// for why consumers stay deterministic anyway.
pub fn ingest_file(
    path: &str,
    options: &IngestOptions,
    on_record: impl FnMut(TracerouteResult),
) -> Result<IngestSummary, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    ingest_reader(file, options, on_record).map_err(|e| format!("{path}: {e}"))
}

/// [`ingest_file`] over any reader (the file-free entry point tests and
/// benchmarks use).
pub fn ingest_reader(
    reader: impl Read + Send,
    options: &IngestOptions,
    on_record: impl FnMut(TracerouteResult),
) -> Result<IngestSummary, String> {
    let _span = trace::span("ingest");
    if select_serial(options, available_parallelism()) {
        ingest_reader_serial(reader, options, on_record)
    } else {
        ingest_reader_parallel(reader, options, on_record)
    }
}

/// Incremental feed entry point for live intake: frame and decode one
/// standalone byte slice (an appended corpus delta or a `POST
/// /v1/traceroutes` body) with exactly the framing and quarantine
/// semantics of [`ingest_file`]. Each decoded record is delivered with
/// its byte offset within the slice and its raw framed bytes, so
/// callers can spool accepted records verbatim. Serial by design — live
/// intake chunks are small, and the worker pipeline's spawn cost would
/// dominate. Returns the quarantined records, sorted by offset.
pub fn ingest_slice(
    bytes: &[u8],
    mut on_record: impl FnMut(u64, &[u8], TracerouteResult),
) -> Vec<Quarantined> {
    let _span = trace::span("ingest_slice");
    let options = IngestOptions::default();
    let mut quarantined: Vec<Quarantined> = Vec::new();
    let mut handle = |frame: Frame<'_>| match frame {
        Frame::Doc { offset, bytes } => match decode_record(offset, bytes, &options) {
            Ok(tr) => on_record(offset, bytes, tr),
            Err(q) => quarantined.push(q),
        },
        Frame::Junk {
            offset,
            bytes,
            reason,
        } => quarantined.push(Quarantined {
            offset,
            kind: QuarantineKind::Framing,
            detail: reason.to_string(),
            record: bytes.to_vec(),
        }),
    };
    let mut splitter = DocSplitter::new();
    splitter.feed(bytes, &mut handle);
    splitter.finish(&mut handle);
    quarantined.sort_by_key(|q| q.offset);
    quarantined
}

fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Whether an ingest should take the serial path: explicitly requested,
/// or automatic thread selection (`threads == 0`) on a single-core host —
/// there the worker pipeline only adds queue hand-off cost on top of one
/// core's parsing (BENCH_ingest.json measured it ~25% slower than
/// serial). An explicit `threads >= 1` still forces the worker pipeline,
/// so its behaviour stays testable on any machine.
fn select_serial(options: &IngestOptions, available: usize) -> bool {
    options.serial || (options.threads == 0 && available <= 1)
}

fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        available_parallelism()
    } else {
        requested
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Decode one framed record; quarantines never escape as panics.
fn decode_record(
    offset: u64,
    bytes: &[u8],
    options: &IngestOptions,
) -> Result<TracerouteResult, Quarantined> {
    let quarantine = |kind: QuarantineKind, detail: String| Quarantined {
        offset,
        kind,
        detail,
        record: bytes.to_vec(),
    };
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        if options.inject_panic_offset == Some(offset) {
            panic!("injected ingest panic at byte {offset}");
        }
        let text = std::str::from_utf8(bytes)
            .map_err(|e| quarantine(QuarantineKind::Json, e.to_string()))?;
        let doc: AtlasTraceroute = serde_json::from_str(text)
            .map_err(|e| quarantine(QuarantineKind::Json, e.to_string()))?;
        doc.to_model()
            .map_err(|e| quarantine(QuarantineKind::Model, e.to_string()))
    }));
    match outcome {
        Ok(result) => result,
        Err(payload) => Err(quarantine(
            QuarantineKind::WorkerPanic,
            panic_message(payload.as_ref()),
        )),
    }
}

/// The retained single-threaded reference path: same framing and
/// quarantine semantics as the worker pipeline, no threads, no queues.
fn ingest_reader_serial(
    mut reader: impl Read + Send,
    options: &IngestOptions,
    mut on_record: impl FnMut(TracerouteResult),
) -> Result<IngestSummary, String> {
    let wall = Instant::now();
    let mut summary = IngestSummary::default();
    let mut decode_hist = Histogram::new();
    let mut splitter = DocSplitter::new();
    let mut buf = vec![0u8; options.chunk_bytes.max(1)];
    // The emit closure cannot call `on_record` directly (it borrows the
    // splitter), so each chunk's frames are staged and drained after.
    let mut staged: Vec<Result<TracerouteResult, Quarantined>> = Vec::new();
    loop {
        let n = reader.read(&mut buf).map_err(|e| format!("read: {e}"))?;
        let chunk = &buf[..n];
        summary.bytes_read += n as u64;
        if let Some(p) = &options.progress {
            p.bytes_read.fetch_add(n as u64, Ordering::Relaxed);
        }
        let t = Instant::now();
        let mut handle = |frame: Frame<'_>| match frame {
            Frame::Doc { offset, bytes } => {
                if options.record_latency {
                    let t_rec = Instant::now();
                    let outcome = decode_record(offset, bytes, options);
                    decode_hist.record(elapsed_nanos(t_rec));
                    staged.push(outcome);
                } else {
                    staged.push(decode_record(offset, bytes, options));
                }
            }
            Frame::Junk {
                offset,
                bytes,
                reason,
            } => staged.push(Err(Quarantined {
                offset,
                kind: QuarantineKind::Framing,
                detail: reason.to_string(),
                record: bytes.to_vec(),
            })),
        };
        if n == 0 {
            let s = std::mem::take(&mut splitter);
            s.finish(&mut handle);
        } else {
            splitter.feed(chunk, &mut handle);
        }
        summary.frame_nanos += elapsed_nanos(t);
        for outcome in staged.drain(..) {
            match outcome {
                Ok(tr) => {
                    summary.parsed += 1;
                    if let Some(p) = &options.progress {
                        p.records.fetch_add(1, Ordering::Relaxed);
                    }
                    on_record(tr);
                }
                Err(q) => summary.quarantined.push(q),
            }
        }
        if n == 0 {
            break;
        }
    }
    // Serial framing and decode interleave; attribute the non-framing
    // share of the loop to decode.
    summary.decode_nanos = elapsed_nanos(wall).saturating_sub(summary.frame_nanos);
    summary.decode_hist = decode_hist;
    summary.quarantined.sort_by_key(|q| q.offset);
    summary.wall_nanos = elapsed_nanos(wall);
    Ok(summary)
}

/// The worker pipeline: framer thread → bounded batch queue → N parse
/// workers → bounded result queue → caller thread.
fn ingest_reader_parallel(
    mut reader: impl Read + Send,
    options: &IngestOptions,
    mut on_record: impl FnMut(TracerouteResult),
) -> Result<IngestSummary, String> {
    let wall = Instant::now();
    let threads = resolve_threads(options.threads);
    let batch_records = options.batch_records.max(1);
    let (batch_tx, batch_rx) = mpsc::sync_channel::<Batch>(options.queue_batches.max(1));
    let (out_tx, out_rx) = mpsc::sync_channel::<Delivery>(options.queue_batches.max(1) + threads);
    let batch_queue = Mutex::new(batch_rx);
    let fatal: Mutex<Option<String>> = Mutex::new(None);
    let bytes_read = AtomicU64::new(0);
    let frame_nanos = AtomicU64::new(0);
    let decode_nanos = AtomicU64::new(0);
    // Batch-queue depth gauge: pushed by the framer, popped by workers.
    // Saturating pop — a worker can account its pop before the framer's
    // racing push lands.
    let queue_depth = AtomicU64::new(0);
    let queue_max_depth = AtomicU64::new(0);
    let decode_hist: Mutex<Histogram> = Mutex::new(Histogram::new());

    let mut summary = IngestSummary::default();
    std::thread::scope(|scope| {
        // Framer: read chunks, split into frames, batch the documents.
        // Junk frames go straight to the result queue as quarantine.
        {
            let out_tx = out_tx.clone();
            let fatal = &fatal;
            let bytes_read = &bytes_read;
            let frame_nanos = &frame_nanos;
            let queue_depth = &queue_depth;
            let queue_max_depth = &queue_max_depth;
            let push_batch = move |b: Batch, tx: &mpsc::SyncSender<Batch>| {
                if tx.send(b).is_err() {
                    return false; // all workers are gone (fatal path)
                }
                let depth = queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
                queue_max_depth.fetch_max(depth, Ordering::Relaxed);
                if let Some(p) = &options.progress {
                    p.queue_push();
                }
                true
            };
            std::thread::Builder::new()
                .name("ingest-frame".into())
                .spawn_scoped(scope, move || {
                    let mut splitter = DocSplitter::new();
                    let mut batch: Batch = Vec::with_capacity(batch_records);
                    let mut junk: Vec<Quarantined> = Vec::new();
                    let mut full: Vec<Batch> = Vec::new();
                    loop {
                        // Each chunk gets its own shared allocation:
                        // batches reference it until their records are
                        // decoded, so it cannot be a reused buffer.
                        let mut buf = vec![0u8; options.chunk_bytes.max(1)];
                        let n = match reader.read(&mut buf) {
                            Ok(n) => n,
                            Err(e) => {
                                *fatal.lock().expect("fatal slot lock") =
                                    Some(format!("read: {e}"));
                                return; // drops the senders; pipeline drains
                            }
                        };
                        buf.truncate(n);
                        let chunk = Arc::new(buf);
                        bytes_read.fetch_add(n as u64, Ordering::Relaxed);
                        if let Some(p) = &options.progress {
                            p.bytes_read.fetch_add(n as u64, Ordering::Relaxed);
                        }
                        let t = Instant::now();
                        // The splitter's zero-copy contract: a document
                        // completing inside the fed chunk is emitted as
                        // a subslice of it. The pointer-range test tells
                        // those apart from carry-buffer frames exactly.
                        let base = chunk.as_ptr() as usize;
                        let mut handle = |frame: Frame<'_>| match frame {
                            Frame::Doc { offset, bytes } => {
                                let p = bytes.as_ptr() as usize;
                                let rec = if p >= base && p + bytes.len() <= base + chunk.len() {
                                    RecordBytes::Shared {
                                        buf: Arc::clone(&chunk),
                                        start: p - base,
                                        len: bytes.len(),
                                    }
                                } else {
                                    RecordBytes::Owned(bytes.to_vec())
                                };
                                batch.push((offset, rec));
                                if batch.len() >= batch_records {
                                    full.push(std::mem::take(&mut batch));
                                }
                            }
                            Frame::Junk {
                                offset,
                                bytes,
                                reason,
                            } => junk.push(Quarantined {
                                offset,
                                kind: QuarantineKind::Framing,
                                detail: reason.to_string(),
                                record: bytes.to_vec(),
                            }),
                        };
                        if n == 0 {
                            let s = std::mem::take(&mut splitter);
                            s.finish(&mut handle);
                        } else {
                            splitter.feed(&chunk, &mut handle);
                        }
                        frame_nanos.fetch_add(elapsed_nanos(t), Ordering::Relaxed);
                        // Queue sends happen outside the timed region: a
                        // blocked send is backpressure, not framing work.
                        for b in full.drain(..) {
                            if !push_batch(b, &batch_tx) {
                                return;
                            }
                        }
                        for q in junk.drain(..) {
                            if out_tx.send(Delivery::Quarantined(q)).is_err() {
                                return;
                            }
                        }
                        if n == 0 {
                            if !batch.is_empty() {
                                push_batch(std::mem::take(&mut batch), &batch_tx);
                            }
                            return;
                        }
                    }
                })
                .expect("spawn ingest framer thread");
        }

        // Parse workers: steal batches until the framer hangs up.
        for worker in 0..threads {
            let out_tx = out_tx.clone();
            let batch_queue = &batch_queue;
            let decode_nanos = &decode_nanos;
            let queue_depth = &queue_depth;
            let decode_hist = &decode_hist;
            std::thread::Builder::new()
                .name(format!("ingest-parse-{worker}"))
                .spawn_scoped(scope, move || {
                    let mut local_hist = Histogram::new();
                    loop {
                        // Blocking recv under the lock: the holder waits
                        // for a batch while the other workers wait for
                        // the lock, which hands batches to exactly one
                        // worker each.
                        let Ok(batch) = batch_queue.lock().expect("batch queue lock").recv() else {
                            // Framer done and queue drained; publish this
                            // worker's latency samples.
                            decode_hist
                                .lock()
                                .expect("decode histogram lock")
                                .merge(&local_hist);
                            return;
                        };
                        let _ =
                            queue_depth.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| {
                                Some(d.saturating_sub(1))
                            });
                        if let Some(p) = &options.progress {
                            p.queue_pop();
                        }
                        let span = trace::span_with("decode_batch", |a| {
                            a.u64("records", batch.len() as u64);
                        });
                        let t = Instant::now();
                        let mut records = Vec::with_capacity(batch.len());
                        let mut quarantined = Vec::new();
                        for (offset, bytes) in &batch {
                            let outcome = if options.record_latency {
                                let t_rec = Instant::now();
                                let outcome = decode_record(*offset, bytes.as_slice(), options);
                                local_hist.record(elapsed_nanos(t_rec));
                                outcome
                            } else {
                                decode_record(*offset, bytes.as_slice(), options)
                            };
                            match outcome {
                                Ok(tr) => records.push(tr),
                                Err(q) => quarantined.push(q),
                            }
                        }
                        decode_nanos.fetch_add(elapsed_nanos(t), Ordering::Relaxed);
                        drop(span);
                        if !records.is_empty() && out_tx.send(Delivery::Records(records)).is_err() {
                            return;
                        }
                        for q in quarantined {
                            if out_tx.send(Delivery::Quarantined(q)).is_err() {
                                return;
                            }
                        }
                    }
                })
                .expect("spawn ingest parse worker");
        }
        // The caller keeps no sender: the drain below ends exactly when
        // the framer and every worker have hung up.
        drop(out_tx);

        for delivery in out_rx.iter() {
            match delivery {
                Delivery::Records(records) => {
                    summary.parsed += records.len() as u64;
                    if let Some(p) = &options.progress {
                        p.records.fetch_add(records.len() as u64, Ordering::Relaxed);
                    }
                    for tr in records {
                        on_record(tr);
                    }
                }
                Delivery::Quarantined(q) => summary.quarantined.push(q),
            }
        }
    });

    if let Some(e) = fatal.into_inner().expect("fatal slot lock") {
        return Err(e);
    }
    summary.bytes_read = bytes_read.into_inner();
    summary.frame_nanos = frame_nanos.into_inner();
    summary.decode_nanos = decode_nanos.into_inner();
    summary.queue_max_depth = queue_max_depth.into_inner();
    summary.decode_hist = decode_hist.into_inner().expect("decode histogram lock");
    summary.quarantined.sort_by_key(|q| q.offset);
    summary.wall_nanos = elapsed_nanos(wall);
    Ok(summary)
}

fn elapsed_nanos(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lastmile_atlas::json::to_atlas_json;
    use lastmile_atlas::{Hop, ProbeId, Reply};
    use lastmile_timebase::UnixTime;
    use std::collections::BTreeMap;
    use std::io::Cursor;

    fn tr(probe: u32, ts: i64) -> TracerouteResult {
        TracerouteResult {
            probe: ProbeId(probe),
            msm_id: 5001,
            timestamp: UnixTime::from_secs(ts),
            dst: "20.9.9.9".parse().unwrap(),
            src: "192.168.1.10".parse().unwrap(),
            hops: vec![Hop {
                hop: 1,
                replies: vec![Reply::answered("192.168.1.1".parse().unwrap(), 1.25)],
            }],
        }
    }

    fn tr_json(probe: u32, ts: i64) -> String {
        to_atlas_json(&tr(probe, ts), "20.0.0.1".parse().unwrap())
    }

    /// A multiset fingerprint of delivered records: order-independent,
    /// so serial and parallel ingests must agree exactly.
    fn fingerprint(
        options: &IngestOptions,
        input: &[u8],
    ) -> (BTreeMap<(u32, i64), u64>, IngestSummary) {
        let mut seen: BTreeMap<(u32, i64), u64> = BTreeMap::new();
        let summary = ingest_reader(Cursor::new(input.to_vec()), options, |tr| {
            *seen
                .entry((tr.probe.0, tr.timestamp.as_secs()))
                .or_default() += 1;
        })
        .unwrap();
        (seen, summary)
    }

    fn lines_input(n: u32) -> Vec<u8> {
        let mut s = String::new();
        for i in 0..n {
            s.push_str(&tr_json(i, 1000 + i64::from(i)));
            s.push('\n');
        }
        s.into_bytes()
    }

    fn array_input(n: u32) -> Vec<u8> {
        let docs: Vec<String> = (0..n).map(|i| tr_json(i, 1000 + i64::from(i))).collect();
        format!("[{}]", docs.join(",")).into_bytes()
    }

    #[test]
    fn ingest_slice_delivers_raw_bytes_and_matches_reader_semantics() {
        let input = lines_input(5);
        let mut records: Vec<(u64, Vec<u8>, u32)> = Vec::new();
        let quarantined = ingest_slice(&input, |offset, raw, tr| {
            records.push((offset, raw.to_vec(), tr.probe.0));
        });
        assert!(quarantined.is_empty());
        assert_eq!(records.len(), 5);
        for (i, (offset, raw, probe)) in records.iter().enumerate() {
            assert_eq!(*probe, i as u32);
            // The raw frame is the exact source line at its offset —
            // the spool can replay it verbatim.
            let end = *offset as usize + raw.len();
            assert_eq!(&input[*offset as usize..end], &raw[..]);
            assert_eq!(raw.first(), Some(&b'{'));
        }
        // A top-level array frames too (same DocSplitter).
        let mut n = 0;
        assert!(ingest_slice(&array_input(3), |_, _, _| n += 1).is_empty());
        assert_eq!(n, 3);
    }

    #[test]
    fn ingest_slice_quarantines_with_file_taxonomy() {
        let mut input = Vec::new();
        input.extend_from_slice(tr_json(1, 1000).as_bytes());
        input.push(b'\n');
        input.extend_from_slice(b"{\"not\":\"atlas\"}\n");
        input.extend_from_slice(b"not json at all\n");
        input.extend_from_slice(tr_json(2, 1001).as_bytes());
        input.push(b'\n');
        let mut accepted = 0;
        let quarantined = ingest_slice(&input, |_, _, _| accepted += 1);
        assert_eq!(accepted, 2);
        assert_eq!(quarantined.len(), 2);
        // Sorted by offset; kinds match the batch ingest taxonomy.
        assert!(quarantined.windows(2).all(|w| w[0].offset <= w[1].offset));
        let kinds: Vec<&str> = quarantined.iter().map(|q| q.kind.name()).collect();
        assert_eq!(kinds, vec!["json", "json"]);
        // A reader-based ingest over the same bytes agrees on counts.
        let mut reader_accepted = 0;
        let summary = ingest_reader(
            Cursor::new(input.clone()),
            &IngestOptions {
                serial: true,
                ..IngestOptions::default()
            },
            |_| reader_accepted += 1,
        )
        .unwrap();
        assert_eq!(reader_accepted, accepted);
        assert_eq!(summary.quarantined.len(), quarantined.len());
        for (a, b) in summary.quarantined.iter().zip(&quarantined) {
            assert_eq!((a.offset, a.kind), (b.offset, b.kind));
            assert_eq!(a.record, b.record);
        }
    }

    #[test]
    fn serial_and_parallel_agree_on_lines_and_array() {
        for input in [lines_input(100), array_input(100)] {
            let serial = fingerprint(
                &IngestOptions {
                    serial: true,
                    ..IngestOptions::default()
                },
                &input,
            );
            for threads in [1, 4] {
                let parallel = fingerprint(
                    &IngestOptions {
                        threads,
                        chunk_bytes: 97, // force documents across chunk boundaries
                        ..IngestOptions::default()
                    },
                    &input,
                );
                assert_eq!(serial.0, parallel.0, "threads={threads}");
                assert_eq!(serial.1.parsed, parallel.1.parsed);
                assert_eq!(serial.1.bytes_read, parallel.1.bytes_read);
                assert_eq!(serial.1.skipped(), parallel.1.skipped());
            }
        }
    }

    #[test]
    fn array_larger_than_the_bounded_queues_streams_through() {
        // 500 records but the pipeline may only ever hold 2 batches of 4
        // in the queue (plus one in each of 2 workers): completion
        // proves the framer streams under backpressure instead of
        // buffering the array.
        let input = array_input(500);
        let queue_capacity_records = 2 * 4;
        assert!(input.len() > 50 * queue_capacity_records);
        let (seen, summary) = fingerprint(
            &IngestOptions {
                threads: 2,
                batch_records: 4,
                queue_batches: 2,
                chunk_bytes: 512,
                ..IngestOptions::default()
            },
            &input,
        );
        assert_eq!(summary.parsed, 500);
        assert_eq!(summary.bytes_read as usize, input.len());
        assert_eq!(seen.len(), 500);
        assert!(summary.quarantined.is_empty());
    }

    #[test]
    fn quarantine_taxonomy_is_typed_with_offsets() {
        let good = tr_json(1, 1000);
        let model_bad = good.replace("traceroute", "ping");
        let input = format!("{good}\nnot-json\n{model_bad}\n{good}\n");
        for options in [
            IngestOptions {
                serial: true,
                ..IngestOptions::default()
            },
            IngestOptions {
                threads: 3,
                ..IngestOptions::default()
            },
        ] {
            let (_, summary) = fingerprint(&options, input.as_bytes());
            assert_eq!(summary.parsed, 2);
            assert_eq!(summary.skipped(), 2);
            assert_eq!(summary.quarantined_of(QuarantineKind::Json), 1);
            assert_eq!(summary.quarantined_of(QuarantineKind::Model), 1);
            // Sorted by offset, with the raw bytes captured.
            let q = &summary.quarantined;
            assert!(q[0].offset < q[1].offset);
            assert_eq!(q[0].record, b"not-json");
            assert_eq!(q[0].offset as usize, good.len() + 1);
            assert!(String::from_utf8_lossy(&q[1].record).contains("ping"));
        }
    }

    #[test]
    fn truncated_array_tail_is_framing_quarantine() {
        let good = tr_json(1, 1000);
        let input = format!("[{good},{}", &good[..30]);
        let (_, summary) = fingerprint(&IngestOptions::default(), input.as_bytes());
        assert_eq!(summary.parsed, 1);
        assert_eq!(summary.quarantined_of(QuarantineKind::Framing), 1);
        assert!(summary.quarantined[0].detail.contains("truncated"));
    }

    #[test]
    fn worker_panic_is_isolated_to_the_record() {
        let input = lines_input(10);
        // Panic on the third record (offset = 2 lines in).
        let line_len = tr_json(0, 1000).len() + 1;
        let panic_offset = (2 * line_len) as u64;
        for serial in [false, true] {
            let options = IngestOptions {
                threads: 2,
                serial,
                inject_panic_offset: Some(panic_offset),
                ..IngestOptions::default()
            };
            let (_, summary) = fingerprint(&options, &input);
            assert_eq!(summary.parsed, 9, "serial={serial}");
            assert_eq!(summary.quarantined_of(QuarantineKind::WorkerPanic), 1);
            let q = &summary.quarantined[0];
            assert_eq!(q.offset, panic_offset);
            assert!(q.detail.contains("injected"), "{}", q.detail);
        }
    }

    #[test]
    fn empty_and_whitespace_inputs_are_clean() {
        for input in [&b""[..], b"  \n \n", b"[]"] {
            let (seen, summary) = fingerprint(&IngestOptions::default(), input);
            assert!(seen.is_empty());
            assert_eq!(summary.parsed, 0);
            assert!(summary.quarantined.is_empty());
        }
    }

    #[test]
    fn missing_file_is_an_error() {
        let err =
            ingest_file("/does/not/exist.jsonl", &IngestOptions::default(), |_| {}).unwrap_err();
        assert!(err.contains("/does/not/exist.jsonl"), "{err}");
    }

    #[test]
    fn auto_thread_selection_prefers_serial_on_one_core() {
        let auto = IngestOptions::default();
        assert!(
            select_serial(&auto, 1),
            "auto threads on one core must take the serial path"
        );
        assert!(!select_serial(&auto, 8));
        let explicit_one = IngestOptions {
            threads: 1,
            ..IngestOptions::default()
        };
        assert!(
            !select_serial(&explicit_one, 1),
            "explicit thread counts keep the worker pipeline"
        );
        let forced = IngestOptions {
            serial: true,
            ..IngestOptions::default()
        };
        assert!(select_serial(&forced, 16));
    }

    #[test]
    fn latency_and_progress_gauges_are_collected_when_asked() {
        let input = lines_input(100);
        for serial in [true, false] {
            let options = IngestOptions {
                serial,
                threads: 2,
                batch_records: 4,
                record_latency: true,
                progress: Some(Arc::new(LiveProgress::default())),
                ..IngestOptions::default()
            };
            let progress = options.progress.clone().unwrap();
            let (_, summary) = fingerprint(&options, &input);
            assert_eq!(summary.decode_hist.count(), 100, "serial={serial}");
            assert!(summary.decode_hist.max() > 0);
            assert_eq!(
                progress.bytes_read.load(Ordering::Relaxed) as usize,
                input.len()
            );
            assert_eq!(progress.records.load(Ordering::Relaxed), 100);
            assert_eq!(
                progress.queue_depth.load(Ordering::Relaxed),
                0,
                "queue fully drained"
            );
            if serial {
                assert_eq!(summary.queue_max_depth, 0, "serial path has no queue");
            } else {
                assert!(summary.queue_max_depth > 0, "queue gauge never moved");
            }
        }
        // Latency collection is opt-in: off by default.
        let (_, summary) = fingerprint(&IngestOptions::default(), &input);
        assert_eq!(summary.decode_hist.count(), 0);
    }

    #[test]
    fn timers_and_throughput_inputs_are_populated() {
        let input = lines_input(50);
        let (_, summary) = fingerprint(&IngestOptions::default(), &input);
        assert!(summary.wall_nanos > 0);
        assert_eq!(summary.bytes_read as usize, input.len());
    }
}
