//! Observability overhead: what a span costs with tracing off (the
//! price every run pays) and on (the `--trace` price), plus the
//! log-linear histogram's record path.
//!
//! The load-bearing number is `span_disabled`: with no tracer installed
//! a `span()` call is one relaxed atomic load and must stay in the
//! low-nanosecond range — effectively unmeasurable against the work the
//! span wraps. `span_with_disabled` additionally pins that the
//! arg-building closure is never run when tracing is off.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lastmile_repro::obs::{trace, Histogram};

fn bench_obs(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs");

    // Order matters: the tracer is a process-global OnceLock, so the
    // disabled-path benches must run before install().
    assert!(
        trace::installed().is_none(),
        "tracer installed before the disabled-path benches"
    );
    g.bench_function("span_disabled", |b| {
        b.iter(|| {
            let s = trace::span(black_box("bench"));
            black_box(&s);
        })
    });
    g.bench_function("span_with_disabled", |b| {
        b.iter(|| {
            let s = trace::span_with("bench", |a| {
                // Never runs while disabled; if it did, the panic would
                // fail the bench loudly rather than skew it quietly.
                a.u64("k", black_box(1));
                panic!("arg closure ran with tracing disabled");
            });
            black_box(&s);
        })
    });

    let mut h = Histogram::default();
    let mut v = 1u64;
    g.bench_function("histogram_record", |b| {
        b.iter(|| {
            // Cheap LCG so successive samples land in different buckets.
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(black_box(v >> 32));
        })
    });
    black_box(h.count());

    trace::install();
    g.bench_function("span_enabled", |b| {
        b.iter(|| {
            let s = trace::span(black_box("bench"));
            black_box(&s);
        })
    });
    g.bench_function("span_with_enabled", |b| {
        b.iter(|| {
            let s = trace::span_with("bench", |a| {
                a.u64("k", black_box(1));
            });
            black_box(&s);
        })
    });
    g.finish();
}

criterion_group!(benches, bench_obs);
criterion_main!(benches);
