//! Per-figure benchmarks: each bench runs the regeneration workload of
//! one paper figure at a reduced-but-structurally-identical scale, so a
//! performance regression in any stage of any experiment is caught here.
//!
//! The full-scale regenerations live in the `lastmile-experiments` binary;
//! these benches share the same code paths through `lastmile_repro`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lastmile_repro::cdnlog::{
    binned_median_throughput, CdnGeneratorConfig, CdnLogGenerator, LogFilter,
};
use lastmile_repro::core::correlate::{delay_throughput_rho, join_by_time};
use lastmile_repro::core::pipeline::PipelineConfig;
use lastmile_repro::dsp::welch::{welch_peak_to_peak, WelchConfig};
use lastmile_repro::netsim::scenarios::anchor::{anchor_world, ISP_D_ASN};
use lastmile_repro::netsim::scenarios::examples::{fig1_world, ISP_US_ASN};
use lastmile_repro::netsim::scenarios::survey::{survey_world, SurveyConfig};
use lastmile_repro::netsim::scenarios::tokyo::{tokyo_world, ISP_A_ASN, ISP_C_ASN};
use lastmile_repro::netsim::ServiceClass;
use lastmile_repro::runner::{
    analyze_population, eyeballs_from_ground_truth, run_survey, ProbeSelection, SurveyOptions,
};
use lastmile_repro::timebase::{BinSpec, MeasurementPeriod, TimeRange};

/// A 4-day slice of a period: long enough for one Welch segment, short
/// enough to benchmark.
fn short_window() -> MeasurementPeriod {
    let full = MeasurementPeriod::september_2019();
    MeasurementPeriod::custom(TimeRange::new(full.start(), full.start() + 4 * 86_400))
}

fn fig1_fig2(c: &mut Criterion) {
    // Figures 1+2 share the ISP_DE/ISP_US world; bench ISP_US (hundreds
    // of probes) over 4 days, detection included. Each iteration costs
    // ~1.5 s, so the sample count is capped.
    let world = fig1_world(1);
    let window = short_window();
    let mut g = c.benchmark_group("fig1_2");
    g.sample_size(10);
    g.bench_function("isp_us_4days", |b| {
        b.iter(|| {
            let a = analyze_population(
                &world,
                black_box(ISP_US_ASN),
                &window,
                PipelineConfig::paper(),
                &ProbeSelection::regular(),
            );
            a.aggregated.fold_weekly().len()
        })
    });
    g.finish();
    // The Figure 2 spectral step alone.
    let analysis = analyze_population(
        &world,
        ISP_US_ASN,
        &window,
        PipelineConfig::paper(),
        &ProbeSelection::regular(),
    );
    let signal = analysis.aggregated.contiguous().expect("coverage is high");
    let cfg = WelchConfig::for_daily_analysis(2.0);
    c.bench_function("fig1_2/periodogram", |b| {
        b.iter(|| welch_peak_to_peak(black_box(&signal), &cfg).unwrap())
    });
}

fn fig3_fig4_survey(c: &mut Criterion) {
    // Figures 3+4 and the summary share the survey loop: bench a 24-AS
    // survey over one 4-day window.
    let scenario = survey_world(&SurveyConfig::test_scale(5, 24));
    let eyeballs = eyeballs_from_ground_truth(&scenario.ground_truth);
    let window = [short_window()];
    let mut g = c.benchmark_group("fig3_4");
    g.sample_size(10);
    g.bench_function("survey_24as_4days", |b| {
        b.iter(|| {
            run_survey(
                &scenario.world,
                black_box(&window),
                &eyeballs,
                &SurveyOptions::default(),
            )
            .rows()
            .len()
        })
    });
    g.finish();
}

fn fig5_delays(c: &mut Criterion) {
    let world = tokyo_world(1);
    let window = short_window();
    c.bench_function("fig5/tokyo_isp_a_4days", |b| {
        b.iter(|| {
            analyze_population(
                &world,
                black_box(ISP_A_ASN),
                &window,
                PipelineConfig::paper(),
                &ProbeSelection::in_area("Tokyo"),
            )
            .probes_used()
        })
    });
}

fn fig6_fig9_throughput(c: &mut Criterion) {
    let world = tokyo_world(1);
    let cdn = CdnLogGenerator::new(&world, CdnGeneratorConfig::test_scale(2));
    let window = short_window();
    c.bench_function("fig6_9/cdn_generate_filter_bin", |b| {
        b.iter(|| {
            let logs = cdn.generate(
                black_box(ISP_A_ASN),
                ServiceClass::BroadbandV4,
                &window.range(),
            );
            let filter = LogFilter::paper_broadband();
            let kept: Vec<_> = filter.apply(&logs, world.registry()).cloned().collect();
            binned_median_throughput(kept.iter(), BinSpec::thirty_minutes()).len()
        })
    });
}

fn fig7_correlation(c: &mut Criterion) {
    let world = tokyo_world(1);
    let window = short_window();
    let cdn = CdnLogGenerator::new(&world, CdnGeneratorConfig::test_scale(2));
    let delay = analyze_population(
        &world,
        ISP_C_ASN,
        &window,
        PipelineConfig::paper(),
        &ProbeSelection::in_area("Tokyo"),
    )
    .aggregated;
    let logs = cdn.generate(ISP_C_ASN, ServiceClass::BroadbandV4, &window.range());
    let filter = LogFilter::paper_broadband();
    let kept: Vec<_> = filter.apply(&logs, world.registry()).cloned().collect();
    let thr = binned_median_throughput(kept.iter(), BinSpec::fifteen_minutes());
    c.bench_function("fig7/join_and_spearman", |b| {
        b.iter(|| {
            let pairs = join_by_time(black_box(&delay), thr.iter().copied());
            delay_throughput_rho(&pairs)
        })
    });
}

fn fig8_anchor(c: &mut Criterion) {
    let world = anchor_world(1);
    let window = short_window();
    c.bench_function("fig8/probes_and_anchor_4days", |b| {
        b.iter(|| {
            let probes = analyze_population(
                &world,
                black_box(ISP_D_ASN),
                &window,
                PipelineConfig::paper(),
                &ProbeSelection::regular(),
            );
            let mut cfg = PipelineConfig::paper();
            cfg.min_probes = 1;
            cfg.min_probes_per_bin = 1;
            let anchor =
                analyze_population(&world, ISP_D_ASN, &window, cfg, &ProbeSelection::anchors());
            (probes.probes_used(), anchor.probes_used())
        })
    });
}

criterion_group!(
    benches,
    fig1_fig2,
    fig3_fig4_survey,
    fig5_delays,
    fig6_fig9_throughput,
    fig7_correlation,
    fig8_anchor
);
criterion_main!(benches);
