//! Ingest benchmark: what the parallel framing/parse pipeline is worth.
//!
//! The decode half of `classify` — splitting the input into documents and
//! parsing each into the model — dominates cold-start wall time for large
//! Atlas dumps. `lastmile-ingest` overlaps framing with N parse workers
//! over bounded queues; the interesting numbers are:
//!
//! * **serial vs threads=1 vs threads=N** — the pipeline tax (one extra
//!   copy plus queue hops) and the parallel payoff against the retained
//!   single-threaded reference path.
//! * **lines vs array** — the two wire forms take different framing
//!   paths (line scanning vs bracket tracking), same parse workers.
//!
//! Every variant produces the identical record multiset (pinned by
//! `crates/cli/tests/ingest_e2e.rs`); this benchmark prices the options.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lastmile_repro::atlas::framing::{DocSplitter, Frame};
use lastmile_repro::atlas::json::to_atlas_json;
use lastmile_repro::ingest::{ingest_reader, IngestOptions};
use lastmile_repro::netsim::scenarios::survey::{survey_world, SurveyConfig};
use lastmile_repro::netsim::TracerouteEngine;
use lastmile_repro::timebase::{MeasurementPeriod, TimeRange};

/// Render a survey day as both wire forms, in memory.
fn bench_inputs() -> (Vec<u8>, Vec<u8>) {
    let scenario = survey_world(&SurveyConfig {
        seed: 7,
        n_ases: 20,
        max_probes_per_as: 2,
    });
    let engine = TracerouteEngine::new(&scenario.world);
    let period = MeasurementPeriod::survey_periods()[0];
    let window = TimeRange::new(period.start(), period.start() + 86_400);
    let mut lines = Vec::new();
    for probe in scenario.world.probes() {
        engine.for_each_traceroute(probe, &window, |tr| {
            lines.push(to_atlas_json(&tr, probe.meta.public_addr));
        });
    }
    let jsonl = (lines.join("\n") + "\n").into_bytes();
    let array = format!("[{}]", lines.join(",")).into_bytes();
    (jsonl, array)
}

fn bench_ingest(c: &mut Criterion) {
    let (jsonl, array) = bench_inputs();
    eprintln!(
        "ingest bench inputs: jsonl {} bytes, array {} bytes",
        jsonl.len(),
        array.len()
    );

    let mut g = c.benchmark_group("ingest");
    g.sample_size(10);
    for (form, input) in [("lines", &jsonl), ("array", &array)] {
        g.throughput(criterion::Throughput::Bytes(input.len() as u64));
        for (name, options) in [
            (
                "serial",
                IngestOptions {
                    serial: true,
                    ..IngestOptions::default()
                },
            ),
            (
                "threads1",
                IngestOptions {
                    threads: 1,
                    ..IngestOptions::default()
                },
            ),
            (
                "threads_auto",
                IngestOptions::default(), // threads: 0 = one per core
            ),
        ] {
            g.bench_function(format!("{form}/{name}"), |b| {
                b.iter(|| {
                    let mut n = 0u64;
                    let summary = ingest_reader(&input[..], &options, |tr| {
                        n += tr.hops.len() as u64;
                    })
                    .unwrap();
                    assert!(summary.quarantined.is_empty());
                    black_box((n, summary.parsed))
                })
            });
        }
    }
    g.finish();
}

/// Framing alone — the `DocSplitter` hot loops with no JSON parse
/// behind them. This is the layer the bulk byte scanner rewrote; the
/// 64 KiB feed matches the ingest pipeline's default chunk size, so
/// chunk-boundary carry costs are priced in.
fn bench_framing(c: &mut Criterion) {
    let (jsonl, array) = bench_inputs();
    let mut g = c.benchmark_group("framing");
    g.sample_size(20);
    for (form, input) in [("lines", &jsonl), ("array", &array)] {
        g.throughput(criterion::Throughput::Bytes(input.len() as u64));
        g.bench_function(format!("{form}/split"), |b| {
            b.iter(|| {
                let mut docs = 0u64;
                let mut bytes = 0u64;
                let mut splitter = DocSplitter::new();
                let mut emit = |frame: Frame<'_>| {
                    if let Frame::Doc { bytes: d, .. } = frame {
                        docs += 1;
                        bytes += d.len() as u64;
                    }
                };
                for chunk in input.chunks(64 * 1024) {
                    splitter.feed(chunk, &mut emit);
                }
                splitter.finish(&mut emit);
                black_box((docs, bytes))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ingest, bench_framing);
criterion_main!(benches);
