//! Ablation benchmarks for the design choices DESIGN.md calls out.
//!
//! Each group compares the paper's choice against an alternative on the
//! same input, measuring the *cost* side of the trade-off (the *quality*
//! side is reported by `examples/ablations.rs`):
//!
//! * per-bin statistic: median (paper) vs mean;
//! * bin width: 30 minutes (paper) vs 5 minutes;
//! * Welch (averaged segments, paper) vs a single full-length periodogram;
//! * sanity threshold ≥ 3 traceroutes/bin (paper) vs none.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lastmile_repro::core::pipeline::{AsPipeline, PipelineConfig};
use lastmile_repro::dsp::welch::{welch_peak_to_peak, WelchConfig};
use lastmile_repro::netsim::world::ProbeSpec;
use lastmile_repro::netsim::{IspConfig, TracerouteEngine, World};
use lastmile_repro::stats::{mean, median};
use lastmile_repro::timebase::{BinSpec, MeasurementPeriod, TimeRange, TzOffset};

fn bench_bin_statistic(c: &mut Criterion) {
    let samples: Vec<f64> = (0..216)
        .map(|i| ((i * 2_654_435_761u64 as usize) % 997) as f64)
        .collect();
    let mut g = c.benchmark_group("ablation_bin_statistic");
    g.bench_function("median_paper", |b| b.iter(|| median(black_box(&samples))));
    g.bench_function("mean_alternative", |b| b.iter(|| mean(black_box(&samples))));
    g.finish();
}

fn bench_bin_width(c: &mut Criterion) {
    let mut b = World::builder(1);
    b.add_isp(IspConfig::legacy_pppoe(
        65001,
        "ABL",
        "JP",
        TzOffset::JST,
        4.0,
    ));
    b.add_probes(65001, 2, &ProbeSpec::simple());
    let world = b.build();
    let engine = TracerouteEngine::new(&world);
    let full = MeasurementPeriod::september_2019();
    let window = TimeRange::new(full.start(), full.start() + 2 * 86_400);
    let mut trs = Vec::new();
    for probe in world.probes() {
        engine.for_each_traceroute(probe, &window, |tr| trs.push(tr));
    }
    let mut g = c.benchmark_group("ablation_bin_width");
    for (name, bin, min_tr) in [
        ("30min_paper", BinSpec::thirty_minutes(), 3usize),
        ("5min_alternative", BinSpec::new(300), 1),
        ("no_sanity_filter", BinSpec::thirty_minutes(), 1),
    ] {
        g.bench_function(name, |bch| {
            bch.iter(|| {
                let mut cfg = PipelineConfig::paper();
                cfg.bin = bin;
                cfg.min_traceroutes_per_bin = min_tr;
                let mut p = AsPipeline::new(cfg, window);
                for tr in &trs {
                    p.ingest(black_box(tr));
                }
                p.finish().probes_used()
            })
        });
    }
    g.finish();
}

fn bench_welch_vs_plain_periodogram(c: &mut Criterion) {
    let signal: Vec<f64> = (0..720)
        .map(|i| {
            (core::f64::consts::TAU * i as f64 / 48.0).sin() * 2.0 + 0.3 * ((i * 7) as f64).sin()
        })
        .collect();
    let mut g = c.benchmark_group("ablation_spectral");
    let welch = WelchConfig::for_daily_analysis(2.0);
    g.bench_function("welch_4day_segments_paper", |b| {
        b.iter(|| welch_peak_to_peak(black_box(&signal), &welch).unwrap())
    });
    let plain = WelchConfig {
        segment_len: signal.len(),
        ..welch.clone()
    };
    g.bench_function("single_periodogram_alternative", |b| {
        b.iter(|| welch_peak_to_peak(black_box(&signal), &plain).unwrap())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_bin_statistic,
    bench_bin_width,
    bench_welch_vs_plain_periodogram
);
criterion_main!(benches);
