//! Serving-path costs: the HTTP head parser, response serialization,
//! the per-request metrics record, and a full loopback round-trip
//! through the bounded worker pool (connect → accept queue → worker →
//! response). The round-trip number is the daemon's floor latency — what
//! `GET /healthz` costs before any handler work.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lastmile_repro::obs::{ServeEndpoint, ServeMetrics};
use lastmile_repro::serve::http::parse_request;
use lastmile_repro::serve::{Handler, Response, Server, ServerConfig};
use std::io::{Cursor, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn bench_serve(c: &mut Criterion) {
    let mut g = c.benchmark_group("serve");

    let head = b"GET /v1/series/64520?from=1568851200&to=1569283200 HTTP/1.1\r\n\
                 Host: localhost:8437\r\nUser-Agent: bench/1.0\r\nAccept: */*\r\n\r\n";
    g.bench_function("parse_request", |b| {
        b.iter(|| {
            let mut cursor = Cursor::new(&head[..]);
            black_box(parse_request(&mut cursor).expect("well-formed head"));
        })
    });

    let body: String = "{\"status\":\"ok\"}\n".repeat(64);
    let mut wire = Vec::with_capacity(4096);
    g.bench_function("response_write", |b| {
        b.iter(|| {
            wire.clear();
            Response::json(200, body.clone())
                .endpoint(ServeEndpoint::Healthz)
                .write_to(&mut wire)
                .expect("write to Vec");
            black_box(wire.len());
        })
    });

    let metrics = ServeMetrics::new();
    let mut nanos = 1u64;
    g.bench_function("metrics_record_request", |b| {
        b.iter(|| {
            nanos = nanos.wrapping_mul(6364136223846793005).wrapping_add(1);
            metrics.record_request(ServeEndpoint::Classify, black_box(nanos >> 32));
        })
    });
    black_box(metrics.snapshot());

    // Floor latency of one request through the real server: TCP connect,
    // accept-queue hop, worker dispatch, trivial handler, response.
    let shutdown: &'static AtomicBool = Box::leak(Box::new(AtomicBool::new(false)));
    let server = Server::bind(
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            ..ServerConfig::default()
        },
        Arc::new(ServeMetrics::new()),
    )
    .expect("bind loopback");
    let addr = server.local_addr();
    let handler: Arc<Handler> = Arc::new(|_req| {
        Response::json(200, "{\"status\":\"ok\"}\n").endpoint(ServeEndpoint::Healthz)
    });
    let daemon = std::thread::spawn(move || server.run(handler, shutdown));
    g.bench_function("loopback_round_trip", |b| {
        b.iter(|| {
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream
                .write_all(b"GET /healthz HTTP/1.1\r\nHost: bench\r\n\r\n")
                .expect("send request");
            let mut response = Vec::new();
            stream.read_to_end(&mut response).expect("read response");
            assert!(response.starts_with(b"HTTP/1.1 200"));
            black_box(response.len());
        })
    });
    shutdown.store(true, Ordering::Relaxed);
    daemon.join().expect("server thread").expect("server run");

    g.finish();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
