//! Series-store benchmark: what a warm cache is worth.
//!
//! A population analysis spends nearly all of its time ingesting
//! traceroutes into per-probe bins; the binned medians those traceroutes
//! reduce to are a few hundred `f64`s. `lastmile-store` memoizes that
//! reduction, so the interesting numbers are:
//!
//! * **cold vs warm** — the same `(AS, period)` analysis against an empty
//!   store (full traceroute ingest + write-back) and against a store that
//!   already holds every probe's series (pure series replay).
//! * **snapshot save / load** — the on-disk round trip for a survey-sized
//!   store, in case a run starts from `--cache-dir` instead of memory.
//!
//! Both paths produce byte-identical reports (see `tests/store_survey.rs`);
//! this benchmark prices the difference.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lastmile_repro::core::pipeline::PipelineConfig;
use lastmile_repro::netsim::scenarios::survey::{survey_world, SurveyConfig, SurveyScenario};
use lastmile_repro::netsim::TracerouteEngine;
use lastmile_repro::runner::{analyze_population_stored, ProbeSelection};
use lastmile_repro::store::{SeriesStore, StoreConfig};
use lastmile_repro::timebase::MeasurementPeriod;

fn bench_world() -> SurveyScenario {
    survey_world(&SurveyConfig {
        seed: 21,
        n_ases: 20,
        max_probes_per_as: 4,
    })
}

fn bench_store(c: &mut Criterion) {
    let scenario = bench_world();
    let engine = TracerouteEngine::new(&scenario.world);
    let cfg = PipelineConfig::paper();
    let selection = ProbeSelection::regular();
    let period = MeasurementPeriod::survey_periods()[0];
    let asn = scenario.world.ases()[0].config.asn;

    let mut g = c.benchmark_group("store");
    g.sample_size(10);

    // Cold: every iteration starts from an empty store, pays the full
    // traceroute ingest, and writes the built series back.
    g.bench_function("analysis_cold", |b| {
        b.iter(|| {
            let store = SeriesStore::default();
            black_box(analyze_population_stored(
                &engine, asn, &period, cfg, &selection, &store,
            ))
        })
    });

    // Warm: the store already holds every probe's series for the period;
    // the analysis replays medians and recomputes only the period-scoped
    // aggregation and detection stages.
    let warm = SeriesStore::default();
    analyze_population_stored(&engine, asn, &period, cfg, &selection, &warm);
    assert_eq!(warm.counters().misses, warm.counters().inserts);
    g.bench_function("analysis_warm", |b| {
        b.iter(|| {
            black_box(analyze_population_stored(
                &engine, asn, &period, cfg, &selection, &warm,
            ))
        })
    });

    // Snapshot round trip for a store covering the whole bench world.
    let full = SeriesStore::default();
    for a in scenario.world.ases() {
        analyze_population_stored(&engine, a.config.asn, &period, cfg, &selection, &full);
    }
    let dir = std::env::temp_dir().join("lastmile-store-bench");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("bench-{}.lmss", std::process::id()));
    let bytes = full.save_snapshot(&path, 21).unwrap();
    eprintln!("snapshot: {} series, {bytes} bytes on disk", full.len());
    g.bench_function("snapshot_save", |b| {
        b.iter(|| full.save_snapshot(black_box(&path), 21).unwrap())
    });
    g.bench_function("snapshot_load", |b| {
        b.iter(|| black_box(SeriesStore::load_snapshot(&path, 21, StoreConfig::default()).unwrap()))
    });
    let _ = std::fs::remove_file(&path);
    g.finish();
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
