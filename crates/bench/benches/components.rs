//! Component benchmarks: the building blocks every experiment leans on.
//!
//! Covers the FFT (radix-2 and Bluestein lengths), the Welch estimator on
//! a measurement-period-sized signal, median aggregation, longest-prefix
//! matching, the last-mile estimator, the traceroute engine, and the
//! Atlas JSON codec.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lastmile_repro::atlas::json::{parse_traceroute, to_atlas_json};
use lastmile_repro::core::estimator::last_mile_samples;
use lastmile_repro::dsp::fft::fft;
use lastmile_repro::dsp::welch::{welch_peak_to_peak, WelchConfig};
use lastmile_repro::dsp::Complex;
use lastmile_repro::netsim::world::ProbeSpec;
use lastmile_repro::netsim::{IspConfig, TracerouteEngine, World};
use lastmile_repro::prefix::{Prefix, PrefixTrie};
use lastmile_repro::stats::{median, spearman};
use lastmile_repro::timebase::{TimeRange, TzOffset, UnixTime};

fn small_world() -> World {
    let mut b = World::builder(1);
    b.add_isp(IspConfig::legacy_pppoe(
        65001,
        "BENCH",
        "JP",
        TzOffset::JST,
        4.0,
    ));
    b.add_probes(65001, 2, &ProbeSpec::simple());
    b.build()
}

fn bench_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft");
    for n in [64usize, 192, 256, 720, 1024] {
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::new(i as f64, -(i as f64)))
            .collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &x, |b, x| {
            b.iter(|| fft(black_box(x)))
        });
    }
    g.finish();
}

fn bench_welch(c: &mut Criterion) {
    // A 15-day aggregated queuing-delay signal (720 half-hour bins).
    let signal: Vec<f64> = (0..720)
        .map(|i| (core::f64::consts::TAU * i as f64 / 48.0).sin() + 0.1 * (i as f64).sin())
        .collect();
    let cfg = WelchConfig::for_daily_analysis(2.0);
    c.bench_function("welch/15day_signal", |b| {
        b.iter(|| welch_peak_to_peak(black_box(&signal), &cfg).unwrap())
    });
}

fn bench_stats(c: &mut Criterion) {
    let samples: Vec<f64> = (0..216)
        .map(|i| (i as f64 * 0.7).sin() * 5.0 + 10.0)
        .collect();
    c.bench_function("stats/median_216_samples", |b| {
        b.iter(|| median(black_box(&samples)))
    });
    let x: Vec<f64> = (0..768).map(|i| (i as f64 * 0.1).sin()).collect();
    let y: Vec<f64> = (0..768).map(|i| (i as f64 * 0.1).cos()).collect();
    c.bench_function("stats/spearman_768_bins", |b| {
        b.iter(|| spearman(black_box(&x), black_box(&y)))
    });
}

fn bench_prefix_trie(c: &mut Criterion) {
    // A BGP-scale-ish table: 100k prefixes.
    let mut trie: PrefixTrie<u32> = PrefixTrie::new();
    let mut count = 0u32;
    'outer: for a in 1..224u32 {
        for b in 0..255u32 {
            if matches!(a, 10 | 100 | 127 | 169 | 172 | 192 | 198 | 203) {
                continue;
            }
            let p: Prefix = format!("{a}.{b}.0.0/16").parse().unwrap();
            trie.insert(p, count);
            count += 1;
            if count >= 100_000 {
                break 'outer;
            }
        }
    }
    let addrs: Vec<std::net::IpAddr> = (0..1000)
        .map(|i| {
            std::net::IpAddr::V4(std::net::Ipv4Addr::from(
                0x0100_0000u32.wrapping_add(i * 2_654_435_761),
            ))
        })
        .collect();
    c.bench_function("prefix/lpm_lookup_100k_table", |b| {
        b.iter(|| {
            let mut hits = 0;
            for &a in &addrs {
                if trie.lookup(black_box(a)).is_some() {
                    hits += 1;
                }
            }
            hits
        })
    });
}

fn bench_engine_and_estimator(c: &mut Criterion) {
    let world = small_world();
    let engine = TracerouteEngine::new(&world);
    let probe = &world.probes()[0];
    let hour = TimeRange::new(UnixTime::from_secs(0), UnixTime::from_secs(3600));
    c.bench_function("engine/one_probe_hour", |b| {
        b.iter(|| engine.probe_traceroutes(black_box(probe), &hour).len())
    });

    let trs = engine.probe_traceroutes(probe, &hour);
    let tr = trs.iter().find(|t| t.has_last_mile_span()).unwrap();
    c.bench_function("estimator/last_mile_samples", |b| {
        b.iter(|| last_mile_samples(black_box(tr)))
    });

    let json = to_atlas_json(tr, probe.meta.public_addr);
    c.bench_function("atlas/json_parse", |b| {
        b.iter(|| parse_traceroute(black_box(&json)).unwrap())
    });
    c.bench_function("atlas/json_emit", |b| {
        b.iter(|| to_atlas_json(black_box(tr), probe.meta.public_addr))
    });
}

criterion_group!(
    benches,
    bench_fft,
    bench_welch,
    bench_stats,
    bench_prefix_trie,
    bench_engine_and_estimator
);
criterion_main!(benches);
