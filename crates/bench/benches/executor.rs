//! Survey-executor scheduling benchmark.
//!
//! The §3 survey world is probe-count-skewed by construction: probes per
//! AS follow `3 + 1200/(rank+40)`, so a handful of top-ranked ASes carry
//! several times the probes (and analysis cost) of the long tail. Static
//! chunking binds the whole run to whichever chunk drew the hot ASes;
//! the work-stealing executor lets idle workers drain the shared queue
//! instead. The two schedulers produce byte-identical reports (see
//! `tests/survey_executor.rs`); this benchmark quantifies the wall-time
//! gap two ways:
//!
//! * **Schedule model** — per-task costs are measured once, serially,
//!   and replayed through both schedules. The resulting makespans are
//!   printed before the timing runs. This shows the load-balancing win
//!   deterministically, even on a single-core host where real threads
//!   cannot overlap.
//! * **Wall time** — both drivers run at `threads = 4`; on multi-core
//!   hardware the measured gap approaches the modelled one.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lastmile_repro::core::pipeline::PipelineConfig;
use lastmile_repro::netsim::scenarios::survey::{survey_world, SurveyConfig, SurveyScenario};
use lastmile_repro::netsim::TracerouteEngine;
use lastmile_repro::prefix::Asn;
use lastmile_repro::runner::{
    analyze_population_with, eyeballs_from_ground_truth, run_survey, run_survey_static_chunks,
    ProbeSelection, SurveyOptions,
};
use lastmile_repro::timebase::MeasurementPeriod;
use std::time::{Duration, Instant};

const THREADS: usize = 4;

/// A small survey whose probe counts are deliberately left uncapped
/// (`max_probes_per_as` far above `probe_count`'s ceiling), so the few
/// top-ranked ASes dominate the per-task cost distribution.
fn skewed_survey() -> SurveyScenario {
    survey_world(&SurveyConfig {
        seed: 37,
        n_ases: 20,
        max_probes_per_as: 64,
    })
}

/// Measure each (AS, period) task once, serially, in queue order.
fn task_costs(scenario: &SurveyScenario, periods: &[MeasurementPeriod]) -> Vec<(Asn, Duration)> {
    let engine = TracerouteEngine::new(&scenario.world);
    let cfg = PipelineConfig::paper();
    let selection = ProbeSelection::regular();
    let mut costs = Vec::new();
    for a in scenario.world.ases() {
        for period in periods {
            let asn = a.config.asn;
            let t = Instant::now();
            black_box(analyze_population_with(
                &engine, asn, period, cfg, &selection,
            ));
            costs.push((asn, t.elapsed()));
        }
    }
    costs
}

/// Makespan of the static-chunk schedule: the ASN list is split into
/// `ceil(n/threads)`-sized contiguous chunks and each worker runs one
/// chunk to completion, so the slowest chunk is the wall time.
fn static_makespan(costs: &[(Asn, Duration)], periods: usize, threads: usize) -> Duration {
    let per_as: Vec<Duration> = costs
        .chunks(periods)
        .map(|c| c.iter().map(|(_, d)| *d).sum())
        .collect();
    let chunk = per_as.len().div_ceil(threads).max(1);
    per_as
        .chunks(chunk)
        .map(|c| c.iter().sum())
        .max()
        .unwrap_or(Duration::ZERO)
}

/// Makespan of the work-stealing schedule: greedy list scheduling — each
/// task in queue order goes to the worker that frees up first, which is
/// exactly what pulling from a shared queue converges to.
fn stealing_makespan(costs: &[(Asn, Duration)], threads: usize) -> Duration {
    let mut workers = vec![Duration::ZERO; threads];
    for (_, cost) in costs {
        let next = workers.iter_mut().min().expect("at least one worker");
        *next += *cost;
    }
    workers.into_iter().max().unwrap_or(Duration::ZERO)
}

fn bench_executor(c: &mut Criterion) {
    let scenario = skewed_survey();
    let eyeballs = eyeballs_from_ground_truth(&scenario.ground_truth);
    let periods: Vec<MeasurementPeriod> = MeasurementPeriod::survey_periods()
        .into_iter()
        .take(1)
        .collect();

    let costs = task_costs(&scenario, &periods);
    let serial: Duration = costs.iter().map(|(_, d)| *d).sum();
    let fixed = static_makespan(&costs, periods.len(), THREADS);
    let stolen = stealing_makespan(&costs, THREADS);
    println!(
        "schedule model ({THREADS} workers, {} tasks, measured costs):",
        costs.len()
    );
    println!("  serial work            : {serial:>10.1?}");
    println!("  static chunks makespan : {fixed:>10.1?}");
    println!(
        "  work stealing makespan : {stolen:>10.1?}  ({:.2}x better)",
        fixed.as_secs_f64() / stolen.as_secs_f64().max(1e-9)
    );

    let options = SurveyOptions {
        threads: THREADS,
        ..Default::default()
    };
    let mut g = c.benchmark_group("survey_executor");
    // One survey run costs ~a second; keep the sample budget small.
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(3));
    g.bench_function("static_chunks", |b| {
        b.iter(|| {
            run_survey_static_chunks(black_box(&scenario.world), &periods, &eyeballs, &options)
                .rows()
                .len()
        })
    });
    g.bench_function("work_stealing", |b| {
        b.iter(|| {
            run_survey(black_box(&scenario.world), &periods, &eyeballs, &options)
                .rows()
                .len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_executor);
criterion_main!(benches);
