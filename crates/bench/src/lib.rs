//! Criterion benchmark crate — see `benches/`: `components` (FFT, Welch,
//! stats, LPM, engine, JSON), `figures` (one workload per paper figure),
//! and `ablations` (design-choice cost comparisons).
