//! The traceroute engine.
//!
//! Executes the Atlas built-in measurement schedule over a [`World`],
//! producing the same artifact the paper downloads from the Atlas API:
//! traceroutes with per-hop reply triples. A probe's path is:
//!
//! ```text
//!  hop 1   home gateway        192.168.1.1      (RFC1918, last private)
//! (hop 2   carrier-grade NAT   100.64.0.1       for ~10% of probes)
//!  hop 3   ISP edge            <infra prefix>   (first public) ← queue here
//!  hop 4   ISP core            <infra prefix>
//!  hop 5   destination         <measurement target>
//! ```
//!
//! The shared-segment queuing delay enters every hop at or beyond the
//! edge, so the paper's estimator — subtracting last-private from
//! first-public reply RTTs — recovers exactly the queue (plus the
//! last-mile propagation base).
//!
//! Realism knobs, all deterministic in the world seed:
//!
//! * per-reply noise (larger on v1/v2 probes), occasional timeouts;
//! * probe *flakiness*: whole 30-minute bins with fewer than 3 traceroutes
//!   (these must be discarded by the paper's sanity filter);
//! * *transient spikes*: sub-15-minute congestion bursts that the paper's
//!   30-minute median binning is designed to suppress;
//! * anchors: datacenter paths with no last-mile segment dynamics.

use crate::access::ServiceClass;
use crate::rng;
use crate::world::{SimProbe, World};
use lastmile_atlas::measurement::ScheduledRun;
use lastmile_atlas::{Hop, Reply, TracerouteResult};
use lastmile_obs::trace;
#[cfg(test)]
use lastmile_timebase::UnixTime;
use lastmile_timebase::{BinSpec, TimeRange};
use rand::rngs::SmallRng;
use rand::Rng;
use std::net::IpAddr;

/// Probability that any single reply is lost.
const REPLY_TIMEOUT_P: f64 = 0.005;
/// Probability that a middle hop ignores traceroute probes entirely.
const HOP_SILENT_P: f64 = 0.003;
/// Per-bin probability of a transient (sub-15-minute) congestion burst.
const TRANSIENT_SPIKE_P: f64 = 0.02;
/// How much worse a probe's *own* broken segment gets under a lockdown
/// (its residential demand rises like everyone else's, and these segments
/// have no headroom).
const OWN_SEGMENT_LOCKDOWN_BOOST: f64 = 2.5;

/// The concrete hop addresses and access queue of one traceroute path.
struct PathSpec {
    lan_gw: IpAddr,
    src: IpAddr,
    cgn: Option<IpAddr>,
    edge: IpAddr,
    core: IpAddr,
    q: f64,
    /// Peering-link queuing delay, ms — enters the path *beyond* the ISP
    /// edge (core and destination hops only), so the last-mile estimator
    /// never sees it.
    peering: f64,
    /// Route-change RTT level shift, ms — enters at the ISP edge and
    /// persists outward, an aperiodic step the detector must not flag.
    shift: f64,
}

/// Generates traceroutes for probes of a world.
pub struct TracerouteEngine<'w> {
    world: &'w World,
}

impl<'w> TracerouteEngine<'w> {
    /// Create an engine over a world.
    pub fn new(world: &'w World) -> TracerouteEngine<'w> {
        TracerouteEngine { world }
    }

    /// The world being measured.
    pub fn world(&self) -> &'w World {
        self.world
    }

    /// All traceroutes of one probe within a window, chronological.
    pub fn probe_traceroutes(&self, probe: &SimProbe, window: &TimeRange) -> Vec<TracerouteResult> {
        let mut out = Vec::new();
        self.for_each_traceroute(probe, window, |tr| out.push(tr));
        out
    }

    /// All IPv6 traceroutes of one probe within a window (empty when the
    /// probe's AS offers no IPv6 service).
    pub fn probe_traceroutes_v6(
        &self,
        probe: &SimProbe,
        window: &TimeRange,
    ) -> Vec<TracerouteResult> {
        let mut out = Vec::new();
        self.for_each_traceroute_v6(probe, window, |tr| out.push(tr));
        out
    }

    /// Stream one probe's **IPv6** built-in traceroutes. The v6 path runs
    /// over the AS's IPv6 service (IPoE for legacy ISPs), so for a
    /// congested PPPoE network the v6 delay stays flat while the v4 delay
    /// peaks — the delay-side counterpart of Appendix C's throughput view.
    pub fn for_each_traceroute_v6(
        &self,
        probe: &SimProbe,
        window: &TimeRange,
        mut f: impl FnMut(TracerouteResult),
    ) {
        let Some(sim_as) = self.world.as_for(probe.meta.asn) else {
            return;
        };
        let Some(v6_prefix) = sim_as.v6_prefix else {
            return; // no IPv6 service
        };
        if !probe.is_deployed(window.start()) && !probe.is_deployed(window.end() - 1) {
            return;
        }
        // Per-probe simulate cost shows up as one span per probe in
        // `--trace` output (survey-scale exports are probe-major loops).
        let _span = trace::span_with("simulate_probe", |a| {
            a.u64("probe", u64::from(probe.meta.id.0))
                .u64("asn", u64::from(probe.meta.asn))
                .str("family", "v6");
        });
        let nth = u128::from(probe.meta.id.0 % 4096);
        let path_base = PathSpec {
            // Unique-local home side (fd00::/8): private per the paper's
            // hop rule, like RFC1918 on the v4 side.
            lan_gw: "fd00::1".parse().expect("valid ULA"),
            src: "fd00::10".parse().expect("valid ULA"),
            cgn: None, // IPoE needs no carrier NAT
            edge: v6_prefix
                .nth_address(0xE_0000 + nth / 4)
                .expect("v6 /32 has room for edges"),
            core: v6_prefix
                .nth_address(0xF_0000)
                .expect("v6 /32 has room for core"),
            q: 0.0,
            peering: 0.0,
            shift: 0.0,
        };

        let bins = BinSpec::thirty_minutes();
        let seed = self.world.seed();
        let prb = u64::from(probe.meta.id.0);
        let mut current_bin = i64::MIN;
        let mut bin_budget = usize::MAX;
        for run in self.world.catalogue_v6().schedule(probe.meta.id, window) {
            if !probe.is_deployed(run.at) {
                continue;
            }
            let bin = bins.bin_index(run.at);
            if bin != current_bin {
                current_bin = bin;
                // The probe being offline affects both families alike.
                bin_budget = self.bin_budget(probe, bin);
            }
            if bin_budget == 0 {
                continue;
            }
            bin_budget -= 1;
            let q = self
                .world
                .queuing_delay_ms(probe.meta.asn, ServiceClass::BroadbandV6, run.at)
                * probe.participation;
            let path = PathSpec { q, ..path_base };
            let mut trng = rng::rng_for(
                seed,
                &[prb, run.at.as_secs() as u64, u64::from(run.msm_id.0)],
            );
            f(self.synth_traceroute(probe, &run, &path, &mut trng));
        }
    }

    /// Stream one probe's traceroutes to a callback (chronological). This
    /// is the memory-friendly path for survey-scale simulation: nothing is
    /// retained after the callback returns.
    pub fn for_each_traceroute(
        &self,
        probe: &SimProbe,
        window: &TimeRange,
        mut f: impl FnMut(TracerouteResult),
    ) {
        if !probe.is_deployed(window.start()) && !probe.is_deployed(window.end() - 1) {
            return;
        }
        // Per-probe simulate cost shows up as one span per probe in
        // `--trace` output (survey-scale exports are probe-major loops).
        let _span = trace::span_with("simulate_probe", |a| {
            a.u64("probe", u64::from(probe.meta.id.0))
                .u64("asn", u64::from(probe.meta.asn))
                .str("family", "v4");
        });
        let bins = BinSpec::thirty_minutes();
        let seed = self.world.seed();
        let prb = u64::from(probe.meta.id.0);

        let mut current_bin = i64::MIN;
        let mut bin_budget = usize::MAX; // runs allowed in this bin (flakiness)
        let mut spike: Option<(TimeRange, f64)> = None;

        for run in self.world.catalogue().schedule(probe.meta.id, window) {
            if !probe.is_deployed(run.at) {
                continue;
            }
            let bin = bins.bin_index(run.at);
            if bin != current_bin {
                current_bin = bin;
                bin_budget = self.bin_budget(probe, bin);
                spike = self.bin_spike(probe, bin);
            }
            if bin_budget == 0 {
                continue;
            }
            bin_budget -= 1;

            let spike_ms = match &spike {
                Some((range, ms)) if range.contains(run.at) => *ms,
                _ => 0.0,
            };
            let mut trng = rng::rng_for(
                seed,
                &[prb, run.at.as_secs() as u64, u64::from(run.msm_id.0)],
            );
            f(self.run_one(probe, &run, spike_ms, &mut trng));
        }
    }

    /// How many traceroutes the probe manages this bin (usually all).
    fn bin_budget(&self, probe: &SimProbe, bin: i64) -> usize {
        let u = rng::unit_f64(
            self.world.seed(),
            &[u64::from(probe.meta.id.0), bin as u64, 0xD0],
        );
        if u < probe.flakiness {
            // Disconnected for most of the bin: 0..=2 runs get through,
            // below the paper's >= 3 sanity threshold.
            (u / probe.flakiness * 3.0) as usize
        } else {
            usize::MAX
        }
    }

    /// An optional transient congestion burst inside the bin: shorter than
    /// 15 minutes, so the per-bin median (over >= 30 minutes of runs) must
    /// suppress it.
    fn bin_spike(&self, probe: &SimProbe, bin: i64) -> Option<(TimeRange, f64)> {
        if probe.meta.is_anchor {
            return None;
        }
        let id = u64::from(probe.meta.id.0);
        let u = rng::unit_f64(self.world.seed(), &[id, bin as u64, 0x5F1]);
        if u >= TRANSIENT_SPIKE_P {
            return None;
        }
        let bins = BinSpec::thirty_minutes();
        let start_off =
            (rng::unit_f64(self.world.seed(), &[id, bin as u64, 0x5F2]) * 1000.0) as i64;
        let dur = 120 + (rng::unit_f64(self.world.seed(), &[id, bin as u64, 0x5F3]) * 720.0) as i64;
        let magnitude = 5.0 + rng::unit_f64(self.world.seed(), &[id, bin as u64, 0x5F4]) * 25.0;
        let start = bins.index_start(bin) + start_off;
        Some((TimeRange::new(start, start + dur), magnitude))
    }

    fn run_one(
        &self,
        probe: &SimProbe,
        run: &ScheduledRun,
        spike_ms: f64,
        trng: &mut SmallRng,
    ) -> TracerouteResult {
        let shared_q =
            self.world
                .queuing_delay_ms(probe.meta.asn, ServiceClass::BroadbandV4, run.at)
                * probe.participation;
        // The probe's own (non-shared) segment follows the same local
        // demand rhythm but is invisible to the AS-level aggregate median.
        let own_q = if probe.own_peak_ms > 0.0 {
            let shape = self
                .world
                .as_for(probe.meta.asn)
                .map(|a| self.world.demand_shape(a, run.at))
                .unwrap_or(0.0);
            let boost = if self.world.is_lockdown(run.at) {
                OWN_SEGMENT_LOCKDOWN_BOOST
            } else {
                1.0
            };
            probe.own_peak_ms * shape * boost
        } else {
            0.0
        };
        let q = shared_q + own_q + spike_ms;
        let path = PathSpec {
            lan_gw: probe.lan_gw,
            src: probe.src,
            cgn: probe.cgn,
            edge: probe.edge,
            core: self.core_address(probe),
            q,
            peering: self.world.peering_delay_ms(probe.meta.asn, run.at),
            shift: self.world.route_shift_ms(probe.meta.asn, run.at),
        };
        self.synth_traceroute(probe, run, &path, trng)
    }

    /// Synthesize the traceroute of one run along a concrete path.
    fn synth_traceroute(
        &self,
        probe: &SimProbe,
        run: &ScheduledRun,
        path: &PathSpec,
        trng: &mut SmallRng,
    ) -> TracerouteResult {
        let q = path.q;

        let mut hops: Vec<Hop> = Vec::with_capacity(5);
        let mut hop_no = 0u8;
        let mut push = |addr: IpAddr, base: f64, engine_rng: &mut SmallRng| {
            hop_no += 1;
            // Rarely a router ignores probes entirely.
            if engine_rng.gen::<f64>() < HOP_SILENT_P {
                hops.push(Hop {
                    hop: hop_no,
                    replies: vec![Reply::timeout(); 3],
                });
                return;
            }
            let replies = (0..3)
                .map(|_| {
                    if engine_rng.gen::<f64>() < REPLY_TIMEOUT_P {
                        Reply::timeout()
                    } else {
                        let noise = half_gauss(engine_rng) * probe.noise_ms;
                        Reply::answered(addr, (base + noise).max(0.05))
                    }
                })
                .collect();
            hops.push(Hop {
                hop: hop_no,
                replies,
            });
        };

        // 1. home gateway (private LAN)
        push(path.lan_gw, probe.base_lan_ms, trng);
        // 2. optional CGN (still before the edge; negligible extra delay)
        if let Some(cgn) = path.cgn {
            push(cgn, probe.base_lan_ms + 0.2, trng);
        }
        // 3. ISP edge: base LAN + access propagation + shared-segment
        //    queue, plus any route-change level shift (the new upstream
        //    path changes the edge RTT too)
        let edge_rtt = probe.base_lan_ms + probe.base_access_ms + q + path.shift;
        push(path.edge, edge_rtt, trng);
        // 4. ISP core (one hop into the backbone; everything beyond the
        //    edge keeps carrying the access queue delay, and crossing the
        //    peering link adds its queue — invisible to edge − LAN)
        push(
            path.core,
            edge_rtt + path.peering + 1.0 + 2.0 * trng.gen::<f64>(),
            trng,
        );
        // 5. destination
        push(
            run.target,
            edge_rtt + path.peering + 4.0 + 6.0 * trng.gen::<f64>(),
            trng,
        );

        TracerouteResult {
            probe: probe.meta.id,
            msm_id: run.msm_id.0,
            timestamp: run.at,
            dst: run.target,
            src: path.src,
            hops,
        }
    }

    /// A backbone router address of the probe's AS.
    fn core_address(&self, probe: &SimProbe) -> IpAddr {
        self.world
            .as_for(probe.meta.asn)
            .and_then(|a| a.infra_prefix.nth_address(60_000))
            .unwrap_or(probe.edge)
    }
}

/// Half-normal deviate (|N(0,1)|) via Box–Muller, from uniform draws.
fn half_gauss(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos();
    z.abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isp::IspConfig;
    use crate::world::ProbeSpec;
    use lastmile_timebase::{CivilDate, TzOffset};

    fn test_world() -> World {
        let mut b = World::builder(99);
        b.add_isp(IspConfig::legacy_pppoe(
            65001,
            "ISP_A",
            "JP",
            TzOffset::JST,
            4.0,
        ));
        b.add_isp(IspConfig::clean(65002, "ISP_C", "JP", TzOffset::JST));
        b.add_probes(65001, 4, &ProbeSpec::simple());
        b.add_probes(65002, 4, &ProbeSpec::simple());
        b.add_anchor(65001);
        b.build()
    }

    fn one_day() -> TimeRange {
        let start = CivilDate::new(2019, 9, 19).midnight();
        TimeRange::new(start, start + 86_400)
    }

    #[test]
    fn probes_produce_about_24_traceroutes_per_bin() {
        let w = test_world();
        let engine = TracerouteEngine::new(&w);
        let probe = &w.probes()[0];
        let trs = engine.probe_traceroutes(probe, &one_day());
        // 48 bins x 24 runs, minus flaky bins.
        assert!(trs.len() > 1000 && trs.len() <= 48 * 24, "{}", trs.len());
    }

    #[test]
    fn traceroutes_have_last_mile_structure() {
        let w = test_world();
        let engine = TracerouteEngine::new(&w);
        let probe = &w.probes()[0];
        let trs = engine.probe_traceroutes(probe, &one_day());
        let usable = trs.iter().filter(|t| t.has_last_mile_span()).count();
        assert!(
            usable as f64 > trs.len() as f64 * 0.95,
            "{usable}/{}",
            trs.len()
        );
        let tr = trs.iter().find(|t| t.has_last_mile_span()).unwrap();
        assert_eq!(tr.last_private_hop().unwrap().address(), Some(probe.lan_gw));
        assert_eq!(tr.edge_address(), Some(probe.edge));
        // Edge RTT must exceed LAN RTT.
        let lan: Vec<f64> = tr.last_private_hop().unwrap().rtts().collect();
        let edge: Vec<f64> = tr.first_public_hop().unwrap().rtts().collect();
        assert!(
            edge.iter().sum::<f64>() / edge.len() as f64
                > lan.iter().sum::<f64>() / lan.len() as f64
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let w = test_world();
        let engine = TracerouteEngine::new(&w);
        let probe = &w.probes()[2];
        let a = engine.probe_traceroutes(probe, &one_day());
        let b = engine.probe_traceroutes(probe, &one_day());
        assert_eq!(a, b);
    }

    #[test]
    fn congested_evening_rtts_exceed_night_rtts() {
        let w = test_world();
        let engine = TracerouteEngine::new(&w);
        // Use a high-participation probe of the congested AS.
        let probe = w
            .probes_in(65001)
            .find(|p| !p.meta.is_anchor && p.participation > 0.7)
            .expect("a participating probe exists");
        let trs = engine.probe_traceroutes(probe, &one_day());
        let edge_minus_lan = |t: &TracerouteResult| {
            let lan = t.last_private_hop()?.rtts().next()?;
            let edge = t.first_public_hop()?.rtts().next()?;
            Some(edge - lan)
        };
        // JST evening = 12:00 UTC, JST night = 19:00 UTC.
        let mut evening = Vec::new();
        let mut night = Vec::new();
        for t in &trs {
            let h = t.timestamp.hour_of_day();
            if let Some(d) = edge_minus_lan(t) {
                if h == 12 {
                    evening.push(d);
                } else if h == 19 {
                    night.push(d);
                }
            }
        }
        let med = |v: &mut Vec<f64>| {
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[v.len() / 2]
        };
        let e = med(&mut evening);
        let n = med(&mut night);
        assert!(e > n + 1.0, "evening {e} vs night {n}");
    }

    #[test]
    fn anchor_path_has_no_congestion_and_no_home_lan() {
        let w = test_world();
        let engine = TracerouteEngine::new(&w);
        let anchor = w.probes().iter().find(|p| p.meta.is_anchor).unwrap();
        let trs = engine.probe_traceroutes(anchor, &one_day());
        assert!(!trs.is_empty());
        for t in trs.iter().take(50) {
            if let (Some(lan), Some(edge)) = (t.last_private_hop(), t.first_public_hop()) {
                let l = lan.rtts().next().unwrap_or(0.0);
                let e = edge.rtts().next().unwrap_or(0.0);
                assert!(e < 1.5, "anchor edge RTT {e}");
                assert!(l < 0.8, "anchor lan RTT {l}");
            }
        }
    }

    #[test]
    fn v6_traceroutes_follow_the_ipoe_path() {
        // A congested legacy AS with an IPv6 (IPoE) service: v4 delay
        // peaks in the evening, v6 stays flat.
        let mut b = World::builder(21);
        b.add_isp(IspConfig::legacy_pppoe(65001, "V6", "JP", TzOffset::JST, 6.0).with_v6(0.2));
        b.add_probes(65001, 2, &ProbeSpec::simple());
        let w = b.build();
        let engine = TracerouteEngine::new(&w);
        let probe = w.probes().iter().find(|p| p.participation > 0.7).unwrap();
        let day = one_day();

        let v6 = engine.probe_traceroutes_v6(probe, &day);
        // 13 runs per 30-minute bin, 48 bins, minus flaky bins.
        assert!(v6.len() > 500 && v6.len() <= 48 * 13, "{}", v6.len());
        let tr = v6.iter().find(|t| t.has_last_mile_span()).unwrap();
        // Home side is unique-local (private), edge is global v6.
        assert!(tr.last_private_hop().unwrap().address().unwrap().is_ipv6());
        let edge = tr.edge_address().unwrap();
        assert!(edge.is_ipv6());
        assert_eq!(w.registry().asn_of(edge), Some(65001));

        // Evening (12:00 UTC = 21:00 JST) vs night (19:00 UTC) deltas.
        let lastmile = |t: &TracerouteResult| -> Option<f64> {
            let lan = t.last_private_hop()?.rtts().next()?;
            let e = t.first_public_hop()?.rtts().next()?;
            Some(e - lan)
        };
        let med_at = |trs: &[TracerouteResult], h: u8| {
            let mut v: Vec<f64> = trs
                .iter()
                .filter(|t| t.timestamp.hour_of_day() == h)
                .filter_map(lastmile)
                .collect();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[v.len() / 2]
        };
        let v4 = engine.probe_traceroutes(probe, &day);
        let v4_swing = med_at(&v4, 12) - med_at(&v4, 19);
        let v6_swing = med_at(&v6, 12) - med_at(&v6, 19);
        assert!(v4_swing > 2.0, "v4 evening swing {v4_swing:.2}");
        assert!(
            v6_swing < v4_swing * 0.25,
            "v6 swing {v6_swing:.2} vs v4 {v4_swing:.2}"
        );
    }

    #[test]
    fn peering_congestion_is_invisible_to_the_last_mile_estimator() {
        // A fiber AS whose *peering* link is congested: the core and
        // destination RTTs swing with the evening, but edge − LAN stays
        // flat — the estimator's structural blindness the fleet's
        // adversarial ASes rely on.
        let mut b = World::builder(31);
        b.add_isp(
            IspConfig::clean(65001, "PEER", "JP", TzOffset::JST).with_peering_congestion(6.0),
        );
        b.add_probes(65001, 2, &ProbeSpec::simple());
        let w = b.build();
        let engine = TracerouteEngine::new(&w);
        let probe = w.probes().iter().find(|p| p.participation > 0.7).unwrap();
        let trs = engine.probe_traceroutes(probe, &one_day());

        let med_at = |h: u8, f: &dyn Fn(&TracerouteResult) -> Option<f64>| {
            let mut v: Vec<f64> = trs
                .iter()
                .filter(|t| t.timestamp.hour_of_day() == h)
                .filter_map(f)
                .collect();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[v.len() / 2]
        };
        let lastmile = |t: &TracerouteResult| -> Option<f64> {
            Some(t.first_public_hop()?.rtts().next()? - t.last_private_hop()?.rtts().next()?)
        };
        let core_minus_edge = |t: &TracerouteResult| -> Option<f64> {
            let edge = t.first_public_hop()?.rtts().next()?;
            let core = t.hops.get(2)?.rtts().next()?;
            Some(core - edge)
        };
        // JST evening = 12:00 UTC, JST night = 19:00 UTC.
        let lm_swing = med_at(12, &lastmile) - med_at(19, &lastmile);
        let core_swing = med_at(12, &core_minus_edge) - med_at(19, &core_minus_edge);
        assert!(core_swing > 2.0, "core-hop evening swing {core_swing:.2}");
        assert!(lm_swing.abs() < 0.5, "last-mile swing {lm_swing:.2}");
    }

    #[test]
    fn route_shift_steps_the_edge_rtt_aperiodically() {
        let at = CivilDate::new(2019, 9, 19).midnight() + 43_200;
        let mut b = World::builder(32);
        b.add_isp(IspConfig::clean(65001, "SHIFT", "DE", TzOffset::CET).with_route_shift(at, 5.0));
        b.add_probes(65001, 1, &ProbeSpec::simple());
        let w = b.build();
        let engine = TracerouteEngine::new(&w);
        let probe = &w.probes()[0];
        let trs = engine.probe_traceroutes(probe, &one_day());
        let med = |pred: &dyn Fn(&TracerouteResult) -> bool| {
            let mut v: Vec<f64> = trs
                .iter()
                .filter(|t| pred(t))
                .filter_map(|t| t.first_public_hop()?.rtts().next())
                .collect();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[v.len() / 2]
        };
        let before = med(&|t: &TracerouteResult| t.timestamp < at);
        let after = med(&|t: &TracerouteResult| t.timestamp >= at);
        assert!(
            after > before + 4.0,
            "edge RTT must step: {before:.2} -> {after:.2}"
        );
        // The step rides through to the destination hop as well.
        let dst_after = {
            let mut v: Vec<f64> = trs
                .iter()
                .filter(|t| t.timestamp >= at)
                .filter_map(|t| t.hops.last()?.rtts().next())
                .collect();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[v.len() / 2]
        };
        assert!(dst_after > after, "destination carries the shifted edge");
    }

    #[test]
    fn as_without_v6_yields_no_v6_traceroutes() {
        let w = test_world(); // no v6 services configured
        let engine = TracerouteEngine::new(&w);
        let probe = &w.probes()[0];
        assert!(engine.probe_traceroutes_v6(probe, &one_day()).is_empty());
    }

    #[test]
    fn retired_probes_go_silent() {
        let mut b = World::builder(6);
        b.add_isp(IspConfig::clean(65001, "X", "DE", TzOffset::CET));
        b.add_probes(
            65001,
            1,
            &ProbeSpec::simple().retired_at(CivilDate::new(2019, 9, 19).midnight() + 43_200),
        );
        let w = b.build();
        let engine = TracerouteEngine::new(&w);
        let trs = engine.probe_traceroutes(&w.probes()[0], &one_day());
        // Half a day of activity, then silence.
        assert!(!trs.is_empty());
        let cutoff = CivilDate::new(2019, 9, 19).midnight() + 43_200;
        assert!(trs.iter().all(|t| t.timestamp < cutoff));
        // Exactly half a day of the 48-runs-per-hour schedule remains
        // (modulo flaky bins).
        assert!(trs.len() <= 12 * 48 && trs.len() > 10 * 48, "{}", trs.len());
    }

    #[test]
    fn undeployed_probes_are_silent() {
        let mut b = World::builder(5);
        b.add_isp(IspConfig::clean(65001, "X", "DE", TzOffset::CET));
        b.add_probes(
            65001,
            1,
            &ProbeSpec::simple().deployed_since(CivilDate::new(2020, 1, 1).midnight()),
        );
        let w = b.build();
        let engine = TracerouteEngine::new(&w);
        let trs = engine.probe_traceroutes(&w.probes()[0], &one_day()); // 2019
        assert!(trs.is_empty());
    }

    #[test]
    fn flaky_bins_fall_below_sanity_threshold() {
        // Force high flakiness via many probes and count bins with 1-2 runs.
        let w = test_world();
        let engine = TracerouteEngine::new(&w);
        let bins = BinSpec::thirty_minutes();
        let mut short_bins = 0usize;
        let mut total_bins = 0usize;
        for probe in w.probes() {
            let trs = engine.probe_traceroutes(probe, &one_day());
            let mut counts = std::collections::HashMap::new();
            for t in &trs {
                *counts.entry(bins.bin_index(t.timestamp)).or_insert(0usize) += 1;
            }
            total_bins += counts.len();
            short_bins += counts.values().filter(|&&c| c < 3).count();
        }
        // Flakiness is rare but must exist across a day x 9 probes.
        assert!(total_bins > 300);
        assert!(short_bins < total_bins / 10, "{short_bins}/{total_bins}");
    }

    #[test]
    fn cgn_probes_expose_cgn_hop() {
        // Build enough probes that some draw CGN.
        let mut b = World::builder(11);
        b.add_isp(IspConfig::clean(65001, "X", "DE", TzOffset::CET));
        b.add_probes(65001, 40, &ProbeSpec::simple());
        let w = b.build();
        let engine = TracerouteEngine::new(&w);
        let cgn_probe = w
            .probes()
            .iter()
            .find(|p| p.cgn.is_some())
            .expect("~10% draw CGN");
        let trs = engine.probe_traceroutes(
            cgn_probe,
            &TimeRange::new(UnixTime::from_secs(0), UnixTime::from_secs(3600)),
        );
        let tr = trs.iter().find(|t| t.has_last_mile_span()).unwrap();
        // The estimator must use the CGN hop as last private.
        assert_eq!(tr.last_private_hop().unwrap().address(), cgn_probe.cgn);
    }
}
