//! The simulated Internet.
//!
//! A [`World`] is a set of eyeball ASes (each with calibrated queues and
//! announced prefixes), a probe fleet with per-probe heterogeneity, and
//! the global knobs the scenarios need (a lockdown window for the COVID-19
//! experiments). It answers the two questions the rest of the workspace
//! asks:
//!
//! * the **traceroute engine**: what are this probe's hops, and what is
//!   the queuing delay on its AS's shared segment at instant `t`?
//! * the **CDN log generator**: what RTT, loss and line rate does a client
//!   of AS `x` on service class `c` see at instant `t`?
//!
//! Per-probe heterogeneity matters to the paper's aggregation story: not
//! every probe of a congested AS sits behind a congested segment (§5 "the
//! other probes may not see any congestion"), so each probe draws a
//! *participation* factor; the population median only rises when most
//! probes share the fate.

use crate::access::{AccessTech, ServiceClass};
use crate::isp::IspConfig;
use crate::queue::QueueModel;
use crate::rng;
use lastmile_atlas::{BuiltinCatalogue, Probe, ProbeId, ProbeVersion};
use lastmile_prefix::registry::SpaceAllocator;
use lastmile_prefix::{AsRegistry, Asn, Prefix, PrefixRole};
use lastmile_timebase::{TimeRange, UnixTime};
use std::collections::HashMap;
use std::net::IpAddr;

/// One AS with its calibrated queues and address space.
#[derive(Clone, Debug)]
pub struct SimAs {
    /// The scenario's ground truth for this AS.
    pub config: IspConfig,
    /// Queue on the shared IPv4 broadband segment.
    pub broadband_queue: QueueModel,
    /// Queue on the mobile service, if offered.
    pub mobile_queue: Option<QueueModel>,
    /// Queue on the IPv6 (IPoE) service, if offered.
    pub v6_queue: Option<QueueModel>,
    /// Queue on the upstream peering link, if that interconnect is
    /// congested. Sits *beyond* the ISP edge: its delay reaches the core
    /// and destination hops but never the edge−LAN last-mile estimate.
    pub peering_queue: Option<QueueModel>,
    /// Customer IPv4 space (broadband).
    pub broadband_prefix: Prefix,
    /// Router/edge interface space — the "first public IP" addresses.
    pub infra_prefix: Prefix,
    /// Mobile customer space, if offered (announced under the mobile ASN).
    pub mobile_prefix: Option<Prefix>,
    /// IPv6 customer space, if offered.
    pub v6_prefix: Option<Prefix>,
}

/// One probe of the simulated fleet.
#[derive(Clone, Debug)]
pub struct SimProbe {
    /// Atlas-visible metadata (id, ASN, country, anchor flag, version…).
    pub meta: Probe,
    /// The home gateway address (RFC1918) — the last private hop.
    pub lan_gw: IpAddr,
    /// The probe's own source address.
    pub src: IpAddr,
    /// Optional carrier-grade NAT hop between home and edge.
    pub cgn: Option<IpAddr>,
    /// The ISP edge interface this probe's traceroutes reveal — the first
    /// public hop.
    pub edge: IpAddr,
    /// Home LAN RTT component, ms.
    pub base_lan_ms: f64,
    /// Last-mile propagation (no queue), ms.
    pub base_access_ms: f64,
    /// Fraction of the AS-level queuing delay this probe experiences
    /// (most probes ≈ 1, a minority on uncongested segments ≈ 0).
    pub participation: f64,
    /// Peak queuing delay (ms) of this probe's *own* access segment,
    /// independent of the AS-wide shared queue. A small minority of
    /// probes sit behind genuinely broken segments: their individual
    /// daily delay can cross 5 ms while the population median barely
    /// moves (the §2.2 per-probe tail). Zero for most probes.
    pub own_peak_ms: f64,
    /// Per-reply RTT noise scale, ms (larger for v1/v2 hardware).
    pub noise_ms: f64,
    /// Per-bin probability of being disconnected (yields a bin with < 3
    /// traceroutes, exercising the paper's sanity filter).
    pub flakiness: f64,
    /// When the probe came online (deployment growth between periods).
    pub deployed_since: UnixTime,
    /// When the probe went offline for good, if it did — real deployments
    /// shrink as well as grow (ISP_DE's legend drops from 326 to 324
    /// probes between periods in the paper's Figure 1).
    pub retired_at: Option<UnixTime>,
}

impl SimProbe {
    /// Whether this probe reports at instant `t`.
    pub fn is_deployed(&self, t: UnixTime) -> bool {
        t >= self.deployed_since && self.retired_at.is_none_or(|r| t < r)
    }
}

/// The access-path state a client of an AS sees at one instant — the
/// interface consumed by the CDN throughput model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AccessState {
    /// Typical base RTT (client to CDN, no queue), ms.
    pub base_rtt_ms: f64,
    /// Queuing delay on the access segment, ms.
    pub queuing_ms: f64,
    /// Packet loss rate on the access segment.
    pub loss_rate: f64,
    /// Access line rate cap, Mbps.
    pub line_rate_mbps: f64,
}

impl AccessState {
    /// Total effective RTT, ms.
    pub fn rtt_ms(&self) -> f64 {
        self.base_rtt_ms + self.queuing_ms
    }
}

/// The simulated Internet.
#[derive(Clone, Debug)]
pub struct World {
    seed: u64,
    ases: Vec<SimAs>,
    asn_index: HashMap<Asn, usize>,
    probes: Vec<SimProbe>,
    registry: AsRegistry,
    catalogue: BuiltinCatalogue,
    catalogue_v6: BuiltinCatalogue,
    lockdown: Option<TimeRange>,
}

impl World {
    /// Start building a world with the given master seed.
    pub fn builder(seed: u64) -> WorldBuilder {
        WorldBuilder {
            seed,
            allocator: SpaceAllocator::new(),
            registry: AsRegistry::new(),
            ases: Vec::new(),
            asn_index: HashMap::new(),
            probes: Vec::new(),
            next_probe_id: 6000,
            lockdown: None,
        }
    }

    /// The master seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// All ASes.
    pub fn ases(&self) -> &[SimAs] {
        &self.ases
    }

    /// Look up an AS by ASN.
    pub fn as_for(&self, asn: Asn) -> Option<&SimAs> {
        self.asn_index.get(&asn).map(|&i| &self.ases[i])
    }

    /// The probe fleet.
    pub fn probes(&self) -> &[SimProbe] {
        &self.probes
    }

    /// Probes homed in an AS.
    pub fn probes_in(&self, asn: Asn) -> impl Iterator<Item = &SimProbe> {
        self.probes.iter().filter(move |p| p.meta.asn == asn)
    }

    /// The prefix registry (BGP-table substitute).
    pub fn registry(&self) -> &AsRegistry {
        &self.registry
    }

    /// The built-in measurement catalogue probes execute.
    pub fn catalogue(&self) -> &BuiltinCatalogue {
        &self.catalogue
    }

    /// The IPv6 built-in catalogue (run only by probes whose AS offers an
    /// IPv6 service).
    pub fn catalogue_v6(&self) -> &BuiltinCatalogue {
        &self.catalogue_v6
    }

    /// The configured lockdown window, if any.
    pub fn lockdown(&self) -> Option<TimeRange> {
        self.lockdown
    }

    /// Whether instant `t` falls inside the lockdown window.
    pub fn is_lockdown(&self, t: UnixTime) -> bool {
        self.lockdown.as_ref().is_some_and(|r| r.contains(t))
    }

    /// Demand shape of an AS at `t` (lockdown-aware), in `[0, 1]`.
    pub fn demand_shape(&self, sim_as: &SimAs, t: UnixTime) -> f64 {
        if self.is_lockdown(t) {
            sim_as
                .config
                .demand
                .under_lockdown()
                .shape_at(t, sim_as.config.tz)
        } else {
            sim_as.config.demand.shape_at(t, sim_as.config.tz)
        }
    }

    /// Day-to-day amplitude wobble (deterministic per AS and day): real
    /// congestion is not identical every evening.
    fn day_factor(&self, asn: Asn, t: UnixTime) -> f64 {
        let day = t.days_since_epoch() as u64;
        1.0 + 0.24 * (rng::unit_f64(self.seed, &[u64::from(asn), day, 0x0DA1]) - 0.5)
    }

    /// Slow (multi-week) severity drift, piecewise-constant over 15-day
    /// windows: subscriber growth, capacity upgrades and seasonal shifts
    /// move an AS's congestion level between measurement periods. This is
    /// what produces the period-to-period churn of reported ASes the
    /// paper observes (§3.1: only 36 of the ~47 per-period reports recur
    /// in half the periods).
    fn period_factor(&self, asn: Asn, t: UnixTime) -> f64 {
        let window = t.days_since_epoch().div_euclid(15) as u64;
        1.0 + 0.5 * (rng::unit_f64(self.seed, &[u64::from(asn), window, 0x9E02]) - 0.5)
    }

    /// Queuing delay on an AS's given service at instant `t`, ms.
    ///
    /// Returns 0 for ASes or services the world does not model, and for
    /// instants outside a transient AS's `active_window`.
    pub fn queuing_delay_ms(&self, asn: Asn, class: ServiceClass, t: UnixTime) -> f64 {
        let Some(sim_as) = self.as_for(asn) else {
            return 0.0;
        };
        if sim_as
            .config
            .active_window
            .as_ref()
            .is_some_and(|w| !w.contains(t))
        {
            return 0.0;
        }
        let Some(queue) = self.queue_of(sim_as, class) else {
            return 0.0;
        };
        let shape = self.demand_shape(sim_as, t);
        let lockdown_boost = if self.is_lockdown(t) {
            sim_as.config.lockdown_factor
        } else {
            1.0
        };
        queue.queuing_delay_ms(shape)
            * self.day_factor(asn, t)
            * self.period_factor(asn, t)
            * lockdown_boost
    }

    /// Queuing delay on an AS's upstream **peering** link at `t`, ms.
    ///
    /// The interconnect carries the AS's aggregate demand, so a congested
    /// peering link peaks in the local evening too — but the delay enters
    /// the path *beyond* the ISP edge, where the last-mile estimator
    /// (first-public minus last-private) cannot see it. Zero for ASes
    /// without peering congestion.
    pub fn peering_delay_ms(&self, asn: Asn, t: UnixTime) -> f64 {
        let Some(sim_as) = self.as_for(asn) else {
            return 0.0;
        };
        let Some(queue) = &sim_as.peering_queue else {
            return 0.0;
        };
        queue.queuing_delay_ms(self.demand_shape(sim_as, t)) * self.day_factor(asn, t)
    }

    /// Route-change RTT level shift affecting an AS's upstream path at
    /// `t`, ms. Zero before the shift instant and for ASes without one.
    pub fn route_shift_ms(&self, asn: Asn, t: UnixTime) -> f64 {
        self.as_for(asn)
            .and_then(|a| a.config.route_shift)
            .map_or(0.0, |rs| if t >= rs.at { rs.delta_ms } else { 0.0 })
    }

    /// Loss rate on an AS's given service at instant `t`.
    pub fn loss_rate(&self, asn: Asn, class: ServiceClass, t: UnixTime) -> f64 {
        let Some(sim_as) = self.as_for(asn) else {
            return 0.0;
        };
        let Some(queue) = self.queue_of(sim_as, class) else {
            return 0.0;
        };
        queue.loss_rate(self.demand_shape(sim_as, t))
    }

    fn queue_of<'a>(&self, sim_as: &'a SimAs, class: ServiceClass) -> Option<&'a QueueModel> {
        match class {
            ServiceClass::BroadbandV4 => Some(&sim_as.broadband_queue),
            ServiceClass::BroadbandV6 => sim_as.v6_queue.as_ref(),
            ServiceClass::Mobile => sim_as.mobile_queue.as_ref(),
        }
    }

    /// The full access state a client of (`asn`, `class`) sees at `t`,
    /// or `None` if the AS does not offer that service.
    pub fn access_state(&self, asn: Asn, class: ServiceClass, t: UnixTime) -> Option<AccessState> {
        let sim_as = self.as_for(asn)?;
        self.queue_of(sim_as, class)?;
        let tech = match class {
            ServiceClass::Mobile => AccessTech::MobileLte,
            _ => sim_as.config.access,
        };
        let (lo, hi) = tech.base_rtt_range_ms();
        Some(AccessState {
            // Mid-range base plus a metro-to-CDN component.
            base_rtt_ms: (lo + hi) / 2.0 + 3.0,
            queuing_ms: self.queuing_delay_ms(asn, class, t),
            loss_rate: self.loss_rate(asn, class, t),
            line_rate_mbps: tech.line_rate_mbps(),
        })
    }

    /// The customer prefix serving a service class of an AS.
    pub fn client_prefix(&self, asn: Asn, class: ServiceClass) -> Option<Prefix> {
        let sim_as = self.as_for(asn)?;
        match class {
            ServiceClass::BroadbandV4 => Some(sim_as.broadband_prefix),
            ServiceClass::BroadbandV6 => sim_as.v6_prefix,
            ServiceClass::Mobile => sim_as.mobile_prefix,
        }
    }
}

/// A standard normal deviate from two independent uniforms (Box–Muller).
fn gauss_from_units(u1: f64, u2: f64) -> f64 {
    (-2.0 * u1.max(1e-12).ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
}

/// Builder for [`World`].
pub struct WorldBuilder {
    seed: u64,
    allocator: SpaceAllocator,
    registry: AsRegistry,
    ases: Vec<SimAs>,
    asn_index: HashMap<Asn, usize>,
    probes: Vec<SimProbe>,
    next_probe_id: u32,
    lockdown: Option<TimeRange>,
}

/// How a batch of probes is added to an AS.
#[derive(Clone, Debug)]
pub struct ProbeSpec {
    /// Geographic area tag (e.g. "Tokyo"); empty when irrelevant.
    pub area: String,
    /// When the batch came online.
    pub deployed_since: UnixTime,
    /// When the batch retired, if ever.
    pub retired_at: Option<UnixTime>,
    /// Fraction of probes that are old v1/v2 hardware (noisier timing).
    pub old_version_fraction: f64,
}

impl ProbeSpec {
    /// Probes online since the beginning of time, no area tag, all-v3.
    pub fn simple() -> ProbeSpec {
        ProbeSpec {
            area: String::new(),
            deployed_since: UnixTime::from_secs(0),
            retired_at: None,
            old_version_fraction: 0.0,
        }
    }

    /// Set the area tag.
    pub fn in_area(mut self, area: &str) -> ProbeSpec {
        self.area = area.to_string();
        self
    }

    /// Set the deployment date.
    pub fn deployed_since(mut self, t: UnixTime) -> ProbeSpec {
        self.deployed_since = t;
        self
    }

    /// Set the retirement date.
    pub fn retired_at(mut self, t: UnixTime) -> ProbeSpec {
        self.retired_at = Some(t);
        self
    }

    /// Set the old-hardware fraction (the paper's v1/v2 probes).
    pub fn with_old_versions(mut self, fraction: f64) -> ProbeSpec {
        assert!((0.0..=1.0).contains(&fraction), "fraction out of range");
        self.old_version_fraction = fraction;
        self
    }
}

impl WorldBuilder {
    /// Declare a lockdown window (the COVID-19 period).
    pub fn lockdown(mut self, range: TimeRange) -> WorldBuilder {
        self.lockdown = Some(range);
        self
    }

    /// Add an AS: allocates and announces its prefixes, calibrates its
    /// queues. Panics if the ASN is already present (scenario bug).
    pub fn add_isp(&mut self, config: IspConfig) -> &mut WorldBuilder {
        assert!(
            !self.asn_index.contains_key(&config.asn),
            "duplicate ASN {}",
            config.asn
        );
        let broadband_prefix = self.allocator.next_v4_slash16();
        let infra_prefix = self.allocator.next_v4_slash16();
        self.registry
            .announce(config.asn, broadband_prefix, PrefixRole::Broadband);
        self.registry
            .announce(config.asn, infra_prefix, PrefixRole::Infrastructure);

        let mobile_prefix = config.mobile.as_ref().map(|m| {
            let p = self.allocator.next_v4_slash16();
            self.registry.announce(m.asn, p, PrefixRole::Mobile);
            p
        });
        let v6_prefix = config.v6.as_ref().map(|_| {
            let p = self.allocator.next_v6_slash32();
            self.registry.announce(config.asn, p, PrefixRole::Broadband);
            p
        });

        let broadband_queue = config.access.queue_for_peak_delay(config.peak_queuing_ms);
        let mobile_queue = config
            .mobile
            .as_ref()
            .map(|m| AccessTech::MobileLte.queue_for_peak_delay(m.peak_queuing_ms));
        let v6_queue = config
            .v6
            .as_ref()
            .map(|v| AccessTech::DedicatedFiber.queue_for_peak_delay(v.peak_queuing_ms));
        let peering_queue = (config.peering_peak_ms > 0.0)
            .then(|| QueueModel::calibrated(0.4, 0.9, config.peering_peak_ms, 80.0));

        self.asn_index.insert(config.asn, self.ases.len());
        self.ases.push(SimAs {
            config,
            broadband_queue,
            mobile_queue,
            v6_queue,
            peering_queue,
            broadband_prefix,
            infra_prefix,
            mobile_prefix,
            v6_prefix,
        });
        self
    }

    /// Add `count` regular probes to an AS. Per-probe parameters are drawn
    /// deterministically from the world seed.
    pub fn add_probes(&mut self, asn: Asn, count: usize, spec: &ProbeSpec) -> &mut WorldBuilder {
        for _ in 0..count {
            self.push_probe(asn, spec, false);
        }
        self
    }

    /// Add one Atlas anchor (datacenter-hosted, no last-mile congestion).
    pub fn add_anchor(&mut self, asn: Asn) -> &mut WorldBuilder {
        self.push_probe(asn, &ProbeSpec::simple(), true);
        self
    }

    fn push_probe(&mut self, asn: Asn, spec: &ProbeSpec, anchor: bool) {
        let idx = *self
            .asn_index
            .get(&asn)
            .unwrap_or_else(|| panic!("probes added to unknown ASN {asn}"));
        let id = self.next_probe_id;
        self.next_probe_id += 1;
        let sim_as = &self.ases[idx];
        let cfg = &sim_as.config;
        let path = [u64::from(asn), u64::from(id)];
        let u = |tag: u64| rng::unit_f64(self.seed, &[path[0], path[1], tag]);

        let nth_in_as = self.probes.iter().filter(|p| p.meta.asn == asn).count() as u128;

        let version = if anchor {
            ProbeVersion::V3
        } else {
            let v = u(1);
            if v < spec.old_version_fraction / 2.0 {
                ProbeVersion::V1
            } else if v < spec.old_version_fraction {
                ProbeVersion::V2
            } else {
                ProbeVersion::V3
            }
        };

        let (tech_lo, tech_hi) = cfg.access.base_rtt_range_ms();
        let public_addr = sim_as
            .broadband_prefix
            .nth_address(256 + nth_in_as)
            .expect("broadband /16 has room for probes");
        // A handful of probes share each edge aggregation router.
        let edge = sim_as
            .infra_prefix
            .nth_address(1 + nth_in_as / 4)
            .expect("infra /16 has room for edges");

        let (participation, own_peak_ms, base_lan_ms, base_access_ms, noise_ms, flakiness, cgn) =
            if anchor {
                (0.0, 0.0, 0.15, 0.3, 0.04, 0.0005, None)
            } else {
                // Most probes track the shared segment roughly 1:1; a minority
                // sit on somewhat worse segments, and a few on uncongested
                // paths entirely.
                let participation = match u(2) {
                    x if x < 0.84 => 0.75 + 0.4 * u(3),
                    x if x < 0.92 => 1.5 + 3.5 * u(3),
                    _ => 0.05 + 0.3 * u(3),
                };
                // ~10% of probes additionally sit behind a privately congested
                // segment (bad in-building wiring, oversubscribed street
                // cabinet) with a lognormal daily peak of its own.
                let own_peak_ms = if u(9) < 0.10 {
                    let z = gauss_from_units(u(10), u(11));
                    (0.5 + 1.2 * z).exp().min(25.0)
                } else {
                    0.0
                };
                let base_lan_ms = 0.3 + 0.9 * u(4);
                let base_access_ms = tech_lo + (tech_hi - tech_lo) * u(5);
                let noise_ms = if version.is_less_reliable() {
                    0.2 + 0.3 * u(6)
                } else {
                    0.06 + 0.09 * u(6)
                };
                let flakiness = 0.002 + 0.018 * u(7);
                let cgn = if u(8) < 0.10 {
                    Some("100.64.0.1".parse().expect("valid CGN address"))
                } else {
                    None
                };
                (
                    participation,
                    own_peak_ms,
                    base_lan_ms,
                    base_access_ms,
                    noise_ms,
                    flakiness,
                    cgn,
                )
            };

        self.probes.push(SimProbe {
            meta: Probe {
                id: ProbeId(id),
                asn,
                country: cfg.country.clone(),
                area: spec.area.clone(),
                is_anchor: anchor,
                version,
                public_addr,
            },
            lan_gw: if anchor {
                "10.254.0.1".parse().expect("valid address")
            } else {
                "192.168.1.1".parse().expect("valid address")
            },
            src: if anchor {
                "10.254.0.10".parse().expect("valid address")
            } else {
                "192.168.1.10".parse().expect("valid address")
            },
            cgn,
            edge,
            base_lan_ms,
            base_access_ms,
            participation,
            own_peak_ms,
            noise_ms,
            flakiness,
            deployed_since: spec.deployed_since,
            retired_at: spec.retired_at,
        });
    }

    /// Finalise the world.
    pub fn build(self) -> World {
        World {
            seed: self.seed,
            ases: self.ases,
            asn_index: self.asn_index,
            probes: self.probes,
            registry: self.registry,
            catalogue: BuiltinCatalogue::standard(),
            catalogue_v6: BuiltinCatalogue::standard_v6(),
            lockdown: self.lockdown,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lastmile_timebase::{CivilDate, CivilDateTime, TzOffset};

    fn tokyo_evening() -> UnixTime {
        // 2019-09-18 (Wed) 12:00 UTC = 21:00 JST.
        CivilDateTime::new(CivilDate::new(2019, 9, 18), 12, 0, 0).to_unix()
    }

    fn tokyo_night() -> UnixTime {
        // 2019-09-18 19:00 UTC = 04:00 JST Thursday.
        CivilDateTime::new(CivilDate::new(2019, 9, 18), 19, 0, 0).to_unix()
    }

    fn small_world() -> World {
        let mut b = World::builder(1234);
        b.add_isp(
            IspConfig::legacy_pppoe(65001, "ISP_A", "JP", TzOffset::JST, 4.0)
                .with_mobile(65101, 0.3)
                .with_v6(0.2),
        );
        b.add_isp(IspConfig::clean(65002, "ISP_C", "JP", TzOffset::JST));
        b.add_probes(65001, 8, &ProbeSpec::simple().in_area("Tokyo"));
        b.add_probes(65002, 8, &ProbeSpec::simple().in_area("Tokyo"));
        b.add_anchor(65001);
        b.build()
    }

    #[test]
    fn prefixes_are_announced_and_disjoint() {
        let w = small_world();
        let a = w.as_for(65001).unwrap();
        let c = w.as_for(65002).unwrap();
        assert!(!a.broadband_prefix.overlaps(&a.infra_prefix));
        assert!(!a.broadband_prefix.overlaps(&c.broadband_prefix));
        // Registry resolves a probe's public address back to its AS.
        for p in w.probes() {
            assert_eq!(w.registry().asn_of(p.meta.public_addr), Some(p.meta.asn));
        }
        // Mobile prefix is announced under the mobile ASN with Mobile role.
        let mp = a.mobile_prefix.unwrap();
        let ip = mp.nth_address(77).unwrap();
        assert!(w.registry().is_mobile(ip));
        assert_eq!(w.registry().asn_of(ip), Some(65101));
    }

    #[test]
    fn congested_as_peaks_in_local_evening() {
        let w = small_world();
        let peak = w.queuing_delay_ms(65001, ServiceClass::BroadbandV4, tokyo_evening());
        let night = w.queuing_delay_ms(65001, ServiceClass::BroadbandV4, tokyo_night());
        assert!(peak > 2.0, "evening queuing {peak}");
        assert!(night < 0.5, "night queuing {night}");
    }

    #[test]
    fn clean_as_stays_flat() {
        let w = small_world();
        let peak = w.queuing_delay_ms(65002, ServiceClass::BroadbandV4, tokyo_evening());
        assert!(peak < 0.3, "clean ISP evening queuing {peak}");
    }

    #[test]
    fn mobile_and_v6_bypass_congestion() {
        let w = small_world();
        let t = tokyo_evening();
        let v4 = w.queuing_delay_ms(65001, ServiceClass::BroadbandV4, t);
        let v6 = w.queuing_delay_ms(65001, ServiceClass::BroadbandV6, t);
        let mobile = w.queuing_delay_ms(65001, ServiceClass::Mobile, t);
        assert!(v6 < v4 * 0.2, "IPoE v6 {v6} vs PPPoE v4 {v4}");
        assert!(mobile < v4 * 0.3, "mobile {mobile} vs broadband {v4}");
    }

    #[test]
    fn unknown_services_yield_zero_or_none() {
        let w = small_world();
        let t = tokyo_evening();
        // ISP_C has no mobile or v6 service.
        assert_eq!(w.queuing_delay_ms(65002, ServiceClass::Mobile, t), 0.0);
        assert!(w.access_state(65002, ServiceClass::Mobile, t).is_none());
        assert!(w.client_prefix(65002, ServiceClass::BroadbandV6).is_none());
        // Unknown ASN.
        assert_eq!(w.queuing_delay_ms(99999, ServiceClass::BroadbandV4, t), 0.0);
        assert!(w.as_for(99999).is_none());
    }

    #[test]
    fn access_state_composes_rtt() {
        let w = small_world();
        let s = w
            .access_state(65001, ServiceClass::BroadbandV4, tokyo_evening())
            .unwrap();
        assert!(s.queuing_ms > 1.0);
        assert!((s.rtt_ms() - (s.base_rtt_ms + s.queuing_ms)).abs() < 1e-12);
        assert!(s.line_rate_mbps > 0.0);
        // Peak-hour loss on the legacy segment is non-zero.
        assert!(s.loss_rate > 0.0);
    }

    #[test]
    fn probe_heterogeneity_and_determinism() {
        let w1 = small_world();
        let w2 = small_world();
        // Determinism: identical builds.
        for (a, b) in w1.probes().iter().zip(w2.probes()) {
            assert_eq!(a.meta, b.meta);
            assert_eq!(a.participation, b.participation);
        }
        // Heterogeneity: not all probes identical.
        let parts: Vec<f64> = w1
            .probes_in(65001)
            .filter(|p| !p.meta.is_anchor)
            .map(|p| p.participation)
            .collect();
        let min = parts.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = parts.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max > min, "participation must vary across probes");
    }

    #[test]
    fn anchors_are_marked_and_quiet() {
        let w = small_world();
        let anchor = w.probes().iter().find(|p| p.meta.is_anchor).unwrap();
        assert_eq!(anchor.participation, 0.0);
        assert!(anchor.noise_ms < 0.05);
        assert_eq!(w.probes_in(65001).count(), 9); // 8 + anchor
    }

    #[test]
    fn lockdown_boosts_congestion() {
        let apr = TimeRange::new(
            CivilDate::new(2020, 4, 1).midnight(),
            CivilDate::new(2020, 4, 16).midnight(),
        );
        let mut b = World::builder(7);
        b.add_isp(
            IspConfig::legacy_pppoe(65001, "ISP_US", "US", TzOffset::US_EASTERN, 0.5)
                .with_lockdown_factor(3.0),
        );
        let w = b.lockdown(apr).build();
        // Evening US Eastern: 2020-04-08 01:00 UTC = Apr 7, 21:00 EDT-ish.
        let covid_evening = CivilDateTime::new(CivilDate::new(2020, 4, 8), 2, 0, 0).to_unix();
        let normal_evening = CivilDateTime::new(CivilDate::new(2019, 9, 18), 2, 0, 0).to_unix();
        let covid = w.queuing_delay_ms(65001, ServiceClass::BroadbandV4, covid_evening);
        let normal = w.queuing_delay_ms(65001, ServiceClass::BroadbandV4, normal_evening);
        assert!(covid > normal * 1.8, "covid {covid} vs normal {normal}");
        assert!(w.is_lockdown(covid_evening));
        assert!(!w.is_lockdown(normal_evening));
    }

    #[test]
    fn peering_congestion_peaks_without_touching_the_access_queue() {
        let mut b = World::builder(17);
        b.add_isp(
            IspConfig::clean(65001, "PEER", "JP", TzOffset::JST).with_peering_congestion(5.0),
        );
        b.add_isp(IspConfig::clean(65002, "C", "JP", TzOffset::JST));
        let w = b.build();
        let evening = w.peering_delay_ms(65001, tokyo_evening());
        let night = w.peering_delay_ms(65001, tokyo_night());
        assert!(evening > 2.0, "peering evening delay {evening}");
        assert!(night < evening * 0.3, "peering night delay {night}");
        // The access segment of the same AS stays clean.
        let access = w.queuing_delay_ms(65001, ServiceClass::BroadbandV4, tokyo_evening());
        assert!(access < 0.3, "access queuing {access}");
        // ASes without peering congestion (and unknown ASNs) report zero.
        assert_eq!(w.peering_delay_ms(65002, tokyo_evening()), 0.0);
        assert_eq!(w.peering_delay_ms(99999, tokyo_evening()), 0.0);
    }

    #[test]
    fn route_shift_steps_at_the_configured_instant() {
        let at = CivilDate::new(2019, 9, 18).midnight();
        let mut b = World::builder(18);
        b.add_isp(IspConfig::clean(65001, "SHIFT", "DE", TzOffset::CET).with_route_shift(at, 4.5));
        let w = b.build();
        assert_eq!(w.route_shift_ms(65001, at - 1), 0.0);
        assert_eq!(w.route_shift_ms(65001, at), 4.5);
        assert_eq!(w.route_shift_ms(65001, at + 86_400), 4.5);
        assert_eq!(w.route_shift_ms(99999, at), 0.0);
    }

    #[test]
    fn active_window_confines_congestion_to_the_episode() {
        // Congestion exists only on Sept 18; Sept 17 and 19 evenings are clean.
        let episode = TimeRange::new(
            CivilDate::new(2019, 9, 18).midnight(),
            CivilDate::new(2019, 9, 19).midnight(),
        );
        let mut b = World::builder(19);
        b.add_isp(
            IspConfig::legacy_pppoe(65001, "EPISODE", "JP", TzOffset::JST, 4.0)
                .with_active_window(episode),
        );
        let w = b.build();
        let inside = w.queuing_delay_ms(65001, ServiceClass::BroadbandV4, tokyo_evening());
        let before = w.queuing_delay_ms(65001, ServiceClass::BroadbandV4, tokyo_evening() - 86_400);
        let after = w.queuing_delay_ms(65001, ServiceClass::BroadbandV4, tokyo_evening() + 86_400);
        assert!(inside > 2.0, "episode evening queuing {inside}");
        assert_eq!(before, 0.0);
        assert_eq!(after, 0.0);
    }

    #[test]
    #[should_panic(expected = "unknown ASN")]
    fn probes_require_known_asn() {
        let mut b = World::builder(1);
        b.add_probes(4242, 1, &ProbeSpec::simple());
    }

    #[test]
    #[should_panic(expected = "duplicate ASN")]
    fn duplicate_asn_rejected() {
        let mut b = World::builder(1);
        b.add_isp(IspConfig::clean(1, "a", "US", TzOffset::UTC));
        b.add_isp(IspConfig::clean(1, "b", "US", TzOffset::UTC));
    }

    #[test]
    fn deployment_dates_gate_probes() {
        let mut b = World::builder(3);
        b.add_isp(IspConfig::clean(65001, "X", "DE", TzOffset::CET));
        b.add_probes(
            65001,
            2,
            &ProbeSpec::simple().deployed_since(CivilDate::new(2019, 1, 1).midnight()),
        );
        let w = b.build();
        let before = CivilDate::new(2018, 6, 1).midnight();
        let after = CivilDate::new(2019, 6, 1).midnight();
        for p in w.probes() {
            assert!(!p.is_deployed(before));
            assert!(p.is_deployed(after));
        }
    }
}
