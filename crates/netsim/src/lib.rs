//! # lastmile-netsim
//!
//! A deterministic network simulator that stands in for the measurement
//! substrate of the IMC 2020 paper — the RIPE Atlas probe fleet and the
//! access networks it measures.
//!
//! The paper's phenomenon is *persistent last-mile congestion*: diurnal,
//! utilization-driven queuing delay on the shared segment between a user's
//! premises and the ISP edge, recurring day after day. The simulator
//! models precisely that causal chain:
//!
//! ```text
//!  diurnal demand  →  shared-segment utilization  →  queuing delay + loss
//!  (demand.rs)        (queue.rs, access.rs)          ↓
//!                                      traceroute RTTs per hop (engine.rs)
//!                                      CDN transfer throughput (lastmile-cdnlog)
//! ```
//!
//! * [`demand`] — diurnal demand curves: evening peak in *local* time,
//!   weekday/weekend structure, and a COVID-19 lockdown variant with
//!   elevated, widened daytime load ("peak hours widening over daytime").
//! * [`queue`] — a fluid queue mapping utilization to queuing delay
//!   (`u/(1-u)` growth, bufferbloat cap) and to packet loss, calibrated to
//!   a target peak delay so scenario ground truth is exact.
//! * [`access`] — access technologies: shared legacy PPPoE aggregation,
//!   dedicated fiber, cable, LTE, and IPoE IPv6, with per-technology
//!   queueing defaults, base RTT ranges, and line rates.
//! * [`isp`] — per-AS configuration tying the above together.
//! * [`world`] — the simulated Internet: ASes with announced prefixes
//!   ([`lastmile_prefix::AsRegistry`]), a probe fleet with per-probe
//!   heterogeneity, anchors, deployment dates.
//! * [`engine`] — executes the Atlas built-in measurement schedule over
//!   the world, producing [`lastmile_atlas::TracerouteResult`]s with
//!   RFC1918 LAN hops, optional CGN hops, the public ISP edge, core hops,
//!   reply triples, timeouts, probe flakiness and transient spikes.
//! * [`scenarios`] — ready-made worlds for every experiment in the paper
//!   (Figures 1–9 and the §3 survey).
//! * [`fleet`] — declarative scenario fleets: whole internets with
//!   per-AS ground truth (persistent/transient/clean/adversarial) for
//!   scoring the detector, built from a seedable [`fleet::FleetSpec`].
//!
//! Everything is reproducible: the world seed plus (probe, bin) indices
//! derive every random draw, so two runs — or two threads — produce
//! identical data.

pub mod access;
pub mod demand;
pub mod engine;
pub mod fleet;
pub mod isp;
pub mod queue;
pub mod rng;
pub mod scenarios;
pub mod world;

pub use access::{AccessTech, ServiceClass};
pub use demand::DiurnalProfile;
pub use engine::TracerouteEngine;
pub use isp::IspConfig;
pub use queue::QueueModel;
pub use world::{AccessState, SimAs, SimProbe, World, WorldBuilder};
