//! Probe subsampling — the "Less is More" knob.
//!
//! Real per-AS Atlas coverage is tiny: the paper's inclusion threshold is
//! just 3 probes. The fleet generator therefore supports emitting only a
//! subset of each AS's probes, in two modes:
//!
//! * **Uniform** — a seeded uniform draw, the honest model of "whatever
//!   probes happen to exist in this AS". Detection quality degrades with
//!   population size because a small draw can land entirely on probes
//!   that do not share the congested segment.
//! * **Biased** — prefer probes whose *participation* is closest to 1,
//!   i.e. probes that see the shared bottleneck roughly 1:1. This models
//!   informed vantage-point selection ("Less is More: probe selection
//!   strategies beat probe volume") and keeps even 3-probe populations
//!   representative.
//!
//! Selection is deterministic in (world seed, sampling seed, ASN, probe
//! id) — independent of iteration order — and the returned ids are
//! sorted, so corpus emission order is stable.

use crate::rng;
use crate::world::World;
use lastmile_atlas::ProbeId;
use lastmile_prefix::Asn;

/// How a per-AS probe subset is drawn.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SampleMode {
    /// Seeded uniform draw over the AS's probes.
    Uniform,
    /// Prefer probes with participation closest to 1 (shared-bottleneck
    /// vantage points).
    Biased,
}

impl SampleMode {
    /// Parse a mode name (`uniform` | `biased`).
    pub fn parse(s: &str) -> Option<SampleMode> {
        match s {
            "uniform" => Some(SampleMode::Uniform),
            "biased" => Some(SampleMode::Biased),
            _ => None,
        }
    }

    /// The mode's canonical name.
    pub fn as_str(self) -> &'static str {
        match self {
            SampleMode::Uniform => "uniform",
            SampleMode::Biased => "biased",
        }
    }
}

/// Select up to `n` probes of an AS. Returns all of them (sorted) when
/// the AS hosts `n` or fewer.
pub fn select_probes(
    world: &World,
    asn: Asn,
    n: usize,
    mode: SampleMode,
    sample_seed: u64,
) -> Vec<ProbeId> {
    let mut scored: Vec<(f64, ProbeId)> = world
        .probes_in(asn)
        .map(|p| {
            let key = match mode {
                // Distance from full participation; ties broken by id
                // via the stable sort below.
                SampleMode::Biased => (p.participation - 1.0).abs(),
                SampleMode::Uniform => {
                    rng::unit_f64(sample_seed, &[u64::from(asn), u64::from(p.meta.id.0), 0x5A])
                }
            };
            (key, p.meta.id)
        })
        .collect();
    scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1 .0.cmp(&b.1 .0)));
    scored.truncate(n);
    let mut ids: Vec<ProbeId> = scored.into_iter().map(|(_, id)| id).collect();
    ids.sort_by_key(|id| id.0);
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::{build_fleet, FleetSpec};

    fn world_with_big_as() -> (World, Asn) {
        let mut spec = FleetSpec::example();
        spec.probes_min = 20;
        spec.probes_max = 30;
        let s = build_fleet(&spec, 5);
        let asn = s.truth[0].asn;
        (s.world, asn)
    }

    #[test]
    fn biased_mode_picks_shared_bottleneck_probes() {
        let (world, asn) = world_with_big_as();
        let ids = select_probes(&world, asn, 3, SampleMode::Biased, 1);
        assert_eq!(ids.len(), 3);
        for id in &ids {
            let p = world.probes().iter().find(|p| p.meta.id == *id).unwrap();
            assert!(
                (p.participation - 1.0).abs() < 0.35,
                "probe {} participation {}",
                id.0,
                p.participation
            );
        }
    }

    #[test]
    fn uniform_mode_is_seeded_and_seed_sensitive() {
        let (world, asn) = world_with_big_as();
        let a = select_probes(&world, asn, 5, SampleMode::Uniform, 1);
        let b = select_probes(&world, asn, 5, SampleMode::Uniform, 1);
        assert_eq!(a, b, "same seed, same draw");
        let c = select_probes(&world, asn, 5, SampleMode::Uniform, 2);
        assert_ne!(a, c, "different seed moves the draw");
    }

    #[test]
    fn selection_is_sorted_and_caps_at_population() {
        let (world, asn) = world_with_big_as();
        let all = world.probes_in(asn).count();
        let ids = select_probes(&world, asn, all + 50, SampleMode::Uniform, 1);
        assert_eq!(ids.len(), all);
        assert!(ids.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn mode_parsing_round_trips() {
        for mode in [SampleMode::Uniform, SampleMode::Biased] {
            assert_eq!(SampleMode::parse(mode.as_str()), Some(mode));
        }
        assert_eq!(SampleMode::parse("random"), None);
    }
}
