//! Fleet world construction: spec + seed → simulated internet + truth.
//!
//! Planting is a single deterministic loop over label groups in a fixed
//! order, so the mapping from spec to (ASN, label) is stable across runs
//! and across code that only *reads* the spec (the scorer, the linter).
//! Every random draw routes through [`crate::rng`] keyed on the seed and
//! the AS index — never on iteration order or thread identity.

use crate::demand::DiurnalProfile;
use crate::fleet::{FleetAsTruth, FleetLabel, FleetScenario, FleetSpec};
use crate::isp::IspConfig;
use crate::rng;
use crate::scenarios::{peak_delay_per_amplitude, survey, GroundTruthClass};
use crate::world::{ProbeSpec, World};
use crate::AccessTech;
use lastmile_prefix::Asn;
use lastmile_timebase::TimeRange;

/// First ASN of a fleet world (fleet ASNs are `FIRST_ASN + index`).
pub const FIRST_ASN: Asn = 1000;

/// Build a fleet world from a validated spec. Panics on an invalid spec —
/// callers validate first (`lastmile lint --fleet` exists for exactly
/// this), so a violation here is a caller bug.
pub fn build_fleet(spec: &FleetSpec, seed: u64) -> FleetScenario {
    let violations = spec.validate();
    assert!(violations.is_empty(), "invalid fleet spec: {violations:?}");

    let window = spec.window();
    let mut b = World::builder(seed);
    let mut truth = Vec::with_capacity(spec.classes.total());

    let groups: [(FleetLabel, usize); 8] = [
        (FleetLabel::Severe, spec.classes.severe),
        (FleetLabel::Mild, spec.classes.mild),
        (FleetLabel::Low, spec.classes.low),
        (FleetLabel::Clean, spec.classes.clean),
        (FleetLabel::Transient, spec.classes.transient),
        (
            FleetLabel::AdversarialWeekly,
            spec.classes.adversarial_weekly,
        ),
        (
            FleetLabel::AdversarialPeering,
            spec.classes.adversarial_peering,
        ),
        (
            FleetLabel::AdversarialRouteShift,
            spec.classes.adversarial_route_shift,
        ),
    ];

    let mut index = 0usize;
    for (label, count) in groups {
        for _ in 0..count {
            plant_one(&mut b, &mut truth, spec, seed, index, label, &window);
            index += 1;
        }
    }

    FleetScenario {
        world: b.build(),
        truth,
        window,
    }
}

/// Plant one AS of the given label at fleet index `index`.
#[allow(clippy::too_many_arguments)]
fn plant_one(
    b: &mut crate::world::WorldBuilder,
    truth: &mut Vec<FleetAsTruth>,
    spec: &FleetSpec,
    seed: u64,
    index: usize,
    label: FleetLabel,
    window: &TimeRange,
) {
    let u = |tag: u64| rng::unit_f64(seed, &[index as u64, tag, 0xF1EE]);
    let asn: Asn = FIRST_ASN + index as Asn;
    let name = format!("FLEET{asn}");
    let country = survey::COUNTRIES[(u(0) * 991.0) as usize % survey::COUNTRIES.len()];
    let tz = survey::country_tz(country);

    // Per-AS demand idiosyncrasy, like the survey's: peak hour and width
    // vary so populations in the same timezone still decorrelate.
    let demand = DiurnalProfile {
        peak_hour: 20.0 + 2.0 * u(1),
        peak_width_hours: 2.0 + 1.2 * u(2),
        ..DiurnalProfile::residential()
    };

    // Congested access tech mixes PPPoE and cable; clean eyeballs run
    // fiber. LTE enters as attached mobile services on a few congested
    // ASes (the paper's ISP_A pattern: mobile bypasses the broadband
    // bottleneck).
    let congested_tech = if u(3) < 0.6 {
        AccessTech::SharedLegacyPppoe
    } else {
        AccessTech::CableDocsis
    };

    let (config, class, amplitude) = match label {
        FleetLabel::Severe | FleetLabel::Mild | FleetLabel::Low => {
            let (class, amplitude) = match label {
                FleetLabel::Severe => (GroundTruthClass::Severe, 3.4 + 5.0 * u(4)),
                FleetLabel::Mild => (GroundTruthClass::Mild, 1.25 + 1.4 * u(4)),
                _ => (GroundTruthClass::Low, 0.62 + 0.3 * u(4)),
            };
            let peak = amplitude * peak_delay_per_amplitude(congested_tech);
            let mut cfg = IspConfig {
                access: congested_tech,
                demand,
                peak_queuing_ms: peak,
                ..IspConfig::clean(asn, &name, country, tz)
            };
            if u(5) < 0.25 {
                cfg = cfg.with_mobile(asn + 10_000, 0.2 + 0.2 * u(6));
            }
            (cfg, class, amplitude)
        }
        FleetLabel::Clean => {
            let cfg = IspConfig {
                demand,
                peak_queuing_ms: 0.05 + 0.15 * u(4),
                ..IspConfig::clean(asn, &name, country, tz)
            };
            (cfg, GroundTruthClass::NoDaily, 0.0)
        }
        FleetLabel::Transient => {
            // A strong episode covering ~1.5–2.5 days of the window; flat
            // outside it. Not persistent, so ground truth is NoDaily.
            let days = f64::from(spec.days);
            let start_day = 1.0 + u(5) * (days - 4.0).max(0.5);
            let len_days = 1.5 + u(6);
            let ep_start = window.start() + (start_day * 86_400.0) as i64;
            let ep_end = window.end().min(ep_start + (len_days * 86_400.0) as i64);
            let episode_amp = 2.2 + 1.5 * u(4);
            let peak = episode_amp * peak_delay_per_amplitude(congested_tech);
            let cfg = IspConfig {
                access: congested_tech,
                demand,
                peak_queuing_ms: peak,
                ..IspConfig::clean(asn, &name, country, tz)
            }
            .with_active_window(TimeRange::new(ep_start, ep_end));
            (cfg, GroundTruthClass::NoDaily, 0.0)
        }
        FleetLabel::AdversarialWeekly => {
            // Demand exists only on weekends: a weekly rhythm with *no*
            // daily component. The planted amplitude is what a weekend
            // evening would measure if it recurred daily — the daily
            // ground truth stays 0.
            let weekend_amp = 2.5 + 2.0 * u(4);
            let peak = weekend_amp * peak_delay_per_amplitude(AccessTech::SharedLegacyPppoe);
            let cfg = IspConfig {
                access: AccessTech::SharedLegacyPppoe,
                demand: DiurnalProfile {
                    weekday_scale: 0.0,
                    weekend_scale: 1.0,
                    ..demand
                },
                peak_queuing_ms: peak,
                ..IspConfig::clean(asn, &name, country, tz)
            };
            (cfg, GroundTruthClass::NoDaily, 0.0)
        }
        FleetLabel::AdversarialPeering => {
            // Clean fiber access; the congestion lives on the upstream
            // peering link, beyond the edge. Diurnal and strong — but
            // structurally invisible to edge − LAN.
            let cfg = IspConfig {
                demand,
                peak_queuing_ms: 0.05,
                ..IspConfig::clean(asn, &name, country, tz)
            }
            .with_peering_congestion(3.0 + 4.0 * u(4));
            (cfg, GroundTruthClass::NoDaily, 0.0)
        }
        FleetLabel::AdversarialRouteShift => {
            // Clean fiber; mid-window the upstream route changes and the
            // edge RTT steps by a few ms — aperiodic, not congestion.
            let at =
                window.start() + ((0.35 + 0.3 * u(5)) * f64::from(spec.days) * 86_400.0) as i64;
            let cfg = IspConfig {
                demand,
                peak_queuing_ms: 0.05,
                ..IspConfig::clean(asn, &name, country, tz)
            }
            .with_route_shift(at, 3.0 + 5.0 * u(4));
            (cfg, GroundTruthClass::NoDaily, 0.0)
        }
    };

    b.add_isp(config);
    // Population size skews small (Zipf-ish), like real per-AS probe
    // coverage; the spec bounds it.
    let span = (spec.probes_max - spec.probes_min) as f64;
    let probes = spec.probes_min + (span * u(7) * u(7)).round() as usize;
    b.add_probes(asn, probes, &ProbeSpec::simple().with_old_versions(0.2));

    truth.push(FleetAsTruth {
        asn,
        name,
        country: country.to_string(),
        label,
        class,
        amplitude_ms: amplitude,
        probes,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::ServiceClass;
    use lastmile_timebase::UnixTime;

    fn spec() -> FleetSpec {
        FleetSpec::example()
    }

    #[test]
    fn plants_every_label_in_order() {
        let s = build_fleet(&spec(), 11);
        assert_eq!(s.truth.len(), 16);
        assert_eq!(s.world.ases().len(), 16);
        // Label groups appear in declaration order with contiguous ASNs.
        assert_eq!(s.truth[0].asn, FIRST_ASN);
        assert_eq!(s.truth[0].label, FleetLabel::Severe);
        assert_eq!(s.truth[15].label, FleetLabel::AdversarialRouteShift);
        for (i, t) in s.truth.iter().enumerate() {
            assert_eq!(t.asn, FIRST_ASN + i as Asn);
            assert!(t.probes >= 3);
            assert!(s.world.as_for(t.asn).is_some());
        }
    }

    #[test]
    fn truth_classes_match_labels() {
        let s = build_fleet(&spec(), 11);
        for t in &s.truth {
            match t.label {
                FleetLabel::Severe => assert_eq!(t.class, GroundTruthClass::Severe),
                FleetLabel::Mild => assert_eq!(t.class, GroundTruthClass::Mild),
                FleetLabel::Low => assert_eq!(t.class, GroundTruthClass::Low),
                _ => {
                    assert_eq!(t.class, GroundTruthClass::NoDaily);
                    assert_eq!(t.amplitude_ms, 0.0);
                }
            }
            assert_eq!(t.label.expect_reported(), t.class.is_reported());
        }
    }

    #[test]
    fn adversarial_ases_carry_their_knobs() {
        let s = build_fleet(&spec(), 11);
        for t in &s.truth {
            let cfg = &s.world.as_for(t.asn).unwrap().config;
            match t.label {
                FleetLabel::AdversarialWeekly => {
                    assert_eq!(cfg.demand.weekday_scale, 0.0);
                    assert!(cfg.peak_queuing_ms > 1.0);
                }
                FleetLabel::AdversarialPeering => {
                    assert!(cfg.peering_peak_ms >= 3.0);
                    assert!(cfg.peak_queuing_ms < 0.2, "access stays clean");
                }
                FleetLabel::AdversarialRouteShift => {
                    let rs = cfg.route_shift.expect("route shift planted");
                    assert!(s.window.contains(rs.at));
                    assert!(rs.delta_ms >= 3.0);
                }
                FleetLabel::Transient => {
                    let w = cfg.active_window.expect("episode planted");
                    assert!(w.start() > s.window.start());
                    assert!(w.end() <= s.window.end());
                    assert!(w.duration_secs() >= 86_400);
                }
                _ => {
                    assert_eq!(cfg.peering_peak_ms, 0.0);
                    assert!(cfg.route_shift.is_none() && cfg.active_window.is_none());
                }
            }
        }
    }

    #[test]
    fn fleet_worlds_have_no_anchors_and_bounded_probes() {
        let s = build_fleet(&spec(), 11);
        assert!(s.world.probes().iter().all(|p| !p.meta.is_anchor));
        for t in &s.truth {
            let n = s.world.probes_in(t.asn).count();
            assert_eq!(n, t.probes);
            assert!((3..=8).contains(&n), "AS{}: {n}", t.asn);
        }
    }

    #[test]
    fn build_is_deterministic() {
        let a = build_fleet(&spec(), 42);
        let b = build_fleet(&spec(), 42);
        for (x, y) in a.truth.iter().zip(&b.truth) {
            assert_eq!(x.asn, y.asn);
            assert_eq!(x.label, y.label);
            assert_eq!(x.amplitude_ms, y.amplitude_ms);
            assert_eq!(x.country, y.country);
            assert_eq!(x.probes, y.probes);
        }
        // Different seeds move the draws.
        let c = build_fleet(&spec(), 43);
        assert!(a
            .truth
            .iter()
            .zip(&c.truth)
            .any(|(x, y)| x.amplitude_ms != y.amplitude_ms || x.country != y.country));
    }

    #[test]
    fn transient_congestion_is_confined_to_its_episode() {
        let s = build_fleet(&spec(), 11);
        let t = s
            .truth
            .iter()
            .find(|t| t.label == FleetLabel::Transient)
            .unwrap();
        let episode = s.world.as_for(t.asn).unwrap().config.active_window.unwrap();
        // Probe local evenings inside vs outside the episode.
        let probe = |at: UnixTime| {
            s.world
                .queuing_delay_ms(t.asn, ServiceClass::BroadbandV4, at)
        };
        let mut inside_max: f64 = 0.0;
        let mut outside_max: f64 = 0.0;
        let mut t0 = s.window.start();
        while t0 < s.window.end() {
            let q = probe(t0);
            if episode.contains(t0) {
                inside_max = inside_max.max(q);
            } else {
                outside_max = outside_max.max(q);
            }
            t0 += 1800;
        }
        assert!(inside_max > 1.0, "episode peak {inside_max}");
        assert_eq!(outside_max, 0.0, "outside the episode must be silent");
    }

    #[test]
    #[should_panic(expected = "invalid fleet spec")]
    fn invalid_specs_are_rejected() {
        let mut bad = spec();
        bad.days = 1;
        let _ = build_fleet(&bad, 1);
    }
}
