//! The declarative fleet specification.
//!
//! A [`FleetSpec`] states *what internet to synthesize*: how many ASes of
//! each ground-truth class, how long the measurement window runs, and how
//! many probes each AS hosts. It deliberately carries no randomness — the
//! spec plus a seed fully determine the world (see `build.rs`), which is
//! what makes fleet corpora reproducible and lintable offline.

use lastmile_timebase::{CivilDate, TimeRange};

/// Bounds every spec must satisfy. The Welch detector averages 4-day
/// segments, so anything under 5 days cannot produce a spectral estimate;
/// 60 days keeps worst-case corpus sizes sane.
pub const MIN_DAYS: u32 = 5;
/// Upper bound on the measurement window, days.
pub const MAX_DAYS: u32 = 60;
/// The paper's inclusion threshold: an AS needs ≥ 3 probes.
pub const MIN_PROBES_PER_AS: usize = 3;
/// Upper bound on probes per AS (simulation cost control).
pub const MAX_PROBES_PER_AS: usize = 2000;

/// How many ASes of each class the fleet plants. Every count may be zero;
/// the total must not be.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ClassMix {
    /// Persistently congested, daily amplitude > 3 ms.
    pub severe: usize,
    /// Persistently congested, daily amplitude in (1, 3] ms.
    pub mild: usize,
    /// Persistently congested, daily amplitude in (0.5, 1] ms.
    pub low: usize,
    /// Clean fiber eyeballs — no congestion anywhere.
    pub clean: usize,
    /// A short congestion episode inside the window, flat otherwise —
    /// real congestion, but not the paper's *persistent* kind.
    pub transient: usize,
    /// Adversarial: demand peaks only on weekends (weekly periodicity,
    /// no daily component).
    pub adversarial_weekly: usize,
    /// Adversarial: the congested queue sits on the upstream *peering*
    /// link, beyond the ISP edge ("Where in the Internet is
    /// congestion?") — invisible to the last-mile estimator.
    pub adversarial_peering: usize,
    /// Adversarial: a route change steps every RTT from the edge outward
    /// mid-window ("From BGP to RTT and Beyond") — an aperiodic level
    /// shift, not congestion.
    pub adversarial_route_shift: usize,
}

impl ClassMix {
    /// Total ASes across all classes.
    pub fn total(&self) -> usize {
        self.severe
            + self.mild
            + self.low
            + self.clean
            + self.transient
            + self.adversarial_weekly
            + self.adversarial_peering
            + self.adversarial_route_shift
    }

    /// ASes the detector *should* report (persistently congested).
    pub fn expected_reported(&self) -> usize {
        self.severe + self.mild + self.low
    }
}

/// A declarative fleet scenario specification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FleetSpec {
    /// Scenario name (free-form, recorded in the ground-truth sidecar).
    pub name: String,
    /// Measurement window length, days (`MIN_DAYS..=MAX_DAYS`).
    pub days: u32,
    /// Per-class AS counts.
    pub classes: ClassMix,
    /// Minimum probes hosted per AS (≥ `MIN_PROBES_PER_AS`).
    pub probes_min: usize,
    /// Maximum probes hosted per AS (≥ `probes_min`).
    pub probes_max: usize,
}

impl FleetSpec {
    /// A small well-formed spec, useful as a starting point and in tests.
    pub fn example() -> FleetSpec {
        FleetSpec {
            name: "example".to_string(),
            days: 7,
            classes: ClassMix {
                severe: 2,
                mild: 2,
                low: 2,
                clean: 4,
                transient: 1,
                adversarial_weekly: 1,
                adversarial_peering: 2,
                adversarial_route_shift: 2,
            },
            probes_min: 3,
            probes_max: 8,
        }
    }

    /// Validate the spec, returning *all* violations (empty = valid).
    pub fn validate(&self) -> Vec<String> {
        let mut violations = Vec::new();
        if self.name.trim().is_empty() {
            violations.push("name must not be empty".to_string());
        }
        if self.days < MIN_DAYS {
            violations.push(format!(
                "days {} below minimum {MIN_DAYS} (the Welch detector needs 4-day segments)",
                self.days
            ));
        }
        if self.days > MAX_DAYS {
            violations.push(format!("days {} above maximum {MAX_DAYS}", self.days));
        }
        if self.classes.total() == 0 {
            violations.push("classes are all zero: the fleet would be empty".to_string());
        }
        if self.probes_min < MIN_PROBES_PER_AS {
            violations.push(format!(
                "probes_min {} below the paper's ≥ {MIN_PROBES_PER_AS} inclusion threshold",
                self.probes_min
            ));
        }
        if self.probes_max < self.probes_min {
            violations.push(format!(
                "probes_max {} below probes_min {}",
                self.probes_max, self.probes_min
            ));
        }
        if self.probes_max > MAX_PROBES_PER_AS {
            violations.push(format!(
                "probes_max {} above maximum {MAX_PROBES_PER_AS}",
                self.probes_max
            ));
        }
        violations
    }

    /// The measurement window: `days` days from Sunday 2019-09-01 UTC
    /// midnight. Anchoring at a bin- and day-aligned instant keeps warm
    /// `--cache-dir` runs engaged (the store only caches bin-aligned
    /// windows) and guarantees any window ≥ 7 days contains a weekend —
    /// which the weekly-only adversarial ASes need.
    pub fn window(&self) -> TimeRange {
        let start = CivilDate::new(2019, 9, 1).midnight();
        TimeRange::new(start, start + i64::from(self.days) * 86_400)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_is_valid() {
        assert!(FleetSpec::example().validate().is_empty());
    }

    #[test]
    fn all_violations_are_collected() {
        let spec = FleetSpec {
            name: "  ".to_string(),
            days: 2,
            classes: ClassMix::default(),
            probes_min: 1,
            probes_max: 0,
        };
        let v = spec.validate();
        assert!(v.len() >= 4, "{v:?}");
        assert!(v.iter().any(|m| m.contains("name")));
        assert!(v.iter().any(|m| m.contains("Welch")));
        assert!(v.iter().any(|m| m.contains("empty")));
        assert!(v.iter().any(|m| m.contains("inclusion threshold")));
    }

    #[test]
    fn window_is_day_aligned_and_sized() {
        let spec = FleetSpec::example();
        let w = spec.window();
        assert_eq!(w.duration_secs(), 7 * 86_400);
        assert_eq!(w.start().as_secs() % 86_400, 0);
        // 2019-09-01 is a Sunday: a 7-day window holds a full weekend.
        assert_eq!(w.start(), CivilDate::new(2019, 9, 1).midnight());
    }

    #[test]
    fn class_totals() {
        let c = FleetSpec::example().classes;
        assert_eq!(c.total(), 16);
        assert_eq!(c.expected_reported(), 6);
    }
}
