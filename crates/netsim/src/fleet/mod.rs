//! Scenario fleets: synthetic internets with per-AS ground truth.
//!
//! The paper's headline numbers are measured over 646 ASes; this module
//! generates worlds of that shape on demand so the *detector* can be
//! scored against known truth. A [`FleetSpec`] (declarative, seedable)
//! states how many ASes of each class to plant:
//!
//! | label                    | what the detector should say |
//! |--------------------------|------------------------------|
//! | `severe`/`mild`/`low`    | report (persistent, daily)   |
//! | `clean`                  | nothing                      |
//! | `transient`              | nothing (episode, not persistent) |
//! | `adversarial_weekly`     | nothing (weekly, not daily)  |
//! | `adversarial_peering`    | nothing (beyond the edge)    |
//! | `adversarial_route_shift`| nothing (aperiodic step)     |
//!
//! [`build_fleet`] turns spec + seed into a [`FleetScenario`]: a
//! [`crate::World`] plus a [`FleetAsTruth`] sidecar per AS. The CLI's
//! `lastmile fleet gen` renders the world into a traceroute corpus and
//! `lastmile fleet score` joins `classify --json` output back against the
//! sidecar into a per-label confusion matrix.
//!
//! [`select_probes`] implements the probe-subsampling knob (uniform or
//! biased per-AS draws, "Less is More") so detection quality can be
//! studied down to the paper's 3-probe inclusion threshold.

mod build;
mod sample;
mod spec;

pub use build::{build_fleet, FIRST_ASN};
pub use sample::{select_probes, SampleMode};
pub use spec::{ClassMix, FleetSpec, MAX_DAYS, MAX_PROBES_PER_AS, MIN_DAYS, MIN_PROBES_PER_AS};

use crate::scenarios::GroundTruthClass;
use crate::world::World;
use lastmile_prefix::Asn;
use lastmile_timebase::TimeRange;

/// The ground-truth label of a fleet AS — one confusion-matrix row.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FleetLabel {
    /// Persistently congested, daily amplitude > 3 ms.
    Severe,
    /// Persistently congested, daily amplitude in (1, 3] ms.
    Mild,
    /// Persistently congested, daily amplitude in (0.5, 1] ms.
    Low,
    /// Clean fiber eyeball.
    Clean,
    /// Congested only during a short episode inside the window.
    Transient,
    /// Weekend-only demand: weekly periodicity, no daily component.
    AdversarialWeekly,
    /// Congestion on the upstream peering link, beyond the ISP edge.
    AdversarialPeering,
    /// A route-change RTT level shift mid-window.
    AdversarialRouteShift,
}

impl FleetLabel {
    /// Every label, in planting (and confusion-matrix row) order.
    pub const ALL: [FleetLabel; 8] = [
        FleetLabel::Severe,
        FleetLabel::Mild,
        FleetLabel::Low,
        FleetLabel::Clean,
        FleetLabel::Transient,
        FleetLabel::AdversarialWeekly,
        FleetLabel::AdversarialPeering,
        FleetLabel::AdversarialRouteShift,
    ];

    /// The label's canonical (spec/sidecar) name.
    pub fn as_str(self) -> &'static str {
        match self {
            FleetLabel::Severe => "severe",
            FleetLabel::Mild => "mild",
            FleetLabel::Low => "low",
            FleetLabel::Clean => "clean",
            FleetLabel::Transient => "transient",
            FleetLabel::AdversarialWeekly => "adversarial_weekly",
            FleetLabel::AdversarialPeering => "adversarial_peering",
            FleetLabel::AdversarialRouteShift => "adversarial_route_shift",
        }
    }

    /// Parse a canonical label name.
    pub fn parse(s: &str) -> Option<FleetLabel> {
        FleetLabel::ALL.into_iter().find(|l| l.as_str() == s)
    }

    /// Whether the detector *should* report ASes of this label.
    pub fn expect_reported(self) -> bool {
        matches!(
            self,
            FleetLabel::Severe | FleetLabel::Mild | FleetLabel::Low
        )
    }
}

/// Ground truth for one fleet AS — one sidecar row.
#[derive(Clone, Debug)]
pub struct FleetAsTruth {
    /// The broadband ASN.
    pub asn: Asn,
    /// Display name (`FLEET<asn>`).
    pub name: String,
    /// ISO country code (timezone follows the country).
    pub country: String,
    /// The planted label.
    pub label: FleetLabel,
    /// The planted *daily* congestion class (NoDaily for everything the
    /// detector should stay silent on).
    pub class: GroundTruthClass,
    /// Planted daily peak-to-peak amplitude, ms (0 when not reported).
    pub amplitude_ms: f64,
    /// Probes hosted by the AS in the world (before any subsampling).
    pub probes: usize,
}

/// A built fleet: the world, its truth sidecar, and the window.
pub struct FleetScenario {
    /// The simulated internet.
    pub world: World,
    /// Per-AS ground truth, in ASN order.
    pub truth: Vec<FleetAsTruth>,
    /// The measurement window the corpus covers.
    pub window: TimeRange,
}

impl FleetScenario {
    /// Ground truth for an ASN.
    pub fn truth_for(&self, asn: Asn) -> Option<&FleetAsTruth> {
        self.truth.iter().find(|t| t.asn == asn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_names_round_trip() {
        for label in FleetLabel::ALL {
            assert_eq!(FleetLabel::parse(label.as_str()), Some(label));
        }
        assert_eq!(FleetLabel::parse("bogus"), None);
    }

    #[test]
    fn reported_labels_are_the_persistent_ones() {
        let reported: Vec<_> = FleetLabel::ALL
            .into_iter()
            .filter(|l| l.expect_reported())
            .collect();
        assert_eq!(
            reported,
            [FleetLabel::Severe, FleetLabel::Mild, FleetLabel::Low]
        );
    }

    #[test]
    fn scenario_lookup_by_asn() {
        let s = build_fleet(&FleetSpec::example(), 3);
        let first = &s.truth[0];
        assert_eq!(s.truth_for(first.asn).unwrap().label, first.label);
        assert!(s.truth_for(1).is_none());
    }
}
