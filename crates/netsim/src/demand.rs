//! Diurnal demand curves.
//!
//! Residential broadband demand follows a strong daily rhythm: low in the
//! early morning, a small bump around working hours, a high evening peak
//! (roughly 20:00–23:00 *local* time), damped and shifted on weekends.
//! This is the root cause of the paper's phenomenon: when the shared
//! last-mile segment is oversubscribed, evening demand pushes utilization
//! toward capacity and queuing delay rises every single day — the
//! "prominent daily pattern" the Welch detector looks for.
//!
//! The COVID-19 variant raises and widens daytime load, matching the
//! paper's April 2020 observation that ISP_US's "pattern is even more
//! pronounced with peak hours widening over daytime".
//!
//! The curve is a deterministic *shape* in `[0, 1]` (1 = the busiest
//! instant of a normal weekday); all randomness (day-to-day variation,
//! per-probe noise) is layered on by the engine, keeping this module
//! exactly reproducible and unit-testable.

use lastmile_timebase::{TzOffset, UnixTime, Weekday};

/// A diurnal demand shape.
#[derive(Clone, Debug, PartialEq)]
pub struct DiurnalProfile {
    /// Demand floor at the quietest hour, fraction of peak (e.g. 0.25).
    pub base: f64,
    /// Local hour of the evening peak center (e.g. 21.0).
    pub peak_hour: f64,
    /// Gaussian half-width of the evening peak, hours (e.g. 2.5).
    pub peak_width_hours: f64,
    /// Relative size of the morning/office bump at `morning_hour`
    /// (fraction of the evening peak, e.g. 0.3).
    pub morning_bump: f64,
    /// Local hour of the morning bump center (e.g. 10.0).
    pub morning_hour: f64,
    /// Weekend amplitude multiplier (e.g. 1.05: slightly busier evenings,
    /// or < 1 for business ISPs).
    pub weekend_scale: f64,
    /// Weekday amplitude multiplier (normally 1.0). Setting it to 0 turns
    /// the profile into a **weekly-only** rhythm — flat at `base` Monday
    /// through Friday, peaking only on weekends. Fleet scenarios use this
    /// as an adversarial case for the daily-periodicity detector.
    pub weekday_scale: f64,
    /// Hours the evening peak shifts later on weekends (e.g. 0.5).
    pub weekend_shift_hours: f64,
    /// Added daytime plateau between 09:00 and 18:00 local, fraction of
    /// peak. Zero normally; ~0.4 under COVID-19 lockdown.
    pub daytime_plateau: f64,
}

impl DiurnalProfile {
    /// A typical residential eyeball profile.
    pub fn residential() -> DiurnalProfile {
        DiurnalProfile {
            base: 0.25,
            peak_hour: 21.0,
            peak_width_hours: 2.5,
            morning_bump: 0.3,
            morning_hour: 10.0,
            weekend_scale: 1.05,
            weekday_scale: 1.0,
            weekend_shift_hours: 0.5,
            daytime_plateau: 0.0,
        }
    }

    /// The COVID-19 lockdown variant of this profile: daytime plateau
    /// raised, evening peak widened ("peak hours widening over daytime").
    pub fn under_lockdown(&self) -> DiurnalProfile {
        DiurnalProfile {
            // Only ever *raise* the daytime load: a profile that already
            // carries a strong plateau keeps it.
            daytime_plateau: self.daytime_plateau.max(0.55),
            peak_width_hours: self.peak_width_hours * 1.5,
            base: (self.base * 1.2).min(0.6).max(self.base),
            ..self.clone()
        }
    }

    /// Demand shape in `[0, 1]` at the given *local* hour and weekday.
    pub fn shape(&self, local_hour: f64, weekday: Weekday) -> f64 {
        let weekend = weekday.is_weekend();
        let peak_center = if weekend {
            self.peak_hour + self.weekend_shift_hours
        } else {
            self.peak_hour
        };
        let scale = if weekend {
            self.weekend_scale
        } else {
            self.weekday_scale
        };

        let evening = gaussian_bump(local_hour, peak_center, self.peak_width_hours);
        let morning = self.morning_bump * gaussian_bump(local_hour, self.morning_hour, 2.0);
        // Smooth-edged plateau over working hours.
        let plateau = self.daytime_plateau * smooth_plateau(local_hour, 9.0, 18.0, 1.0);

        let raw = self.base + (1.0 - self.base) * (evening.max(morning).max(plateau)) * scale;
        raw.clamp(0.0, 1.0)
    }

    /// Shape at a UTC instant, given the network's timezone.
    pub fn shape_at(&self, t: UnixTime, tz: TzOffset) -> f64 {
        self.shape(tz.local_hour(t), tz.local_weekday(t))
    }
}

/// A circular (24-hour-wrapped) Gaussian bump with value 1 at `center`.
fn gaussian_bump(hour: f64, center: f64, width: f64) -> f64 {
    let mut d = (hour - center).abs() % 24.0;
    if d > 12.0 {
        d = 24.0 - d;
    }
    (-0.5 * (d / width).powi(2)).exp()
}

/// Smoothly rises from 0 before `start` to 1 inside `[start, end]` and
/// back to 0 after, with `edge` hours of transition.
fn smooth_plateau(hour: f64, start: f64, end: f64, edge: f64) -> f64 {
    let rise = sigmoid((hour - start) / edge);
    let fall = sigmoid((end - hour) / edge);
    rise * fall
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lastmile_timebase::{CivilDate, CivilDateTime};

    fn at(hour: f64) -> f64 {
        DiurnalProfile::residential().shape(hour, Weekday::Wednesday)
    }

    #[test]
    fn shape_is_bounded() {
        let p = DiurnalProfile::residential();
        for wd in Weekday::ALL {
            for h in 0..240 {
                let v = p.shape(h as f64 / 10.0, wd);
                assert!((0.0..=1.0).contains(&v), "{wd} {h}: {v}");
            }
        }
    }

    #[test]
    fn evening_peak_dominates() {
        // 21:00 is the busiest time of a weekday; 04:00 the quietest.
        assert!(at(21.0) > 0.95);
        assert!(at(4.0) < 0.35);
        assert!(at(21.0) > at(10.0), "evening beats morning bump");
        assert!(at(10.0) > at(4.0), "morning bump beats the floor");
    }

    #[test]
    fn weekend_peak_shifts_later() {
        let p = DiurnalProfile::residential();
        // At 21:00 the weekday curve is at its center; the weekend curve
        // is centered at 21.5 so 22:00 is relatively busier on weekends.
        let wd_2200 = p.shape(22.0, Weekday::Wednesday);
        let we_2200 = p.shape(22.0, Weekday::Saturday);
        assert!(we_2200 > wd_2200);
    }

    #[test]
    fn lockdown_raises_daytime() {
        let normal = DiurnalProfile::residential();
        let covid = normal.under_lockdown();
        for h in [11.0, 13.0, 15.0, 17.0] {
            assert!(
                covid.shape(h, Weekday::Tuesday) > normal.shape(h, Weekday::Tuesday) + 0.15,
                "hour {h}"
            );
        }
        // Night floor moves far less than the daytime plateau does.
        let night_rise = covid.shape(4.0, Weekday::Tuesday) - normal.shape(4.0, Weekday::Tuesday);
        let noon_rise = covid.shape(13.0, Weekday::Tuesday) - normal.shape(13.0, Weekday::Tuesday);
        assert!(
            night_rise < noon_rise * 0.7,
            "night {night_rise} vs noon {noon_rise}"
        );
    }

    #[test]
    fn shape_at_respects_timezone() {
        let p = DiurnalProfile::residential();
        // 12:00 UTC is 21:00 JST: peak in Japan, lunchtime in UTC.
        let t = CivilDateTime::new(CivilDate::new(2019, 9, 18), 12, 0, 0).to_unix();
        let jst = p.shape_at(t, TzOffset::JST);
        let utc = p.shape_at(t, TzOffset::UTC);
        assert!(jst > 0.9, "JST evening: {jst}");
        assert!(utc < jst, "UTC midday below JST evening");
    }

    #[test]
    fn shape_is_daily_periodic_on_weekdays() {
        let p = DiurnalProfile::residential();
        // Tue 15:00 equals Wed 15:00: the pattern repeats every day.
        assert_eq!(
            p.shape(15.0, Weekday::Tuesday),
            p.shape(15.0, Weekday::Wednesday)
        );
    }

    #[test]
    fn weekly_only_profile_is_flat_on_weekdays() {
        let weekly = DiurnalProfile {
            weekday_scale: 0.0,
            weekend_scale: 1.0,
            ..DiurnalProfile::residential()
        };
        // Weekdays sit at the base floor at every hour...
        for h in 0..24 {
            let v = weekly.shape(h as f64, Weekday::Wednesday);
            assert!((v - weekly.base).abs() < 1e-12, "hour {h}: {v}");
        }
        // ...while the weekend evening peak survives in full.
        assert!(weekly.shape(21.5, Weekday::Saturday) > 0.95);
    }

    #[test]
    fn gaussian_bump_wraps_midnight() {
        // A peak centered at 23:30 must still be high at 00:30.
        let v = gaussian_bump(0.5, 23.5, 2.0);
        assert!(v > 0.8, "{v}");
    }

    #[test]
    fn plateau_has_smooth_edges() {
        let inside = smooth_plateau(13.0, 9.0, 18.0, 1.0);
        let edge = smooth_plateau(9.0, 9.0, 18.0, 1.0);
        let outside = smooth_plateau(22.0, 9.0, 18.0, 1.0);
        assert!(inside > 0.95);
        assert!((edge - 0.5).abs() < 0.05);
        assert!(outside < 0.05);
    }
}
