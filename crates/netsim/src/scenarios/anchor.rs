//! The Appendix B scenario (Figure 8): ISP_D's probes vs its anchor.
//!
//! "We found only one AS (hereafter referred as ISP_D) that relies on the
//! legacy network for its broadband service and that hosts both Atlas
//! probes and anchor. [...] Both are close to 0 ms during off-peak hours
//! but the probes' delay increases significantly during peak hours while
//! the anchor's delay stays at the same level."
//!
//! Figure 8 shows the probes' aggregated queuing delay reaching tens of
//! milliseconds at peak — ISP_D is far more severely congested than the
//! Tokyo trio — across four periods (2019-03, 2019-06, 2019-09, 2020-04),
//! with 6 probes in 2019 and 7 in April 2020.

use crate::isp::IspConfig;
use crate::world::{ProbeSpec, World};
use lastmile_prefix::Asn;
use lastmile_timebase::{MeasurementPeriod, TzOffset};

/// ISP_D's ASN.
pub const ISP_D_ASN: Asn = 64520;

/// Peak aggregated queuing delay of ISP_D's probes, ms (Figure 8's y-axis
/// reaches ~40 ms; typical weekday peaks sit around 15–30 ms).
pub const ISP_D_PEAK_QUEUING_MS: f64 = 28.0;

/// The four periods plotted in Figure 8.
pub fn fig8_periods() -> [MeasurementPeriod; 4] {
    [
        MeasurementPeriod::march_2019(),
        MeasurementPeriod::june_2019(),
        MeasurementPeriod::september_2019(),
        MeasurementPeriod::april_2020(),
    ]
}

/// Build the ISP_D world: one legacy AS hosting 6 probes (7 from 2020)
/// and one anchor.
pub fn anchor_world(seed: u64) -> World {
    let mut b = World::builder(seed);
    b.add_isp(
        IspConfig::legacy_pppoe(
            ISP_D_ASN,
            "ISP_D",
            "JP",
            TzOffset::JST,
            ISP_D_PEAK_QUEUING_MS,
        )
        .with_lockdown_factor(1.4)
        .with_subscribers(3_000_000),
    );
    // Six probes online for all of 2019...
    b.add_probes(ISP_D_ASN, 6, &ProbeSpec::simple().with_old_versions(0.2));
    // ...a seventh appears before April 2020 (the "7 probes" legend entry).
    b.add_probes(
        ISP_D_ASN,
        1,
        &ProbeSpec::simple().deployed_since(MeasurementPeriod::april_2020().start() - 86_400),
    );
    b.add_anchor(ISP_D_ASN);
    b.lockdown(MeasurementPeriod::april_2020().range()).build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::ServiceClass;
    use lastmile_timebase::{CivilDate, CivilDateTime};

    #[test]
    fn world_has_probes_and_anchor() {
        let w = anchor_world(1);
        let probes: Vec<_> = w.probes_in(ISP_D_ASN).collect();
        assert_eq!(probes.iter().filter(|p| !p.meta.is_anchor).count(), 7);
        assert_eq!(probes.iter().filter(|p| p.meta.is_anchor).count(), 1);
        // Six active in 2019, seven in April 2020.
        let sep19 = MeasurementPeriod::september_2019().start();
        let apr20 = MeasurementPeriod::april_2020().start();
        assert_eq!(
            probes
                .iter()
                .filter(|p| !p.meta.is_anchor && p.is_deployed(sep19))
                .count(),
            6
        );
        assert_eq!(
            probes
                .iter()
                .filter(|p| !p.meta.is_anchor && p.is_deployed(apr20))
                .count(),
            7
        );
    }

    #[test]
    fn isp_d_is_severely_congested() {
        let w = anchor_world(1);
        // 2019-09-25 12:00 UTC = 21:00 JST.
        let peak = CivilDateTime::new(CivilDate::new(2019, 9, 25), 12, 0, 0).to_unix();
        let night = CivilDateTime::new(CivilDate::new(2019, 9, 25), 19, 0, 0).to_unix();
        let p = w.queuing_delay_ms(ISP_D_ASN, ServiceClass::BroadbandV4, peak);
        let n = w.queuing_delay_ms(ISP_D_ASN, ServiceClass::BroadbandV4, night);
        assert!(p > 15.0, "peak {p}");
        assert!(n < 2.0, "night {n}");
    }

    #[test]
    fn anchor_participation_is_zero() {
        let w = anchor_world(1);
        let anchor = w.probes().iter().find(|p| p.meta.is_anchor).unwrap();
        assert_eq!(anchor.participation, 0.0);
    }
}
