//! The Tokyo case-study scenario (Figures 5, 6, 7 and 9).
//!
//! §4 of the paper dissects Japan's three major eyeball networks during
//! September 19–26, 2019:
//!
//! * **ISP_A** (8 Tokyo probes) and **ISP_B** (5 Tokyo probes) reach most
//!   customers over the shared legacy FTTH infrastructure via PPPoE:
//!   "consistent delay increases" at peak hours (aggregated queuing delay
//!   up to several ms) and CDN throughput that "decreases to less than
//!   half during peak hours".
//! * **ISP_C** (8 Tokyo probes) runs its own fiber: delay "keeps stable",
//!   peak maxima "an order of magnitude lower", flat throughput.
//! * All three offer **mobile** service (ISP_A's mobile users are in a
//!   different AS) with "consistent performance by maintaining median
//!   throughput above 20 Mbps", and **IPv6 over IPoE** that bypasses the
//!   congested PPPoE equipment (Appendix C).

use crate::demand::DiurnalProfile;
use crate::isp::IspConfig;
use crate::scenarios::PEAK_DELAY_PER_AMPLITUDE;
use crate::world::{ProbeSpec, World};
use lastmile_prefix::Asn;
use lastmile_timebase::TzOffset;

/// ISP_A broadband ASN (legacy PPPoE).
pub const ISP_A_ASN: Asn = 64511;
/// ISP_B broadband ASN (legacy PPPoE).
pub const ISP_B_ASN: Asn = 64512;
/// ISP_C broadband ASN (own fiber).
pub const ISP_C_ASN: Asn = 64513;
/// ISP_A's mobile service ASN ("from a different AS", §4.2).
pub const ISP_A_MOBILE_ASN: Asn = 64611;
/// ISP_B's mobile service ASN.
pub const ISP_B_MOBILE_ASN: Asn = 64612;
/// ISP_C's mobile service ASN.
pub const ISP_C_MOBILE_ASN: Asn = 64613;

/// Target daily peak-to-peak amplitudes, ms (reading Figure 5: ISP_A peaks
/// around 3–6 ms, ISP_B around 2–4 ms, ISP_C an order of magnitude lower).
pub const ISP_A_AMPLITUDE_MS: f64 = 3.0;
/// See [`ISP_A_AMPLITUDE_MS`].
pub const ISP_B_AMPLITUDE_MS: f64 = 2.0;
/// See [`ISP_A_AMPLITUDE_MS`].
pub const ISP_C_AMPLITUDE_MS: f64 = 0.25;

/// Number of Greater-Tokyo-Area probes per ISP (Figure 5's legend:
/// "ISP_A (8 probes) ISP_B (5 probes) ISP_C (8 probes)").
pub const TOKYO_PROBES: [(Asn, usize); 3] = [(ISP_A_ASN, 8), (ISP_B_ASN, 5), (ISP_C_ASN, 8)];

/// Build the Tokyo world.
pub fn tokyo_world(seed: u64) -> World {
    let mut b = World::builder(seed);

    // Japanese residential demand: evening peak around 21:00 JST.
    let demand = DiurnalProfile {
        peak_hour: 21.0,
        ..DiurnalProfile::residential()
    };

    b.add_isp(
        IspConfig {
            demand: demand.clone(),
            ..IspConfig::legacy_pppoe(
                ISP_A_ASN,
                "ISP_A",
                "JP",
                TzOffset::JST,
                ISP_A_AMPLITUDE_MS * PEAK_DELAY_PER_AMPLITUDE,
            )
        }
        .with_mobile(ISP_A_MOBILE_ASN, 0.3)
        .with_v6(0.25)
        .with_subscribers(12_000_000),
    );

    b.add_isp(
        IspConfig {
            demand: demand.clone(),
            ..IspConfig::legacy_pppoe(
                ISP_B_ASN,
                "ISP_B",
                "JP",
                TzOffset::JST,
                ISP_B_AMPLITUDE_MS * PEAK_DELAY_PER_AMPLITUDE,
            )
        }
        .with_mobile(ISP_B_MOBILE_ASN, 0.35)
        .with_v6(0.25)
        .with_subscribers(8_000_000),
    );

    b.add_isp(
        IspConfig {
            demand,
            peak_queuing_ms: ISP_C_AMPLITUDE_MS * PEAK_DELAY_PER_AMPLITUDE,
            ..IspConfig::clean(ISP_C_ASN, "ISP_C", "JP", TzOffset::JST)
        }
        .with_mobile(ISP_C_MOBILE_ASN, 0.3)
        .with_v6(0.3)
        .with_subscribers(10_000_000),
    );

    // The case study deliberately uses only reliable v3 probes (§2: "we
    // avoid using these probes when it is not needed (§4)").
    for (asn, count) in TOKYO_PROBES {
        b.add_probes(asn, count, &ProbeSpec::simple().in_area("Tokyo"));
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::ServiceClass;
    use lastmile_timebase::{CivilDate, CivilDateTime};

    #[test]
    fn probe_counts_match_figure_5() {
        let w = tokyo_world(1);
        assert_eq!(w.probes_in(ISP_A_ASN).count(), 8);
        assert_eq!(w.probes_in(ISP_B_ASN).count(), 5);
        assert_eq!(w.probes_in(ISP_C_ASN).count(), 8);
        for p in w.probes() {
            assert!(p.meta.in_area("Tokyo"));
            assert!(
                !p.meta.version.is_less_reliable(),
                "case study uses v3 only"
            );
        }
    }

    #[test]
    fn legacy_isps_congest_isp_c_does_not() {
        let w = tokyo_world(1);
        // Wed 2019-09-25 12:00 UTC = 21:00 JST.
        let peak = CivilDateTime::new(CivilDate::new(2019, 9, 25), 12, 0, 0).to_unix();
        let a = w.queuing_delay_ms(ISP_A_ASN, ServiceClass::BroadbandV4, peak);
        let b_delay = w.queuing_delay_ms(ISP_B_ASN, ServiceClass::BroadbandV4, peak);
        let c = w.queuing_delay_ms(ISP_C_ASN, ServiceClass::BroadbandV4, peak);
        assert!(a > 2.0, "ISP_A peak {a}");
        assert!(b_delay > 1.5, "ISP_B peak {b_delay}");
        assert!(
            c < a / 8.0,
            "ISP_C {c} must be an order of magnitude below ISP_A {a}"
        );
    }

    #[test]
    fn all_three_offer_mobile_and_v6() {
        let w = tokyo_world(1);
        let t = CivilDate::new(2019, 9, 20).midnight();
        for asn in [ISP_A_ASN, ISP_B_ASN, ISP_C_ASN] {
            assert!(
                w.access_state(asn, ServiceClass::Mobile, t).is_some(),
                "AS{asn} mobile"
            );
            assert!(
                w.access_state(asn, ServiceClass::BroadbandV6, t).is_some(),
                "AS{asn} v6"
            );
        }
        // Mobile prefixes are announced under the separate mobile ASNs.
        let a = w.as_for(ISP_A_ASN).unwrap();
        let ip = a.mobile_prefix.unwrap().nth_address(5).unwrap();
        assert_eq!(w.registry().asn_of(ip), Some(ISP_A_MOBILE_ASN));
        assert!(w.registry().is_mobile(ip));
    }

    #[test]
    fn v6_stays_clean_at_peak_for_legacy_isps() {
        let w = tokyo_world(1);
        let peak = CivilDateTime::new(CivilDate::new(2019, 9, 25), 12, 0, 0).to_unix();
        for asn in [ISP_A_ASN, ISP_B_ASN] {
            let v4 = w.queuing_delay_ms(asn, ServiceClass::BroadbandV4, peak);
            let v6 = w.queuing_delay_ms(asn, ServiceClass::BroadbandV6, peak);
            assert!(v6 < v4 * 0.25, "AS{asn}: v6 {v6} vs v4 {v4}");
        }
    }
}
