//! Ready-made worlds for every experiment in the paper.
//!
//! Each scenario constructs a [`crate::World`] whose ground truth matches
//! one of the paper's figures, and returns that ground truth alongside so
//! integration tests and the experiment harness can check that the
//! *detector* recovers what the *simulator* planted:
//!
//! * [`examples`] — Figure 1/2: ISP_DE (flat) vs ISP_US (mild diurnal,
//!   amplified under COVID-19), with per-period probe deployment growth.
//! * [`survey`] — Figure 3/4 and the §3 statistics: 646 ASes across 98
//!   countries with the paper's class mix, APNIC-style ranks, and a
//!   COVID-19 amplification cohort.
//! * [`tokyo`] — Figures 5–7 and 9: ISP_A/ISP_B (shared legacy PPPoE) vs
//!   ISP_C (own fiber) in Tokyo, with mobile and IPoE IPv6 services for
//!   the CDN cross-validation.
//! * [`anchor`] — Figure 8: ISP_D's probes vs its anchor.
//!
//! ## Amplitude calibration
//!
//! Scenario ground truth is expressed as the **measured daily peak-to-peak
//! amplitude** the Welch detector should report. The simulator dial is the
//! *peak queuing delay* of the shared segment; because the diurnal wave is
//! a narrow evening peak (not a sine), only part of its energy lands in
//! the daily Fourier bin. [`PEAK_DELAY_PER_AMPLITUDE`] converts between
//! the two; its value is pinned by the calibration test in
//! `tests/calibration.rs`.

pub mod anchor;
pub mod examples;
pub mod survey;
pub mod tokyo;

use lastmile_prefix::Asn;

/// Peak queuing delay (ms) needed per 1 ms of measured daily peak-to-peak
/// amplitude. See the module docs; pinned by the calibration test.
pub const PEAK_DELAY_PER_AMPLITUDE: f64 = 2.37;

/// Per-technology calibration: the delay-law nonlinearity differs with
/// the utilization band, so the waveform's daily-fundamental share does
/// too. PPPoE (utilization up to 0.93) sharpens the evening peak; cable
/// (up to 0.8) tracks the demand curve more closely. Values measured with
/// `examples/calibrate.rs` / `experiments fig2`.
pub fn peak_delay_per_amplitude(tech: crate::AccessTech) -> f64 {
    match tech {
        crate::AccessTech::SharedLegacyPppoe => PEAK_DELAY_PER_AMPLITUDE,
        crate::AccessTech::CableDocsis => 2.0,
        // Fiber and LTE stay far from saturation; their (tiny) diurnal
        // components track the demand curve like cable does.
        crate::AccessTech::DedicatedFiber | crate::AccessTech::MobileLte => 2.0,
    }
}

/// Amplitude gain contributed by the COVID-19 lockdown demand *widening*
/// alone: the daytime plateau pushes extra energy into the daily Fourier
/// bin even at an unchanged queueing peak (measured with
/// `experiments fig2`). Scenarios divide their lockdown severity targets
/// by this so a planted "×2 under lockdown" really measures ×2.
pub const LOCKDOWN_WIDENING_GAIN: f64 = 1.2;

/// The congestion class a scenario plants for an AS.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum GroundTruthClass {
    /// No daily component at all: flat noise (ISP_DE-like).
    NoDaily,
    /// A detectable daily component below the 0.5 ms reporting threshold.
    WeakDaily,
    /// Daily amplitude in (0.5, 1] ms.
    Low,
    /// Daily amplitude in (1, 3] ms.
    Mild,
    /// Daily amplitude above 3 ms.
    Severe,
}

impl GroundTruthClass {
    /// Whether the paper would *report* this AS (daily pattern with
    /// amplitude over 0.5 ms).
    pub fn is_reported(self) -> bool {
        matches!(
            self,
            GroundTruthClass::Low | GroundTruthClass::Mild | GroundTruthClass::Severe
        )
    }
}

/// Scenario ground truth for one AS.
#[derive(Clone, Debug)]
pub struct AsGroundTruth {
    /// The broadband ASN.
    pub asn: Asn,
    /// Display name.
    pub name: String,
    /// ISO country code.
    pub country: String,
    /// Synthetic APNIC-style eyeball rank (1 = largest population).
    pub rank: u32,
    /// The planted class in normal times.
    pub class: GroundTruthClass,
    /// The planted class during the COVID-19 lockdown window.
    pub lockdown_class: GroundTruthClass,
    /// The planted daily peak-to-peak amplitude in normal times, ms
    /// (0 for [`GroundTruthClass::NoDaily`]).
    pub amplitude_ms: f64,
}
