//! The §3 survey scenario: 646 ASes, 98 countries (Figures 3 and 4).
//!
//! Ground-truth targets, straight from the paper:
//!
//! * ~90% of monitored ASes classify **None**; on average **47** ASes per
//!   period are reported (prominent daily pattern with amplitude > 0.5 ms);
//! * among ASes with a prominent *daily* component, the amplitude CDF
//!   splits ~83% < 0.5 ms / ~7% in 0.5–1 / ~6% in 1–3 / ~4% > 3 (Fig. 3);
//! * other ASes' prominent frequencies spread across the spectrum (noise);
//! * congestion concentrates in large eyeballs (top-1000 APNIC ranks,
//!   Fig. 4); Japan holds the most Severe reports (~18% over two years),
//!   then the U.S. (~8%); of Japan's top-10 eyeballs, 5 are reported at
//!   least once and 3 constantly;
//! * under COVID-19 (April 2020) the number of reported ASes grows ~55%
//!   (45 → 70 in the paper) — modeled as a cohort of borderline ASes whose
//!   lockdown factor pushes them over the reporting threshold.
//!
//! The generator plants classes per AS with amplitudes drawn inside each
//! class band (borderline values produce the period-to-period churn §3.1
//! reports), assigns countries and APNIC-style ranks with the paper's
//! biases, and sizes probe counts by rank (every AS hosts ≥ 3 probes, the
//! paper's inclusion threshold).

use crate::demand::DiurnalProfile;
use crate::isp::IspConfig;
use crate::rng;
use crate::scenarios::{AsGroundTruth, GroundTruthClass, LOCKDOWN_WIDENING_GAIN};
use crate::world::{ProbeSpec, World};
use crate::AccessTech;
use lastmile_prefix::Asn;
use lastmile_timebase::{MeasurementPeriod, TzOffset};

/// The 98 monitored countries (ISO 3166-1 alpha-2).
pub const COUNTRIES: [&str; 98] = [
    "JP", "US", "DE", "GB", "FR", "NL", "RU", "IT", "ES", "SE", "CH", "BE", "AT", "PL", "CZ", "DK",
    "NO", "FI", "IE", "PT", "GR", "HU", "RO", "BG", "HR", "SI", "SK", "LT", "LV", "EE", "UA", "BY",
    "RS", "TR", "IL", "SA", "AE", "IN", "CN", "KR", "TW", "HK", "SG", "MY", "TH", "VN", "ID", "PH",
    "AU", "NZ", "CA", "MX", "BR", "AR", "CL", "CO", "PE", "VE", "UY", "EC", "ZA", "EG", "MA", "TN",
    "KE", "NG", "GH", "SN", "CI", "TZ", "IS", "LU", "MT", "CY", "AL", "MK", "BA", "ME", "MD", "GE",
    "AM", "AZ", "KZ", "UZ", "KG", "MN", "NP", "LK", "BD", "PK", "IR", "IQ", "JO", "LB", "KW", "QA",
    "OM", "BH",
];

/// Survey generation parameters.
#[derive(Clone, Debug)]
pub struct SurveyConfig {
    /// World seed.
    pub seed: u64,
    /// Number of monitored ASes (paper: 646). Class counts scale with it.
    pub n_ases: usize,
    /// Cap on probes per AS (simulation cost control; every AS keeps the
    /// paper's ≥ 3 minimum).
    pub max_probes_per_as: usize,
}

impl SurveyConfig {
    /// The paper-scale survey: 646 ASes.
    pub fn paper_scale(seed: u64) -> SurveyConfig {
        SurveyConfig {
            seed,
            n_ases: 646,
            max_probes_per_as: 20,
        }
    }

    /// A reduced survey for tests: same structure, fewer ASes.
    pub fn test_scale(seed: u64, n_ases: usize) -> SurveyConfig {
        SurveyConfig {
            seed,
            n_ases,
            max_probes_per_as: 6,
        }
    }
}

/// A built survey world plus its planted ground truth.
pub struct SurveyScenario {
    /// The simulated Internet.
    pub world: World,
    /// Per-AS ground truth, in AS order.
    pub ground_truth: Vec<AsGroundTruth>,
}

impl SurveyScenario {
    /// Ground truth for an ASN.
    pub fn truth_for(&self, asn: Asn) -> Option<&AsGroundTruth> {
        self.ground_truth.iter().find(|g| g.asn == asn)
    }

    /// Number of ASes the paper would report in normal times.
    pub fn expected_reported(&self) -> usize {
        self.ground_truth
            .iter()
            .filter(|g| g.class.is_reported())
            .count()
    }

    /// Number of ASes the paper would report during the lockdown.
    pub fn expected_reported_lockdown(&self) -> usize {
        self.ground_truth
            .iter()
            .filter(|g| g.lockdown_class.is_reported())
            .count()
    }
}

/// Plant one AS's class given its index within the survey.
struct Plan {
    class: GroundTruthClass,
    lockdown_class: GroundTruthClass,
    amplitude: f64,
    lockdown_factor: f64,
    country: &'static str,
    rank: u32,
}

/// Build the survey world. The lockdown window is April 2020.
pub fn survey_world(cfg: &SurveyConfig) -> SurveyScenario {
    assert!(
        cfg.n_ases >= 20,
        "survey needs at least 20 ASes to be meaningful"
    );
    let n = cfg.n_ases;
    let scale = n as f64 / 646.0;
    // Paper-derived class counts at 646 ASes (see module docs).
    let n_severe = ((11.0 * scale).round() as usize).max(1);
    let n_mild = ((17.0 * scale).round() as usize).max(1);
    let n_low = ((20.0 * scale).round() as usize).max(1);
    let n_weak = ((232.0 * scale).round() as usize).max(2);
    // COVID cohort: enough WeakDaily ASes cross the threshold to lift the
    // reported count by ~55%.
    let n_covid_crossers = (((n_severe + n_mild + n_low) as f64) * 0.55).round() as usize;

    let mut plans: Vec<Plan> = Vec::with_capacity(n);
    let u = |i: usize, tag: u64| rng::unit_f64(cfg.seed, &[i as u64, tag, 0x50AB]);

    for i in 0..n {
        let (class, amplitude) = if i < n_severe {
            (GroundTruthClass::Severe, 3.3 + 8.0 * u(i, 1))
        } else if i < n_severe + n_mild {
            (GroundTruthClass::Mild, 1.15 + 1.6 * u(i, 1))
        } else if i < n_severe + n_mild + n_low {
            (GroundTruthClass::Low, 0.56 + 0.38 * u(i, 1))
        } else if i < n_severe + n_mild + n_low + n_weak {
            (GroundTruthClass::WeakDaily, 0.06 + 0.33 * u(i, 1))
        } else {
            (GroundTruthClass::NoDaily, 0.0)
        };

        // COVID behaviour: the first `n_covid_crossers` WeakDaily ASes are
        // pushed into a reported class; already-reported ASes intensify.
        // Net lockdown severity targets; the widening gain of the
        // lockdown demand curve is divided out so the planted target is
        // what the detector measures.
        let weak_idx = i as isize - (n_severe + n_mild + n_low) as isize;
        let (lockdown_class, net_lockdown) = match class {
            GroundTruthClass::Severe | GroundTruthClass::Mild => (class, 1.3 + 0.8 * u(i, 2)),
            GroundTruthClass::Low => (GroundTruthClass::Mild, 1.8 + 0.8 * u(i, 2)),
            GroundTruthClass::WeakDaily if (0..n_covid_crossers as isize).contains(&weak_idx) => {
                // Target a lockdown amplitude in (0.65, 1.65] ms.
                let target = 0.65 + u(i, 2);
                (
                    if target > 1.0 {
                        GroundTruthClass::Mild
                    } else {
                        GroundTruthClass::Low
                    },
                    target / amplitude.max(0.05),
                )
            }
            // Non-crossing weak ASes stay roughly where they are.
            GroundTruthClass::WeakDaily => (class, 0.9 + 0.2 * u(i, 2)),
            GroundTruthClass::NoDaily => (class, 1.0),
        };
        let lockdown_factor = net_lockdown / LOCKDOWN_WIDENING_GAIN;

        let country = pick_country(cfg.seed, i, class);
        let rank = pick_rank(cfg.seed, i, class);
        plans.push(Plan {
            class,
            lockdown_class,
            amplitude,
            lockdown_factor,
            country,
            rank,
        });
    }

    // Guarantee full country coverage: the tail of unreported ASes cycles
    // through all 98 codes so every country is monitored.
    let first_filler = n_severe + n_mild + n_low + n_weak;
    for (j, plan) in plans[first_filler..].iter_mut().enumerate() {
        plan.country = COUNTRIES[j % COUNTRIES.len()];
    }

    let mut b = World::builder(cfg.seed);
    let mut ground_truth = Vec::with_capacity(n);
    for (i, plan) in plans.iter().enumerate() {
        let asn: Asn = 100 + i as Asn;
        let name = format!("AS{asn}");
        let demand = DiurnalProfile {
            peak_hour: 20.0 + 2.0 * u(i, 3),
            peak_width_hours: 2.0 + 1.2 * u(i, 4),
            ..DiurnalProfile::residential()
        };
        let access = match plan.class {
            GroundTruthClass::NoDaily => AccessTech::DedicatedFiber,
            GroundTruthClass::WeakDaily | GroundTruthClass::Low => {
                if u(i, 5) < 0.5 {
                    AccessTech::CableDocsis
                } else {
                    AccessTech::SharedLegacyPppoe
                }
            }
            _ => AccessTech::SharedLegacyPppoe,
        };
        let subscribers = rank_to_population(plan.rank);
        b.add_isp(IspConfig {
            asn,
            name: name.clone(),
            country: plan.country.to_string(),
            tz: country_tz(plan.country),
            access,
            demand,
            peak_queuing_ms: (plan.amplitude * crate::scenarios::peak_delay_per_amplitude(access))
                .max(0.02),
            lockdown_factor: plan.lockdown_factor,
            subscribers,
            mobile: None,
            v6: None,
            peering_peak_ms: 0.0,
            route_shift: None,
            active_window: None,
        });
        let probes = probe_count(plan.rank).min(cfg.max_probes_per_as).max(3);
        b.add_probes(asn, probes, &ProbeSpec::simple().with_old_versions(0.3));
        ground_truth.push(AsGroundTruth {
            asn,
            name,
            country: plan.country.to_string(),
            rank: plan.rank,
            class: plan.class,
            lockdown_class: plan.lockdown_class,
            amplitude_ms: plan.amplitude,
        });
    }

    let world = b.lockdown(MeasurementPeriod::april_2020().range()).build();
    SurveyScenario {
        world,
        ground_truth,
    }
}

/// Country assignment with the paper's biases: Japan leads Severe, the
/// U.S. follows; reported classes spread over many distinct countries.
fn pick_country(seed: u64, i: usize, class: GroundTruthClass) -> &'static str {
    let u = rng::unit_f64(seed, &[i as u64, 0xC0]);
    match class {
        GroundTruthClass::Severe => {
            // ~30% Japan, ~15% US, rest spread.
            if u < 0.30 {
                "JP"
            } else if u < 0.45 {
                "US"
            } else {
                COUNTRIES[2 + (u * 1000.0) as usize % 60]
            }
        }
        GroundTruthClass::Mild | GroundTruthClass::Low => {
            if u < 0.12 {
                "JP"
            } else if u < 0.30 {
                "US"
            } else {
                COUNTRIES[(u * 997.0) as usize % COUNTRIES.len()]
            }
        }
        _ => {
            // Eyeball-heavy countries host more monitored ASes.
            const WEIGHTED: [&str; 12] = [
                "US", "US", "DE", "DE", "GB", "FR", "RU", "NL", "JP", "IT", "BR", "IN",
            ];
            if u < 0.5 {
                WEIGHTED[(u * 2.0 * WEIGHTED.len() as f64) as usize % WEIGHTED.len()]
            } else {
                COUNTRIES[(u * 991.0) as usize % COUNTRIES.len()]
            }
        }
    }
}

/// Rank assignment: congestion concentrates in large eyeballs (Fig. 4).
fn pick_rank(seed: u64, i: usize, class: GroundTruthClass) -> u32 {
    let u = rng::unit_f64(seed, &[i as u64, 0xAA]);
    let span = |lo: f64, hi: f64| (lo + (hi - lo) * u * u) as u32; // skew small
    match class {
        GroundTruthClass::Severe => span(30.0, 900.0),
        GroundTruthClass::Mild => span(50.0, 2_500.0),
        GroundTruthClass::Low => span(80.0, 6_000.0),
        GroundTruthClass::WeakDaily => span(50.0, 20_000.0),
        GroundTruthClass::NoDaily => span(10.0, 50_000.0),
    }
    .max(1)
}

/// APNIC-style population estimate from a rank (Zipf-ish).
fn rank_to_population(rank: u32) -> u64 {
    (2.0e8 / (rank as f64).powf(0.85)).max(500.0) as u64
}

/// Probes hosted by an AS of a given rank (≥ 3, more in large eyeballs).
fn probe_count(rank: u32) -> usize {
    3 + (1200.0 / (rank as f64 + 40.0)).round() as usize
}

/// Timezone of a country (fixed offsets; DST ignored).
pub fn country_tz(country: &str) -> TzOffset {
    match country {
        "JP" | "KR" => TzOffset::hours(9),
        "CN" | "TW" | "HK" | "SG" | "MY" | "PH" | "AU" => TzOffset::hours(8),
        "TH" | "VN" | "ID" => TzOffset::hours(7),
        "IN" | "LK" => TzOffset::seconds(5 * 3600 + 1800),
        "US" | "CA" => TzOffset::hours(-5),
        "MX" => TzOffset::hours(-6),
        "BR" | "AR" | "CL" | "UY" => TzOffset::hours(-3),
        "CO" | "PE" | "EC" => TzOffset::hours(-5),
        "GB" | "IE" | "PT" | "IS" => TzOffset::hours(0),
        "RU" | "TR" | "SA" | "KE" | "IQ" => TzOffset::hours(3),
        "AE" | "OM" | "GE" | "AM" | "AZ" => TzOffset::hours(4),
        "KZ" | "UZ" | "PK" => TzOffset::hours(5),
        "BD" | "KG" => TzOffset::hours(6),
        "MN" => TzOffset::hours(8),
        "NZ" => TzOffset::hours(12),
        "EG" | "ZA" | "GR" | "RO" | "BG" | "FI" | "EE" | "LV" | "LT" | "UA" | "IL" | "JO"
        | "LB" | "CY" | "MD" | "BY" => TzOffset::hours(2),
        _ => TzOffset::hours(1), // central Europe and west Africa default
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_counts() {
        let cfg = SurveyConfig::paper_scale(42);
        assert_eq!(cfg.n_ases, 646);
        let s = survey_world(&SurveyConfig::test_scale(42, 100));
        assert_eq!(s.ground_truth.len(), 100);
        assert_eq!(s.world.ases().len(), 100);
    }

    #[test]
    fn class_mix_scales() {
        let s = survey_world(&SurveyConfig::test_scale(42, 100));
        let count = |c: GroundTruthClass| s.ground_truth.iter().filter(|g| g.class == c).count();
        // 646-scale: 11/17/20/232/366 -> 100-scale: ~2/3/3/36/56.
        assert_eq!(count(GroundTruthClass::Severe), 2);
        assert_eq!(count(GroundTruthClass::Mild), 3);
        assert_eq!(count(GroundTruthClass::Low), 3);
        assert!((30..=42).contains(&count(GroundTruthClass::WeakDaily)));
        let reported = s.expected_reported();
        assert_eq!(reported, 8);
    }

    #[test]
    fn covid_increases_reported_by_about_55_percent() {
        let s = survey_world(&SurveyConfig::paper_scale(42));
        let normal = s.expected_reported() as f64;
        let covid = s.expected_reported_lockdown() as f64;
        let growth = covid / normal - 1.0;
        assert!(
            (0.40..=0.70).contains(&growth),
            "reported {normal} -> {covid} (+{:.0}%)",
            growth * 100.0
        );
    }

    #[test]
    fn every_as_hosts_at_least_three_probes() {
        let s = survey_world(&SurveyConfig::test_scale(7, 60));
        for g in &s.ground_truth {
            assert!(s.world.probes_in(g.asn).count() >= 3, "AS{}", g.asn);
        }
    }

    #[test]
    fn amplitudes_sit_inside_class_bands() {
        let s = survey_world(&SurveyConfig::paper_scale(3));
        for g in &s.ground_truth {
            match g.class {
                GroundTruthClass::Severe => assert!(g.amplitude_ms > 3.0, "{}", g.amplitude_ms),
                GroundTruthClass::Mild => {
                    assert!((1.0..=3.0).contains(&g.amplitude_ms), "{}", g.amplitude_ms)
                }
                GroundTruthClass::Low => {
                    assert!((0.5..=1.0).contains(&g.amplitude_ms), "{}", g.amplitude_ms)
                }
                GroundTruthClass::WeakDaily => {
                    assert!(
                        g.amplitude_ms > 0.0 && g.amplitude_ms < 0.5,
                        "{}",
                        g.amplitude_ms
                    )
                }
                GroundTruthClass::NoDaily => assert_eq!(g.amplitude_ms, 0.0),
            }
        }
    }

    #[test]
    fn japan_leads_severe_assignments() {
        let s = survey_world(&SurveyConfig::paper_scale(42));
        let severe: Vec<_> = s
            .ground_truth
            .iter()
            .filter(|g| g.class == GroundTruthClass::Severe)
            .collect();
        let jp = severe.iter().filter(|g| g.country == "JP").count();
        assert!(jp >= 2, "Japan must hold multiple Severe ASes, got {jp}");
        assert!(jp as f64 / severe.len() as f64 >= 0.15);
    }

    #[test]
    fn congested_classes_have_better_ranks() {
        let s = survey_world(&SurveyConfig::paper_scale(5));
        let mean_rank = |c: GroundTruthClass| {
            let v: Vec<f64> = s
                .ground_truth
                .iter()
                .filter(|g| g.class == c)
                .map(|g| g.rank as f64)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(mean_rank(GroundTruthClass::Severe) < mean_rank(GroundTruthClass::NoDaily));
        // All severe ASes are in the top 1000.
        for g in &s.ground_truth {
            if g.class == GroundTruthClass::Severe {
                assert!(g.rank <= 1000, "severe AS{} at rank {}", g.asn, g.rank);
            }
        }
    }

    #[test]
    fn all_98_countries_are_monitored_at_paper_scale() {
        let s = survey_world(&SurveyConfig::paper_scale(42));
        let mut seen: Vec<&str> = s.ground_truth.iter().map(|g| g.country.as_str()).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 98, "{seen:?}");
    }

    #[test]
    fn determinism() {
        let a = survey_world(&SurveyConfig::test_scale(9, 40));
        let b = survey_world(&SurveyConfig::test_scale(9, 40));
        for (x, y) in a.ground_truth.iter().zip(&b.ground_truth) {
            assert_eq!(x.asn, y.asn);
            assert_eq!(x.class, y.class);
            assert_eq!(x.amplitude_ms, y.amplitude_ms);
            assert_eq!(x.country, y.country);
        }
    }

    #[test]
    #[should_panic(expected = "at least 20")]
    fn tiny_surveys_rejected() {
        let _ = survey_world(&SurveyConfig::test_scale(1, 5));
    }
}
