//! The Figure 1/2 scenario: ISP_DE vs ISP_US.
//!
//! §2.2 of the paper illustrates the method on two large eyeball networks:
//!
//! * **ISP_DE** — "very stable delays for all measurement periods. Even in
//!   April 2020 [...] no particular change": a clean, well-provisioned
//!   network. The paper's periodogram for it is "mostly flat".
//! * **ISP_US** — "a small but consistent diurnal pattern during 2018 and
//!   2019" with daily amplitude "usually estimated around 0.4 ms", rising
//!   to **1.19 ms in April 2020** with "peak hours widening over daytime".
//!
//! Probe counts grow between periods, as the figure legends record
//! (ISP_DE 287 → 345 probes; ISP_US 285 → 331).

use crate::isp::IspConfig;
use crate::world::{ProbeSpec, World};
use crate::AccessTech;
use lastmile_prefix::Asn;
use lastmile_timebase::{MeasurementPeriod, TzOffset};

/// ASN of the German example network.
pub const ISP_DE_ASN: Asn = 64100;
/// ASN of the American example network.
pub const ISP_US_ASN: Asn = 64200;

/// ISP_US's daily amplitude in normal times, ms (the paper reads ~0.4 ms
/// off the periodograms of 2018–2019).
pub const ISP_US_NORMAL_AMPLITUDE_MS: f64 = 0.4;
/// ISP_US's daily amplitude under COVID-19, ms (the paper: 1.19 ms).
pub const ISP_US_COVID_AMPLITUDE_MS: f64 = 1.19;

/// Peak queuing delay per 1 ms of detected amplitude for ISP_US's cable
/// access (the DOCSIS utilization band produces a different waveform than
/// the PPPoE band the global constant was calibrated on; measured with
/// `experiments fig2`).
const CABLE_PEAK_DELAY_PER_AMPLITUDE: f64 = 2.0;

use crate::scenarios::LOCKDOWN_WIDENING_GAIN;

/// Build the two-ISP world of Figures 1 and 2.
///
/// The lockdown window is April 2020, so the same world serves all seven
/// survey periods.
pub fn fig1_world(seed: u64) -> World {
    let mut b = World::builder(seed);

    b.add_isp(
        IspConfig {
            access: AccessTech::DedicatedFiber,
            ..IspConfig::clean(ISP_DE_ASN, "ISP_DE", "DE", TzOffset::CET)
        }
        .with_subscribers(25_000_000),
    );

    b.add_isp(
        IspConfig {
            access: AccessTech::CableDocsis,
            peak_queuing_ms: ISP_US_NORMAL_AMPLITUDE_MS * CABLE_PEAK_DELAY_PER_AMPLITUDE,
            ..IspConfig::clean(ISP_US_ASN, "ISP_US", "US", TzOffset::US_EASTERN)
        }
        .with_lockdown_factor(
            // The +10% margin keeps April 2020 above the Mild threshold
            // (1 ms) under the world's ±25% per-period severity wobble,
            // as the paper's single observed April was (1.19 ms, Mild).
            ISP_US_COVID_AMPLITUDE_MS / ISP_US_NORMAL_AMPLITUDE_MS / LOCKDOWN_WIDENING_GAIN * 1.10,
        )
        .with_subscribers(40_000_000),
    );

    // Deployment growth (and shrinkage) between measurement periods,
    // matching the legend counts of Figure 1 exactly:
    //   ISP_DE: 287, 302, 302, 321, 326, 324, 345
    //   ISP_US: 285, 293, 298, 318, 315, 312, 331
    // Batches come online just before a period; retiring batches go dark
    // just before theirs. The survey includes v1/v2 hardware.
    let periods = MeasurementPeriod::survey_periods();
    let spec_at = |i: usize| {
        ProbeSpec::simple()
            .deployed_since(periods[i].start() - 86_400)
            .with_old_versions(0.25)
    };
    let retiring = |i: usize, until: usize| spec_at(i).retired_at(periods[until].start() - 86_400);

    // ISP_DE: 285 persistent from the start plus 2 retiring before Sep 2019.
    b.add_probes(ISP_DE_ASN, 285, &spec_at(0));
    b.add_probes(ISP_DE_ASN, 2, &retiring(0, 5));
    for (i, n) in [(1usize, 15usize), (3, 19), (4, 5), (6, 21)] {
        b.add_probes(ISP_DE_ASN, n, &spec_at(i));
    }

    // ISP_US: 279 persistent plus 3 retiring before Jun 2019 and 3 before
    // Sep 2019.
    b.add_probes(ISP_US_ASN, 279, &spec_at(0));
    b.add_probes(ISP_US_ASN, 3, &retiring(0, 4));
    b.add_probes(ISP_US_ASN, 3, &retiring(0, 5));
    for (i, n) in [(1usize, 8usize), (2, 5), (3, 20), (6, 19)] {
        b.add_probes(ISP_US_ASN, n, &spec_at(i));
    }

    b.lockdown(MeasurementPeriod::april_2020().range()).build()
}

/// Number of probes of an AS active in a period (the figure legends).
pub fn active_probe_count(world: &World, asn: Asn, period: &MeasurementPeriod) -> usize {
    world
        .probes_in(asn)
        .filter(|p| !p.meta.is_anchor && p.is_deployed(period.start()))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_counts_match_the_figure_1_legend() {
        let w = fig1_world(1);
        let periods = MeasurementPeriod::survey_periods();
        let de: Vec<usize> = periods
            .iter()
            .map(|p| active_probe_count(&w, ISP_DE_ASN, p))
            .collect();
        let us: Vec<usize> = periods
            .iter()
            .map(|p| active_probe_count(&w, ISP_US_ASN, p))
            .collect();
        assert_eq!(de, vec![287, 302, 302, 321, 326, 324, 345]);
        assert_eq!(us, vec![285, 293, 298, 318, 315, 312, 331]);
    }

    #[test]
    fn lockdown_covers_april_2020_only() {
        let w = fig1_world(1);
        assert!(w.is_lockdown(MeasurementPeriod::april_2020().start() + 86_400));
        assert!(!w.is_lockdown(MeasurementPeriod::september_2019().start() + 86_400));
    }

    #[test]
    fn isp_us_is_mildly_congested_isp_de_is_not() {
        let w = fig1_world(1);
        let us = w.as_for(ISP_US_ASN).unwrap();
        let de = w.as_for(ISP_DE_ASN).unwrap();
        assert!(us.config.peak_queuing_ms > de.config.peak_queuing_ms * 3.0);
        assert!(
            us.config.lockdown_factor > 2.0,
            "COVID must amplify ISP_US strongly"
        );
    }
}
