//! Access technologies and service classes.
//!
//! §4 of the paper contrasts three access arrangements in Japan:
//!
//! * **shared legacy FTTH over PPPoE** (ISP A, ISP B, ISP D): the carrier's
//!   nation-wide fiber with carrier-owned PPPoE termination equipment that
//!   is "too expensive to upgrade" — the congested case;
//! * **operator-owned fiber** (ISP C): dedicated, scaled infrastructure —
//!   flat delay, stable throughput;
//! * **LTE mobile**: "cellular networks show consistent performance by
//!   maintaining median throughput above 20 Mbps";
//!
//! plus Appendix C's **IPoE IPv6** path that bypasses the congested PPPoE
//! equipment ("more recent equipment and lower number of users").
//!
//! [`AccessTech`] captures the technology of a *broadband* product;
//! [`ServiceClass`] names which service a CDN client uses (broadband v4,
//! broadband v6, mobile) since one AS offers several.

use crate::queue::QueueModel;

/// The access technology behind an ISP's broadband product.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AccessTech {
    /// FTTH over the shared legacy carrier network, terminated on
    /// oversubscribed PPPoE equipment. The congestion-prone case.
    SharedLegacyPppoe,
    /// FTTH on infrastructure the ISP owns and scales itself.
    DedicatedFiber,
    /// DOCSIS cable: mildly shared, between the two above.
    CableDocsis,
    /// LTE cellular access (used for the mobile service class).
    MobileLte,
}

impl AccessTech {
    /// Typical per-subscriber base (propagation + serialization) RTT range
    /// on the last-mile segment, milliseconds. Individual probes draw
    /// their base from this range.
    pub fn base_rtt_range_ms(self) -> (f64, f64) {
        match self {
            AccessTech::SharedLegacyPppoe => (1.5, 6.0),
            AccessTech::DedicatedFiber => (0.8, 4.0),
            AccessTech::CableDocsis => (4.0, 12.0),
            AccessTech::MobileLte => (15.0, 45.0),
        }
    }

    /// Nominal downstream line rate of the access product, Mbps. The CDN
    /// throughput model can never exceed this.
    pub fn line_rate_mbps(self) -> f64 {
        match self {
            AccessTech::SharedLegacyPppoe => 100.0,
            AccessTech::DedicatedFiber => 100.0,
            AccessTech::CableDocsis => 60.0,
            AccessTech::MobileLte => 37.5,
        }
    }

    /// Whether customers of this technology reach the ISP through shared
    /// legacy equipment (the paper's congestion hypothesis applies).
    pub fn is_shared_legacy(self) -> bool {
        matches!(self, AccessTech::SharedLegacyPppoe)
    }

    /// Default queue for this technology when the scenario gives a target
    /// peak queuing delay (ms). Non-shared technologies keep low
    /// utilization regardless of the demand peak.
    pub fn queue_for_peak_delay(self, peak_delay_ms: f64) -> QueueModel {
        match self {
            AccessTech::SharedLegacyPppoe => {
                QueueModel::calibrated(0.25, 0.93, peak_delay_ms, peak_delay_ms.max(1.0) * 12.0)
            }
            AccessTech::DedicatedFiber => {
                QueueModel::calibrated(0.1, 0.45, peak_delay_ms, peak_delay_ms.max(0.5) * 12.0)
            }
            AccessTech::CableDocsis => {
                QueueModel::calibrated(0.2, 0.8, peak_delay_ms, peak_delay_ms.max(1.0) * 12.0)
            }
            AccessTech::MobileLte => {
                QueueModel::calibrated(0.2, 0.6, peak_delay_ms, peak_delay_ms.max(1.0) * 12.0)
            }
        }
    }
}

/// Which of an AS's services a client (or probe) uses.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ServiceClass {
    /// Fixed broadband over IPv4 — for legacy ISPs this is PPPoE, the
    /// congested path.
    BroadbandV4,
    /// Fixed broadband over IPv6 — for legacy ISPs this is IPoE, the
    /// uncongested bypass (Appendix C).
    BroadbandV6,
    /// Mobile (LTE) service, IPv4.
    Mobile,
}

impl ServiceClass {
    /// Label used in figure legends.
    pub fn label(self) -> &'static str {
        match self {
            ServiceClass::BroadbandV4 => "IPv4",
            ServiceClass::BroadbandV6 => "IPv6",
            ServiceClass::Mobile => "mobile",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_rtt_ranges_are_ordered() {
        for tech in [
            AccessTech::SharedLegacyPppoe,
            AccessTech::DedicatedFiber,
            AccessTech::CableDocsis,
            AccessTech::MobileLte,
        ] {
            let (lo, hi) = tech.base_rtt_range_ms();
            assert!(lo > 0.0 && lo < hi, "{tech:?}");
        }
        // LTE has the highest base RTT, fiber the lowest.
        assert!(
            AccessTech::MobileLte.base_rtt_range_ms().0
                > AccessTech::DedicatedFiber.base_rtt_range_ms().1
        );
    }

    #[test]
    fn only_pppoe_is_shared_legacy() {
        assert!(AccessTech::SharedLegacyPppoe.is_shared_legacy());
        assert!(!AccessTech::DedicatedFiber.is_shared_legacy());
        assert!(!AccessTech::CableDocsis.is_shared_legacy());
        assert!(!AccessTech::MobileLte.is_shared_legacy());
    }

    #[test]
    fn queue_reaches_target_at_peak() {
        for tech in [AccessTech::SharedLegacyPppoe, AccessTech::DedicatedFiber] {
            let q = tech.queue_for_peak_delay(3.0);
            assert!((q.queuing_delay_ms(1.0) - 3.0).abs() < 1e-9, "{tech:?}");
        }
    }

    #[test]
    fn legacy_queue_sees_loss_at_peak_dedicated_does_not() {
        let legacy = AccessTech::SharedLegacyPppoe.queue_for_peak_delay(4.0);
        let fiber = AccessTech::DedicatedFiber.queue_for_peak_delay(0.2);
        assert!(
            legacy.loss_rate(1.0) > legacy.max_loss * 0.5,
            "PPPoE at peak must drop packets"
        );
        assert!(
            fiber.loss_rate(1.0) < fiber.max_loss * 0.01,
            "dedicated fiber stays below the loss knee"
        );
    }

    #[test]
    fn line_rates() {
        assert!(
            AccessTech::MobileLte.line_rate_mbps() < AccessTech::DedicatedFiber.line_rate_mbps()
        );
        assert!(
            AccessTech::MobileLte.line_rate_mbps() > 20.0,
            "LTE must sustain >20 Mbps medians"
        );
    }

    #[test]
    fn service_class_labels() {
        assert_eq!(ServiceClass::BroadbandV4.label(), "IPv4");
        assert_eq!(ServiceClass::BroadbandV6.label(), "IPv6");
        assert_eq!(ServiceClass::Mobile.label(), "mobile");
    }
}
