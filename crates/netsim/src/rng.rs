//! Deterministic seed derivation.
//!
//! Every random draw in the simulator is keyed by the world seed plus a
//! structural path (AS, probe, day, bin, measurement...). This makes the
//! simulation reproducible bit-for-bit, independent of iteration order and
//! thread scheduling — a requirement for the experiment harness, whose
//! outputs are compared against recorded values in EXPERIMENTS.md.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// splitmix64 — the standard 64-bit finalizer used to derive child seeds.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Mix a seed with a structural path into a child seed.
///
/// Associative structure does not matter; what matters is that distinct
/// paths give independent-looking streams and identical paths give
/// identical streams.
pub fn mix(seed: u64, path: &[u64]) -> u64 {
    let mut acc = splitmix64(seed);
    for &p in path {
        acc = splitmix64(acc ^ p.wrapping_mul(0xD6E8FEB86659FD93));
    }
    acc
}

/// A fast RNG seeded from a structural path.
pub fn rng_for(seed: u64, path: &[u64]) -> SmallRng {
    SmallRng::seed_from_u64(mix(seed, path))
}

/// A uniform f64 in `[0, 1)` derived directly from a path — cheaper than
/// instantiating an RNG for a single draw.
pub fn unit_f64(seed: u64, path: &[u64]) -> f64 {
    (mix(seed, path) >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn identical_paths_give_identical_streams() {
        let mut a = rng_for(42, &[1, 2, 3]);
        let mut b = rng_for(42, &[1, 2, 3]);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_paths_diverge() {
        let a: u64 = rng_for(42, &[1, 2, 3]).gen();
        let b: u64 = rng_for(42, &[1, 2, 4]).gen();
        let c: u64 = rng_for(43, &[1, 2, 3]).gen();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn path_order_matters() {
        assert_ne!(mix(1, &[2, 3]), mix(1, &[3, 2]));
        assert_ne!(mix(1, &[0]), mix(1, &[]));
    }

    #[test]
    fn unit_f64_is_in_range_and_spread() {
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for i in 0..10_000u64 {
            let v = unit_f64(7, &[i]);
            assert!((0.0..1.0).contains(&v));
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < 0.01, "min {lo}");
        assert!(hi > 0.99, "max {hi}");
    }

    #[test]
    fn mean_of_unit_draws_is_half() {
        let n = 50_000u64;
        let sum: f64 = (0..n).map(|i| unit_f64(99, &[i, 1])).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
