//! Shared-segment queue model.
//!
//! A fluid approximation of the aggregation queue: utilization `u` follows
//! the demand shape between an off-peak and a peak level, queuing delay
//! grows like the classic `u/(1-u)` law with a bufferbloat cap, and loss
//! appears as utilization approaches saturation.
//!
//! The model is *calibrated*: [`QueueModel::calibrated`] takes the target
//! queuing delay at peak utilization and solves for the scale constant, so
//! a scenario can state ground truth directly ("this AS peaks at 4 ms of
//! aggregated queuing delay") and the whole causal chain — demand →
//! utilization → delay — still runs underneath. This is what lets the
//! survey scenarios place ASes precisely into the paper's None / Low /
//! Mild / Severe amplitude classes while the detector still has to *find*
//! that out from traceroutes.

/// Utilization beyond which the delay law is clamped (the queue is
/// saturated and the bufferbloat cap takes over).
const UTIL_CLAMP: f64 = 0.97;

/// A calibrated fluid queue on a shared access segment.
#[derive(Clone, Debug, PartialEq)]
pub struct QueueModel {
    /// Utilization at demand shape 0 (deep night).
    pub offpeak_util: f64,
    /// Utilization at demand shape 1 (peak hour).
    pub peak_util: f64,
    /// Scale constant of the delay law, ms.
    scale_ms: f64,
    /// Upper bound on queuing delay (buffer size), ms.
    pub max_delay_ms: f64,
    /// Loss rate at full saturation (u ≥ 1), fraction.
    pub max_loss: f64,
}

impl QueueModel {
    /// Build a queue whose delay at *peak* utilization equals
    /// `peak_delay_ms`.
    ///
    /// Panics on out-of-order utilizations or negative targets — these are
    /// scenario constants, not runtime input.
    pub fn calibrated(
        offpeak_util: f64,
        peak_util: f64,
        peak_delay_ms: f64,
        max_delay_ms: f64,
    ) -> QueueModel {
        assert!(
            (0.0..=1.5).contains(&offpeak_util) && (0.0..=1.5).contains(&peak_util),
            "utilization out of range"
        );
        assert!(offpeak_util <= peak_util, "off-peak utilization above peak");
        assert!(
            peak_delay_ms >= 0.0 && max_delay_ms >= peak_delay_ms,
            "bad delay targets"
        );
        let law_at_peak = delay_law(peak_util);
        let scale_ms = if law_at_peak > 0.0 {
            peak_delay_ms / law_at_peak
        } else {
            0.0
        };
        QueueModel {
            offpeak_util,
            peak_util,
            scale_ms,
            max_delay_ms,
            max_loss: 0.02,
        }
    }

    /// An uncongested segment: negligible delay at any demand.
    pub fn uncongested() -> QueueModel {
        QueueModel::calibrated(0.05, 0.3, 0.0, 50.0)
    }

    /// Utilization at a given demand shape (`0..=1`).
    pub fn utilization(&self, shape: f64) -> f64 {
        self.offpeak_util + (self.peak_util - self.offpeak_util) * shape.clamp(0.0, 1.0)
    }

    /// Queuing delay in milliseconds at a given demand shape.
    pub fn queuing_delay_ms(&self, shape: f64) -> f64 {
        (self.scale_ms * delay_law(self.utilization(shape))).min(self.max_delay_ms)
    }

    /// Packet loss rate at a given demand shape.
    ///
    /// Loss follows the *queuing delay* through a sharp Hill-type knee at
    /// 1 ms: negligible below ~0.6 ms, half of `max_loss` at exactly 1 ms,
    /// saturating above. This encodes the paper's §4.3 observation that
    /// "significant throughput drops occur when aggregated delays are over
    /// 1 ms" — once the shared buffer holds a millisecond of traffic it is
    /// effectively full and TCP flows start losing packets.
    pub fn loss_rate(&self, shape: f64) -> f64 {
        let d = self.queuing_delay_ms(shape);
        let d4 = d.powi(4);
        self.max_loss * d4 / (d4 + LOSS_KNEE_MS.powi(4))
    }
}

/// Queuing delay (ms) at which loss reaches half of `max_loss`.
const LOSS_KNEE_MS: f64 = 1.0;

/// The dimensionless delay law: `u² / (1 − u)`, clamped near saturation.
/// The `u²` numerator keeps night-time delay negligible while preserving
/// the sharp knee as `u → 1`.
fn delay_law(u: f64) -> f64 {
    let u = u.clamp(0.0, UTIL_CLAMP);
    u * u / (1.0 - u)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_hits_peak_delay_exactly() {
        for target in [0.2, 1.0, 4.0, 40.0] {
            let q = QueueModel::calibrated(0.2, 0.9, target, 100.0);
            assert!(
                (q.queuing_delay_ms(1.0) - target).abs() < 1e-9,
                "target {target}"
            );
        }
    }

    #[test]
    fn delay_is_monotone_in_demand() {
        let q = QueueModel::calibrated(0.2, 0.92, 4.0, 100.0);
        let mut prev = -1.0;
        for i in 0..=20 {
            let d = q.queuing_delay_ms(i as f64 / 20.0);
            assert!(d >= prev);
            prev = d;
        }
    }

    #[test]
    fn offpeak_delay_is_far_below_peak() {
        let q = QueueModel::calibrated(0.2, 0.92, 4.0, 100.0);
        let night = q.queuing_delay_ms(0.0);
        let peak = q.queuing_delay_ms(1.0);
        assert!(night < peak * 0.05, "night {night} vs peak {peak}");
    }

    #[test]
    fn bufferbloat_cap_applies() {
        // A later capacity change (smaller buffers) caps the delay below
        // the originally calibrated peak.
        let mut q = QueueModel::calibrated(0.2, 0.97, 30.0, 35.0);
        q.max_delay_ms = 10.0;
        assert!(q.queuing_delay_ms(1.0) <= 10.0);
    }

    #[test]
    fn uncongested_is_flat_zero() {
        let q = QueueModel::uncongested();
        for i in 0..=10 {
            assert_eq!(q.queuing_delay_ms(i as f64 / 10.0), 0.0);
        }
    }

    #[test]
    fn loss_knees_at_one_millisecond_of_delay() {
        let q = QueueModel::calibrated(0.25, 0.93, 8.0, 100.0);
        // Deep night: delay ~0 -> essentially lossless.
        assert!(q.loss_rate(0.0) < q.max_loss * 0.01, "{}", q.loss_rate(0.0));
        // At peak (8 ms of delay) loss saturates near max_loss.
        assert!(q.loss_rate(1.0) > q.max_loss * 0.95);
        // Monotone in demand.
        let mut prev = -1.0;
        for i in 0..=20 {
            let l = q.loss_rate(i as f64 / 20.0);
            assert!(l >= prev);
            prev = l;
        }
        // A mildly-queued segment (peak 0.5 ms) stays nearly lossless even
        // at its own peak: the knee is on absolute delay.
        let mild = QueueModel::calibrated(0.1, 0.45, 0.5, 10.0);
        assert!(
            mild.loss_rate(1.0) < mild.max_loss * 0.08,
            "{}",
            mild.loss_rate(1.0)
        );
    }

    #[test]
    fn utilization_interpolates_linearly() {
        let q = QueueModel::calibrated(0.2, 0.8, 1.0, 10.0);
        assert!((q.utilization(0.0) - 0.2).abs() < 1e-12);
        assert!((q.utilization(0.5) - 0.5).abs() < 1e-12);
        assert!((q.utilization(1.0) - 0.8).abs() < 1e-12);
        // Shape is clamped.
        assert!((q.utilization(2.0) - 0.8).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "off-peak utilization above peak")]
    fn rejects_inverted_utilization() {
        let _ = QueueModel::calibrated(0.9, 0.2, 1.0, 10.0);
    }

    #[test]
    fn zero_target_means_zero_delay_everywhere() {
        let q = QueueModel::calibrated(0.1, 0.9, 0.0, 10.0);
        assert_eq!(q.queuing_delay_ms(1.0), 0.0);
        assert_eq!(q.queuing_delay_ms(0.5), 0.0);
    }
}
