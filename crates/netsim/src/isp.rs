//! Per-AS (ISP) configuration.
//!
//! An [`IspConfig`] states an eyeball network's ground truth: where it is,
//! what access technology its broadband product uses, how strong its
//! diurnal demand is, and — the scenario's key dial — the **peak queuing
//! delay** on its shared segment. Scenario presets build these to match
//! each figure of the paper; the world and engine turn them into
//! measurable traceroutes and CDN transfers.

use crate::access::AccessTech;
use crate::demand::DiurnalProfile;
use lastmile_prefix::Asn;
use lastmile_timebase::{TimeRange, TzOffset, UnixTime};

/// A mobile (cellular) service attached to an ISP.
///
/// §4.2: "ISP A mobile users are from a different AS" — the mobile service
/// may be announced under its own ASN.
#[derive(Clone, Debug, PartialEq)]
pub struct MobileService {
    /// ASN announcing the mobile prefixes (may equal the broadband ASN).
    pub asn: Asn,
    /// Peak queuing delay of the LTE radio/backhaul, ms (small: cellular
    /// performance is consistent in the paper).
    pub peak_queuing_ms: f64,
}

/// An IPv6 broadband service (IPoE for legacy ISPs, dual-stack otherwise).
#[derive(Clone, Debug, PartialEq)]
pub struct V6Service {
    /// Peak queuing delay of the IPv6 path, ms. For legacy ISPs this is
    /// far below the PPPoE path ("more recent equipment and lower number
    /// of users", Appendix C).
    pub peak_queuing_ms: f64,
}

/// A route-change-induced RTT level shift ("From BGP to RTT and Beyond"):
/// at instant `at`, the AS's upstream path changes and every RTT from the
/// ISP edge outward steps by `delta_ms` — an *aperiodic* shift that naive
/// RTT-based congestion inference can mistake for congestion onset. The
/// paper's detector must not report it (no prominent daily component).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RouteShift {
    /// When the route changes.
    pub at: UnixTime,
    /// RTT level shift from the edge outward, ms (may be negative: a
    /// route can also get shorter).
    pub delta_ms: f64,
}

/// Ground-truth configuration of one eyeball AS.
#[derive(Clone, Debug, PartialEq)]
pub struct IspConfig {
    /// The broadband ASN.
    pub asn: Asn,
    /// Display name, e.g. `ISP_A`.
    pub name: String,
    /// ISO 3166-1 alpha-2 country code.
    pub country: String,
    /// The ISP's local timezone — demand peaks in local evenings.
    pub tz: TzOffset,
    /// Broadband access technology.
    pub access: AccessTech,
    /// Diurnal demand shape.
    pub demand: DiurnalProfile,
    /// Target queuing delay at the busiest weekday instant on the shared
    /// IPv4 broadband segment, ms. Zero for a clean network.
    pub peak_queuing_ms: f64,
    /// Multiplier applied to `peak_queuing_ms` during a lockdown window
    /// (≥ 1; e.g. 3.0 for an AS that tips into congestion under COVID-19).
    pub lockdown_factor: f64,
    /// Estimated user population (APNIC-style eyeball estimate input).
    pub subscribers: u64,
    /// Optional mobile service.
    pub mobile: Option<MobileService>,
    /// Optional IPv6 broadband service.
    pub v6: Option<V6Service>,
    /// Target queuing delay at the busiest instant on the AS's upstream
    /// **peering** link, ms ("Where in the Internet is congestion?").
    /// This delay sits *beyond* the ISP edge, so the paper's last-mile
    /// estimator (first-public minus last-private RTT) must not see it.
    /// Zero for an uncongested interconnect.
    pub peering_peak_ms: f64,
    /// Optional route-change RTT level shift.
    pub route_shift: Option<RouteShift>,
    /// When set, the shared-segment congestion only exists inside this
    /// window — a *transient* episode (outage, flash crowd, short-lived
    /// oversubscription) rather than the paper's persistent pattern.
    pub active_window: Option<TimeRange>,
}

impl IspConfig {
    /// A minimal clean eyeball network, dedicated fiber, no congestion.
    /// Scenario code customises from here.
    pub fn clean(asn: Asn, name: &str, country: &str, tz: TzOffset) -> IspConfig {
        IspConfig {
            asn,
            name: name.to_string(),
            country: country.to_string(),
            tz,
            access: AccessTech::DedicatedFiber,
            demand: DiurnalProfile::residential(),
            peak_queuing_ms: 0.1,
            lockdown_factor: 1.0,
            subscribers: 100_000,
            mobile: None,
            v6: None,
            peering_peak_ms: 0.0,
            route_shift: None,
            active_window: None,
        }
    }

    /// A legacy-infrastructure eyeball with the given peak queuing delay.
    pub fn legacy_pppoe(
        asn: Asn,
        name: &str,
        country: &str,
        tz: TzOffset,
        peak_queuing_ms: f64,
    ) -> IspConfig {
        IspConfig {
            access: AccessTech::SharedLegacyPppoe,
            peak_queuing_ms,
            ..IspConfig::clean(asn, name, country, tz)
        }
    }

    /// Attach a mobile service.
    pub fn with_mobile(mut self, asn: Asn, peak_queuing_ms: f64) -> IspConfig {
        self.mobile = Some(MobileService {
            asn,
            peak_queuing_ms,
        });
        self
    }

    /// Attach an IPv6 (IPoE) service.
    pub fn with_v6(mut self, peak_queuing_ms: f64) -> IspConfig {
        self.v6 = Some(V6Service { peak_queuing_ms });
        self
    }

    /// Set the subscriber population.
    pub fn with_subscribers(mut self, subscribers: u64) -> IspConfig {
        self.subscribers = subscribers;
        self
    }

    /// Set the lockdown amplification factor.
    pub fn with_lockdown_factor(mut self, factor: f64) -> IspConfig {
        assert!(factor >= 0.0, "lockdown factor must be non-negative");
        self.lockdown_factor = factor;
        self
    }

    /// Congest the upstream peering link (beyond the ISP edge).
    pub fn with_peering_congestion(mut self, peak_ms: f64) -> IspConfig {
        assert!(peak_ms >= 0.0, "peering peak must be non-negative");
        self.peering_peak_ms = peak_ms;
        self
    }

    /// Apply a route-change RTT level shift from `at` onward.
    pub fn with_route_shift(mut self, at: UnixTime, delta_ms: f64) -> IspConfig {
        self.route_shift = Some(RouteShift { at, delta_ms });
        self
    }

    /// Confine the shared-segment congestion to a transient episode.
    pub fn with_active_window(mut self, window: TimeRange) -> IspConfig {
        self.active_window = Some(window);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_defaults() {
        let isp = IspConfig::clean(64500, "ISP_X", "DE", TzOffset::CET);
        assert_eq!(isp.asn, 64500);
        assert_eq!(isp.access, AccessTech::DedicatedFiber);
        assert!(isp.peak_queuing_ms < 0.5, "clean ISP must classify as None");
        assert!(isp.mobile.is_none() && isp.v6.is_none());
    }

    #[test]
    fn legacy_builder_sets_technology() {
        let isp = IspConfig::legacy_pppoe(64501, "ISP_A", "JP", TzOffset::JST, 4.0);
        assert_eq!(isp.access, AccessTech::SharedLegacyPppoe);
        assert_eq!(isp.peak_queuing_ms, 4.0);
        assert_eq!(isp.country, "JP");
    }

    #[test]
    fn service_attachment_chains() {
        let isp = IspConfig::legacy_pppoe(64501, "ISP_A", "JP", TzOffset::JST, 4.0)
            .with_mobile(64601, 0.3)
            .with_v6(0.2)
            .with_subscribers(5_000_000)
            .with_lockdown_factor(2.0);
        assert_eq!(isp.mobile.as_ref().unwrap().asn, 64601);
        assert_eq!(isp.v6.as_ref().unwrap().peak_queuing_ms, 0.2);
        assert_eq!(isp.subscribers, 5_000_000);
        assert_eq!(isp.lockdown_factor, 2.0);
    }

    #[test]
    #[should_panic(expected = "lockdown factor")]
    fn rejects_negative_lockdown_factor() {
        let _ = IspConfig::clean(1, "x", "US", TzOffset::UTC).with_lockdown_factor(-1.0);
    }

    #[test]
    fn adversarial_builders_chain() {
        let start = UnixTime::from_secs(1_000_000);
        let isp = IspConfig::clean(9, "adv", "US", TzOffset::UTC)
            .with_peering_congestion(5.0)
            .with_route_shift(start, 4.0)
            .with_active_window(TimeRange::new(start, start + 86_400));
        assert_eq!(isp.peering_peak_ms, 5.0);
        assert_eq!(isp.route_shift.unwrap().delta_ms, 4.0);
        assert_eq!(isp.active_window.unwrap().duration_secs(), 86_400);
        // clean() carries none of the adversarial knobs.
        let base = IspConfig::clean(1, "x", "US", TzOffset::UTC);
        assert_eq!(base.peering_peak_ms, 0.0);
        assert!(base.route_shift.is_none() && base.active_window.is_none());
    }

    #[test]
    #[should_panic(expected = "peering peak")]
    fn rejects_negative_peering_peak() {
        let _ = IspConfig::clean(1, "x", "US", TzOffset::UTC).with_peering_congestion(-0.1);
    }
}
