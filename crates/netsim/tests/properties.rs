//! Property-based tests for the simulator's analytic components.

use lastmile_netsim::{DiurnalProfile, QueueModel};
use lastmile_timebase::Weekday;
use proptest::prelude::*;

fn arb_profile() -> impl Strategy<Value = DiurnalProfile> {
    (
        (
            0.0f64..0.6,  // base
            0.0f64..24.0, // peak hour
            0.5f64..5.0,  // width
            0.0f64..0.8,  // morning bump
            6.0f64..12.0, // morning hour
        ),
        (
            0.8f64..1.3,  // weekend scale
            0.0f64..1.2,  // weekday scale (0 = weekly-only)
            -1.0f64..2.0, // weekend shift
            0.0f64..0.7,  // plateau
        ),
    )
        .prop_map(
            |(
                (base, peak_hour, peak_width_hours, morning_bump, morning_hour),
                (weekend_scale, weekday_scale, weekend_shift_hours, daytime_plateau),
            )| {
                DiurnalProfile {
                    base,
                    peak_hour,
                    peak_width_hours,
                    morning_bump,
                    morning_hour,
                    weekend_scale,
                    weekday_scale,
                    weekend_shift_hours,
                    daytime_plateau,
                }
            },
        )
}

proptest! {
    /// Demand shape stays in [0, 1] for arbitrary profiles and instants.
    #[test]
    fn demand_shape_is_bounded(profile in arb_profile(), hour in 0.0f64..24.0, wd in 0usize..7) {
        let weekday = Weekday::ALL[wd];
        let v = profile.shape(hour, weekday);
        prop_assert!((0.0..=1.0).contains(&v), "{v}");
        // The lockdown variant is also bounded and never below at midday.
        let lockdown = profile.under_lockdown();
        let lv = lockdown.shape(hour, weekday);
        prop_assert!((0.0..=1.0).contains(&lv), "{lv}");
        let mid = 13.0;
        prop_assert!(lockdown.shape(mid, weekday) + 1e-9 >= profile.shape(mid, weekday));
    }

    /// Calibrated queues: delay is monotone in demand, bounded by the cap,
    /// and hits the target at peak; loss is monotone and within [0, max].
    #[test]
    fn queue_model_invariants(
        offpeak in 0.0f64..0.6,
        peak_delta in 0.05f64..0.9,
        target in 0.0f64..50.0,
    ) {
        let peak = (offpeak + peak_delta).min(1.45);
        let q = QueueModel::calibrated(offpeak, peak, target, target.max(1.0) * 12.0);
        let mut prev_d = -1.0;
        let mut prev_l = -1.0;
        for i in 0..=20 {
            let s = i as f64 / 20.0;
            let d = q.queuing_delay_ms(s);
            let l = q.loss_rate(s);
            prop_assert!(d >= prev_d - 1e-12);
            prop_assert!(l >= prev_l - 1e-12);
            prop_assert!(d <= q.max_delay_ms + 1e-9);
            prop_assert!((0.0..=q.max_loss + 1e-12).contains(&l));
            prev_d = d;
            prev_l = l;
        }
        prop_assert!((q.queuing_delay_ms(1.0) - target).abs() < 1e-6 || target > q.max_delay_ms);
    }
}
