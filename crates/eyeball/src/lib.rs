//! # lastmile-eyeball
//!
//! An APNIC-labs-style registry of *eyeball population estimates*: how
//! many Internet users sit behind each AS, its global rank, and its
//! country.
//!
//! §3.2 of the IMC 2020 paper: "To get a sense of the number of Internet
//! users impacted by the identified congestion, we classified our results
//! with the help of the APNIC eyeball population estimates" — Figure 4
//! breaks classifications down by rank bucket (1–10, 11–100, 101–1k,
//! 1k–10k, >10k), and the geographic analysis uses "the country code
//! provided with the APNIC ranks".
//!
//! [`EyeballRegistry`] stores per-AS entries and answers rank/country
//! queries; [`EyeballRegistry::from_populations`] derives global ranks by
//! sorting populations, the way the real service does.
//!
//! ```
//! use lastmile_eyeball::EyeballRegistry;
//!
//! let reg = EyeballRegistry::from_populations([
//!     (64501, 9_000_000, "JP"),
//!     (64502, 40_000_000, "US"),
//!     (64503, 500_000, "DE"),
//! ]);
//! assert_eq!(reg.rank_of(64502), Some(1)); // largest population
//! assert_eq!(reg.rank_of(64501), Some(2));
//! assert_eq!(reg.country_of(64503), Some("DE"));
//! ```

use lastmile_prefix::Asn;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One AS's eyeball estimate.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EyeballEntry {
    /// The AS.
    pub asn: Asn,
    /// Global rank by estimated users (1 = largest).
    pub rank: u32,
    /// Estimated user population.
    pub population: u64,
    /// ISO 3166-1 alpha-2 country code.
    pub country: String,
}

/// A registry of eyeball estimates.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct EyeballRegistry {
    entries: BTreeMap<Asn, EyeballEntry>,
}

impl EyeballRegistry {
    /// An empty registry.
    pub fn new() -> EyeballRegistry {
        EyeballRegistry::default()
    }

    /// Insert (or replace) an entry with an explicit rank — used when the
    /// scenario assigns synthetic global ranks directly.
    pub fn insert(&mut self, entry: EyeballEntry) {
        self.entries.insert(entry.asn, entry);
    }

    /// Build from raw `(asn, population, country)` tuples, deriving ranks
    /// by descending population (ties broken by ASN for determinism).
    pub fn from_populations<'a>(
        items: impl IntoIterator<Item = (Asn, u64, &'a str)>,
    ) -> EyeballRegistry {
        let mut list: Vec<(Asn, u64, &str)> = items.into_iter().collect();
        list.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut reg = EyeballRegistry::new();
        for (i, (asn, population, country)) in list.into_iter().enumerate() {
            reg.insert(EyeballEntry {
                asn,
                rank: (i + 1) as u32,
                population,
                country: country.to_string(),
            });
        }
        reg
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entry for an AS.
    pub fn get(&self, asn: Asn) -> Option<&EyeballEntry> {
        self.entries.get(&asn)
    }

    /// Rank of an AS.
    pub fn rank_of(&self, asn: Asn) -> Option<u32> {
        self.get(asn).map(|e| e.rank)
    }

    /// Country of an AS.
    pub fn country_of(&self, asn: Asn) -> Option<&str> {
        self.get(asn).map(|e| e.country.as_str())
    }

    /// Population of an AS.
    pub fn population_of(&self, asn: Asn) -> Option<u64> {
        self.get(asn).map(|e| e.population)
    }

    /// All entries, ascending by ASN.
    pub fn iter(&self) -> impl Iterator<Item = &EyeballEntry> {
        self.entries.values()
    }

    /// The top-`n` ASes of a country by rank — §3.2 looks at "the top 10
    /// monitored Japanese ASes (in terms of APNIC rankings)".
    pub fn top_of_country(&self, country: &str, n: usize) -> Vec<&EyeballEntry> {
        let mut of_country: Vec<&EyeballEntry> = self
            .entries
            .values()
            .filter(|e| e.country == country)
            .collect();
        of_country.sort_by_key(|e| e.rank);
        of_country.truncate(n);
        of_country
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EyeballRegistry {
        EyeballRegistry::from_populations([
            (1, 50_000_000, "US"),
            (2, 30_000_000, "JP"),
            (3, 30_000_000, "JP"), // tie with AS2: ASN breaks it
            (4, 1_000_000, "DE"),
            (5, 100, "JP"),
        ])
    }

    #[test]
    fn ranks_follow_population() {
        let r = sample();
        assert_eq!(r.rank_of(1), Some(1));
        assert_eq!(r.rank_of(2), Some(2)); // tie broken by lower ASN
        assert_eq!(r.rank_of(3), Some(3));
        assert_eq!(r.rank_of(4), Some(4));
        assert_eq!(r.rank_of(5), Some(5));
        assert_eq!(r.rank_of(99), None);
    }

    #[test]
    fn lookups() {
        let r = sample();
        assert_eq!(r.country_of(2), Some("JP"));
        assert_eq!(r.population_of(4), Some(1_000_000));
        assert_eq!(r.len(), 5);
        assert!(!r.is_empty());
        assert!(EyeballRegistry::new().is_empty());
    }

    #[test]
    fn top_of_country() {
        let r = sample();
        let jp = r.top_of_country("JP", 2);
        assert_eq!(jp.len(), 2);
        assert_eq!(jp[0].asn, 2);
        assert_eq!(jp[1].asn, 3);
        assert_eq!(r.top_of_country("JP", 10).len(), 3);
        assert!(r.top_of_country("FR", 3).is_empty());
    }

    #[test]
    fn explicit_insert_overrides() {
        let mut r = sample();
        r.insert(EyeballEntry {
            asn: 5,
            rank: 777,
            population: 1,
            country: "JP".into(),
        });
        assert_eq!(r.rank_of(5), Some(777));
        assert_eq!(r.len(), 5);
    }

    #[test]
    fn serde_round_trip() {
        let r = sample();
        let json = serde_json::to_string(&r).unwrap();
        let back: EyeballRegistry = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), r.len());
        assert_eq!(back.rank_of(3), r.rank_of(3));
    }

    #[test]
    fn iteration_is_by_asn() {
        let r = sample();
        let asns: Vec<_> = r.iter().map(|e| e.asn).collect();
        assert_eq!(asns, vec![1, 2, 3, 4, 5]);
    }
}
