//! A deliberately small HTTP/1.1 subset: enough to parse one `GET` or
//! `POST` request from a socket and write one response, nothing more.
//!
//! Scope decisions (all documented here so nobody mistakes this for a
//! general server): requests are `GET`/`POST`-only (anything else gets
//! 405), bodies are plain `Content-Length` reads capped at
//! [`MAX_BODY_BYTES`] (no chunked transfer encoding — that gets 400),
//! every response carries `Connection: close` and the connection is
//! dropped after one exchange, header blocks are capped at
//! [`MAX_HEAD_BYTES`], and request targets are used verbatim (no
//! percent-decoding — the daemon's routes are plain ASCII).

use std::io::{Read, Write};

/// Upper bound on the request head (request line + headers). A client
/// exceeding it gets 431 and the connection is closed.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Upper bound on a request body (`Content-Length`). A client declaring
/// (or sending) more gets 413 and the connection is closed. Sized for
/// live traceroute intake: thousands of records per POST, while keeping
/// a worker's worst-case buffering bounded.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// One parsed request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Request method, verbatim (`GET` or `POST` for anything the
    /// daemon serves).
    pub method: String,
    /// Path component of the target, without the query string.
    pub path: String,
    /// Raw query string (no leading `?`; empty when absent).
    pub query: String,
    /// Header `(name, value)` pairs; names lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// Request body (`Content-Length` bytes; empty when absent).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of `key` in the query string (`from=12&to=99` style;
    /// no percent-decoding).
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (k == key).then_some(v)
        })
    }

    /// First value of header `name` (lowercase).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find_map(|(k, v)| (k == name).then_some(v.as_str()))
    }
}

/// Why a request head failed to parse — mapped onto a status code by
/// the connection handler.
#[derive(Debug)]
pub enum ParseError {
    /// The peer closed (or sent nothing) before a full head arrived.
    /// No response is owed.
    ConnectionClosed,
    /// Head exceeded [`MAX_HEAD_BYTES`] → 431.
    HeadTooLarge,
    /// Body exceeded [`MAX_BODY_BYTES`] → 413.
    BodyTooLarge,
    /// Malformed request line, header, or body framing → 400.
    Malformed(&'static str),
    /// Socket error (including read timeout) mid-head or mid-body.
    Io(std::io::Error),
}

/// Read one full request (head, then a `Content-Length` body if one is
/// declared) from `stream`.
///
/// Body rules: no `Content-Length` means an empty body; a
/// non-numeric length or any `Transfer-Encoding` header is malformed
/// (400); a declared length above [`MAX_BODY_BYTES`] is
/// [`ParseError::BodyTooLarge`] (413), checked *before* reading so an
/// oversized upload is refused without buffering it.
pub fn parse_request(stream: &mut impl Read) -> Result<Request, ParseError> {
    let (mut request, leftover) = parse_request_head(stream)?;
    if request.header("transfer-encoding").is_some() {
        return Err(ParseError::Malformed("Transfer-Encoding not supported"));
    }
    let declared: u64 = match request.header("content-length") {
        None => 0,
        Some(v) => v
            .trim()
            .parse()
            .map_err(|_| ParseError::Malformed("bad Content-Length"))?,
    };
    if declared > MAX_BODY_BYTES as u64 {
        return Err(ParseError::BodyTooLarge);
    }
    let declared = declared as usize;
    // Body bytes the head read already pulled off the socket come
    // first; anything past the declared length is ignored (we close
    // after one exchange, so there is no pipelining to preserve).
    let mut body = leftover;
    body.truncate(declared);
    let mut chunk = [0u8; 4096];
    while body.len() < declared {
        let n = match stream.read(&mut chunk) {
            Ok(0) => return Err(ParseError::Malformed("connection closed mid-body")),
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ParseError::Io(e)),
        };
        let take = n.min(declared - body.len());
        body.extend_from_slice(&chunk[..take]);
    }
    request.body = body;
    Ok(request)
}

/// Read one request head from `stream` and parse it, returning the
/// parsed request (body empty) plus any body bytes the head read
/// already consumed.
///
/// Reads byte-chunks until the head terminator — `\r\n\r\n`, or a bare
/// `\n\n` from LF-only clients (tolerant reader, like the ingest
/// splitter's CRLF handling). The fast lane uses this directly: routing
/// a health probe needs only the head, and never buffers a body. The
/// terminator search is incremental: each iteration scans only the
/// bytes the last read appended (minus a [`HEAD_SCAN_OVERLAP`]-byte
/// overlap for a terminator spanning two reads), so a head arriving in
/// many small reads costs O(head), not O(head²).
pub fn parse_request_head(stream: &mut impl Read) -> Result<(Request, Vec<u8>), ParseError> {
    let mut head = Vec::with_capacity(512);
    let mut chunk = [0u8; 1024];
    let mut scanned: usize = 0;
    let end = loop {
        if let Some(pos) = find_head_end(&head, scanned.saturating_sub(HEAD_SCAN_OVERLAP)) {
            if pos > MAX_HEAD_BYTES {
                return Err(ParseError::HeadTooLarge);
            }
            break pos;
        }
        scanned = head.len();
        if head.len() > MAX_HEAD_BYTES {
            return Err(ParseError::HeadTooLarge);
        }
        let n = match stream.read(&mut chunk) {
            Ok(0) => {
                return Err(if head.is_empty() {
                    ParseError::ConnectionClosed
                } else {
                    ParseError::Malformed("connection closed mid-head")
                })
            }
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ParseError::Io(e)),
        };
        head.extend_from_slice(&chunk[..n]);
    };
    let leftover = head[end..].to_vec();
    let head = std::str::from_utf8(&head[..end]).map_err(|_| ParseError::Malformed("not UTF-8"))?;
    // Split on LF and trim the optional CR so CRLF and bare-LF heads
    // parse identically.
    let mut lines = head.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(ParseError::Malformed("bad request line")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::Malformed("unsupported HTTP version"));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(ParseError::Malformed("header without colon"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok((
        Request {
            method: method.to_string(),
            path: path.to_string(),
            query: query.to_string(),
            headers,
            body: Vec::new(),
        },
        leftover,
    ))
}

/// Bytes a resumed terminator search backs up over: the longest
/// terminator suffix that can span a read boundary is 2 bytes (both
/// accepted terminators end in `\n\n` or `\r\n` after a leading `\n`).
const HEAD_SCAN_OVERLAP: usize = 2;

/// Byte offset just past the first head terminator at or after `from`:
/// an empty line, i.e. `\n` directly followed by `\n` or `\r\n` (this
/// accepts the standard `\r\n\r\n`, the bare-LF `\n\n`, and mixed
/// endings).
fn find_head_end(buf: &[u8], from: usize) -> Option<usize> {
    let mut i = from;
    while i < buf.len() {
        if buf[i] == b'\n' {
            let rest = &buf[i + 1..];
            if rest.first() == Some(&b'\n') {
                return Some(i + 2);
            }
            if rest.starts_with(b"\r\n") {
                return Some(i + 3);
            }
        }
        i += 1;
    }
    None
}

/// One response to write back. Always closes the connection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub body: Vec<u8>,
    /// Extra headers (e.g. `Retry-After`) appended verbatim.
    pub extra_headers: Vec<(&'static str, String)>,
    /// Which endpoint-family latency histogram this response counts
    /// against. Handlers set it; the server records it.
    pub endpoint: lastmile_obs::ServeEndpoint,
}

impl Response {
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into(),
            extra_headers: Vec::new(),
            endpoint: lastmile_obs::ServeEndpoint::Other,
        }
    }

    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
            extra_headers: Vec::new(),
            endpoint: lastmile_obs::ServeEndpoint::Other,
        }
    }

    pub fn csv(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: "text/csv; charset=utf-8",
            body: body.into(),
            extra_headers: Vec::new(),
            endpoint: lastmile_obs::ServeEndpoint::Other,
        }
    }

    /// Prometheus text exposition (format 0.0.4) — what a stock
    /// Prometheus scraper expects from `/metrics?format=prom`.
    pub fn prom(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: lastmile_obs::prom::CONTENT_TYPE,
            body: body.into(),
            extra_headers: Vec::new(),
            endpoint: lastmile_obs::ServeEndpoint::Metrics,
        }
    }

    /// Tag the endpoint family (builder-style).
    pub fn endpoint(mut self, endpoint: lastmile_obs::ServeEndpoint) -> Response {
        self.endpoint = endpoint;
        self
    }

    /// Append an extra header (builder-style).
    pub fn header(mut self, name: &'static str, value: impl Into<String>) -> Response {
        self.extra_headers.push((name, value.into()));
        self
    }

    /// Serialize status line + headers + body onto `w` and flush.
    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            status_text(self.status),
            self.content_type,
            self.body.len()
        )?;
        for (name, value) in &self.extra_headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        w.write_all(b"\r\n")?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// Reason phrase for the status codes the daemon emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> Result<Request, ParseError> {
        parse_request(&mut std::io::Cursor::new(bytes.to_vec()))
    }

    #[test]
    fn parses_request_line_query_and_headers() {
        let req = parse(
            b"GET /v1/series/64500?from=100&to=200 HTTP/1.1\r\nHost: localhost\r\nX-Weird:  padded \r\n\r\n",
        )
        .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/series/64500");
        assert_eq!(req.query, "from=100&to=200");
        assert_eq!(req.query_param("from"), Some("100"));
        assert_eq!(req.query_param("to"), Some("200"));
        assert_eq!(req.query_param("absent"), None);
        assert_eq!(req.header("host"), Some("localhost"));
        assert_eq!(req.header("x-weird"), Some("padded"));
    }

    #[test]
    fn head_split_across_reads_still_parses() {
        // A reader that returns one byte at a time exercises the
        // incremental terminator search.
        struct OneByte(Vec<u8>, usize);
        impl Read for OneByte {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.1 >= self.0.len() {
                    return Ok(0);
                }
                buf[0] = self.0[self.1];
                self.1 += 1;
                Ok(1)
            }
        }
        let req = parse_request(&mut OneByte(b"GET / HTTP/1.1\r\n\r\n".to_vec(), 0)).unwrap();
        assert_eq!(req.path, "/");
        assert_eq!(req.query, "");
    }

    #[test]
    fn accepts_bare_lf_and_mixed_terminators() {
        // LF-only clients (`printf 'GET / HTTP/1.1\n\n' | nc ...`) used
        // to pin a worker slot until the read timeout; the head must
        // terminate on `\n\n` just like `\r\n\r\n`.
        let req = parse(b"GET /v1/healthz HTTP/1.1\nHost: x\n\n").unwrap();
        assert_eq!(req.path, "/v1/healthz");
        assert_eq!(req.header("host"), Some("x"));
        // Mixed endings: CRLF head lines, bare-LF blank line and the
        // other way round.
        let req = parse(b"GET /a HTTP/1.1\r\nHost: x\r\n\n").unwrap();
        assert_eq!(req.path, "/a");
        let req = parse(b"GET /b HTTP/1.0\nHost: x\n\r\n").unwrap();
        assert_eq!(req.path, "/b");
        // Bytes after a bare-LF terminator without a Content-Length are
        // discarded, not treated as a body.
        let req = parse(b"GET /c HTTP/1.1\n\nignored body").unwrap();
        assert_eq!(req.path, "/c");
        assert!(req.body.is_empty());
    }

    #[test]
    fn content_length_body_is_read_exactly() {
        let req = parse(b"POST /v1/traceroutes HTTP/1.1\r\nContent-Length: 11\r\n\r\nhello world")
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"hello world");
        // Body split across reads (one byte at a time) still assembles.
        struct OneByte(Vec<u8>, usize);
        impl Read for OneByte {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.1 >= self.0.len() {
                    return Ok(0);
                }
                buf[0] = self.0[self.1];
                self.1 += 1;
                Ok(1)
            }
        }
        let req = parse_request(&mut OneByte(
            b"POST /x HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd".to_vec(),
            0,
        ))
        .unwrap();
        assert_eq!(req.body, b"abcd");
        // Trailing bytes past the declared length are ignored.
        let req = parse(b"POST /x HTTP/1.1\r\nContent-Length: 2\r\n\r\nabEXTRA").unwrap();
        assert_eq!(req.body, b"ab");
        // Zero-length body is fine.
        let req = parse(b"POST /x HTTP/1.1\r\nContent-Length: 0\r\n\r\n").unwrap();
        assert!(req.body.is_empty());
    }

    #[test]
    fn body_framing_errors_map_to_their_statuses() {
        // Truncated body: peer closed before Content-Length bytes.
        assert!(matches!(
            parse(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
            Err(ParseError::Malformed(_))
        ));
        // Garbage Content-Length.
        assert!(matches!(
            parse(b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        // Chunked transfer encoding is out of scope.
        assert!(matches!(
            parse(b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        // An oversized declaration is refused before any body read.
        let huge = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            parse(huge.as_bytes()),
            Err(ParseError::BodyTooLarge)
        ));
    }

    #[test]
    fn byte_at_a_time_head_scan_stays_linear() {
        // Regression for the O(n^2) rescan: each failed terminator
        // search used to restart from byte 0, so a near-cap head
        // arriving one byte at a time examined ~n^2/2 bytes. Replicate
        // the resume arithmetic `parse_request` uses and count how many
        // bytes get examined; with incremental resume it is bounded by
        // one fresh byte plus the two-byte overlap per read.
        let head = format!(
            "GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
            "x".repeat(MAX_HEAD_BYTES - 64)
        )
        .into_bytes();
        let mut buf = Vec::new();
        let mut scanned: usize = 0;
        let mut examined: u64 = 0;
        let mut found = None;
        for &b in &head {
            buf.push(b);
            let from = scanned.saturating_sub(HEAD_SCAN_OVERLAP);
            examined += (buf.len() - from) as u64;
            if let Some(pos) = find_head_end(&buf, from) {
                found = Some(pos);
                break;
            }
            scanned = buf.len();
        }
        assert_eq!(found, Some(head.len()));
        assert!(
            examined <= 3 * head.len() as u64,
            "examined {examined} bytes for a {}-byte head",
            head.len()
        );
        // And the real parser accepts the same head fed through a
        // one-byte reader without blowing the test timeout.
        struct OneByte(Vec<u8>, usize);
        impl Read for OneByte {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.1 >= self.0.len() {
                    return Ok(0);
                }
                buf[0] = self.0[self.1];
                self.1 += 1;
                Ok(1)
            }
        }
        let req = parse_request(&mut OneByte(head, 0)).unwrap();
        assert_eq!(req.path, "/");
    }

    #[test]
    fn query_param_repeated_keys_and_valueless_pairs() {
        let req = parse(b"GET /v1/series/1?from=&to=9&from=5&flag&=bare HTTP/1.1\r\n\r\n").unwrap();
        // First occurrence wins for repeated keys.
        assert_eq!(req.query_param("from"), Some(""));
        assert_eq!(req.query_param("to"), Some("9"));
        // A valueless pair reads as the empty string, distinct from an
        // absent key.
        assert_eq!(req.query_param("flag"), Some(""));
        assert_eq!(req.query_param("missing"), None);
        // `=bare` is an empty key, not a match for "bare".
        assert_eq!(req.query_param("bare"), None);
        assert_eq!(req.query_param(""), Some("bare"));
    }

    #[test]
    fn rejects_malformed_heads() {
        assert!(matches!(parse(b""), Err(ParseError::ConnectionClosed)));
        assert!(matches!(
            parse(b"GET /incomplete HTTP/1.1\r\n"),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"GET /\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"GET / SPDY/3\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        let huge = format!(
            "GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
            "x".repeat(MAX_HEAD_BYTES)
        );
        assert!(matches!(
            parse(huge.as_bytes()),
            Err(ParseError::HeadTooLarge)
        ));
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        Response::json(200, "{\"ok\":true}")
            .header("Retry-After", "2")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("Retry-After: 2\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"), "{text}");
    }
}
