//! A deliberately small HTTP/1.1 subset: enough to parse one `GET`
//! request from a socket and write one response, nothing more.
//!
//! Scope decisions (all documented here so nobody mistakes this for a
//! general server): requests are `GET`-only (anything else gets 405),
//! bodies are ignored, every response carries `Connection: close` and
//! the connection is dropped after one exchange, header blocks are
//! capped at [`MAX_HEAD_BYTES`], and request targets are used verbatim
//! (no percent-decoding — the daemon's routes are plain ASCII).

use std::io::{Read, Write};

/// Upper bound on the request head (request line + headers). A client
/// exceeding it gets 431 and the connection is closed.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// One parsed request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Request method, verbatim (`GET` for anything the daemon serves).
    pub method: String,
    /// Path component of the target, without the query string.
    pub path: String,
    /// Raw query string (no leading `?`; empty when absent).
    pub query: String,
    /// Header `(name, value)` pairs; names lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
}

impl Request {
    /// First value of `key` in the query string (`from=12&to=99` style;
    /// no percent-decoding).
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (k == key).then_some(v)
        })
    }

    /// First value of header `name` (lowercase).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find_map(|(k, v)| (k == name).then_some(v.as_str()))
    }
}

/// Why a request head failed to parse — mapped onto a status code by
/// the connection handler.
#[derive(Debug)]
pub enum ParseError {
    /// The peer closed (or sent nothing) before a full head arrived.
    /// No response is owed.
    ConnectionClosed,
    /// Head exceeded [`MAX_HEAD_BYTES`] → 431.
    HeadTooLarge,
    /// Malformed request line or header → 400.
    Malformed(&'static str),
    /// Socket error (including read timeout) mid-head.
    Io(std::io::Error),
}

/// Read one request head from `stream` and parse it.
///
/// Reads byte-chunks until the `\r\n\r\n` terminator; any body bytes
/// after the head are left unread (and discarded when the connection
/// closes).
pub fn parse_request(stream: &mut impl Read) -> Result<Request, ParseError> {
    let mut head = Vec::with_capacity(512);
    let mut chunk = [0u8; 1024];
    let end = loop {
        if let Some(pos) = find_head_end(&head) {
            if pos > MAX_HEAD_BYTES {
                return Err(ParseError::HeadTooLarge);
            }
            break pos;
        }
        if head.len() > MAX_HEAD_BYTES {
            return Err(ParseError::HeadTooLarge);
        }
        let n = match stream.read(&mut chunk) {
            Ok(0) => {
                return Err(if head.is_empty() {
                    ParseError::ConnectionClosed
                } else {
                    ParseError::Malformed("connection closed mid-head")
                })
            }
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ParseError::Io(e)),
        };
        head.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&head[..end]).map_err(|_| ParseError::Malformed("not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(ParseError::Malformed("bad request line")),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::Malformed("unsupported HTTP version"));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(ParseError::Malformed("header without colon"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        query: query.to_string(),
        headers,
    })
}

/// Byte offset just past the first `\r\n\r\n`, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

/// One response to write back. Always closes the connection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub body: Vec<u8>,
    /// Extra headers (e.g. `Retry-After`) appended verbatim.
    pub extra_headers: Vec<(&'static str, String)>,
    /// Which endpoint-family latency histogram this response counts
    /// against. Handlers set it; the server records it.
    pub endpoint: lastmile_obs::ServeEndpoint,
}

impl Response {
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into(),
            extra_headers: Vec::new(),
            endpoint: lastmile_obs::ServeEndpoint::Other,
        }
    }

    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
            extra_headers: Vec::new(),
            endpoint: lastmile_obs::ServeEndpoint::Other,
        }
    }

    pub fn csv(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: "text/csv; charset=utf-8",
            body: body.into(),
            extra_headers: Vec::new(),
            endpoint: lastmile_obs::ServeEndpoint::Other,
        }
    }

    /// Tag the endpoint family (builder-style).
    pub fn endpoint(mut self, endpoint: lastmile_obs::ServeEndpoint) -> Response {
        self.endpoint = endpoint;
        self
    }

    /// Append an extra header (builder-style).
    pub fn header(mut self, name: &'static str, value: impl Into<String>) -> Response {
        self.extra_headers.push((name, value.into()));
        self
    }

    /// Serialize status line + headers + body onto `w` and flush.
    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            status_text(self.status),
            self.content_type,
            self.body.len()
        )?;
        for (name, value) in &self.extra_headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        w.write_all(b"\r\n")?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// Reason phrase for the status codes the daemon emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> Result<Request, ParseError> {
        parse_request(&mut std::io::Cursor::new(bytes.to_vec()))
    }

    #[test]
    fn parses_request_line_query_and_headers() {
        let req = parse(
            b"GET /v1/series/64500?from=100&to=200 HTTP/1.1\r\nHost: localhost\r\nX-Weird:  padded \r\n\r\n",
        )
        .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/series/64500");
        assert_eq!(req.query, "from=100&to=200");
        assert_eq!(req.query_param("from"), Some("100"));
        assert_eq!(req.query_param("to"), Some("200"));
        assert_eq!(req.query_param("absent"), None);
        assert_eq!(req.header("host"), Some("localhost"));
        assert_eq!(req.header("x-weird"), Some("padded"));
    }

    #[test]
    fn head_split_across_reads_still_parses() {
        // A reader that returns one byte at a time exercises the
        // incremental terminator search.
        struct OneByte(Vec<u8>, usize);
        impl Read for OneByte {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.1 >= self.0.len() {
                    return Ok(0);
                }
                buf[0] = self.0[self.1];
                self.1 += 1;
                Ok(1)
            }
        }
        let req = parse_request(&mut OneByte(b"GET / HTTP/1.1\r\n\r\n".to_vec(), 0)).unwrap();
        assert_eq!(req.path, "/");
        assert_eq!(req.query, "");
    }

    #[test]
    fn rejects_malformed_heads() {
        assert!(matches!(parse(b""), Err(ParseError::ConnectionClosed)));
        assert!(matches!(
            parse(b"GET /incomplete HTTP/1.1\r\n"),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"GET /\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"GET / SPDY/3\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        let huge = format!(
            "GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
            "x".repeat(MAX_HEAD_BYTES)
        );
        assert!(matches!(
            parse(huge.as_bytes()),
            Err(ParseError::HeadTooLarge)
        ));
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        Response::json(200, "{\"ok\":true}")
            .header("Retry-After", "2")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("Retry-After: 2\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"), "{text}");
    }
}
