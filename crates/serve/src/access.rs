//! Structured access logs: one JSON object per request, written by a
//! dedicated thread behind a bounded channel.
//!
//! The worker path must never block on log I/O — a slow or full disk
//! would otherwise stall request serving, which is exactly backwards
//! for an ops plane. So [`AccessLog::log`] is a `try_send`: when the
//! channel is full the record is dropped and a counter incremented;
//! the drop total is reported on shutdown so silent loss is visible.
//!
//! The serve crate has no serde (vendor policy keeps it
//! dependency-light), so records are serialized by hand. Every
//! string field is escaped — `path` and `request_id` are
//! client-controlled bytes and must not be able to break the
//! one-object-per-line framing.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{SystemTime, UNIX_EPOCH};

/// Bound on records buffered between workers and the writer thread.
/// At ~200 bytes/record this caps the backlog near 200 KiB.
const CHANNEL_CAP: usize = 1024;

enum Msg {
    Line(String),
    /// Flush, exit the writer loop. Lines already queued behind this
    /// marker were enqueued after shutdown began and are discarded.
    Shutdown,
}

/// One request's worth of access-log fields.
///
/// `request_id` matches the `X-Request-Id` response header and the
/// `request_id` arg on the request trace span, so an access-log line,
/// a trace span, and a timeline blip are joinable by id.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AccessRecord {
    pub request_id: String,
    pub method: String,
    pub path: String,
    /// Endpoint label as used by the latency histograms
    /// (`classify`, `series`, `metrics`, …).
    pub endpoint: &'static str,
    /// Admission cost class (`probe`, `cheap`, `heavy`, `intake`),
    /// or `unknown` for connections rejected before parsing.
    pub cost_class: &'static str,
    pub status: u16,
    pub latency_micros: u64,
    /// Analysis epoch that served the response (0 when the response
    /// carried no `X-Epoch` header).
    pub epoch: u64,
    /// Why the request was shed (`queue_full`, `over_budget`), empty
    /// for served requests.
    pub shed_reason: &'static str,
    pub unix_ms: u64,
}

impl AccessRecord {
    /// Render as a single-line JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(192);
        out.push('{');
        push_str_field(&mut out, "request_id", &self.request_id);
        out.push(',');
        push_str_field(&mut out, "method", &self.method);
        out.push(',');
        push_str_field(&mut out, "path", &self.path);
        out.push(',');
        push_str_field(&mut out, "endpoint", self.endpoint);
        out.push(',');
        push_str_field(&mut out, "cost_class", self.cost_class);
        out.push(',');
        push_u64_field(&mut out, "status", u64::from(self.status));
        out.push(',');
        push_u64_field(&mut out, "latency_micros", self.latency_micros);
        out.push(',');
        push_u64_field(&mut out, "epoch", self.epoch);
        out.push(',');
        push_str_field(&mut out, "shed_reason", self.shed_reason);
        out.push(',');
        push_u64_field(&mut out, "unix_ms", self.unix_ms);
        out.push('}');
        out
    }
}

fn push_u64_field(out: &mut String, key: &str, value: u64) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&value.to_string());
}

fn push_str_field(out: &mut String, key: &str, value: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":\"");
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Milliseconds since the unix epoch, for stamping records.
pub fn now_unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Handle to the access-log writer. Share via `Arc`.
///
/// Call [`AccessLog::shutdown`] to flush and join the writer (the
/// server does this after draining workers); records logged after
/// shutdown count as drops.
pub struct AccessLog {
    tx: SyncSender<Msg>,
    dropped: AtomicU64,
    writer: std::sync::Mutex<Option<JoinHandle<std::io::Result<()>>>>,
}

impl std::fmt::Debug for AccessLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AccessLog")
            .field("dropped", &self.dropped())
            .finish_non_exhaustive()
    }
}

impl AccessLog {
    /// Open (create/truncate) `path` and start the writer thread.
    pub fn create(path: &Path) -> std::io::Result<Arc<AccessLog>> {
        let file = File::create(path)?;
        Ok(Self::from_writer(Box::new(BufWriter::new(file))))
    }

    /// Start a writer thread over an arbitrary sink (used by tests).
    pub fn from_writer(mut sink: Box<dyn Write + Send>) -> Arc<AccessLog> {
        let (tx, rx) = sync_channel::<Msg>(CHANNEL_CAP);
        let writer = std::thread::Builder::new()
            .name("access-log".into())
            .spawn(move || -> std::io::Result<()> {
                for msg in rx {
                    match msg {
                        Msg::Line(line) => {
                            sink.write_all(line.as_bytes())?;
                            sink.write_all(b"\n")?;
                        }
                        Msg::Shutdown => break,
                    }
                }
                sink.flush()
            })
            .expect("spawn access-log writer");
        Arc::new(AccessLog {
            tx,
            dropped: AtomicU64::new(0),
            writer: std::sync::Mutex::new(Some(writer)),
        })
    }

    /// Enqueue one record; never blocks. Returns `false` (and counts
    /// the drop) if the writer is backlogged or gone.
    pub fn log(&self, record: &AccessRecord) -> bool {
        match self.tx.try_send(Msg::Line(record.to_json())) {
            Ok(()) => true,
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Records dropped because the writer could not keep up.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Flush and join the writer thread. Safe to call more than once;
    /// later calls are no-ops. Returns the writer's I/O result and
    /// the final dropped-record count.
    pub fn shutdown(&self) -> (std::io::Result<()>, u64) {
        let handle = self.writer.lock().expect("access-log writer lock").take();
        let result = match handle {
            Some(handle) => {
                // Blocking send: queued lines ahead of the marker are
                // written before the writer exits. If the writer died
                // early (I/O error), send fails and join still works.
                let _ = self.tx.send(Msg::Shutdown);
                match handle.join() {
                    Ok(result) => result,
                    Err(_) => Err(std::io::Error::other("access-log writer panicked")),
                }
            }
            None => Ok(()),
        };
        (result, self.dropped())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// A Write sink the test can inspect after shutdown.
    #[derive(Clone, Default)]
    struct SharedSink(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedSink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn sample_record() -> AccessRecord {
        AccessRecord {
            request_id: "req-1".into(),
            method: "GET".into(),
            path: "/v1/classify?asn=3320".into(),
            endpoint: "classify",
            cost_class: "heavy",
            status: 200,
            latency_micros: 1234,
            epoch: 3,
            shed_reason: "",
            unix_ms: 1_700_000_000_000,
        }
    }

    #[test]
    fn records_render_as_one_json_object_per_line() {
        let json = sample_record().to_json();
        assert!(!json.contains('\n'));
        assert_eq!(
            json,
            "{\"request_id\":\"req-1\",\"method\":\"GET\",\
             \"path\":\"/v1/classify?asn=3320\",\"endpoint\":\"classify\",\
             \"cost_class\":\"heavy\",\"status\":200,\"latency_micros\":1234,\
             \"epoch\":3,\"shed_reason\":\"\",\"unix_ms\":1700000000000}"
        );
    }

    #[test]
    fn client_controlled_strings_cannot_break_framing() {
        let mut record = sample_record();
        record.path = "/x\"y\\z\nnewline\ttab\u{1}ctl".into();
        record.request_id = "a\"b".into();
        let json = record.to_json();
        assert!(!json.contains('\n'), "escaped newline leaked: {json}");
        assert!(json.contains("\\\"y\\\\z\\nnewline\\ttab\\u0001ctl"));
        assert!(json.contains("\"request_id\":\"a\\\"b\""));
    }

    #[test]
    fn writer_drains_lines_and_shutdown_flushes() {
        let sink = SharedSink::default();
        let buf = sink.0.clone();
        let log = AccessLog::from_writer(Box::new(sink));
        for i in 0..5 {
            let mut r = sample_record();
            r.status = 200 + i;
            assert!(log.log(&r));
        }
        let (result, dropped) = log.shutdown();
        result.expect("writer io");
        assert_eq!(dropped, 0);
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].contains("\"status\":200"));
        assert!(lines[4].contains("\"status\":204"));
    }

    #[test]
    fn full_channel_drops_and_counts_instead_of_blocking() {
        // A sink that never completes a write would block forever; a
        // zero-progress writer is simulated by blocking the writer
        // thread on its first line via a mutex held by the test.
        struct BlockingSink(Arc<Mutex<()>>);
        impl Write for BlockingSink {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                let _hold = self.0.lock().unwrap();
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let gate = Arc::new(Mutex::new(()));
        let held = gate.lock().unwrap();
        let log = AccessLog::from_writer(Box::new(BlockingSink(gate.clone())));
        let record = sample_record();
        // One record enters the writer thread and blocks; CHANNEL_CAP
        // more fill the channel; everything past that must drop fast.
        let mut dropped_seen = 0u64;
        for _ in 0..(CHANNEL_CAP + 64) {
            if !log.log(&record) {
                dropped_seen += 1;
            }
        }
        assert!(dropped_seen > 0, "expected drops once the channel filled");
        assert_eq!(log.dropped(), dropped_seen);
        drop(held);
        let (result, _) = log.shutdown();
        result.expect("writer io");
    }

    #[test]
    fn logging_after_shutdown_counts_as_dropped() {
        let log = AccessLog::from_writer(Box::new(std::io::sink()));
        let (result, _) = log.shutdown();
        result.expect("writer io");
        assert!(!log.log(&sample_record()));
        assert_eq!(log.dropped(), 1);
    }
}
