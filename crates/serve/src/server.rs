//! The accept loop, worker pool, and health fast lane.
//!
//! Concurrency shape (fixed at bind time, nothing grows under load):
//!
//! ```text
//!   acceptor ──try_send──▶ bounded queue (cap Q) ──recv──▶ serve-0..N-1
//!      │                        full?
//!      ├──try_send──▶ fast lane (cap F) ──recv──▶ serve-fast
//!      │                   full?          GET /healthz | /metrics:
//!      │                                  served inline; else 503
//!      └──────── inline 503 + Retry-After, close ◀────────┘
//! ```
//!
//! The acceptor never blocks on the queue: a full queue means the pool
//! is saturated, and the correct behaviour under the ISSUE's
//! backpressure contract is an immediate `503 Service Unavailable` with
//! `Retry-After`, not unbounded buffering. Overflow connections detour
//! through a dedicated fast lane first: a single thread that parses
//! only the request head under a tight timeout and serves `GET
//! /healthz` and `GET /metrics` inline, so a flood of expensive
//! classify/ingest work can never blind health probes; anything else
//! overflowing gets the same 503. Graceful shutdown stops the acceptor,
//! drops both queues' senders, and joins the workers — which drain
//! every connection already queued (and the one they are serving)
//! before exiting.
//!
//! ## Admission control
//!
//! Beyond the queue there is a second, cost-aware shedding layer: every
//! request is classified into a [`CostClass`] (probe / cheap / heavy /
//! intake), and each budgeted class has a concurrency budget enforced
//! at the moment a worker would run its handler. A worker that dequeues
//! a request whose class is already at budget answers a fast 503 (with
//! the class named in the body and an adaptive `Retry-After`) instead
//! of running the handler — turning slow work into a cheap write, so
//! the shared accept queue keeps draining and the remaining workers
//! stay available for the other classes. With `budget_heavy <
//! workers`, a flood of full-classification requests can never occupy
//! the whole pool: series / populations / live-intake traffic always
//! finds a worker. Budgets left at 0 resolve to `workers` — admission
//! effectively disengaged — so the default daemon sheds only on queue
//! overflow, exactly as before.

use crate::access::{now_unix_ms, AccessLog, AccessRecord};
use crate::http::{parse_request, parse_request_head, ParseError, Request, Response};
use lastmile_obs::{trace, AdmissionClassMetrics, ServeEndpoint, ServeMetrics};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A request handler: pure function of the parsed request. Shared by
/// every worker; panics are caught per-connection (the worker survives
/// and answers 500).
pub type Handler = dyn Fn(&Request) -> Response + Send + Sync;

/// Fixed resources for one [`Server`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:8437` (`:0` for an ephemeral port).
    pub addr: String,
    /// Worker threads (`serve-0` … `serve-N-1`). Clamped to ≥ 1.
    pub workers: usize,
    /// Accept-queue capacity. Clamped to ≥ 1; `workers + queue` bounds
    /// the connections held at any instant.
    pub queue: usize,
    /// Fast-lane queue capacity for connections overflowing the main
    /// queue (health/metrics probes served there; the rest 503'd).
    /// Clamped to ≥ 1.
    pub fastlane_queue: usize,
    /// Base seconds advertised in `Retry-After` on a 503; the actual
    /// hint scales up with backlog (see [`adaptive_retry_after`]).
    pub retry_after_secs: u64,
    /// Concurrency budget for [`CostClass::Cheap`] requests. `0` =
    /// auto (`workers`: admission disengaged for this class).
    pub budget_cheap: usize,
    /// Concurrency budget for [`CostClass::Heavy`] requests (the full
    /// `GET /v1/classify` document). `0` = auto (`workers`). Set it
    /// below `workers` to guarantee a classify flood leaves workers
    /// free for every other class.
    pub budget_heavy: usize,
    /// Concurrency budget for [`CostClass::Intake`] requests
    /// (`POST /v1/traceroutes`). `0` = auto (`workers`).
    pub budget_intake: usize,
    /// Structured access log: one JSON object per request (served,
    /// errored, or shed) through a bounded non-blocking writer. `None`
    /// (the default) logs nothing. The server shuts the writer down
    /// (flush + join) after draining workers.
    pub access_log: Option<Arc<AccessLog>>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:8437".to_string(),
            workers: 4,
            queue: 16,
            fastlane_queue: 32,
            retry_after_secs: 1,
            budget_cheap: 0,
            budget_heavy: 0,
            budget_intake: 0,
            access_log: None,
        }
    }
}

/// What a request costs the daemon, decided from the request head
/// alone. Each class maps to one admission budget (except `Probe`,
/// which is never budgeted — it is also the fast-lane set).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CostClass {
    /// `GET /healthz` and `GET /metrics`: tiny, operator-critical,
    /// never shed by admission (the fast lane exists for them).
    Probe,
    /// Everything not named below: per-ASN classify documents, series,
    /// populations, 404s. Cheap lookups against the published epoch.
    Cheap,
    /// `GET /v1/classify` — serializes the full classification
    /// document, the most expensive read the daemon offers.
    Heavy,
    /// `POST /v1/traceroutes` — live intake: parse, validate, spool.
    Intake,
}

impl CostClass {
    /// Stable lowercase name used in `/metrics` keys and 503 bodies.
    pub fn name(self) -> &'static str {
        match self {
            CostClass::Probe => "probe",
            CostClass::Cheap => "cheap",
            CostClass::Heavy => "heavy",
            CostClass::Intake => "intake",
        }
    }
}

/// Classify a request head into its [`CostClass`].
pub fn cost_class(method: &str, path: &str) -> CostClass {
    let bare = path.split('?').next().unwrap_or(path);
    if method == "GET" && fastlane_path(bare) {
        CostClass::Probe
    } else if method == "POST" && bare == "/v1/traceroutes" {
        CostClass::Intake
    } else if method == "GET" && bare == "/v1/classify" {
        CostClass::Heavy
    } else {
        CostClass::Cheap
    }
}

/// The `Retry-After` hint for a 503: the configured base when the
/// shedding resource is merely full, growing linearly with how far the
/// backlog exceeds capacity (a client told to come back later when the
/// daemon is drowning is a client that won't pile on), capped at 8×
/// base so the hint never becomes "give up".
pub fn adaptive_retry_after(base: u64, occupancy: u64, capacity: u64) -> u64 {
    let capacity = capacity.max(1);
    let over = occupancy.saturating_sub(capacity);
    base.saturating_add(base.saturating_mul(over) / capacity)
        .min(base.saturating_mul(8))
}

/// How long a worker waits for a slow client before giving up on the
/// read or write side of a connection.
const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// Accept-poll interval: how promptly the acceptor notices the shutdown
/// flag while idle.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Read/write timeout on the fast lane: tight, so one slow-loris
/// connection can't park the single thread that keeps health probes
/// answered while the pool is saturated.
const FASTLANE_IO_TIMEOUT: Duration = Duration::from_secs(2);

/// Whether the fast lane serves `path` inline when the main accept
/// queue is full (cheap, read-only endpoints the operator needs *most*
/// under overload).
fn fastlane_path(path: &str) -> bool {
    path == "/healthz" || path == "/metrics"
}

/// A bound listener plus its pool configuration. `bind` then `run`.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    config: ServerConfig,
    metrics: Arc<ServeMetrics>,
}

impl Server {
    /// Bind `config.addr` (no traffic is accepted until [`Server::run`]).
    pub fn bind(config: ServerConfig, metrics: Arc<ServeMetrics>) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        Ok(Server {
            listener,
            local_addr,
            config,
            metrics,
        })
    }

    /// The bound address — the actual port when `addr` ended in `:0`.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Serve until `shutdown` turns true, then drain and return.
    ///
    /// Blocks the calling thread (it becomes the acceptor). On
    /// shutdown: stop accepting, close the queue, join the workers once
    /// every queued and in-flight connection has been answered.
    pub fn run(self, handler: Arc<Handler>, shutdown: &AtomicBool) -> std::io::Result<()> {
        let workers = self.config.workers.max(1);
        let queue = self.config.queue.max(1);
        let fastlane = self.config.fastlane_queue.max(1);
        let resolve = |budget: usize| if budget == 0 { workers } else { budget };
        let limits = Limits {
            retry_after_secs: self.config.retry_after_secs,
            workers: workers as u64,
            queue: queue as u64,
        };
        // Publish the resolved budgets as gauges before any traffic.
        for (class, budget) in [
            (
                &self.metrics.admission_cheap,
                resolve(self.config.budget_cheap),
            ),
            (
                &self.metrics.admission_heavy,
                resolve(self.config.budget_heavy),
            ),
            (
                &self.metrics.admission_intake,
                resolve(self.config.budget_intake),
            ),
        ] {
            class.budget.store(budget as u64, Ordering::Relaxed);
        }
        self.listener.set_nonblocking(true)?;
        let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(queue);
        let (ftx, frx) = std::sync::mpsc::sync_channel::<TcpStream>(fastlane);
        let rx = Arc::new(Mutex::new(rx));
        std::thread::scope(|scope| -> std::io::Result<()> {
            for n in 0..workers {
                let rx = Arc::clone(&rx);
                let handler = Arc::clone(&handler);
                let metrics = Arc::clone(&self.metrics);
                let access = self.config.access_log.clone();
                std::thread::Builder::new()
                    .name(format!("serve-{n}"))
                    .spawn_scoped(scope, move || {
                        let ctx = Ctx {
                            metrics: &metrics,
                            limits,
                            access: access.as_deref(),
                        };
                        worker_loop(&rx, &handler, ctx)
                    })
                    .expect("spawn serve worker");
            }
            {
                let handler = Arc::clone(&handler);
                let metrics = Arc::clone(&self.metrics);
                let access = self.config.access_log.clone();
                std::thread::Builder::new()
                    .name("serve-fast".into())
                    .spawn_scoped(scope, move || {
                        let ctx = Ctx {
                            metrics: &metrics,
                            limits,
                            access: access.as_deref(),
                        };
                        fastlane_loop(frx, &handler, ctx)
                    })
                    .expect("spawn serve fast lane");
            }
            let actx = Ctx {
                metrics: &self.metrics,
                limits,
                access: self.config.access_log.as_deref(),
            };
            while !shutdown.load(Ordering::Acquire) {
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        self.metrics.accepted.fetch_add(1, Ordering::Relaxed);
                        // Gauge before send: a worker may dequeue (and
                        // queue_pop) the instant the send lands, and the
                        // pop saturates at zero — push-after-send would
                        // drift the gauge up by one each time it loses
                        // that race.
                        self.metrics.queue_push();
                        match tx.try_send(stream) {
                            Ok(()) => {}
                            Err(TrySendError::Full(stream)) => {
                                self.metrics.queue_pop();
                                // Saturated: detour through the fast
                                // lane, which serves health probes and
                                // 503s the rest. Only when the fast
                                // lane itself is full does the acceptor
                                // answer inline.
                                match ftx.try_send(stream) {
                                    Ok(()) => {}
                                    Err(TrySendError::Full(stream))
                                    | Err(TrySendError::Disconnected(stream)) => {
                                        // Both queues full; the request
                                        // head was never read, so the
                                        // cost class is unknown.
                                        reject_busy(
                                            stream,
                                            "unknown",
                                            actx,
                                            Instant::now(),
                                            AccessRecord {
                                                request_id: request_id(None),
                                                ..AccessRecord::default()
                                            },
                                        );
                                    }
                                }
                            }
                            // Workers only stop once `tx` is dropped
                            // below, so the queue cannot disconnect
                            // while accepting.
                            Err(TrySendError::Disconnected(_)) => {
                                unreachable!("workers outlive the acceptor")
                            }
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    // Transient per-connection accept failures (peer
                    // reset mid-handshake, fd pressure) shouldn't kill
                    // the daemon.
                    Err(_) => std::thread::sleep(ACCEPT_POLL),
                }
            }
            trace::instant_with("serve_shutdown", |a| {
                a.u64("queued", self.metrics.queue_depth.load(Ordering::Relaxed));
            });
            drop(tx); // workers drain the queue, then their recv() errors
            drop(ftx); // likewise for the fast lane
            Ok(())
        })?;
        // Workers are drained and joined: every record is enqueued, so
        // the writer can flush and stop. Losses are reported, never
        // silent.
        if let Some(log) = &self.config.access_log {
            let (result, dropped) = log.shutdown();
            if let Err(e) = result {
                eprintln!("[serve] access log: write error: {e}");
            }
            if dropped > 0 {
                eprintln!("[serve] access log: dropped {dropped} records under pressure");
            }
        }
        Ok(())
    }
}

/// Everything a connection-serving path needs besides the socket:
/// shared metrics, fixed limits, and the optional access log.
#[derive(Clone, Copy)]
struct Ctx<'a> {
    metrics: &'a ServeMetrics,
    limits: Limits,
    access: Option<&'a AccessLog>,
}

/// Sequence source for generated request ids.
static REQUEST_SEQ: AtomicU64 = AtomicU64::new(0);

/// Echo a well-formed client `X-Request-Id` (alphanumeric plus
/// `.`/`_`/`-`, at most 64 bytes) or mint one: microsecond unix
/// timestamp plus a process-wide sequence number, both hex. The id is
/// sent back as `X-Request-Id` and stamped on the request trace span
/// and access-log line, so all three views of one request join on it.
fn request_id(client: Option<&str>) -> String {
    if let Some(id) = client {
        if !id.is_empty()
            && id.len() <= 64
            && id
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
        {
            return id.to_string();
        }
    }
    let seq = REQUEST_SEQ.fetch_add(1, Ordering::Relaxed);
    let micros = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0);
    format!("{micros:012x}-{seq:08x}")
}

/// The analysis epoch a response advertises via `X-Epoch`, or 0.
fn epoch_from(response: &Response) -> u64 {
    response
        .extra_headers
        .iter()
        .find(|(name, _)| *name == "X-Epoch")
        .and_then(|(_, value)| value.parse().ok())
        .unwrap_or(0)
}

/// Capacities fixed at bind time, shared with every shed site so
/// `Retry-After` hints can be derived from live occupancy.
#[derive(Clone, Copy, Debug)]
struct Limits {
    retry_after_secs: u64,
    workers: u64,
    queue: u64,
}

impl Limits {
    /// Hint for a queue-overflow shed: occupancy is everything the pool
    /// is holding (queued + in a handler) against its total capacity.
    fn queue_full_hint(&self, metrics: &ServeMetrics) -> u64 {
        let occupancy =
            metrics.queue_depth.load(Ordering::Relaxed) + metrics.in_flight.load(Ordering::Relaxed);
        adaptive_retry_after(self.retry_after_secs, occupancy, self.queue + self.workers)
    }

    /// Hint for an over-budget shed: the class's own in-flight count
    /// plus the queue backlog (work that may also land on this class)
    /// against the class budget.
    fn budget_hint(&self, metrics: &ServeMetrics, class: &AdmissionClassMetrics) -> u64 {
        let occupancy =
            class.in_flight.load(Ordering::Relaxed) + metrics.queue_depth.load(Ordering::Relaxed);
        adaptive_retry_after(
            self.retry_after_secs,
            occupancy,
            class.budget.load(Ordering::Relaxed),
        )
    }
}

/// Answer a connection no queue had room for: 503 with `Retry-After`,
/// written inline (bounded work — one small write on a fresh socket).
/// Shared by the acceptor and the fast lane. `entry` carries whatever
/// access-log identity the caller knows (request id always; method and
/// path only when a head was parsed).
fn reject_busy(
    stream: TcpStream,
    class_name: &'static str,
    ctx: Ctx<'_>,
    started: Instant,
    mut entry: AccessRecord,
) {
    ctx.metrics.rejected_busy.fetch_add(1, Ordering::Relaxed);
    let hint = ctx.limits.queue_full_hint(ctx.metrics);
    entry.shed_reason = "queue_full";
    shed_503(
        stream,
        "accept queue full",
        class_name,
        hint,
        ctx,
        started,
        entry,
    );
}

/// Write a shed 503 (`Retry-After` + JSON body naming the cost class),
/// drain the unread request, and account its latency under the
/// dedicated `rejected` histogram — never under `requests`, which
/// counts handler-served work only.
fn shed_503(
    mut stream: TcpStream,
    error: &str,
    class_name: &'static str,
    hint_secs: u64,
    ctx: Ctx<'_>,
    started: Instant,
    mut entry: AccessRecord,
) {
    let metrics = ctx.metrics;
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let retry = hint_secs.to_string();
    let body = format!(
        "{{\"error\":\"{error}\",\"cost_class\":\"{class_name}\",\"retry_after_secs\":{retry}}}\n"
    );
    let mut response = Response::json(503, body).header("Retry-After", retry);
    if !entry.request_id.is_empty() {
        response = response.header("X-Request-Id", entry.request_id.clone());
    }
    let _ = response.write_to(&mut stream);
    // Closing with the client's request still unread would RST the
    // connection and can discard the 503 out of the client's receive
    // buffer. Signal end-of-response, then drain what the client
    // already sent — bounded (tiny timeout, few reads) so a flooding
    // client can't park the acceptor here.
    let _ = stream.shutdown(Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(10)));
    let mut scratch = [0u8; 1024];
    for _ in 0..4 {
        match stream.read(&mut scratch) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
    let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    metrics.record_rejected(nanos);
    trace::instant_with("request_rejected", |a| {
        a.u64("status", 503)
            .str("cost_class", class_name)
            .str("request_id", entry.request_id.clone());
    });
    if let Some(access) = ctx.access {
        entry.cost_class = class_name;
        entry.endpoint = "rejected";
        entry.status = 503;
        entry.latency_micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        entry.unix_ms = now_unix_ms();
        access.log(&entry);
    }
}

/// The fast lane: a single thread that keeps `GET /healthz` and `GET
/// /metrics` answered while the worker pool is saturated. It parses
/// only the request head (never a body) under a tight timeout; anything
/// that isn't a health/metrics probe gets the same 503 the acceptor
/// would have written.
fn fastlane_loop(rx: Receiver<TcpStream>, handler: &Arc<Handler>, ctx: Ctx<'_>) {
    while let Ok(stream) = rx.recv() {
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            fastlane_connection(stream, handler, ctx);
        }));
        if result.is_err() {
            ctx.metrics.worker_panics.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Serve exactly one overflow connection on the fast lane.
fn fastlane_connection(mut stream: TcpStream, handler: &Arc<Handler>, ctx: Ctx<'_>) {
    let metrics = ctx.metrics;
    let started = Instant::now();
    let _ = stream.set_read_timeout(Some(FASTLANE_IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(FASTLANE_IO_TIMEOUT));
    let request = match parse_request_head(&mut stream) {
        Ok((request, _leftover)) => request,
        Err(ParseError::ConnectionClosed) => return, // nothing owed
        // Under saturation an unparsable overflow connection gets the
        // busy answer rather than per-error statuses: the lane exists
        // for probes, not error reporting.
        Err(_) => {
            reject_busy(
                stream,
                "unknown",
                ctx,
                started,
                AccessRecord {
                    request_id: request_id(None),
                    ..AccessRecord::default()
                },
            );
            return;
        }
    };
    let id = request_id(request.header("x-request-id"));
    let class = cost_class(&request.method, &request.path);
    if class == CostClass::Probe {
        metrics.fastlane_hits.fetch_add(1, Ordering::Relaxed);
        trace::instant_with("fastlane_served", |a| {
            a.str("path", request.path.clone())
                .str("request_id", id.clone());
        });
        let response = match std::panic::catch_unwind(AssertUnwindSafe(|| handler(&request))) {
            Ok(response) => response,
            Err(_) => {
                metrics.worker_panics.fetch_add(1, Ordering::Relaxed);
                Response::json(500, "{\"error\":\"handler panicked\"}\n")
            }
        };
        let response = response.header("X-Request-Id", id.clone());
        let endpoint = response.endpoint;
        let status = response.status;
        let epoch = epoch_from(&response);
        let _ = response.write_to(&mut stream);
        record(metrics, endpoint, started);
        if let Some(access) = ctx.access {
            access.log(&AccessRecord {
                request_id: id,
                method: request.method.clone(),
                path: request.path.clone(),
                endpoint: endpoint.label(),
                cost_class: class.name(),
                status,
                latency_micros: u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX),
                epoch,
                shed_reason: "",
                unix_ms: now_unix_ms(),
            });
        }
    } else {
        // The head parsed, so the 503 can at least name the class the
        // client was charged to.
        reject_busy(
            stream,
            class.name(),
            ctx,
            started,
            AccessRecord {
                request_id: id,
                method: request.method.clone(),
                path: request.path.clone(),
                ..AccessRecord::default()
            },
        );
    }
}

/// One worker: pull connections until the queue closes.
fn worker_loop(rx: &Mutex<Receiver<TcpStream>>, handler: &Arc<Handler>, ctx: Ctx<'_>) {
    let metrics = ctx.metrics;
    loop {
        // Hold the receiver lock only for the dequeue, never while
        // serving — otherwise one slow client would serialize the pool.
        let stream = match rx.lock().expect("serve queue lock").recv() {
            Ok(stream) => stream,
            Err(_) => return, // acceptor dropped the sender: drained
        };
        metrics.queue_pop();
        metrics.in_flight.fetch_add(1, Ordering::Relaxed);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            handle_connection(stream, handler, ctx);
        }));
        metrics.in_flight.fetch_sub(1, Ordering::Relaxed);
        if result.is_err() {
            // `handle_connection` already catches handler panics; this
            // catches bugs in the connection plumbing itself so the
            // worker (and the drain guarantee) survives them.
            metrics.worker_panics.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// The admission accountant for `class`, or `None` for the unbudgeted
/// probe class.
fn class_metrics(metrics: &ServeMetrics, class: CostClass) -> Option<&AdmissionClassMetrics> {
    match class {
        CostClass::Probe => None,
        CostClass::Cheap => Some(&metrics.admission_cheap),
        CostClass::Heavy => Some(&metrics.admission_heavy),
        CostClass::Intake => Some(&metrics.admission_intake),
    }
}

/// Serve exactly one request on `stream`, then close it.
fn handle_connection(mut stream: TcpStream, handler: &Arc<Handler>, ctx: Ctx<'_>) {
    let metrics = ctx.metrics;
    let started = Instant::now();
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let request = match parse_request(&mut stream) {
        Ok(request) => request,
        Err(ParseError::ConnectionClosed) => return, // nothing owed
        Err(e) => {
            let (status, msg) = match e {
                ParseError::HeadTooLarge => (431, "request head too large"),
                ParseError::BodyTooLarge => (413, "request body too large"),
                ParseError::Malformed(why) => (400, why),
                ParseError::Io(_) | ParseError::ConnectionClosed => return,
            };
            let id = request_id(None);
            let body = format!("{{\"error\":\"{msg}\"}}\n");
            let _ = Response::json(status, body)
                .header("X-Request-Id", id.clone())
                .write_to(&mut stream);
            record(metrics, ServeEndpoint::Other, started);
            if let Some(access) = ctx.access {
                // The head never parsed: no method/path to attribute,
                // but the status and id still land in the log.
                access.log(&AccessRecord {
                    request_id: id,
                    endpoint: ServeEndpoint::Other.label(),
                    cost_class: "unknown",
                    status,
                    latency_micros: u64::try_from(started.elapsed().as_micros())
                        .unwrap_or(u64::MAX),
                    unix_ms: now_unix_ms(),
                    ..AccessRecord::default()
                });
            }
            return;
        }
    };
    let id = request_id(request.header("x-request-id"));
    let _span = trace::span_with("request", |a| {
        a.str("method", request.method.clone())
            .str("path", request.path.clone())
            .str("request_id", id.clone());
    });
    let run_handler =
        |request: &Request| match std::panic::catch_unwind(AssertUnwindSafe(|| handler(request))) {
            Ok(response) => response,
            Err(_) => {
                metrics.worker_panics.fetch_add(1, Ordering::Relaxed);
                Response::json(500, "{\"error\":\"handler panicked\"}\n")
            }
        };
    let class = cost_class(&request.method, &request.path);
    let response = if request.method != "GET" && request.method != "POST" {
        Response::json(405, "{\"error\":\"only GET and POST are served\"}\n")
    } else {
        match class_metrics(metrics, class) {
            Some(admission) => {
                if !admission.try_acquire() {
                    // Over budget: shed instead of running the handler.
                    // The write below is microseconds, so the worker is
                    // immediately back on the queue — a flooded class
                    // costs the pool almost nothing.
                    let hint = ctx.limits.budget_hint(metrics, admission);
                    trace::instant_with("admission_shed", |a| {
                        a.str("cost_class", class.name())
                            .str("request_id", id.clone());
                    });
                    shed_503(
                        stream,
                        "over budget",
                        class.name(),
                        hint,
                        ctx,
                        started,
                        AccessRecord {
                            request_id: id,
                            method: request.method.clone(),
                            path: request.path.clone(),
                            shed_reason: "over_budget",
                            ..AccessRecord::default()
                        },
                    );
                    return;
                }
                let response = run_handler(&request);
                admission.release();
                response
            }
            None => run_handler(&request),
        }
    };
    if response.status >= 400 {
        trace::instant_with("request_error", |a| {
            a.u64("status", u64::from(response.status));
        });
    }
    let response = response.header("X-Request-Id", id.clone());
    let endpoint = response.endpoint;
    let status = response.status;
    let epoch = epoch_from(&response);
    if response.write_to(&mut stream).is_err() {
        // The client went away mid-write; the request still ran, so it
        // still counts against its endpoint.
    }
    let _ = stream.flush();
    record(metrics, endpoint, started);
    if let Some(access) = ctx.access {
        access.log(&AccessRecord {
            request_id: id,
            method: request.method.clone(),
            path: request.path.clone(),
            endpoint: endpoint.label(),
            cost_class: class.name(),
            status,
            latency_micros: u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX),
            epoch,
            shed_reason: "",
            unix_ms: now_unix_ms(),
        });
    }
}

fn record(metrics: &ServeMetrics, endpoint: ServeEndpoint, started: Instant) {
    let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    metrics.record_request(endpoint, nanos);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Read, Write};
    use std::sync::mpsc;

    /// Raw one-shot HTTP client; returns (status, headers, body).
    fn get(addr: SocketAddr, target: &str) -> (u16, Vec<String>, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {target} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        read_response(stream)
    }

    fn read_response(stream: TcpStream) -> (u16, Vec<String>, String) {
        let mut reader = BufReader::new(stream);
        let mut status_line = String::new();
        reader.read_line(&mut status_line).expect("status line");
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .expect("status code")
            .parse()
            .expect("numeric status");
        let mut headers = Vec::new();
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let line = line.trim_end().to_string();
            if line.is_empty() {
                break;
            }
            headers.push(line);
        }
        let mut body = String::new();
        reader.read_to_string(&mut body).unwrap();
        (status, headers, body)
    }

    fn spawn_server(
        config: ServerConfig,
        handler: Arc<Handler>,
    ) -> (
        SocketAddr,
        Arc<ServeMetrics>,
        Arc<AtomicBool>,
        std::thread::JoinHandle<std::io::Result<()>>,
    ) {
        let metrics = Arc::new(ServeMetrics::new());
        let server = Server::bind(config, Arc::clone(&metrics)).expect("bind");
        let addr = server.local_addr();
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let join = std::thread::spawn(move || server.run(handler, &flag));
        (addr, metrics, shutdown, join)
    }

    #[test]
    fn serves_concurrent_requests_and_drains_on_shutdown() {
        let handler: Arc<Handler> = Arc::new(|req: &Request| {
            Response::json(200, format!("{{\"path\":\"{}\"}}", req.path))
                .endpoint(ServeEndpoint::Classify)
        });
        let config = ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue: 8,
            fastlane_queue: 4,
            retry_after_secs: 1,
            ..ServerConfig::default()
        };
        let (addr, metrics, shutdown, join) = spawn_server(config, handler);
        std::thread::scope(|scope| {
            for n in 0..8 {
                scope.spawn(move || {
                    let (status, _, body) = get(addr, &format!("/p/{n}"));
                    assert_eq!(status, 200);
                    assert_eq!(body, format!("{{\"path\":\"/p/{n}\"}}"));
                });
            }
        });
        shutdown.store(true, Ordering::Release);
        join.join().unwrap().unwrap();
        let s = metrics.snapshot();
        assert_eq!(s.requests, 8);
        assert_eq!(s.worker_panics, 0);
        assert_eq!(s.latency.classify.count, 8);
        assert_eq!(s.in_flight, 0);
        assert_eq!(s.queue_depth, 0);
    }

    #[test]
    fn full_queue_gets_503_with_retry_after() {
        // One worker parked in the handler + queue of one ⇒ the third
        // concurrent connection must be bounced, not buffered.
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let gate_rx = Mutex::new(gate_rx);
        let handler: Arc<Handler> = Arc::new(move |_req: &Request| {
            gate_rx.lock().unwrap().recv().ok();
            Response::text(200, "slow")
        });
        let config = ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            queue: 1,
            fastlane_queue: 4,
            retry_after_secs: 7,
            ..ServerConfig::default()
        };
        let (addr, metrics, shutdown, join) = spawn_server(config, handler);
        // Saturate in stages (the acceptor can outrun the worker, so
        // firing both at once could bounce the second): park request A
        // in the worker, then request B in the queue, each confirmed
        // via the gauges before the next step.
        let send_slow = || {
            let mut stream = TcpStream::connect(addr).unwrap();
            write!(stream, "GET /slow HTTP/1.1\r\n\r\n").unwrap();
            stream.flush().unwrap();
            stream
        };
        let wait_for = |what: &str, reached: &dyn Fn() -> bool| {
            let t0 = Instant::now();
            while !reached() {
                assert!(
                    t0.elapsed() < Duration::from_secs(5),
                    "never reached: {what}"
                );
                std::thread::sleep(Duration::from_millis(2));
            }
        };
        let slow_a = send_slow();
        wait_for("request A in the handler", &|| {
            metrics.in_flight.load(Ordering::Relaxed) == 1
        });
        let slow_b = send_slow();
        wait_for("request B parked in the queue", &|| {
            metrics.queue_depth.load(Ordering::Relaxed) == 1
        });
        let slow = [slow_a, slow_b];
        let (status, headers, body) = get(addr, "/bounced");
        assert_eq!(status, 503);
        assert!(
            headers.iter().any(|h| h == "Retry-After: 7"),
            "missing Retry-After: {headers:?}"
        );
        assert!(body.contains("accept queue full"), "{body}");
        // Release the parked requests; both complete (drain guarantee).
        gate_tx.send(()).unwrap();
        gate_tx.send(()).unwrap();
        for stream in slow {
            let (status, _, _) = read_response(stream);
            assert_eq!(status, 200);
        }
        shutdown.store(true, Ordering::Release);
        join.join().unwrap().unwrap();
        let s = metrics.snapshot();
        assert_eq!(s.rejected_busy, 1);
        assert_eq!(s.requests, 2, "bounced connection never reached a worker");
        assert_eq!(s.worker_panics, 0);
    }

    #[test]
    fn handler_panic_answers_500_and_worker_survives() {
        let handler: Arc<Handler> = Arc::new(|req: &Request| {
            if req.path == "/boom" {
                panic!("handler bug");
            }
            Response::text(200, "fine")
        });
        let config = ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            queue: 4,
            fastlane_queue: 4,
            retry_after_secs: 1,
            ..ServerConfig::default()
        };
        let (addr, metrics, shutdown, join) = spawn_server(config, handler);
        let (status, _, _) = get(addr, "/boom");
        assert_eq!(status, 500);
        // The same (only) worker keeps serving.
        let (status, _, body) = get(addr, "/ok");
        assert_eq!(status, 200);
        assert_eq!(body, "fine");
        shutdown.store(true, Ordering::Release);
        join.join().unwrap().unwrap();
        assert_eq!(metrics.snapshot().worker_panics, 1);
    }

    #[test]
    fn bare_lf_request_gets_a_response() {
        // Regression: an LF-only client (`\n\n` head terminator) used
        // to hang on a worker slot until the read timeout instead of
        // being answered.
        let handler: Arc<Handler> =
            Arc::new(|req: &Request| Response::text(200, format!("path={}", req.path)));
        let config = ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            queue: 4,
            fastlane_queue: 4,
            retry_after_secs: 1,
            ..ServerConfig::default()
        };
        let (addr, metrics, shutdown, join) = spawn_server(config, handler);
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET /lf-only HTTP/1.1\nHost: test\n\n").unwrap();
        let (status, _, body) = read_response(stream);
        assert_eq!(status, 200);
        assert_eq!(body, "path=/lf-only");
        shutdown.store(true, Ordering::Release);
        join.join().unwrap().unwrap();
        assert_eq!(metrics.snapshot().requests, 1);
    }

    #[test]
    fn unsupported_methods_bodies_and_malformed_requests_get_errors() {
        let handler: Arc<Handler> = Arc::new(|req: &Request| {
            Response::text(200, format!("{}:{}", req.method, req.body.len()))
        });
        let config = ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            queue: 4,
            fastlane_queue: 4,
            retry_after_secs: 1,
            ..ServerConfig::default()
        };
        let (addr, _metrics, shutdown, join) = spawn_server(config, handler);
        // POST now reaches the handler, with its body.
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "POST /v1/thing HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd"
        )
        .unwrap();
        let (status, _, body) = read_response(stream);
        assert_eq!(status, 200);
        assert_eq!(body, "POST:4");
        // Other methods stay 405.
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "PUT /v1/thing HTTP/1.1\r\n\r\n").unwrap();
        let (status, _, _) = read_response(stream);
        assert_eq!(status, 405);
        // An oversized declared body is a 413 before any buffering.
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "POST /v1/thing HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            crate::http::MAX_BODY_BYTES + 1
        )
        .unwrap();
        let (status, _, _) = read_response(stream);
        assert_eq!(status, 413);
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "utter nonsense\r\n\r\n").unwrap();
        let (status, _, _) = read_response(stream);
        assert_eq!(status, 400);
        shutdown.store(true, Ordering::Release);
        join.join().unwrap().unwrap();
    }

    #[test]
    fn saturated_queue_still_answers_health_probes_via_fast_lane() {
        // One worker parked + queue of one ⇒ every further connection
        // overflows to the fast lane: health and metrics probes are
        // served there, anything else gets the busy 503.
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let gate_rx = Mutex::new(gate_rx);
        let handler: Arc<Handler> = Arc::new(move |req: &Request| {
            if req.path == "/healthz" {
                return Response::json(200, "{\"status\":\"ok\"}\n")
                    .endpoint(ServeEndpoint::Healthz);
            }
            gate_rx.lock().unwrap().recv().ok();
            Response::text(200, "slow")
        });
        let config = ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            queue: 1,
            fastlane_queue: 4,
            retry_after_secs: 2,
            ..ServerConfig::default()
        };
        let (addr, metrics, shutdown, join) = spawn_server(config, handler);
        let send_slow = || {
            let mut stream = TcpStream::connect(addr).unwrap();
            write!(stream, "GET /slow HTTP/1.1\r\n\r\n").unwrap();
            stream.flush().unwrap();
            stream
        };
        let wait_for = |what: &str, reached: &dyn Fn() -> bool| {
            let t0 = Instant::now();
            while !reached() {
                assert!(
                    t0.elapsed() < Duration::from_secs(5),
                    "never reached: {what}"
                );
                std::thread::sleep(Duration::from_millis(2));
            }
        };
        let slow_a = send_slow();
        wait_for("request A in the handler", &|| {
            metrics.in_flight.load(Ordering::Relaxed) == 1
        });
        let slow_b = send_slow();
        wait_for("request B parked in the queue", &|| {
            metrics.queue_depth.load(Ordering::Relaxed) == 1
        });
        // Saturated. Health probes keep answering — several in a row.
        for _ in 0..3 {
            let (status, _, body) = get(addr, "/healthz");
            assert_eq!(status, 200, "health probe blinded under saturation");
            assert!(body.contains("ok"), "{body}");
        }
        // A classify overflowing at the same moment is bounced.
        let (status, headers, _) = get(addr, "/v1/classify");
        assert_eq!(status, 503);
        assert!(headers.iter().any(|h| h == "Retry-After: 2"), "{headers:?}");
        gate_tx.send(()).unwrap();
        gate_tx.send(()).unwrap();
        for stream in [slow_a, slow_b] {
            let (status, _, _) = read_response(stream);
            assert_eq!(status, 200);
        }
        shutdown.store(true, Ordering::Release);
        join.join().unwrap().unwrap();
        let s = metrics.snapshot();
        assert_eq!(s.fastlane_hits, 3);
        assert_eq!(s.rejected_busy, 1);
        assert_eq!(s.latency.healthz.count, 3);
        // Fast-lane successes count as requests; the bounce does not —
        // its latency lands in the rejected histogram instead.
        assert_eq!(s.requests, 5);
        assert_eq!(s.latency.rejected.count, 1);
        assert_eq!(s.worker_panics, 0);
    }

    #[test]
    fn cost_classes_partition_the_api() {
        use CostClass::*;
        assert_eq!(cost_class("GET", "/healthz"), Probe);
        assert_eq!(cost_class("GET", "/metrics"), Probe);
        assert_eq!(cost_class("GET", "/v1/classify"), Heavy);
        assert_eq!(cost_class("GET", "/v1/classify?x=1"), Heavy);
        assert_eq!(cost_class("GET", "/v1/classify/3215"), Cheap);
        assert_eq!(cost_class("GET", "/v1/series/3215"), Cheap);
        assert_eq!(cost_class("GET", "/v1/populations"), Cheap);
        assert_eq!(cost_class("GET", "/nonsense"), Cheap);
        assert_eq!(cost_class("POST", "/v1/traceroutes"), Intake);
        // A POST to a GET-only path is not intake work.
        assert_eq!(cost_class("POST", "/v1/classify"), Cheap);
        assert_eq!(cost_class("POST", "/healthz"), Cheap);
    }

    #[test]
    fn request_ids_echo_and_access_log_joins_served_and_shed_requests() {
        // A shared in-memory sink stands in for the access-log file.
        #[derive(Clone, Default)]
        struct SharedSink(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedSink {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let sink = SharedSink::default();
        let buf = Arc::clone(&sink.0);
        let handler: Arc<Handler> = Arc::new(|_req: &Request| {
            Response::json(200, "{\"ok\":true}\n")
                .header("X-Epoch", "7")
                .endpoint(ServeEndpoint::Series)
        });
        let config = ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue: 8,
            fastlane_queue: 4,
            retry_after_secs: 1,
            access_log: Some(AccessLog::from_writer(Box::new(sink))),
            ..ServerConfig::default()
        };
        let (addr, metrics, shutdown, join) = spawn_server(config, handler);
        // A well-formed client id is echoed verbatim.
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "GET /v1/series/3320 HTTP/1.1\r\nX-Request-Id: client-id.1\r\n\r\n"
        )
        .unwrap();
        let (status, headers, _) = read_response(stream);
        assert_eq!(status, 200);
        assert!(
            headers.iter().any(|h| h == "X-Request-Id: client-id.1"),
            "client id not echoed: {headers:?}"
        );
        // A malformed id (space) is replaced by a generated one.
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "GET /v1/series/3320 HTTP/1.1\r\nX-Request-Id: bad id\r\n\r\n"
        )
        .unwrap();
        let (status, headers, _) = read_response(stream);
        assert_eq!(status, 200);
        let generated = headers
            .iter()
            .find_map(|h| h.strip_prefix("X-Request-Id: "))
            .expect("generated id header")
            .to_string();
        assert_ne!(generated, "bad id");
        assert!(
            generated.contains('-') && generated.len() > 10,
            "{generated}"
        );
        shutdown.store(true, Ordering::Release);
        join.join().unwrap().unwrap();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "one log line per request: {text}");
        assert!(
            lines[0].contains("\"request_id\":\"client-id.1\""),
            "{text}"
        );
        assert!(lines[0].contains("\"endpoint\":\"series\""), "{text}");
        assert!(lines[0].contains("\"cost_class\":\"cheap\""), "{text}");
        assert!(lines[0].contains("\"status\":200"), "{text}");
        assert!(lines[0].contains("\"epoch\":7"), "{text}");
        assert!(lines[0].contains("\"shed_reason\":\"\""), "{text}");
        assert!(
            lines[1].contains(&format!("\"request_id\":\"{generated}\"")),
            "{text}"
        );
        assert_eq!(metrics.snapshot().worker_panics, 0);
    }

    #[test]
    fn over_budget_sheds_are_access_logged_with_a_reason() {
        #[derive(Clone, Default)]
        struct SharedSink(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedSink {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let sink = SharedSink::default();
        let buf = Arc::clone(&sink.0);
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let gate_rx = Mutex::new(gate_rx);
        let handler: Arc<Handler> = Arc::new(move |req: &Request| {
            if req.path == "/v1/classify" {
                gate_rx.lock().unwrap().recv().ok();
            }
            Response::text(200, "done")
        });
        let config = ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue: 8,
            fastlane_queue: 4,
            retry_after_secs: 1,
            budget_heavy: 1,
            access_log: Some(AccessLog::from_writer(Box::new(sink))),
            ..ServerConfig::default()
        };
        let (addr, metrics, shutdown, join) = spawn_server(config, handler);
        let mut heavy_a = TcpStream::connect(addr).unwrap();
        write!(heavy_a, "GET /v1/classify HTTP/1.1\r\n\r\n").unwrap();
        heavy_a.flush().unwrap();
        let t0 = Instant::now();
        while metrics.admission_heavy.in_flight.load(Ordering::Relaxed) != 1 {
            assert!(t0.elapsed() < Duration::from_secs(5), "budget never taken");
            std::thread::sleep(Duration::from_millis(2));
        }
        let (status, headers, _) = get(addr, "/v1/classify");
        assert_eq!(status, 503);
        assert!(
            headers.iter().any(|h| h.starts_with("X-Request-Id: ")),
            "shed responses still carry a request id: {headers:?}"
        );
        gate_tx.send(()).unwrap();
        let (status, _, _) = read_response(heavy_a);
        assert_eq!(status, 200);
        shutdown.store(true, Ordering::Release);
        join.join().unwrap().unwrap();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let shed_line = text
            .lines()
            .find(|l| l.contains("\"status\":503"))
            .expect("shed line in access log");
        assert!(
            shed_line.contains("\"shed_reason\":\"over_budget\""),
            "{text}"
        );
        assert!(shed_line.contains("\"cost_class\":\"heavy\""), "{text}");
        assert!(shed_line.contains("\"endpoint\":\"rejected\""), "{text}");
        assert!(shed_line.contains("\"path\":\"/v1/classify\""), "{text}");
    }

    #[test]
    fn adaptive_retry_after_scales_with_backlog() {
        // Merely full (occupancy == capacity): exactly the base.
        assert_eq!(adaptive_retry_after(3, 2, 2), 3);
        assert_eq!(adaptive_retry_after(3, 0, 2), 3);
        // One capacity's worth over: double.
        assert_eq!(adaptive_retry_after(3, 4, 2), 6);
        // Deep backlog clamps at 8× base.
        assert_eq!(adaptive_retry_after(3, 1_000, 2), 24);
        // Degenerate capacity never divides by zero.
        assert_eq!(adaptive_retry_after(1, 5, 0), 5);
    }

    #[test]
    fn over_budget_heavy_sheds_while_cheap_is_served() {
        // Two workers but a heavy budget of one: with a heavy request
        // parked in the handler, a second heavy must shed 503 (naming
        // its class) while a cheap request sails through on the free
        // worker.
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let gate_rx = Mutex::new(gate_rx);
        let handler: Arc<Handler> = Arc::new(move |req: &Request| {
            if req.path == "/v1/classify" {
                gate_rx.lock().unwrap().recv().ok();
                return Response::text(200, "heavy").endpoint(ServeEndpoint::Classify);
            }
            Response::text(200, "cheap")
        });
        let config = ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue: 8,
            fastlane_queue: 4,
            retry_after_secs: 1,
            budget_heavy: 1,
            ..ServerConfig::default()
        };
        let (addr, metrics, shutdown, join) = spawn_server(config, handler);
        let mut heavy_a = TcpStream::connect(addr).unwrap();
        write!(heavy_a, "GET /v1/classify HTTP/1.1\r\n\r\n").unwrap();
        heavy_a.flush().unwrap();
        let t0 = Instant::now();
        while metrics.admission_heavy.in_flight.load(Ordering::Relaxed) != 1 {
            assert!(
                t0.elapsed() < Duration::from_secs(5),
                "heavy request never acquired its budget slot"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        // Budget exhausted: the second heavy request sheds.
        let (status, headers, body) = get(addr, "/v1/classify");
        assert_eq!(status, 503);
        assert!(
            headers.iter().any(|h| h.starts_with("Retry-After: ")),
            "{headers:?}"
        );
        assert!(body.contains("\"error\":\"over budget\""), "{body}");
        assert!(body.contains("\"cost_class\":\"heavy\""), "{body}");
        // Cheap traffic still finds the free worker.
        let (status, _, body) = get(addr, "/v1/populations");
        assert_eq!(status, 200);
        assert_eq!(body, "cheap");
        gate_tx.send(()).unwrap();
        let (status, _, _) = read_response(heavy_a);
        assert_eq!(status, 200);
        shutdown.store(true, Ordering::Release);
        join.join().unwrap().unwrap();
        let s = metrics.snapshot();
        assert_eq!(s.admission.heavy.budget, 1);
        assert_eq!(s.admission.heavy.admitted, 1);
        assert_eq!(s.admission.heavy.shed, 1);
        assert_eq!(s.admission.heavy.in_flight, 0);
        // Auto budgets resolve to the worker count.
        assert_eq!(s.admission.cheap.budget, 2);
        assert_eq!(s.admission.intake.budget, 2);
        assert_eq!(s.admission.cheap.shed, 0);
        // The shed answered without a handler: latency lands in the
        // rejected histogram, not in requests.
        assert_eq!(s.requests, 2);
        assert_eq!(s.latency.rejected.count, 1);
        assert_eq!(s.rejected_busy, 0, "budget sheds are not queue sheds");
        assert_eq!(s.worker_panics, 0);
    }
}
