//! SIGTERM / SIGINT → one shared "shut down" flag, without a libc
//! dependency: `signal(2)` is declared by hand and the handler does the
//! only thing that is async-signal-safe here — a relaxed store into a
//! static atomic the accept loop polls.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the signal handler; read by [`requested`].
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod ffi {
    /// `void (*sighandler_t)(int)` — `signal(2)`'s handler type.
    pub type SigHandler = extern "C" fn(i32);

    extern "C" {
        /// POSIX `signal(2)`. Fine here: the handler is re-armed by
        /// default on every platform this builds for, and even one
        /// delivery is enough to latch the flag.
        pub fn signal(signum: i32, handler: SigHandler) -> usize;
    }

    pub const SIGINT: i32 = 2;
    pub const SIGTERM: i32 = 15;
}

#[cfg(unix)]
extern "C" fn on_signal(_signum: i32) {
    SHUTDOWN.store(true, Ordering::Relaxed);
}

/// Install handlers for SIGINT and SIGTERM that latch the shutdown
/// flag. Idempotent; call once before the accept loop.
pub fn install() {
    #[cfg(unix)]
    unsafe {
        ffi::signal(ffi::SIGINT, on_signal);
        ffi::signal(ffi::SIGTERM, on_signal);
    }
}

/// True once a shutdown signal was delivered (or [`request`] was
/// called).
pub fn requested() -> bool {
    SHUTDOWN.load(Ordering::Relaxed)
}

/// The flag itself — hand to [`crate::Server::run`] as its shutdown
/// condition.
pub fn flag() -> &'static AtomicBool {
    &SHUTDOWN
}

/// Latch the flag from ordinary code (tests, an admin endpoint).
pub fn request() {
    SHUTDOWN.store(true, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_latches_flag() {
        // `requested()` may already be true if another test in this
        // binary sent a signal; only the latch direction is guaranteed.
        request();
        assert!(requested());
    }
}
