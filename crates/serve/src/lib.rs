//! `lastmile-serve`: the always-on congestion query daemon's transport
//! layer — everything between a TCP socket and a `Fn(&Request) ->
//! Response` handler, with nothing about congestion in it.
//!
//! The paper's pipeline is batch-shaped, but its consumers (operators
//! watching per-ASN congestion) are a standing service; this crate puts
//! the store/ingest/pipeline stack in front of concurrent clients while
//! keeping the repo's vendor policy: no external dependencies, just
//! `std::net` and `lastmile-obs`.
//!
//! * [`http`] — a one-request-per-connection HTTP/1.1 `GET` subset.
//! * [`server`] — bounded-concurrency serving: a fixed worker pool
//!   (`serve-0` … `serve-N-1`) fed by a bounded accept queue; a full
//!   queue answers `503` + `Retry-After` immediately instead of
//!   buffering without bound; shutdown drains queued and in-flight
//!   requests before [`Server::run`] returns. On top of the queue,
//!   cost-aware admission control: requests are classified
//!   ([`CostClass`]) and each class has a concurrency budget, so an
//!   expensive-endpoint flood sheds fast 503s (adaptive `Retry-After`,
//!   class named in the body) instead of occupying every worker.
//! * [`signal`] — SIGTERM/SIGINT latched into a flag the accept loop
//!   polls (hand-declared `signal(2)`, no libc crate).
//! * [`access`] — structured JSON access logs: one object per request
//!   through a bounded non-blocking writer that drops-and-counts under
//!   pressure, joinable with trace spans by `X-Request-Id`.
//!
//! Request routing, endpoint payloads, and the startup ingest live in
//! the CLI's `serve` subcommand; worker-side counters and latency
//! histograms live in [`lastmile_obs::ServeMetrics`] so `/metrics` can
//! render them next to the pipeline's `RunMetrics`.

pub mod access;
pub mod http;
pub mod server;
pub mod signal;

pub use access::{AccessLog, AccessRecord};
pub use http::{Request, Response};
pub use server::{adaptive_retry_after, cost_class, CostClass, Handler, Server, ServerConfig};
