//! Property-based tests for the DSP substrate.

use lastmile_dsp::complex::Complex;
use lastmile_dsp::fft::{fft, ifft};
use lastmile_dsp::spectrum::prominent_peak;
use lastmile_dsp::welch::{welch_peak_to_peak, WelchConfig};
use proptest::prelude::*;

fn complex_signal(max_len: usize) -> impl Strategy<Value = Vec<Complex>> {
    prop::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 1..max_len)
        .prop_map(|v| v.into_iter().map(|(re, im)| Complex::new(re, im)).collect())
}

proptest! {
    /// ifft(fft(x)) == x for arbitrary lengths (radix-2 and Bluestein).
    #[test]
    fn fft_round_trip(x in complex_signal(200)) {
        let back = ifft(&fft(&x));
        for (a, b) in x.iter().zip(&back) {
            prop_assert!((a.re - b.re).abs() < 1e-6, "{} vs {}", a.re, b.re);
            prop_assert!((a.im - b.im).abs() < 1e-6, "{} vs {}", a.im, b.im);
        }
    }

    /// Parseval: time-domain energy equals frequency-domain energy / N.
    #[test]
    fn fft_parseval(x in complex_signal(200)) {
        let n = x.len() as f64;
        let te: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let fe: f64 = fft(&x).iter().map(|z| z.norm_sqr()).sum::<f64>() / n;
        prop_assert!((te - fe).abs() <= 1e-6 * te.max(1.0), "{te} vs {fe}");
    }

    /// FFT is linear: F(ax + y) == a·F(x) + F(y).
    #[test]
    fn fft_linearity(x in complex_signal(96), scale in -10.0f64..10.0) {
        let n = x.len();
        let y: Vec<Complex> = (0..n).map(|i| Complex::new(i as f64, -(i as f64))).collect();
        let combo: Vec<Complex> = x.iter().zip(&y).map(|(&a, &b)| a.scale(scale) + b).collect();
        let lhs = fft(&combo);
        let fx = fft(&x);
        let fy = fft(&y);
        for k in 0..n {
            let rhs = fx[k].scale(scale) + fy[k];
            prop_assert!((lhs[k].re - rhs.re).abs() < 1e-5);
            prop_assert!((lhs[k].im - rhs.im).abs() < 1e-5);
        }
    }

    /// A pure daily tone of arbitrary peak-to-peak amplitude and phase is
    /// recovered by the Welch estimator within 5%, regardless of offset.
    #[test]
    fn welch_recovers_daily_tone(
        pp in 0.1f64..20.0,
        phase in 0.0f64..core::f64::consts::TAU,
        offset in -50.0f64..50.0,
    ) {
        let n = 15 * 48;
        let sig: Vec<f64> = (0..n)
            .map(|i| offset + pp / 2.0 * (core::f64::consts::TAU * i as f64 / 48.0 + phase).sin())
            .collect();
        let cfg = WelchConfig::for_daily_analysis(2.0);
        let spec = welch_peak_to_peak(&sig, &cfg).unwrap();
        let peak = prominent_peak(&spec).unwrap();
        prop_assert!(peak.is_daily(), "peak at {} cph", peak.frequency);
        prop_assert!((peak.amplitude - pp).abs() < 0.05 * pp,
            "pp {} read back as {}", pp, peak.amplitude);
    }

    /// Scaling the signal scales the spectrum linearly.
    #[test]
    fn welch_amplitude_is_homogeneous(scale in 0.1f64..50.0) {
        let n = 15 * 48;
        let base: Vec<f64> = (0..n)
            .map(|i| (core::f64::consts::TAU * i as f64 / 48.0).sin()
                + 0.3 * (core::f64::consts::TAU * i as f64 / 24.0).cos())
            .collect();
        let scaled: Vec<f64> = base.iter().map(|v| v * scale).collect();
        let cfg = WelchConfig::for_daily_analysis(2.0);
        let a = welch_peak_to_peak(&base, &cfg).unwrap();
        let b = welch_peak_to_peak(&scaled, &cfg).unwrap();
        for (x, y) in a.peak_to_peak.iter().zip(&b.peak_to_peak) {
            prop_assert!((y - x * scale).abs() < 1e-6 * scale.max(1.0) + 1e-9);
        }
    }

    /// The spectrum never reports negative amplitudes or non-finite bins.
    #[test]
    fn welch_output_is_sane(sig in prop::collection::vec(-100.0f64..100.0, 2..400)) {
        let cfg = WelchConfig::for_daily_analysis(2.0);
        let spec = welch_peak_to_peak(&sig, &cfg).unwrap();
        for &a in &spec.peak_to_peak {
            prop_assert!(a.is_finite() && a >= 0.0);
        }
        prop_assert_eq!(spec.frequencies.len(), spec.peak_to_peak.len());
        prop_assert_eq!(spec.power.len(), spec.peak_to_peak.len());
    }
}
