//! Prominent-peak extraction from an amplitude spectrum.
//!
//! §2.3: "The Welch method enables us to identify the prominent frequency
//! component of signals by finding the frequency bin with the highest power
//! in the periodogram. Then we check if the frequency bin corresponds to
//! daily fluctuations, and we derive from the corresponding power [...] the
//! average peak-to-peak amplitude of these fluctuations."
//!
//! [`prominent_peak`] does the argmax (excluding the DC bin, which carries
//! the signal baseline rather than a fluctuation) and reports the peak's
//! frequency, amplitude, and a *prominence ratio* — peak power over the
//! median non-DC power — used as a diagnostic for how decisively the peak
//! stands out of a flat, noisy spectrum like ISP_DE's in Figure 2.

use crate::welch::{AmplitudeSpectrum, DAILY_CYCLES_PER_HOUR};

/// The dominant spectral component of a signal.
#[derive(Clone, Copy, Debug)]
pub struct SpectralPeak {
    /// Bin index within the one-sided spectrum.
    pub bin: usize,
    /// Frequency in cycles per hour.
    pub frequency: f64,
    /// Average peak-to-peak amplitude at the peak, input units.
    pub amplitude: f64,
    /// Frequency resolution of the spectrum (cycles per hour), for
    /// tolerance checks.
    pub df: f64,
    /// Peak power divided by the median non-DC bin power (≥ 1). Near 1
    /// means the "peak" is just the top of flat noise.
    pub prominence: f64,
}

impl SpectralPeak {
    /// Whether this peak sits on the bin corresponding to `target`
    /// frequency (cycles per hour), within half a bin.
    pub fn matches_frequency(&self, target: f64) -> bool {
        (self.frequency - target).abs() <= self.df / 2.0 + 1e-12
    }

    /// Whether this is the daily component (1/24 cycles per hour).
    pub fn is_daily(&self) -> bool {
        self.matches_frequency(DAILY_CYCLES_PER_HOUR)
    }
}

/// Find the non-DC bin with the highest power.
///
/// Returns `None` if the spectrum has fewer than two bins or all non-DC
/// power is zero (a perfectly constant signal has no fluctuation to rank).
pub fn prominent_peak(spec: &AmplitudeSpectrum) -> Option<SpectralPeak> {
    if spec.len() < 2 {
        return None;
    }
    let mut best = 0usize;
    let mut best_power = 0.0f64;
    for (k, &p) in spec.power.iter().enumerate().skip(1) {
        if p > best_power {
            best_power = p;
            best = k;
        }
    }
    if best == 0 || best_power <= 0.0 {
        return None;
    }

    let median_power = {
        let mut non_dc: Vec<f64> = spec.power[1..].to_vec();
        non_dc.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap_or(core::cmp::Ordering::Equal));
        let n = non_dc.len();
        if n % 2 == 1 {
            non_dc[n / 2]
        } else {
            (non_dc[n / 2 - 1] + non_dc[n / 2]) / 2.0
        }
    };
    let prominence = if median_power > 0.0 {
        best_power / median_power
    } else {
        f64::INFINITY
    };

    Some(SpectralPeak {
        bin: best,
        frequency: spec.frequencies[best],
        amplitude: spec.peak_to_peak[best],
        df: spec.df,
        prominence,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::welch::{welch_peak_to_peak, WelchConfig};
    use core::f64::consts::TAU;

    fn tone(cycles_per_day: f64, pp: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| pp / 2.0 * (TAU * cycles_per_day * i as f64 / 48.0).sin())
            .collect()
    }

    #[test]
    fn daily_tone_is_daily_peak() {
        let cfg = WelchConfig::for_daily_analysis(2.0);
        let spec = welch_peak_to_peak(&tone(1.0, 1.0, 720), &cfg).unwrap();
        let p = prominent_peak(&spec).unwrap();
        assert!(p.is_daily(), "peak at {} cph", p.frequency);
        assert_eq!(p.bin, 4);
        assert!(p.prominence > 100.0, "prominence {}", p.prominence);
    }

    #[test]
    fn non_daily_tone_is_not_daily() {
        // A 3-cycles-per-day tone (8-hour period) lands on bin 12.
        let cfg = WelchConfig::for_daily_analysis(2.0);
        let spec = welch_peak_to_peak(&tone(3.0, 1.0, 720), &cfg).unwrap();
        let p = prominent_peak(&spec).unwrap();
        assert!(!p.is_daily());
        assert!(p.matches_frequency(3.0 / 24.0));
        assert_eq!(p.bin, 12);
    }

    #[test]
    fn constant_signal_has_no_peak() {
        let cfg = WelchConfig::for_daily_analysis(2.0);
        let spec = welch_peak_to_peak(&vec![3.0; 720], &cfg).unwrap();
        assert!(prominent_peak(&spec).is_none());
    }

    #[test]
    fn stronger_tone_wins() {
        let cfg = WelchConfig::for_daily_analysis(2.0);
        let a = tone(1.0, 0.3, 720);
        let b = tone(2.0, 1.5, 720);
        let mixed: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let spec = welch_peak_to_peak(&mixed, &cfg).unwrap();
        let p = prominent_peak(&spec).unwrap();
        assert!(
            p.matches_frequency(2.0 / 24.0),
            "peak at {} cph",
            p.frequency
        );
        assert!((p.amplitude - 1.5).abs() < 0.1);
    }

    #[test]
    fn noise_peak_has_low_prominence() {
        // Deterministic pseudo-noise: the top bin should not be decisively
        // prominent the way a genuine diurnal component is.
        let noise: Vec<f64> = (0..720u64)
            .map(|i| {
                let mut x = i.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(7);
                x ^= x >> 33;
                x = x.wrapping_mul(0xFF51AFD7ED558CCD);
                x ^= x >> 33;
                (x as f64 / u64::MAX as f64) - 0.5
            })
            .collect();
        let cfg = WelchConfig::for_daily_analysis(2.0);
        let spec = welch_peak_to_peak(&noise, &cfg).unwrap();
        let p = prominent_peak(&spec).unwrap();
        assert!(p.prominence < 50.0, "noise prominence {}", p.prominence);
    }

    #[test]
    fn matches_frequency_uses_half_bin_tolerance() {
        let peak = SpectralPeak {
            bin: 4,
            frequency: 1.0 / 24.0,
            amplitude: 1.0,
            df: 1.0 / 96.0,
            prominence: 10.0,
        };
        assert!(peak.matches_frequency(1.0 / 24.0));
        assert!(peak.matches_frequency(1.0 / 24.0 + 1.0 / 200.0)); // within df/2
        assert!(!peak.matches_frequency(1.0 / 12.0));
    }
}
