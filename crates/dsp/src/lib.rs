//! # lastmile-dsp
//!
//! Signal-processing substrate for persistent-congestion detection,
//! implemented from scratch (no FFT dependency).
//!
//! §2.3 of the IMC 2020 paper: aggregated queuing-delay signals are
//! converted "to the frequency domain using the Welch method", the
//! *prominent frequency* is the bin with the highest power, and the
//! congestion classes are thresholds on the "average peak-to-peak
//! amplitude" read off a periodogram whose y-axis is normalized for that
//! purpose (Figure 2).
//!
//! This crate provides that chain:
//!
//! * [`Complex`] — minimal complex arithmetic.
//! * [`fft`] — an iterative radix-2 Cooley–Tukey transform plus Bluestein's
//!   algorithm for arbitrary lengths, so Welch segment lengths can be tied
//!   to whole days (192 half-hour bins = 4 days) rather than powers of two.
//! * [`window`] — Hann/Hamming/Blackman/rectangular windows with their
//!   coherent gains.
//! * [`welch`] — Welch's method: overlapping detrended windowed segments,
//!   averaged periodograms, and the paper's **peak-to-peak amplitude**
//!   normalization: a pure sinusoid of peak-to-peak amplitude `p` placed at
//!   a bin frequency reads back as `p` on the spectrum.
//! * [`spectrum`] — prominent-peak extraction and frequency matching with
//!   half-bin tolerance (is the prominent bin "the daily frequency"?).
//!
//! ## Example: recovering a diurnal component
//!
//! ```
//! use lastmile_dsp::welch::{WelchConfig, welch_peak_to_peak};
//! use lastmile_dsp::spectrum::prominent_peak;
//!
//! // Two samples per hour (30-minute bins), 15 days of signal with a
//! // 1.0 ms peak-to-peak daily sine.
//! let fs = 2.0; // samples per hour
//! let n = 15 * 48;
//! let signal: Vec<f64> = (0..n)
//!     .map(|i| 0.5 * (2.0 * std::f64::consts::PI * i as f64 / 48.0).sin() + 0.2)
//!     .collect();
//! let cfg = WelchConfig::for_daily_analysis(fs);
//! let spec = welch_peak_to_peak(&signal, &cfg).unwrap();
//! let peak = prominent_peak(&spec).unwrap();
//! assert!(peak.matches_frequency(1.0 / 24.0), "daily bin must dominate");
//! assert!((peak.amplitude - 1.0).abs() < 0.1, "p2p amplitude ~1.0, got {}", peak.amplitude);
//! ```

pub mod complex;
pub mod fft;
pub mod spectrum;
pub mod welch;
pub mod window;

pub use complex::Complex;
pub use spectrum::{prominent_peak, SpectralPeak};
pub use welch::{welch_peak_to_peak, AmplitudeSpectrum, WelchConfig};
pub use window::Window;
