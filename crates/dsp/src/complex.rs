//! Minimal complex arithmetic for the FFT.
//!
//! Only what the transforms need: no trait gymnastics, `f64` components,
//! `Copy` everywhere. Keeping this in-tree avoids a numerics dependency
//! and keeps the FFT auditable end to end.

use core::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// Multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Construct from rectangular components.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Complex {
        Complex { re, im }
    }

    /// A purely real value.
    #[inline]
    pub const fn from_real(re: f64) -> Complex {
        Complex { re, im: 0.0 }
    }

    /// `e^(i·theta)` — the unit phasor used for twiddle factors.
    #[inline]
    pub fn cis(theta: f64) -> Complex {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Complex {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude `|z|²` (avoids the square root; used for power
    /// spectra).
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Scale by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Complex {
        Complex {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// Whether both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        Complex {
            re: self.re / rhs,
            im: self.im / rhs,
        }
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex {
            re: -self.re,
            im: -self.im,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::f64::consts::PI;

    fn close(a: Complex, b: Complex) -> bool {
        (a.re - b.re).abs() < 1e-12 && (a.im - b.im).abs() < 1e-12
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex::new(3.0, -4.0);
        assert!(close(z + Complex::ZERO, z));
        assert!(close(z * Complex::ONE, z));
        assert!(close(z - z, Complex::ZERO));
        assert!(close(z + (-z), Complex::ZERO));
    }

    #[test]
    fn multiplication_matches_i_squared() {
        assert!(close(Complex::I * Complex::I, Complex::from_real(-1.0)));
        let z = Complex::new(1.0, 2.0);
        let w = Complex::new(3.0, 4.0);
        // (1+2i)(3+4i) = 3+4i+6i+8i^2 = -5+10i
        assert!(close(z * w, Complex::new(-5.0, 10.0)));
    }

    #[test]
    fn magnitude_and_conjugate() {
        let z = Complex::new(3.0, 4.0);
        assert!((z.abs() - 5.0).abs() < 1e-12);
        assert!((z.norm_sqr() - 25.0).abs() < 1e-12);
        assert!(close(z.conj(), Complex::new(3.0, -4.0)));
        // z * conj(z) is |z|^2.
        assert!(close(z * z.conj(), Complex::from_real(25.0)));
    }

    #[test]
    fn cis_is_unit_circle() {
        for k in 0..16 {
            let theta = 2.0 * PI * k as f64 / 16.0;
            let z = Complex::cis(theta);
            assert!((z.abs() - 1.0).abs() < 1e-12);
        }
        assert!(close(Complex::cis(0.0), Complex::ONE));
        assert!(close(Complex::cis(PI / 2.0), Complex::I));
    }

    #[test]
    fn assign_ops() {
        let mut z = Complex::new(1.0, 1.0);
        z += Complex::new(2.0, -1.0);
        assert!(close(z, Complex::new(3.0, 0.0)));
        z -= Complex::new(1.0, 0.0);
        assert!(close(z, Complex::new(2.0, 0.0)));
        z *= Complex::I;
        assert!(close(z, Complex::new(0.0, 2.0)));
    }

    #[test]
    fn scale_and_div() {
        let z = Complex::new(2.0, -6.0);
        assert!(close(z.scale(0.5), Complex::new(1.0, -3.0)));
        assert!(close(z / 2.0, Complex::new(1.0, -3.0)));
    }

    #[test]
    fn finiteness() {
        assert!(Complex::new(1.0, 2.0).is_finite());
        assert!(!Complex::new(f64::NAN, 0.0).is_finite());
        assert!(!Complex::new(0.0, f64::INFINITY).is_finite());
    }
}
