//! Tapering windows for spectral analysis.
//!
//! Welch's method multiplies each segment by a window before transforming
//! it, trading a wider main lobe for much lower spectral leakage — without
//! a taper, the strong low-frequency content of queuing-delay signals would
//! bleed across the whole spectrum and bury the daily peak.
//!
//! The **coherent gain** (mean of the window coefficients) is what a
//! windowed sinusoid's spectral line is scaled by; the amplitude
//! normalization in [`crate::welch`] divides it back out so the paper's
//! "average peak-to-peak amplitude" axis is in milliseconds.

/// Supported window functions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Window {
    /// No taper. Highest leakage; exact for bin-centered tones.
    Rectangular,
    /// Hann (raised cosine). scipy's Welch default and ours.
    #[default]
    Hann,
    /// Hamming.
    Hamming,
    /// Blackman (three-term).
    Blackman,
}

impl Window {
    /// Generate the `n` window coefficients (periodic form, the variant
    /// appropriate for spectral averaging).
    pub fn coefficients(self, n: usize) -> Vec<f64> {
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            return vec![1.0];
        }
        let nf = n as f64;
        (0..n)
            .map(|i| {
                let x = core::f64::consts::TAU * i as f64 / nf;
                match self {
                    Window::Rectangular => 1.0,
                    Window::Hann => 0.5 - 0.5 * x.cos(),
                    Window::Hamming => 0.54 - 0.46 * x.cos(),
                    Window::Blackman => 0.42 - 0.5 * x.cos() + 0.08 * (2.0 * x).cos(),
                }
            })
            .collect()
    }

    /// Coherent gain: the mean of the coefficients. A bin-centered
    /// sinusoid's spectral line is attenuated by exactly this factor.
    pub fn coherent_gain(self, n: usize) -> f64 {
        let c = self.coefficients(n);
        if c.is_empty() {
            return 1.0;
        }
        c.iter().sum::<f64>() / c.len() as f64
    }

    /// Name for display.
    pub fn name(self) -> &'static str {
        match self {
            Window::Rectangular => "rectangular",
            Window::Hann => "hann",
            Window::Hamming => "hamming",
            Window::Blackman => "blackman",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coefficients_are_in_unit_range() {
        for w in [
            Window::Rectangular,
            Window::Hann,
            Window::Hamming,
            Window::Blackman,
        ] {
            for &c in &w.coefficients(64) {
                // Blackman's endpoint is 0 up to rounding (0.42-0.5+0.08).
                assert!((-1e-12..=1.0 + 1e-12).contains(&c), "{}: {c}", w.name());
            }
        }
    }

    #[test]
    fn hann_endpoints_and_midpoint() {
        let c = Window::Hann.coefficients(8);
        assert!(c[0].abs() < 1e-12); // periodic Hann starts at 0
        assert!((c[4] - 1.0).abs() < 1e-12); // peak at n/2
    }

    #[test]
    fn periodic_hann_has_known_gain() {
        // Periodic Hann coefficients sum to exactly n/2 => CG = 0.5.
        assert!((Window::Hann.coherent_gain(192) - 0.5).abs() < 1e-12);
        assert!((Window::Rectangular.coherent_gain(100) - 1.0).abs() < 1e-12);
        // Hamming: mean of 0.54 - 0.46 cos over a full period = 0.54.
        assert!((Window::Hamming.coherent_gain(128) - 0.54).abs() < 1e-12);
        // Blackman: 0.42.
        assert!((Window::Blackman.coherent_gain(128) - 0.42).abs() < 1e-12);
    }

    #[test]
    fn degenerate_lengths() {
        assert!(Window::Hann.coefficients(0).is_empty());
        assert_eq!(Window::Hann.coefficients(1), vec![1.0]);
        assert_eq!(Window::Hann.coherent_gain(0), 1.0);
    }

    #[test]
    fn symmetry_of_periodic_windows() {
        // Periodic windows satisfy w[i] == w[n - i] for i in 1..n.
        for w in [Window::Hann, Window::Hamming, Window::Blackman] {
            let c = w.coefficients(48);
            for i in 1..48 {
                assert!((c[i] - c[48 - i]).abs() < 1e-12, "{} at {i}", w.name());
            }
        }
    }
}
