//! Discrete Fourier transforms.
//!
//! Two algorithms cover every length:
//!
//! * **Radix-2 Cooley–Tukey** (iterative, in-place, bit-reversal
//!   permutation) for power-of-two lengths — O(n log n).
//! * **Bluestein's chirp-z algorithm** for everything else. Bluestein
//!   re-expresses an arbitrary-length DFT as a convolution, evaluated with
//!   a power-of-two FFT of length ≥ 2n−1 — also O(n log n).
//!
//! Arbitrary lengths matter here because Welch segments are tied to whole
//! days of 30-minute bins (192 = 2⁶·3 samples), not powers of two, so the
//! daily frequency lands exactly on a spectral bin (§2.3's "check if the
//! frequency bin corresponds to daily fluctuations" is exact rather than a
//! nearest-bin approximation).
//!
//! Conventions: forward transform is `X[k] = Σ x[n]·e^(−2πi·kn/N)` with no
//! scaling; the inverse scales by `1/N`, so `ifft(fft(x)) == x`.

use crate::complex::Complex;
use core::f64::consts::PI;

/// Forward DFT of `data`, replacing its contents.
///
/// Uses radix-2 when `data.len()` is a power of two (including 0 and 1,
/// which are no-ops) and Bluestein otherwise.
pub fn fft_in_place(data: &mut [Complex]) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    if n.is_power_of_two() {
        radix2(data, Direction::Forward);
    } else {
        let out = bluestein(data, Direction::Forward);
        data.copy_from_slice(&out);
    }
}

/// Inverse DFT of `data` (scaled by `1/N`), replacing its contents.
pub fn ifft_in_place(data: &mut [Complex]) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    if n.is_power_of_two() {
        radix2(data, Direction::Inverse);
    } else {
        let out = bluestein(data, Direction::Inverse);
        data.copy_from_slice(&out);
    }
    let scale = 1.0 / n as f64;
    for z in data.iter_mut() {
        *z = z.scale(scale);
    }
}

/// Forward DFT, allocating the output.
pub fn fft(data: &[Complex]) -> Vec<Complex> {
    let mut buf = data.to_vec();
    fft_in_place(&mut buf);
    buf
}

/// Inverse DFT, allocating the output.
pub fn ifft(data: &[Complex]) -> Vec<Complex> {
    let mut buf = data.to_vec();
    ifft_in_place(&mut buf);
    buf
}

/// Forward DFT of a real signal; returns the full complex spectrum.
pub fn fft_real(data: &[f64]) -> Vec<Complex> {
    let buf: Vec<Complex> = data.iter().map(|&x| Complex::from_real(x)).collect();
    fft(&buf)
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Direction {
    Forward,
    Inverse,
}

impl Direction {
    /// Sign of the exponent in `e^(sign·2πi·kn/N)`.
    fn sign(self) -> f64 {
        match self {
            Direction::Forward => -1.0,
            Direction::Inverse => 1.0,
        }
    }
}

/// Iterative radix-2 Cooley–Tukey, in place. `data.len()` must be a power
/// of two ≥ 2. The inverse direction does NOT apply the 1/N scale.
fn radix2(data: &mut [Complex], dir: Direction) {
    let n = data.len();
    debug_assert!(n.is_power_of_two() && n >= 2);

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if i < j {
            data.swap(i, j);
        }
    }

    // Butterfly passes.
    let sign = dir.sign();
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * PI / len as f64;
        let wlen = Complex::cis(ang);
        for start in (0..n).step_by(len) {
            let mut w = Complex::ONE;
            for k in 0..len / 2 {
                let u = data[start + k];
                let v = data[start + k + len / 2] * w;
                data[start + k] = u + v;
                data[start + k + len / 2] = u - v;
                w *= wlen;
            }
        }
        len <<= 1;
    }
}

/// Bluestein's algorithm: DFT of arbitrary length as a convolution.
fn bluestein(data: &[Complex], dir: Direction) -> Vec<Complex> {
    let n = data.len();
    let sign = dir.sign();

    // Chirp: c[k] = e^(sign·πi·k²/n). Note k² mod 2n keeps the argument
    // small and the phase exact.
    let mut chirp = Vec::with_capacity(n);
    for k in 0..n as u64 {
        let sq = (k * k) % (2 * n as u64);
        chirp.push(Complex::cis(sign * PI * sq as f64 / n as f64));
    }

    // a[k] = x[k] · c[k], zero-padded to a power of two m ≥ 2n − 1.
    let m = (2 * n - 1).next_power_of_two();
    let mut a = vec![Complex::ZERO; m];
    for k in 0..n {
        a[k] = data[k] * chirp[k];
    }

    // b[k] = conj(c[k]) arranged circularly: b[0] = c̄[0], b[m−k] = c̄[k].
    let mut b = vec![Complex::ZERO; m];
    b[0] = chirp[0].conj();
    for k in 1..n {
        let c = chirp[k].conj();
        b[k] = c;
        b[m - k] = c;
    }

    // Circular convolution via the power-of-two FFT.
    radix2(&mut a, Direction::Forward);
    radix2(&mut b, Direction::Forward);
    for k in 0..m {
        a[k] *= b[k];
    }
    radix2(&mut a, Direction::Inverse);
    let scale = 1.0 / m as f64;

    // X[k] = c[k] · conv[k].
    (0..n).map(|k| (a[k].scale(scale)) * chirp[k]).collect()
}

/// The DFT bin frequencies for a real signal of length `n` sampled at
/// `sample_rate` (samples per unit time): `k · sample_rate / n` for the
/// one-sided spectrum `k = 0 ..= n/2`.
pub fn one_sided_frequencies(n: usize, sample_rate: f64) -> Vec<f64> {
    assert!(n > 0, "empty signal has no spectrum");
    (0..=n / 2)
        .map(|k| k as f64 * sample_rate / n as f64)
        .collect()
}

/// Naive O(n²) DFT used as a test oracle.
#[cfg(test)]
pub(crate) fn dft_naive(data: &[Complex]) -> Vec<Complex> {
    let n = data.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex::ZERO;
            for (i, &x) in data.iter().enumerate() {
                acc += x * Complex::cis(-2.0 * PI * (k * i % n) as f64 / n as f64);
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_spectra_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x.re - y.re).abs() < tol && (x.im - y.im).abs() < tol,
                "bin {i}: {x:?} vs {y:?}"
            );
        }
    }

    fn ramp(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| Complex::new(i as f64, (i as f64) * 0.25 - 1.0))
            .collect()
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut x = vec![Complex::ZERO; 8];
        x[0] = Complex::ONE;
        let spec = fft(&x);
        for z in spec {
            assert!((z.re - 1.0).abs() < 1e-12 && z.im.abs() < 1e-12);
        }
    }

    #[test]
    fn fft_of_constant_is_dc_only() {
        let x = vec![Complex::ONE; 16];
        let spec = fft(&x);
        assert!((spec[0].re - 16.0).abs() < 1e-9);
        for z in &spec[1..] {
            assert!(z.abs() < 1e-9);
        }
    }

    #[test]
    fn radix2_matches_naive_dft() {
        for n in [2usize, 4, 8, 16, 64] {
            let x = ramp(n);
            assert_spectra_close(&fft(&x), &dft_naive(&x), 1e-7 * n as f64);
        }
    }

    #[test]
    fn bluestein_matches_naive_dft() {
        // Non-power-of-two lengths, including the Welch segment length 192
        // and awkward primes.
        for n in [3usize, 5, 7, 12, 48, 97, 192] {
            let x = ramp(n);
            assert_spectra_close(&fft(&x), &dft_naive(&x), 1e-6 * n as f64);
        }
    }

    #[test]
    fn ifft_inverts_fft() {
        for n in [8usize, 48, 100, 192, 255] {
            let x = ramp(n);
            let back = ifft(&fft(&x));
            assert_spectra_close(&back, &x, 1e-9 * (n as f64).max(1.0));
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        for n in [16usize, 60, 192] {
            let x = ramp(n);
            let time_energy: f64 = x.iter().map(|z| z.norm_sqr()).sum();
            let freq_energy: f64 = fft(&x).iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
            assert!(
                (time_energy - freq_energy).abs() < 1e-6 * time_energy.max(1.0),
                "n={n}: {time_energy} vs {freq_energy}"
            );
        }
    }

    #[test]
    fn pure_tone_lands_on_its_bin() {
        // cos(2π·5·t/64): spectrum has N/2 at bins 5 and 59.
        let n = 64;
        let x: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * 5.0 * i as f64 / n as f64).cos())
            .collect();
        let spec = fft_real(&x);
        assert!((spec[5].abs() - n as f64 / 2.0).abs() < 1e-9);
        assert!((spec[n - 5].abs() - n as f64 / 2.0).abs() < 1e-9);
        for (k, z) in spec.iter().enumerate() {
            if k != 5 && k != n - 5 {
                assert!(z.abs() < 1e-9, "leak at {k}");
            }
        }
    }

    #[test]
    fn linearity() {
        let n = 48;
        let x = ramp(n);
        let y: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64).sin(), 0.5))
            .collect();
        let sum: Vec<Complex> = x.iter().zip(&y).map(|(&a, &b)| a + b).collect();
        let fx = fft(&x);
        let fy = fft(&y);
        let fsum = fft(&sum);
        let expect: Vec<Complex> = fx.iter().zip(&fy).map(|(&a, &b)| a + b).collect();
        assert_spectra_close(&fsum, &expect, 1e-8);
    }

    #[test]
    fn trivial_lengths() {
        assert!(fft(&[]).is_empty());
        let one = fft(&[Complex::new(3.0, 1.0)]);
        assert_eq!(one, vec![Complex::new(3.0, 1.0)]);
    }

    #[test]
    fn one_sided_frequency_axis() {
        // 192 samples at 2 samples/hour: df = 2/192 = 1/96 cycles/hour;
        // the daily frequency 1/24 is exactly bin 4.
        let f = one_sided_frequencies(192, 2.0);
        assert_eq!(f.len(), 97);
        assert_eq!(f[0], 0.0);
        assert!((f[4] - 1.0 / 24.0).abs() < 1e-15);
        assert!((f[96] - 1.0).abs() < 1e-15); // Nyquist: 1 cycle/hour
    }

    use core::f64::consts::PI;
}
