//! Welch's method with peak-to-peak amplitude normalization.
//!
//! §2.3 of the paper: "we convert the aggregated delay signals to the
//! frequency domain using the Welch method. This method splits the delay
//! signals in overlapping segments and computes the periodogram [...] of
//! each segment using Fourier transform. Then all periodograms are averaged
//! to obtain a final periodogram that is less affected by noise" — and
//! Figure 2's caption: "The y-axis is normalized to read directly average
//! peak-to-peak amplitude."
//!
//! [`welch_peak_to_peak`] implements exactly that. The normalization is
//! calibrated so that a pure sinusoid `A·sin(2πft)` at a bin frequency
//! reads back as its peak-to-peak amplitude `2A`:
//!
//! * a windowed, bin-centered tone of amplitude `A` produces a spectral
//!   line `|X_k| = A · N · CG / 2` where `CG` is the window's coherent
//!   gain, so `A = 2·|X_k| / (N·CG)` and peak-to-peak `= 4·|X_k| / (N·CG)`;
//! * per-segment powers `|X_k|²` are averaged across segments first
//!   (Welch), then converted to amplitude.
//!
//! The default segment length for daily analysis is **4 whole days** of
//! samples. This makes the daily frequency (1/24 cycles/hour) land exactly
//! on spectral bin 4, so "does the prominent bin correspond to daily
//! fluctuations" is an exact bin comparison, not a nearest-neighbour guess.

use crate::complex::Complex;
use crate::fft::{fft_in_place, one_sided_frequencies};
use crate::window::Window;
use core::fmt;

/// The daily frequency in cycles per hour — the paper's 1/24 marker.
pub const DAILY_CYCLES_PER_HOUR: f64 = 1.0 / 24.0;

/// Configuration of the Welch estimator.
#[derive(Clone, Debug)]
pub struct WelchConfig {
    /// Sampling rate in samples per hour (2.0 for 30-minute bins).
    pub sample_rate: f64,
    /// Segment length in samples. Clamped down to the signal length if the
    /// signal is shorter (matching scipy's behaviour).
    pub segment_len: usize,
    /// Overlap fraction between consecutive segments, in `[0, 1)`.
    /// Welch's classic choice (and scipy's default) is 0.5.
    pub overlap: f64,
    /// Taper applied to each segment.
    pub window: Window,
    /// Subtract each segment's mean before windowing ("constant"
    /// detrending). Essential here: queuing-delay signals have a large
    /// positive baseline that would otherwise leak from the DC bin.
    pub detrend: bool,
}

impl WelchConfig {
    /// Configuration for daily-pattern analysis at the given sampling rate
    /// (samples per hour): 4-day segments, 50% overlap, Hann window,
    /// constant detrend. With 15-day measurement periods this yields 5
    /// averaged segments.
    pub fn for_daily_analysis(sample_rate: f64) -> WelchConfig {
        assert!(sample_rate > 0.0, "sample rate must be positive");
        let segment_len = (4.0 * 24.0 * sample_rate).round() as usize;
        WelchConfig {
            sample_rate,
            segment_len: segment_len.max(2),
            overlap: 0.5,
            window: Window::Hann,
            detrend: true,
        }
    }

    /// Step between segment starts, at least one sample.
    fn step(&self, seg: usize) -> usize {
        (((1.0 - self.overlap) * seg as f64).round() as usize).max(1)
    }
}

/// Failure modes of the Welch estimator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WelchError {
    /// The input signal has fewer than two samples.
    SignalTooShort,
    /// The input signal contains NaN or infinite values.
    NonFiniteSample,
    /// The configuration is invalid (overlap outside `[0,1)`, zero
    /// segment length, or non-positive sample rate).
    InvalidConfig,
}

impl fmt::Display for WelchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WelchError::SignalTooShort => write!(f, "signal has fewer than two samples"),
            WelchError::NonFiniteSample => write!(f, "signal contains non-finite samples"),
            WelchError::InvalidConfig => write!(f, "invalid Welch configuration"),
        }
    }
}

impl std::error::Error for WelchError {}

/// A one-sided averaged spectrum, normalized to peak-to-peak amplitude.
#[derive(Clone, Debug)]
pub struct AmplitudeSpectrum {
    /// Bin frequencies in cycles per hour, `k · fs / N` for `k = 0..=N/2`.
    pub frequencies: Vec<f64>,
    /// Average peak-to-peak amplitude per bin, same units as the input
    /// signal (milliseconds for queuing delay). Entry 0 (DC) is the
    /// residual mean after detrending and carries no peak-to-peak meaning.
    pub peak_to_peak: Vec<f64>,
    /// Averaged raw spectral power `mean_segments(|X_k|²)` per bin, kept
    /// for prominence diagnostics.
    pub power: Vec<f64>,
    /// Frequency resolution (spacing between bins), cycles per hour.
    pub df: f64,
    /// Number of averaged segments.
    pub segments: usize,
    /// Segment length actually used (after clamping to the signal).
    pub segment_len: usize,
}

impl AmplitudeSpectrum {
    /// Number of one-sided bins.
    pub fn len(&self) -> usize {
        self.frequencies.len()
    }

    /// Whether the spectrum has no bins.
    pub fn is_empty(&self) -> bool {
        self.frequencies.is_empty()
    }

    /// The peak-to-peak amplitude at the bin nearest to `freq` (cycles per
    /// hour), or `None` if outside the axis.
    pub fn amplitude_near(&self, freq: f64) -> Option<f64> {
        if self.frequencies.is_empty() || freq < 0.0 {
            return None;
        }
        let k = (freq / self.df).round() as usize;
        self.peak_to_peak.get(k).copied()
    }
}

/// Estimate the averaged peak-to-peak amplitude spectrum of `signal`.
///
/// See the module docs for the normalization. Returns an error for empty
/// or non-finite input; a signal shorter than the configured segment is
/// analysed as a single segment (scipy-compatible clamping).
pub fn welch_peak_to_peak(
    signal: &[f64],
    cfg: &WelchConfig,
) -> Result<AmplitudeSpectrum, WelchError> {
    if cfg.sample_rate <= 0.0 || cfg.segment_len < 2 || !(0.0..1.0).contains(&cfg.overlap) {
        return Err(WelchError::InvalidConfig);
    }
    if signal.len() < 2 {
        return Err(WelchError::SignalTooShort);
    }
    if signal.iter().any(|v| !v.is_finite()) {
        return Err(WelchError::NonFiniteSample);
    }

    let seg = cfg.segment_len.min(signal.len());
    let step = cfg.step(seg);
    let coeffs = cfg.window.coefficients(seg);
    let cg = cfg.window.coherent_gain(seg);

    let n_bins = seg / 2 + 1;
    let mut power = vec![0.0f64; n_bins];
    let mut buf = vec![Complex::ZERO; seg];
    let mut segments = 0usize;

    let mut start = 0usize;
    while start + seg <= signal.len() {
        let chunk = &signal[start..start + seg];
        let mean = if cfg.detrend {
            chunk.iter().sum::<f64>() / seg as f64
        } else {
            0.0
        };
        for (i, (&x, &w)) in chunk.iter().zip(&coeffs).enumerate() {
            buf[i] = Complex::from_real((x - mean) * w);
        }
        fft_in_place(&mut buf);
        for (k, p) in power.iter_mut().enumerate() {
            *p += buf[k].norm_sqr();
        }
        segments += 1;
        start += step;
    }
    debug_assert!(segments > 0, "clamped segment always fits at least once");
    for p in power.iter_mut() {
        *p /= segments as f64;
    }

    // Convert averaged power to peak-to-peak amplitude:
    //   one-sided interior bins: pp = 4·sqrt(P̄) / (N·CG)
    //   DC and Nyquist have no mirrored twin: pp factor 2 instead of 4.
    let norm = 1.0 / (seg as f64 * cg);
    let nyquist_bin = if seg.is_multiple_of(2) {
        Some(n_bins - 1)
    } else {
        None
    };
    let peak_to_peak: Vec<f64> = power
        .iter()
        .enumerate()
        .map(|(k, &p)| {
            let factor = if k == 0 || Some(k) == nyquist_bin {
                2.0
            } else {
                4.0
            };
            factor * p.sqrt() * norm
        })
        .collect();

    Ok(AmplitudeSpectrum {
        frequencies: one_sided_frequencies(seg, cfg.sample_rate),
        peak_to_peak,
        power,
        df: cfg.sample_rate / seg as f64,
        segments,
        segment_len: seg,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::f64::consts::TAU;

    /// 15 days of 30-minute bins with a daily sinusoid of the given
    /// peak-to-peak amplitude, plus an offset.
    fn daily_signal(pp: f64, offset: f64) -> Vec<f64> {
        let n = 15 * 48;
        (0..n)
            .map(|i| offset + pp / 2.0 * (TAU * i as f64 / 48.0).sin())
            .collect()
    }

    #[test]
    fn daily_tone_reads_back_its_peak_to_peak() {
        let cfg = WelchConfig::for_daily_analysis(2.0);
        for pp in [0.4, 1.0, 3.5] {
            let spec = welch_peak_to_peak(&daily_signal(pp, 10.0), &cfg).unwrap();
            let got = spec.amplitude_near(DAILY_CYCLES_PER_HOUR).unwrap();
            assert!((got - pp).abs() < 0.05 * pp, "pp {pp}: spectrum read {got}");
        }
    }

    #[test]
    fn daily_bin_is_exact_with_four_day_segments() {
        let cfg = WelchConfig::for_daily_analysis(2.0);
        assert_eq!(cfg.segment_len, 192);
        let spec = welch_peak_to_peak(&daily_signal(1.0, 0.0), &cfg).unwrap();
        // Bin 4 must be exactly the daily frequency.
        assert!((spec.frequencies[4] - DAILY_CYCLES_PER_HOUR).abs() < 1e-15);
        // The Hann window spreads a bin-centered tone over the peak and its
        // two neighbours (power shares 2/3, 1/6, 1/6); together they must
        // hold virtually all the energy, and the center must dominate.
        let total: f64 = spec.power.iter().sum();
        let lobe: f64 = spec.power[3..=5].iter().sum();
        assert!(lobe / total > 0.999, "main-lobe share: {}", lobe / total);
        assert!((spec.power[4] / total - 2.0 / 3.0).abs() < 0.01);
    }

    #[test]
    fn fifteen_day_period_gives_five_segments() {
        let cfg = WelchConfig::for_daily_analysis(2.0);
        let spec = welch_peak_to_peak(&daily_signal(1.0, 0.0), &cfg).unwrap();
        // 720 samples, 192-long segments, 96-sample step: starts at
        // 0,96,...,528 => (720-192)/96+1 = 6 full segments fit; the last
        // starts at 480 (480+192=672<=720) and 528 would end at 720 exactly.
        assert_eq!(spec.segments, (720 - 192) / 96 + 1);
        assert!(spec.segments >= 5);
    }

    #[test]
    fn constant_signal_has_flat_near_zero_spectrum() {
        let cfg = WelchConfig::for_daily_analysis(2.0);
        let spec = welch_peak_to_peak(&vec![7.5; 720], &cfg).unwrap();
        for (k, &a) in spec.peak_to_peak.iter().enumerate() {
            assert!(a < 1e-9, "bin {k} amplitude {a}");
        }
    }

    #[test]
    fn detrend_removes_dc_leakage() {
        // Without detrending, a large offset leaks into low bins through
        // the window; with detrending the daily tone still dominates.
        let sig = daily_signal(0.5, 100.0);
        let cfg = WelchConfig::for_daily_analysis(2.0);
        let spec = welch_peak_to_peak(&sig, &cfg).unwrap();
        let daily = spec.amplitude_near(DAILY_CYCLES_PER_HOUR).unwrap();
        // All non-DC, non-daily-adjacent bins must be far below the tone.
        for (k, &a) in spec.peak_to_peak.iter().enumerate() {
            if k >= 1 && !(3..=5).contains(&k) {
                assert!(a < daily * 0.05, "bin {k}: {a} vs daily {daily}");
            }
        }
    }

    #[test]
    fn half_day_harmonic_is_separated() {
        // Daily + half-day components resolve into distinct bins (4 and 8).
        let n = 15 * 48;
        let sig: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / 48.0;
                1.0 * (TAU * t).sin() + 0.25 * (2.0 * TAU * t).sin()
            })
            .collect();
        let cfg = WelchConfig::for_daily_analysis(2.0);
        let spec = welch_peak_to_peak(&sig, &cfg).unwrap();
        let daily = spec.amplitude_near(1.0 / 24.0).unwrap();
        let half = spec.amplitude_near(1.0 / 12.0).unwrap();
        assert!((daily - 2.0).abs() < 0.1, "daily {daily}");
        assert!((half - 0.5).abs() < 0.05, "half-day {half}");
    }

    #[test]
    fn short_signal_clamps_to_single_segment() {
        let cfg = WelchConfig::for_daily_analysis(2.0);
        let sig = daily_signal(1.0, 0.0)[..100].to_vec();
        let spec = welch_peak_to_peak(&sig, &cfg).unwrap();
        assert_eq!(spec.segment_len, 100);
        assert_eq!(spec.segments, 1);
    }

    #[test]
    fn error_cases() {
        let cfg = WelchConfig::for_daily_analysis(2.0);
        assert_eq!(
            welch_peak_to_peak(&[], &cfg).unwrap_err(),
            WelchError::SignalTooShort
        );
        assert_eq!(
            welch_peak_to_peak(&[1.0], &cfg).unwrap_err(),
            WelchError::SignalTooShort
        );
        assert_eq!(
            welch_peak_to_peak(&[1.0, f64::NAN, 2.0], &cfg).unwrap_err(),
            WelchError::NonFiniteSample
        );
        let mut bad = cfg.clone();
        bad.overlap = 1.0;
        assert_eq!(
            welch_peak_to_peak(&[1.0, 2.0], &bad).unwrap_err(),
            WelchError::InvalidConfig
        );
        let mut bad = cfg;
        bad.segment_len = 1;
        assert_eq!(
            welch_peak_to_peak(&[1.0, 2.0], &bad).unwrap_err(),
            WelchError::InvalidConfig
        );
    }

    #[test]
    fn all_windows_recover_a_bin_centered_tone() {
        // The coherent-gain correction must make the amplitude estimate
        // window-independent for bin-centered tones.
        let sig = daily_signal(1.0, 2.0);
        for window in [
            crate::window::Window::Rectangular,
            crate::window::Window::Hann,
            crate::window::Window::Hamming,
            crate::window::Window::Blackman,
        ] {
            let cfg = WelchConfig {
                window,
                ..WelchConfig::for_daily_analysis(2.0)
            };
            let spec = welch_peak_to_peak(&sig, &cfg).unwrap();
            let amp = spec.amplitude_near(DAILY_CYCLES_PER_HOUR).unwrap();
            assert!((amp - 1.0).abs() < 0.05, "{}: read {amp}", window.name());
        }
    }

    #[test]
    fn overlap_zero_uses_disjoint_segments() {
        // 768 samples = exactly 4 disjoint 192-sample segments.
        let sig: Vec<f64> = (0..768)
            .map(|i| 0.5 * (TAU * i as f64 / 48.0).sin())
            .collect();
        let cfg = WelchConfig {
            overlap: 0.0,
            ..WelchConfig::for_daily_analysis(2.0)
        };
        let spec = welch_peak_to_peak(&sig, &cfg).unwrap();
        assert_eq!(spec.segments, 4);
        assert!((spec.amplitude_near(DAILY_CYCLES_PER_HOUR).unwrap() - 1.0).abs() < 0.05);
    }

    #[test]
    fn amplitude_near_out_of_axis() {
        let cfg = WelchConfig::for_daily_analysis(2.0);
        let spec = welch_peak_to_peak(&daily_signal(1.0, 0.0), &cfg).unwrap();
        assert!(spec.amplitude_near(-0.5).is_none());
        assert!(spec.amplitude_near(100.0).is_none());
        assert!(spec.amplitude_near(0.0).is_some());
    }

    #[test]
    fn averaging_reduces_noise_variance() {
        // White noise spectrum estimated with many segments is flatter
        // than a single-segment periodogram. Use deterministic pseudo-noise.
        let noise: Vec<f64> = (0..720u64)
            .map(|i| {
                // xorshift-style scramble; values in [-0.5, 0.5]
                let mut x = i.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
                x ^= x >> 33;
                x = x.wrapping_mul(0xFF51AFD7ED558CCD);
                x ^= x >> 33;
                (x as f64 / u64::MAX as f64) - 0.5
            })
            .collect();
        let multi = WelchConfig::for_daily_analysis(2.0);
        let single = WelchConfig {
            segment_len: 720,
            ..multi.clone()
        };
        let sm = welch_peak_to_peak(&noise, &multi).unwrap();
        let ss = welch_peak_to_peak(&noise, &single).unwrap();
        let rel_spread = |p: &[f64]| {
            let m = p.iter().sum::<f64>() / p.len() as f64;
            let v = p.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / p.len() as f64;
            v.sqrt() / m
        };
        assert!(
            rel_spread(&sm.power[1..]) < rel_spread(&ss.power[1..]),
            "averaging did not smooth the spectrum"
        );
    }
}
