//! Snapshot robustness: property-based round-trips and adversarial
//! corruption.
//!
//! The contract under test: a saved store always loads back exactly
//! (bit-for-bit medians, same coverage, same discarded bins), the byte
//! format is canonical (save ∘ load ∘ save is the identity on files), and
//! *any* single-byte corruption or truncation is rejected with a typed
//! [`SnapshotError`] — never silently absorbed — after which the caller
//! degrades to an empty store and recomputes.

use lastmile_atlas::ProbeId;
use lastmile_core::series::{BuiltSeries, ProbeSeries};
use lastmile_store::snapshot::SnapshotError;
use lastmile_store::{CacheMode, Lookup, SeriesStore, StoreConfig, StoreKey};
use lastmile_timebase::{BinSpec, TimeRange, UnixTime};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const FINGERPRINT: u64 = 0xF00D_F00D;

fn scratch_file(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join("lastmile-snapshot-robustness");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!(
        "{tag}-{}-{}.lmss",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// One synthetic insert: a probe, an aligned bin span, and which bins of
/// the span carry medians / were discarded.
#[derive(Clone, Debug)]
struct InsertOp {
    probe: u32,
    start_bin: i64,
    len: i64,
    medians: Vec<(i64, f64)>,
    discarded: Vec<i64>,
}

fn insert_op() -> impl Strategy<Value = InsertOp> {
    (
        0u32..24,
        -20i64..80,
        1i64..24,
        prop::collection::vec((0u32..64, any::<u32>()), 0..12),
        prop::collection::vec(0u32..64, 0..4),
    )
        .prop_map(|(probe, start_bin, len, raw_bins, raw_discarded)| {
            // Bin offsets land inside the span via modulo; BTree
            // collections dedupe and sort them. Medians derive from the
            // raw u32s (NaN is not a legal median).
            let medians: std::collections::BTreeMap<i64, f64> = raw_bins
                .into_iter()
                .map(|(off, v)| {
                    (
                        start_bin + i64::from(off) % len,
                        f64::from(v) * 1e-3 + 0.001,
                    )
                })
                .collect();
            let discarded: std::collections::BTreeSet<i64> = raw_discarded
                .into_iter()
                .map(|off| start_bin + i64::from(off) % len)
                .collect();
            InsertOp {
                probe,
                start_bin,
                len,
                medians: medians.into_iter().collect(),
                discarded: discarded.into_iter().collect(),
            }
        })
}

fn build_store(ops: &[InsertOp]) -> SeriesStore {
    let store = SeriesStore::default();
    let bin = BinSpec::thirty_minutes();
    for op in ops {
        let key = StoreKey::new(ProbeId(op.probe), bin, 3);
        let range = TimeRange::new(
            UnixTime::from_secs(op.start_bin * 1800),
            UnixTime::from_secs((op.start_bin + op.len) * 1800),
        );
        let medians: BTreeMap<i64, f64> = op.medians.iter().copied().collect();
        let built = BuiltSeries {
            series: ProbeSeries::from_parts(ProbeId(op.probe), bin, medians),
            discarded_bins: op.discarded.clone(),
        };
        assert!(store.insert(&key, &range, &built).inserted);
    }
    store
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Round trip: load(save(store)) serves every aligned lookup the
    /// original served, bit for bit, and re-saving yields the identical
    /// file (the format is canonical).
    #[test]
    fn roundtrip_is_exact_and_canonical(ops in prop::collection::vec(insert_op(), 0..12)) {
        let store = build_store(&ops);
        let path = scratch_file("roundtrip");
        store.save_snapshot(&path, FINGERPRINT).unwrap();
        let (loaded, _) =
            SeriesStore::load_snapshot(&path, FINGERPRINT, StoreConfig::default()).unwrap();
        prop_assert_eq!(store.len(), loaded.len());

        // Every op's range must replay identically from the loaded store.
        let bin = BinSpec::thirty_minutes();
        for op in &ops {
            let key = StoreKey::new(ProbeId(op.probe), bin, 3);
            let range = TimeRange::new(
                UnixTime::from_secs(op.start_bin * 1800),
                UnixTime::from_secs((op.start_bin + op.len) * 1800),
            );
            match (store.lookup(&key, &range), loaded.lookup(&key, &range)) {
                (Lookup::Hit(a), Lookup::Hit(b)) => {
                    let a_bins: Vec<(i64, u64)> =
                        a.series.iter_bins().map(|(i, v)| (i, v.to_bits())).collect();
                    let b_bins: Vec<(i64, u64)> =
                        b.series.iter_bins().map(|(i, v)| (i, v.to_bits())).collect();
                    prop_assert_eq!(a_bins, b_bins);
                    prop_assert_eq!(a.bins_discarded_sanity, b.bins_discarded_sanity);
                    prop_assert_eq!(b.traceroutes_ingested, 0);
                }
                (a, b) => prop_assert!(false, "lookup diverged: {:?} vs {:?}", a, b),
            }
        }

        // Canonical bytes: saving the loaded store reproduces the file.
        let path2 = scratch_file("canonical");
        loaded.save_snapshot(&path2, FINGERPRINT).unwrap();
        prop_assert_eq!(std::fs::read(&path).unwrap(), std::fs::read(&path2).unwrap());
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&path2);
    }

    /// Any single corrupted byte makes the load fail with a typed error —
    /// corruption is never absorbed into plausible data.
    #[test]
    fn any_flipped_byte_is_rejected(
        ops in prop::collection::vec(insert_op(), 1..6),
        pos_seed in any::<u64>(),
        bit in 0u8..8,
    ) {
        let store = build_store(&ops);
        let path = scratch_file("flip");
        store.save_snapshot(&path, FINGERPRINT).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let pos = (pos_seed % bytes.len() as u64) as usize;
        bytes[pos] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();

        let result = SeriesStore::load_snapshot(&path, FINGERPRINT, StoreConfig::default());
        prop_assert!(result.is_err(), "flipped byte {} accepted", pos);
        // And the graceful path degrades to an empty store, not a panic.
        let (empty, read, err) =
            SeriesStore::load_snapshot_or_empty(&path, FINGERPRINT, StoreConfig::default());
        prop_assert!(empty.is_empty());
        prop_assert_eq!(read, 0);
        prop_assert!(err.is_some());
        let _ = std::fs::remove_file(&path);
    }

    /// Any strict prefix of a snapshot is rejected (truncated download,
    /// interrupted copy, partial write of a non-atomic writer).
    #[test]
    fn any_truncation_is_rejected(
        ops in prop::collection::vec(insert_op(), 1..6),
        cut_seed in any::<u64>(),
    ) {
        let store = build_store(&ops);
        let path = scratch_file("cut");
        store.save_snapshot(&path, FINGERPRINT).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let cut = (cut_seed % bytes.len() as u64) as usize;
        std::fs::write(&path, &bytes[..cut]).unwrap();
        prop_assert!(
            SeriesStore::load_snapshot(&path, FINGERPRINT, StoreConfig::default()).is_err(),
            "prefix of {} bytes accepted",
            cut
        );
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn typed_errors_for_the_named_failure_modes() {
    let store = build_store(&[InsertOp {
        probe: 1,
        start_bin: 0,
        len: 8,
        medians: vec![(0, 5.0), (3, 7.25)],
        discarded: vec![2],
    }]);
    let path = scratch_file("typed");
    store.save_snapshot(&path, FINGERPRINT).unwrap();
    let good = std::fs::read(&path).unwrap();

    // Wrong version.
    let mut bad = good.clone();
    bad[4] = 0xEE;
    std::fs::write(&path, &bad).unwrap();
    assert!(matches!(
        SeriesStore::load_snapshot(&path, FINGERPRINT, StoreConfig::default()),
        Err(SnapshotError::UnsupportedVersion { .. })
    ));

    // Another data source's snapshot.
    std::fs::write(&path, &good).unwrap();
    assert!(matches!(
        SeriesStore::load_snapshot(&path, FINGERPRINT + 1, StoreConfig::default()),
        Err(SnapshotError::SourceMismatch { .. })
    ));

    // Truncated mid-payload.
    std::fs::write(&path, &good[..good.len() - 3]).unwrap();
    assert!(matches!(
        SeriesStore::load_snapshot(&path, FINGERPRINT, StoreConfig::default()),
        Err(SnapshotError::Truncated { .. })
    ));

    // Flipped payload byte.
    let mut bad = good.clone();
    let last = bad.len() - 1;
    bad[last] ^= 0x10;
    std::fs::write(&path, &bad).unwrap();
    assert!(matches!(
        SeriesStore::load_snapshot(&path, FINGERPRINT, StoreConfig::default()),
        Err(SnapshotError::ChecksumMismatch { .. })
    ));

    // Not a snapshot at all.
    std::fs::write(&path, b"definitely,not,a,snapshot\n").unwrap();
    assert!(matches!(
        SeriesStore::load_snapshot(&path, FINGERPRINT, StoreConfig::default()),
        Err(SnapshotError::BadMagic)
    ));

    // Every failure degrades to a working empty read-write store.
    let (empty, _, err) =
        SeriesStore::load_snapshot_or_empty(&path, FINGERPRINT, StoreConfig::default());
    assert!(err.is_some());
    assert!(empty.is_empty());
    assert_eq!(empty.config().mode, CacheMode::ReadWrite);
    let _ = std::fs::remove_file(&path);
}
