//! Bin-index interval coverage: which half-open `[start, end)` spans of a
//! probe's horizon have been computed.
//!
//! Absence of a bin from the median map is ambiguous — it can mean "never
//! computed" or "computed, and the probe had no (surviving) data there".
//! The coverage set resolves the ambiguity: a lookup may only be served
//! when its whole span is covered, otherwise silent holes would masquerade
//! as probe downtime.

/// A sorted set of disjoint, non-adjacent half-open intervals.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct Coverage {
    intervals: Vec<(i64, i64)>,
}

impl Coverage {
    /// The raw intervals (sorted, disjoint, non-adjacent).
    pub fn intervals(&self) -> &[(i64, i64)] {
        &self.intervals
    }

    /// Rebuild from snapshot data, validating the invariants.
    pub fn from_sorted_intervals(intervals: Vec<(i64, i64)>) -> Result<Coverage, String> {
        for w in intervals.windows(2) {
            if w[0].1 >= w[1].0 {
                return Err(format!(
                    "coverage intervals overlap or touch: {:?} then {:?}",
                    w[0], w[1]
                ));
            }
        }
        if let Some(&(s, e)) = intervals.iter().find(|(s, e)| s >= e) {
            return Err(format!("empty or inverted coverage interval ({s}, {e})"));
        }
        Ok(Coverage { intervals })
    }

    /// Total covered bins across all intervals: the cost-aware eviction
    /// policy's measure of how much recomputation losing an entry costs.
    pub fn total_bins(&self) -> u64 {
        self.intervals.iter().map(|&(s, e)| (e - s) as u64).sum()
    }

    /// Whether `[span.start, span.end)` is entirely covered. The empty
    /// span is trivially covered.
    pub fn contains_span(&self, span: &std::ops::Range<i64>) -> bool {
        if span.is_empty() {
            return true;
        }
        // The only candidate is the last interval starting at or before
        // span.start.
        let idx = self.intervals.partition_point(|&(s, _)| s <= span.start);
        idx > 0 && self.intervals[idx - 1].1 >= span.end
    }

    /// Add `[start, end)`, coalescing with overlapping or adjacent
    /// intervals.
    pub fn add(&mut self, start: i64, end: i64) {
        assert!(start < end, "empty coverage add ({start}, {end})");
        // All intervals strictly before (no touch) stay; same after.
        let lo = self.intervals.partition_point(|&(_, e)| e < start);
        let hi = self.intervals.partition_point(|&(s, _)| s <= end);
        let merged_start = if lo < hi {
            self.intervals[lo].0.min(start)
        } else {
            start
        };
        let merged_end = if lo < hi {
            self.intervals[hi - 1].1.max(end)
        } else {
            end
        };
        self.intervals
            .splice(lo..hi, std::iter::once((merged_start, merged_end)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cov(spans: &[(i64, i64)]) -> Coverage {
        let mut c = Coverage::default();
        for &(s, e) in spans {
            c.add(s, e);
        }
        c
    }

    #[test]
    fn adds_merge_overlapping_and_adjacent() {
        assert_eq!(cov(&[(0, 4), (4, 8)]).intervals(), &[(0, 8)]);
        assert_eq!(cov(&[(0, 4), (2, 10)]).intervals(), &[(0, 10)]);
        assert_eq!(cov(&[(0, 2), (6, 8)]).intervals(), &[(0, 2), (6, 8)]);
        assert_eq!(cov(&[(0, 2), (6, 8), (2, 6)]).intervals(), &[(0, 8)]);
        assert_eq!(cov(&[(6, 8), (0, 2)]).intervals(), &[(0, 2), (6, 8)]);
        // A superset swallows several intervals at once.
        assert_eq!(
            cov(&[(0, 2), (4, 6), (8, 10), (-5, 20)]).intervals(),
            &[(-5, 20)]
        );
    }

    #[test]
    fn containment() {
        let c = cov(&[(0, 10), (20, 30)]);
        assert!(c.contains_span(&(0..10)));
        assert!(c.contains_span(&(3..7)));
        assert!(c.contains_span(&(20..30)));
        assert!(!c.contains_span(&(5..25)));
        assert!(!c.contains_span(&(9..11)));
        assert!(!c.contains_span(&(-1..5)));
        assert!(c.contains_span(&(5..5)), "empty span is trivially covered");
        assert!(Coverage::default().contains_span(&(3..3)));
        assert!(!Coverage::default().contains_span(&(3..4)));
    }

    #[test]
    fn total_bins_sums_disjoint_intervals() {
        assert_eq!(Coverage::default().total_bins(), 0);
        assert_eq!(cov(&[(0, 10)]).total_bins(), 10);
        assert_eq!(cov(&[(0, 10), (20, 25)]).total_bins(), 15);
        assert_eq!(cov(&[(-10, -2)]).total_bins(), 8);
    }

    #[test]
    fn negative_indices_work() {
        // Pre-epoch instants give negative bin indices.
        let c = cov(&[(-10, -2)]);
        assert!(c.contains_span(&(-8..-4)));
        assert!(!c.contains_span(&(-12..-4)));
    }

    #[test]
    fn snapshot_validation() {
        assert!(Coverage::from_sorted_intervals(vec![(0, 4), (8, 10)]).is_ok());
        assert!(Coverage::from_sorted_intervals(vec![(0, 4), (4, 10)]).is_err());
        assert!(Coverage::from_sorted_intervals(vec![(0, 4), (2, 10)]).is_err());
        assert!(Coverage::from_sorted_intervals(vec![(4, 4)]).is_err());
        assert!(Coverage::from_sorted_intervals(vec![(4, 2)]).is_err());
        assert!(Coverage::from_sorted_intervals(vec![(8, 10), (0, 4)]).is_err());
    }
}
