//! The on-disk snapshot format: a versioned binary columnar encoding of a
//! whole [`SeriesStore`](crate::SeriesStore).
//!
//! ```text
//! offset  size  field
//!      0     4  magic  b"LMSS"
//!      4     4  format version, u32 LE (currently 1)
//!      8     8  source fingerprint, u64 LE (caller-chosen data-source id)
//!     16     8  payload length, u64 LE
//!     24     4  payload CRC-32 (IEEE), u32 LE
//!     28     -  payload
//! ```
//!
//! The payload is a u64 entry count followed by one record per entry,
//! sorted by [`StoreKey`] so identical store states produce identical
//! bytes. Each record stores the key, the covered intervals, the
//! discarded-bin indices, and the median series in *columnar* form — all
//! bin indices, then all values (f64 bit patterns, so RTTs survive the
//! round trip bit-for-bit):
//!
//! ```text
//! u32 probe · i64 bin_width_secs · u32 min_traceroutes_per_bin
//! u32 n_covered  · n × (i64 start, i64 end)
//! u64 n_discarded· n × i64
//! u64 n_bins     · n × i64 (bin index)  · n × u64 (f64 bits)
//! ```
//!
//! Writes are atomic: the snapshot is assembled in a uniquely named temp
//! file next to the target (pid + sequence suffix, so concurrent writers
//! never share one) and renamed over it, so readers never observe a
//! partial file and the last rename wins whole-file. Loads verify magic,
//! version, fingerprint, length and checksum
//! before parsing, and every parse failure is a typed [`SnapshotError`] —
//! callers degrade to an empty store and recompute instead of aborting.

use crate::StoreKey;
use lastmile_atlas::ProbeId;
use std::io::Write;
use std::path::Path;

/// File magic: "Last-Mile Series Snapshot".
pub const MAGIC: [u8; 4] = *b"LMSS";
/// Current format version.
pub const VERSION: u32 = 1;
/// Bytes before the payload.
pub const HEADER_LEN: usize = 28;

/// One store entry in codec form.
#[derive(Clone, Debug, PartialEq)]
pub struct SnapshotEntry {
    pub key: StoreKey,
    /// Covered bin-index intervals (sorted, disjoint, non-adjacent).
    pub covered: Vec<(i64, i64)>,
    /// Sanity-discarded bin indices (sorted ascending).
    pub discarded: Vec<i64>,
    /// Bin indices of the median series (sorted ascending).
    pub bins: Vec<i64>,
    /// Median values, parallel to `bins`.
    pub values: Vec<f64>,
}

/// Why a snapshot failed to save or load.
#[derive(Debug)]
pub enum SnapshotError {
    /// Filesystem failure (open, read, write, rename).
    Io(std::io::Error),
    /// The file does not start with the `LMSS` magic.
    BadMagic,
    /// The file's format version is one this build cannot read.
    UnsupportedVersion { found: u32, supported: u32 },
    /// The snapshot was written for a different data source.
    SourceMismatch { found: u64, expected: u64 },
    /// The file ends before the declared payload does.
    Truncated { needed: u64, available: u64 },
    /// The payload bytes do not match the stored checksum.
    ChecksumMismatch { stored: u32, computed: u32 },
    /// The payload decoded to structurally invalid data.
    Corrupt(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a series snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported snapshot version {found} (this build reads {supported})"
            ),
            SnapshotError::SourceMismatch { found, expected } => write!(
                f,
                "snapshot belongs to a different data source \
                 (fingerprint {found:#018x}, expected {expected:#018x})"
            ),
            SnapshotError::Truncated { needed, available } => write!(
                f,
                "snapshot truncated: needs {needed} bytes, {available} available"
            ),
            SnapshotError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
            ),
            SnapshotError::Corrupt(why) => write!(f, "snapshot corrupt: {why}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> SnapshotError {
        SnapshotError::Io(e)
    }
}

/// CRC-32 (IEEE 802.3, reflected), table-driven; the table is computed at
/// compile time.
pub fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut crc = !0u32;
    for &b in data {
        crc = TABLE[((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Encode entries into a payload (no header).
fn encode_payload(entries: &[SnapshotEntry]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(entries.len() as u64).to_le_bytes());
    for e in entries {
        out.extend_from_slice(&e.key.probe.0.to_le_bytes());
        out.extend_from_slice(&e.key.bin_width_secs.to_le_bytes());
        out.extend_from_slice(&e.key.min_traceroutes_per_bin.to_le_bytes());
        out.extend_from_slice(&(e.covered.len() as u32).to_le_bytes());
        for &(s, end) in &e.covered {
            out.extend_from_slice(&s.to_le_bytes());
            out.extend_from_slice(&end.to_le_bytes());
        }
        out.extend_from_slice(&(e.discarded.len() as u64).to_le_bytes());
        for &b in &e.discarded {
            out.extend_from_slice(&b.to_le_bytes());
        }
        out.extend_from_slice(&(e.bins.len() as u64).to_le_bytes());
        for &b in &e.bins {
            out.extend_from_slice(&b.to_le_bytes());
        }
        for &v in &e.values {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }
    out
}

/// A bounds-checked little-endian payload reader.
struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let available = self.data.len() - self.pos;
        if n > available {
            return Err(SnapshotError::Truncated {
                needed: (self.pos + n) as u64,
                available: self.data.len() as u64,
            });
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, SnapshotError> {
        Ok(self.u64()? as i64)
    }

    /// A count that must plausibly fit in the remaining payload (each
    /// element occupies at least `elem_size` bytes) — rejects absurd
    /// counts before any allocation.
    fn count(&mut self, elem_size: usize) -> Result<usize, SnapshotError> {
        let n = self.u64()?;
        let remaining = (self.data.len() - self.pos) as u64;
        if n.saturating_mul(elem_size as u64) > remaining {
            return Err(SnapshotError::Truncated {
                needed: (self.pos as u64).saturating_add(n.saturating_mul(elem_size as u64)),
                available: self.data.len() as u64,
            });
        }
        Ok(n as usize)
    }
}

fn decode_payload(payload: &[u8]) -> Result<Vec<SnapshotEntry>, SnapshotError> {
    let mut r = Reader {
        data: payload,
        pos: 0,
    };
    let n_entries = r.count(8)?; // each entry is ≥ 8 bytes of fixed fields
    let mut entries = Vec::with_capacity(n_entries.min(1 << 20));
    for _ in 0..n_entries {
        let probe = ProbeId(r.u32()?);
        let bin_width_secs = r.i64()?;
        if bin_width_secs <= 0 {
            return Err(SnapshotError::Corrupt(format!(
                "non-positive bin width {bin_width_secs}"
            )));
        }
        let min_traceroutes_per_bin = r.u32()?;
        let key = StoreKey {
            bin_width_secs,
            min_traceroutes_per_bin,
            probe,
        };

        let n_covered = r.u32()? as usize;
        let mut covered = Vec::with_capacity(n_covered.min(1 << 16));
        for _ in 0..n_covered {
            covered.push((r.i64()?, r.i64()?));
        }

        let n_discarded = r.count(8)?;
        let mut discarded = Vec::with_capacity(n_discarded);
        for _ in 0..n_discarded {
            discarded.push(r.i64()?);
        }
        if discarded.windows(2).any(|w| w[0] >= w[1]) {
            return Err(SnapshotError::Corrupt(format!(
                "discarded bins of probe {probe} not strictly ascending"
            )));
        }

        let n_bins = r.count(16)?; // bin index + value
        let mut bins = Vec::with_capacity(n_bins);
        for _ in 0..n_bins {
            bins.push(r.i64()?);
        }
        if bins.windows(2).any(|w| w[0] >= w[1]) {
            return Err(SnapshotError::Corrupt(format!(
                "series bins of probe {probe} not strictly ascending"
            )));
        }
        let mut values = Vec::with_capacity(n_bins);
        for _ in 0..n_bins {
            values.push(f64::from_bits(r.u64()?));
        }

        entries.push(SnapshotEntry {
            key,
            covered,
            discarded,
            bins,
            values,
        });
    }
    if r.pos != payload.len() {
        return Err(SnapshotError::Corrupt(format!(
            "{} trailing payload bytes after the last entry",
            payload.len() - r.pos
        )));
    }
    Ok(entries)
}

/// Serialize `entries` to `path` atomically. Returns total bytes written
/// (header + payload).
pub fn write_snapshot(
    path: &Path,
    source_fingerprint: u64,
    entries: &[SnapshotEntry],
) -> Result<u64, SnapshotError> {
    let payload = encode_payload(entries);
    let mut file_bytes = Vec::with_capacity(HEADER_LEN + payload.len());
    file_bytes.extend_from_slice(&MAGIC);
    file_bytes.extend_from_slice(&VERSION.to_le_bytes());
    file_bytes.extend_from_slice(&source_fingerprint.to_le_bytes());
    file_bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    file_bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
    file_bytes.extend_from_slice(&payload);

    // Atomic publish: same-directory temp file, flush, durable rename.
    // The temp name is unique per writer (pid + per-process sequence):
    // concurrent runs sharing a cache dir each assemble their own file,
    // so one writer can neither rename another's half-written bytes over
    // the target nor delete its in-progress temp file on error cleanup.
    static TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let tmp = path.with_extension(format!(
        "tmp.{}.{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    let result = (|| -> Result<(), SnapshotError> {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&file_bytes)?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result.map(|()| file_bytes.len() as u64)
}

/// Read and validate a snapshot. Returns the entries and the bytes read.
pub fn read_snapshot(
    path: &Path,
    expected_fingerprint: u64,
) -> Result<(Vec<SnapshotEntry>, u64), SnapshotError> {
    let bytes = std::fs::read(path)?;
    if bytes.len() < HEADER_LEN {
        if bytes.len() < 4 || bytes[..4] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        return Err(SnapshotError::Truncated {
            needed: HEADER_LEN as u64,
            available: bytes.len() as u64,
        });
    }
    if bytes[..4] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if version != VERSION {
        return Err(SnapshotError::UnsupportedVersion {
            found: version,
            supported: VERSION,
        });
    }
    let fingerprint = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    if fingerprint != expected_fingerprint {
        return Err(SnapshotError::SourceMismatch {
            found: fingerprint,
            expected: expected_fingerprint,
        });
    }
    let payload_len = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
    let stored_crc = u32::from_le_bytes(bytes[24..28].try_into().unwrap());
    let available = (bytes.len() - HEADER_LEN) as u64;
    if payload_len != available {
        return Err(SnapshotError::Truncated {
            needed: HEADER_LEN as u64 + payload_len,
            available: bytes.len() as u64,
        });
    }
    let payload = &bytes[HEADER_LEN..];
    let computed = crc32(payload);
    if computed != stored_crc {
        return Err(SnapshotError::ChecksumMismatch {
            stored: stored_crc,
            computed,
        });
    }
    let entries = decode_payload(payload)?;
    Ok((entries, bytes.len() as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entries() -> Vec<SnapshotEntry> {
        vec![
            SnapshotEntry {
                key: StoreKey {
                    bin_width_secs: 1800,
                    min_traceroutes_per_bin: 3,
                    probe: ProbeId(7),
                },
                covered: vec![(0, 48), (96, 144)],
                discarded: vec![3, 40],
                bins: vec![0, 1, 47, 100],
                values: vec![5.25, 6.5, 0.1, 9.75],
            },
            SnapshotEntry {
                key: StoreKey {
                    bin_width_secs: 1800,
                    min_traceroutes_per_bin: 3,
                    probe: ProbeId(9),
                },
                covered: vec![],
                discarded: vec![],
                bins: vec![],
                values: vec![],
            },
        ]
    }

    fn tmp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("lastmile-snapshot-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn crc32_reference_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn roundtrip_preserves_everything_bitwise() {
        let path = tmp_path("roundtrip.bin");
        let entries = sample_entries();
        let written = write_snapshot(&path, 0xFEED, &entries).unwrap();
        let (loaded, read) = read_snapshot(&path, 0xFEED).unwrap();
        assert_eq!(written, read);
        assert_eq!(loaded, entries);
    }

    #[test]
    fn header_rejections_are_typed() {
        let path = tmp_path("typed.bin");
        write_snapshot(&path, 1, &sample_entries()).unwrap();
        let good = std::fs::read(&path).unwrap();

        // Wrong magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            read_snapshot(&path, 1),
            Err(SnapshotError::BadMagic)
        ));

        // Wrong version.
        let mut bad = good.clone();
        bad[4] = 99;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            read_snapshot(&path, 1),
            Err(SnapshotError::UnsupportedVersion { found: 99, .. })
        ));

        // Wrong source fingerprint.
        std::fs::write(&path, &good).unwrap();
        assert!(matches!(
            read_snapshot(&path, 2),
            Err(SnapshotError::SourceMismatch {
                found: 1,
                expected: 2
            })
        ));

        // Truncation: drop trailing payload bytes.
        std::fs::write(&path, &good[..good.len() - 5]).unwrap();
        assert!(matches!(
            read_snapshot(&path, 1),
            Err(SnapshotError::Truncated { .. })
        ));

        // Flipped payload byte: checksum catches it.
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x40;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            read_snapshot(&path, 1),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));

        // Missing file is an Io error.
        assert!(matches!(
            read_snapshot(&tmp_path("does-not-exist.bin"), 1),
            Err(SnapshotError::Io(_))
        ));
    }

    #[test]
    fn structural_corruption_is_caught_after_checksum() {
        // Hand-build a payload with an absurd entry count and a valid
        // checksum: the count guard must reject it without allocating.
        let mut payload = Vec::new();
        payload.extend_from_slice(&u64::MAX.to_le_bytes());
        let mut file = Vec::new();
        file.extend_from_slice(&MAGIC);
        file.extend_from_slice(&VERSION.to_le_bytes());
        file.extend_from_slice(&7u64.to_le_bytes());
        file.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        file.extend_from_slice(&crc32(&payload).to_le_bytes());
        file.extend_from_slice(&payload);
        let path = tmp_path("absurd-count.bin");
        std::fs::write(&path, &file).unwrap();
        assert!(matches!(
            read_snapshot(&path, 7),
            Err(SnapshotError::Truncated { .. })
        ));
    }

    #[test]
    fn deterministic_bytes_for_same_entries() {
        let a = tmp_path("det-a.bin");
        let b = tmp_path("det-b.bin");
        write_snapshot(&a, 5, &sample_entries()).unwrap();
        write_snapshot(&b, 5, &sample_entries()).unwrap();
        assert_eq!(std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
    }

    #[test]
    fn no_temp_file_left_behind() {
        let path = tmp_path("clean.bin");
        write_snapshot(&path, 1, &sample_entries()).unwrap();
        let leftovers: Vec<String> = std::fs::read_dir(path.parent().unwrap())
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with("clean.") && n.contains("tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
    }

    #[test]
    fn concurrent_writers_publish_one_complete_snapshot() {
        // Writers racing on the same target must each use their own temp
        // file: whichever rename lands last, the result is one of the
        // written states in full, never an interleaving.
        let path = tmp_path("race.bin");
        let variants: Vec<Vec<SnapshotEntry>> = (0..8u32)
            .map(|i| {
                let mut entries = sample_entries();
                entries[0].key.probe = ProbeId(100 + i);
                entries.sort_by_key(|e| e.key);
                entries
            })
            .collect();
        std::thread::scope(|scope| {
            for entries in &variants {
                let path = &path;
                scope.spawn(move || {
                    for _ in 0..4 {
                        write_snapshot(path, 7, entries).unwrap();
                    }
                });
            }
        });
        let (loaded, _) = read_snapshot(&path, 7).unwrap();
        assert!(
            variants.contains(&loaded),
            "snapshot is not any single writer's state"
        );
    }

    #[test]
    fn error_messages_are_readable() {
        let e = SnapshotError::SourceMismatch {
            found: 1,
            expected: 2,
        };
        assert!(e.to_string().contains("different data source"));
        let e = SnapshotError::ChecksumMismatch {
            stored: 0xAB,
            computed: 0xCD,
        };
        assert!(e.to_string().contains("checksum"));
    }
}
