//! # lastmile-store
//!
//! A concurrent, sharded store of per-probe binned median-RTT series.
//!
//! Every (AS, period, selection) analysis bins the same probe's
//! traceroutes into the same epoch-aligned 30-minute bins; a bin's median
//! depends only on that bin's traceroutes, never on the surrounding
//! measurement period. The store exploits that: it memoizes each probe's
//! [`ProbeSeries`] keyed by [`StoreKey`] — `(probe, bin width, sanity
//! threshold)` — together with the *bin-index coverage* of what has been
//! computed, and answers any sub-range of the covered horizon by slicing.
//! Overlapping periods, sliding longitudinal windows, and repeated survey
//! runs therefore pay the simulation/binning cost once per probe instead
//! of once per (run × probe).
//!
//! Only the *median* series is stored. The paper's queuing-delay baseline
//! ("the minimum median RTT is computed separately for each measurement
//! period", §2.1) is period-scoped, so it must be — and is — recomputed
//! from each slice by the pipeline, which keeps reports byte-identical to
//! a cache-free run.
//!
//! ## Correctness rules
//!
//! * A lookup or insert whose range is not aligned to bin boundaries is a
//!   [`Lookup::Bypass`]: a partial edge bin would yield a median computed
//!   from a subset of the bin's traceroutes, which is *not* the full-bin
//!   median the store promises. Every paper period is midnight-aligned,
//!   so in practice only hand-picked custom windows bypass.
//! * A store is valid for exactly **one data source** (one simulated
//!   world, or one traceroute file): the key does not identify the
//!   source. On-disk snapshots carry a caller-supplied 64-bit source
//!   fingerprint and refuse to load under a different one
//!   ([`SnapshotError::SourceMismatch`]).
//! * A hit reports `traceroutes_ingested = 0` but reproduces the sanity
//!   filter's discarded-bin count for the requested range exactly, so
//!   pipeline statistics stay meaningful warm or cold.
//!
//! ## Concurrency
//!
//! Entries are spread over `shards` independent `RwLock`-protected maps
//! (key-hash addressed), so survey workers contend only when touching the
//! same shard. Lookups take the read lock; inserts the write lock of one
//! shard. No lock is held across shards, and snapshot save takes the read
//! locks one shard at a time.
//!
//! ## Persistence
//!
//! [`SeriesStore::save_snapshot`] writes a versioned binary columnar
//! snapshot (`snapshot` module) atomically — temp file + rename — and
//! [`SeriesStore::load_snapshot`] restores it, returning typed errors
//! (bad magic, version or fingerprint mismatch, truncation, checksum
//! failure) that callers degrade to an empty store + recomputation.

mod coverage;
pub mod snapshot;

use coverage::Coverage;
use lastmile_atlas::ProbeId;
use lastmile_core::pipeline::{PipelineConfig, PrebuiltSeries};
use lastmile_core::series::{BuiltSeries, ProbeSeries};
use lastmile_timebase::{BinIndex, BinSpec, TimeRange};
pub use snapshot::SnapshotError;
use std::collections::{BTreeSet, HashMap};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

/// Identity of one memoized series: the probe plus every binning
/// parameter that shapes its values. Two analyses with different bin
/// widths or sanity thresholds must never share an entry.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct StoreKey {
    /// Bin width in seconds (from [`BinSpec::width_secs`]; kept as the
    /// raw integer so the key is totally ordered for snapshot layout).
    pub bin_width_secs: i64,
    /// Sanity-filter threshold: minimum traceroutes per bin.
    pub min_traceroutes_per_bin: u32,
    /// The probe.
    pub probe: ProbeId,
}

impl StoreKey {
    /// A key from explicit binning parameters.
    pub fn new(probe: ProbeId, bin: BinSpec, min_traceroutes_per_bin: usize) -> StoreKey {
        StoreKey {
            bin_width_secs: bin.width_secs(),
            min_traceroutes_per_bin: min_traceroutes_per_bin as u32,
            probe,
        }
    }

    /// The key a pipeline with this configuration would use for `probe`.
    pub fn for_pipeline(probe: ProbeId, cfg: &PipelineConfig) -> StoreKey {
        StoreKey::new(probe, cfg.bin, cfg.min_traceroutes_per_bin)
    }

    /// The bin specification.
    pub fn bin(&self) -> BinSpec {
        BinSpec::new(self.bin_width_secs)
    }
}

/// How a run may use a store.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CacheMode {
    /// No caching: lookups bypass, inserts are dropped.
    Off,
    /// Serve hits, never mutate (`--cache ro`).
    ReadOnly,
    /// Serve hits and memoize fresh builds (`--cache rw`).
    #[default]
    ReadWrite,
}

impl std::str::FromStr for CacheMode {
    type Err = String;

    fn from_str(s: &str) -> Result<CacheMode, String> {
        match s {
            "off" => Ok(CacheMode::Off),
            "ro" => Ok(CacheMode::ReadOnly),
            "rw" => Ok(CacheMode::ReadWrite),
            other => Err(format!("invalid cache mode {other} (off|ro|rw)")),
        }
    }
}

/// Store construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct StoreConfig {
    /// Number of `RwLock` shards (rounded up to at least 1).
    pub shards: usize,
    /// Soft cap on the total entry count; `0` means unbounded. When a
    /// shard overflows its share, the resident with the fewest covered
    /// bins — the cheapest to recompute — is evicted (ties break on key
    /// order; the victim is simply recomputed on next use, so eviction
    /// can never change results).
    pub max_entries: usize,
    /// Usage mode.
    pub mode: CacheMode,
}

impl Default for StoreConfig {
    fn default() -> StoreConfig {
        StoreConfig {
            shards: 16,
            max_entries: 0,
            mode: CacheMode::ReadWrite,
        }
    }
}

/// One probe's memoized state.
#[derive(Clone, Debug)]
struct Entry {
    /// Full-horizon median series (union of everything computed so far).
    series: ProbeSeries,
    /// Bin indices the sanity filter discarded, within the covered
    /// horizon — kept so hits report the same statistics as fresh builds.
    discarded: BTreeSet<BinIndex>,
    /// Which bin-index intervals have been computed.
    covered: Coverage,
}

/// Outcome of [`SeriesStore::lookup`].
#[derive(Debug)]
pub enum Lookup {
    /// The requested range is fully covered; here is the slice.
    Hit(PrebuiltSeries),
    /// Not (fully) computed yet — build it and [`SeriesStore::insert`] it.
    Miss,
    /// The store cannot serve this request (unaligned range, or mode
    /// `Off`); build without inserting.
    Bypass,
}

/// Outcome of [`SeriesStore::insert`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InsertOutcome {
    /// Whether the series was stored (false in `ro`/`off` mode or for an
    /// unaligned range).
    pub inserted: bool,
    /// Resident entries evicted to make room.
    pub evicted: u64,
}

/// Lifetime counters of one store (monotonic, relaxed).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreCounters {
    pub hits: u64,
    pub misses: u64,
    pub bypasses: u64,
    pub inserts: u64,
    pub evictions: u64,
}

/// The concurrent, sharded series store. Share between threads by
/// reference (or `Arc`); all methods take `&self`.
pub struct SeriesStore {
    shards: Vec<RwLock<HashMap<StoreKey, Entry>>>,
    config: StoreConfig,
    hits: AtomicU64,
    misses: AtomicU64,
    bypasses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for SeriesStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SeriesStore")
            .field("entries", &self.len())
            .field("config", &self.config)
            .field("counters", &self.counters())
            .finish()
    }
}

impl Default for SeriesStore {
    fn default() -> SeriesStore {
        SeriesStore::new(StoreConfig::default())
    }
}

impl SeriesStore {
    /// An empty store.
    pub fn new(config: StoreConfig) -> SeriesStore {
        let shards = config.shards.max(1);
        SeriesStore {
            shards: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
            config: StoreConfig { shards, ..config },
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            bypasses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The configuration the store was built with.
    pub fn config(&self) -> StoreConfig {
        self.config
    }

    /// Total resident entries (probes × parameterisations).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("store shard poisoned").len())
            .sum()
    }

    /// Whether no entry is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime counters.
    pub fn counters(&self) -> StoreCounters {
        StoreCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            bypasses: self.bypasses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Drop every memoized entry for `probe`, across all
    /// parameterisations. The live re-ingest engine calls this when a
    /// freshly ingested traceroute touches a probe: any resident series
    /// for that probe is stale (its source bins changed), so the next
    /// lookup must miss and rebuild from the full record set. Returns
    /// the number of entries removed.
    pub fn invalidate_probe(&self, probe: ProbeId) -> u64 {
        let mut removed = 0u64;
        for shard in &self.shards {
            let mut shard = shard.write().expect("store shard poisoned");
            let before = shard.len();
            shard.retain(|key, _| key.probe != probe);
            removed += (before - shard.len()) as u64;
        }
        removed
    }

    /// Drop every memoized entry (full re-ingest fallback after corpus
    /// truncation/rotation). Returns the number of entries removed.
    pub fn clear(&self) -> u64 {
        let mut removed = 0u64;
        for shard in &self.shards {
            let mut shard = shard.write().expect("store shard poisoned");
            removed += shard.len() as u64;
            shard.clear();
        }
        removed
    }

    fn shard(&self, key: &StoreKey) -> &RwLock<HashMap<StoreKey, Entry>> {
        // FNV-1a over the key fields: deterministic, cheap, and spreads
        // consecutive probe ids across shards.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        };
        mix(u64::from(key.probe.0));
        mix(key.bin_width_secs as u64);
        mix(u64::from(key.min_traceroutes_per_bin));
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    /// Fetch the series for `range` if the store has computed it (or a
    /// superset of it) before.
    pub fn lookup(&self, key: &StoreKey, range: &TimeRange) -> Lookup {
        let bin = key.bin();
        if self.config.mode == CacheMode::Off || !bin.is_aligned(range) {
            self.bypasses.fetch_add(1, Ordering::Relaxed);
            return Lookup::Bypass;
        }
        let span = bin.index_span(range);
        let shard = self.shard(key).read().expect("store shard poisoned");
        match shard.get(key) {
            Some(entry) if entry.covered.contains_span(&span) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                let discarded = entry.discarded.range(span.clone()).count() as u64;
                Lookup::Hit(PrebuiltSeries {
                    series: entry.series.slice(range),
                    bins_discarded_sanity: discarded,
                    traceroutes_ingested: 0,
                })
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                Lookup::Miss
            }
        }
    }

    /// Memoize a freshly built series for `range`. The series must have
    /// been built from exactly the traceroutes of `range` with the key's
    /// binning parameters; overlapping inserts must agree on shared bins
    /// (true for any deterministic source).
    pub fn insert(&self, key: &StoreKey, range: &TimeRange, built: &BuiltSeries) -> InsertOutcome {
        let bin = key.bin();
        if self.config.mode != CacheMode::ReadWrite || !bin.is_aligned(range) {
            return InsertOutcome::default();
        }
        assert_eq!(
            built.series.probe(),
            key.probe,
            "series probe differs from store key"
        );
        assert_eq!(
            built.series.bin().width_secs(),
            key.bin_width_secs,
            "series bin width differs from store key"
        );
        let span = bin.index_span(range);
        let mut evicted = 0u64;
        {
            let mut shard = self.shard(key).write().expect("store shard poisoned");
            let entry = shard.entry(*key).or_insert_with(|| Entry {
                series: ProbeSeries::from_parts(key.probe, bin, Default::default()),
                discarded: BTreeSet::new(),
                covered: Coverage::default(),
            });
            // Defensive slice: only bins of `range` may enter under this
            // coverage claim.
            let mut medians: std::collections::BTreeMap<BinIndex, f64> =
                entry.series.iter_bins().collect();
            medians.extend(built.series.slice(range).iter_bins());
            entry.series = ProbeSeries::from_parts(key.probe, bin, medians);
            entry
                .discarded
                .extend(built.discarded_bins.iter().filter(|b| span.contains(b)));
            if !span.is_empty() {
                entry.covered.add(span.start, span.end);
            }

            // Soft capacity: cost-aware eviction. The victim is the
            // resident with the fewest covered bins — the cheapest to
            // recompute on its next use — never the entry just written;
            // ties break on key order so eviction is deterministic.
            if self.config.max_entries > 0 {
                let cap = self.config.max_entries.div_ceil(self.shards.len()).max(1);
                while shard.len() > cap {
                    let Some(victim) = shard
                        .iter()
                        .filter(|(k, _)| *k != key)
                        .min_by_key(|(k, e)| (e.covered.total_bins(), **k))
                        .map(|(k, _)| *k)
                    else {
                        break;
                    };
                    shard.remove(&victim);
                    evicted += 1;
                }
            }
        }
        self.inserts.fetch_add(1, Ordering::Relaxed);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        InsertOutcome {
            inserted: true,
            evicted,
        }
    }

    /// Write the whole store to `path` as a versioned snapshot, atomically
    /// (temp file in the same directory, then rename). Returns the bytes
    /// written. Entry order in the file is sorted by key, so the same
    /// store state always produces the same bytes.
    pub fn save_snapshot(
        &self,
        path: &Path,
        source_fingerprint: u64,
    ) -> Result<u64, SnapshotError> {
        let mut entries: Vec<snapshot::SnapshotEntry> = Vec::new();
        for shard in &self.shards {
            let shard = shard.read().expect("store shard poisoned");
            for (key, entry) in shard.iter() {
                entries.push(snapshot::SnapshotEntry {
                    key: *key,
                    covered: entry.covered.intervals().to_vec(),
                    discarded: entry.discarded.iter().copied().collect(),
                    bins: entry.series.iter_bins().map(|(b, _)| b).collect(),
                    values: entry.series.iter_bins().map(|(_, v)| v).collect(),
                });
            }
        }
        entries.sort_by_key(|e| e.key);
        snapshot::write_snapshot(path, source_fingerprint, &entries)
    }

    /// Load a snapshot written by [`SeriesStore::save_snapshot`].
    ///
    /// `source_fingerprint` must match the one the snapshot was saved
    /// with — it identifies the data source (world seed, traceroute
    /// file), and serving series from a different source would be silent
    /// corruption. Returns the store and the bytes read.
    pub fn load_snapshot(
        path: &Path,
        source_fingerprint: u64,
        config: StoreConfig,
    ) -> Result<(SeriesStore, u64), SnapshotError> {
        let (entries, bytes) = snapshot::read_snapshot(path, source_fingerprint)?;
        let store = SeriesStore::new(config);
        for e in entries {
            let bin = BinSpec::new(e.key.bin_width_secs);
            let medians = e
                .bins
                .iter()
                .copied()
                .zip(e.values.iter().copied())
                .collect();
            let entry = Entry {
                series: ProbeSeries::from_parts(e.key.probe, bin, medians),
                discarded: e.discarded.into_iter().collect(),
                covered: Coverage::from_sorted_intervals(e.covered)
                    .map_err(SnapshotError::Corrupt)?,
            };
            store
                .shard(&e.key)
                .write()
                .expect("store shard poisoned")
                .insert(e.key, entry);
        }
        Ok((store, bytes))
    }

    /// Like [`SeriesStore::load_snapshot`], degrading every failure —
    /// including a missing file — to an empty store plus the error (when
    /// there was one), so callers fall back to recomputation instead of
    /// aborting. A missing file is reported as `(empty store, None)`.
    pub fn load_snapshot_or_empty(
        path: &Path,
        source_fingerprint: u64,
        config: StoreConfig,
    ) -> (SeriesStore, u64, Option<SnapshotError>) {
        if !path.exists() {
            return (SeriesStore::new(config), 0, None);
        }
        match SeriesStore::load_snapshot(path, source_fingerprint, config) {
            Ok((store, bytes)) => (store, bytes, None),
            Err(e) => (SeriesStore::new(config), 0, Some(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lastmile_timebase::UnixTime;
    use std::collections::BTreeMap;

    fn aligned(start_bins: i64, end_bins: i64) -> TimeRange {
        TimeRange::new(
            UnixTime::from_secs(start_bins * 1800),
            UnixTime::from_secs(end_bins * 1800),
        )
    }

    fn built(probe: u32, bins: &[(i64, f64)], discarded: &[i64]) -> BuiltSeries {
        let medians: BTreeMap<i64, f64> = bins.iter().copied().collect();
        BuiltSeries {
            series: ProbeSeries::from_parts(ProbeId(probe), BinSpec::thirty_minutes(), medians),
            discarded_bins: discarded.to_vec(),
        }
    }

    fn key(probe: u32) -> StoreKey {
        StoreKey::new(ProbeId(probe), BinSpec::thirty_minutes(), 3)
    }

    #[test]
    fn miss_insert_hit_roundtrip() {
        let store = SeriesStore::default();
        let range = aligned(0, 4);
        assert!(matches!(store.lookup(&key(1), &range), Lookup::Miss));
        let outcome = store.insert(&key(1), &range, &built(1, &[(0, 5.0), (2, 7.5)], &[1]));
        assert!(outcome.inserted);
        match store.lookup(&key(1), &range) {
            Lookup::Hit(pre) => {
                assert_eq!(pre.traceroutes_ingested, 0);
                assert_eq!(pre.bins_discarded_sanity, 1);
                let got: Vec<(i64, f64)> = pre.series.iter_bins().collect();
                assert_eq!(got, vec![(0, 5.0), (2, 7.5)]);
            }
            other => panic!("expected hit, got {other:?}"),
        }
        let c = store.counters();
        assert_eq!((c.hits, c.misses, c.inserts), (1, 1, 1));
    }

    #[test]
    fn sub_range_slicing_is_free_after_first_computation() {
        let store = SeriesStore::default();
        store.insert(
            &key(1),
            &aligned(0, 10),
            &built(1, &[(0, 5.0), (4, 9.0), (9, 6.0)], &[2, 7]),
        );
        // Any aligned sub-range hits, with range-scoped statistics.
        match store.lookup(&key(1), &aligned(4, 8)) {
            Lookup::Hit(pre) => {
                let got: Vec<(i64, f64)> = pre.series.iter_bins().collect();
                assert_eq!(got, vec![(4, 9.0)]);
                assert_eq!(pre.bins_discarded_sanity, 1, "only bin 7 is in range");
            }
            other => panic!("expected hit, got {other:?}"),
        }
        // A range poking past the coverage misses.
        assert!(matches!(
            store.lookup(&key(1), &aligned(4, 11)),
            Lookup::Miss
        ));
    }

    #[test]
    fn disjoint_ranges_merge_and_gap_misses() {
        let store = SeriesStore::default();
        store.insert(&key(1), &aligned(0, 2), &built(1, &[(0, 5.0)], &[]));
        store.insert(&key(1), &aligned(6, 8), &built(1, &[(6, 6.0)], &[]));
        assert!(matches!(
            store.lookup(&key(1), &aligned(0, 2)),
            Lookup::Hit(_)
        ));
        assert!(matches!(
            store.lookup(&key(1), &aligned(6, 8)),
            Lookup::Hit(_)
        ));
        // The gap is not covered.
        assert!(matches!(
            store.lookup(&key(1), &aligned(0, 8)),
            Lookup::Miss
        ));
        // Filling the gap bridges the intervals.
        store.insert(&key(1), &aligned(2, 6), &built(1, &[(3, 4.0)], &[]));
        assert!(matches!(
            store.lookup(&key(1), &aligned(0, 8)),
            Lookup::Hit(_)
        ));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn unaligned_ranges_bypass_both_ways() {
        let store = SeriesStore::default();
        let unaligned = TimeRange::new(UnixTime::from_secs(100), UnixTime::from_secs(7200));
        assert!(matches!(store.lookup(&key(1), &unaligned), Lookup::Bypass));
        let outcome = store.insert(&key(1), &unaligned, &built(1, &[(0, 5.0)], &[]));
        assert!(!outcome.inserted);
        assert_eq!(store.len(), 0);
        assert_eq!(store.counters().bypasses, 1);
    }

    #[test]
    fn invalidate_probe_drops_every_parameterisation_of_that_probe_only() {
        let store = SeriesStore::default();
        let range = aligned(0, 4);
        store.insert(&key(1), &range, &built(1, &[(0, 5.0)], &[]));
        let alt = StoreKey::new(ProbeId(1), BinSpec::thirty_minutes(), 5);
        store.insert(&alt, &range, &built(1, &[(0, 5.0)], &[]));
        store.insert(&key(2), &range, &built(2, &[(0, 6.0)], &[]));
        assert_eq!(store.len(), 3);
        assert_eq!(store.invalidate_probe(ProbeId(1)), 2);
        assert_eq!(store.len(), 1);
        // Probe 1 must rebuild; probe 2 still hits.
        assert!(matches!(store.lookup(&key(1), &range), Lookup::Miss));
        assert!(matches!(store.lookup(&alt, &range), Lookup::Miss));
        assert!(matches!(store.lookup(&key(2), &range), Lookup::Hit(_)));
        // Idempotent on an absent probe.
        assert_eq!(store.invalidate_probe(ProbeId(1)), 0);
    }

    #[test]
    fn clear_empties_the_store() {
        let store = SeriesStore::default();
        let range = aligned(0, 4);
        store.insert(&key(1), &range, &built(1, &[(0, 5.0)], &[]));
        store.insert(&key(2), &range, &built(2, &[(0, 6.0)], &[]));
        assert_eq!(store.clear(), 2);
        assert!(store.is_empty());
        assert!(matches!(store.lookup(&key(1), &range), Lookup::Miss));
    }

    #[test]
    fn keys_isolate_binning_parameters() {
        let store = SeriesStore::default();
        let range = aligned(0, 4);
        store.insert(&key(1), &range, &built(1, &[(0, 5.0)], &[]));
        // Same probe, different sanity threshold: separate entry.
        let other = StoreKey::new(ProbeId(1), BinSpec::thirty_minutes(), 5);
        assert!(matches!(store.lookup(&other, &range), Lookup::Miss));
    }

    #[test]
    fn read_only_serves_hits_but_never_mutates() {
        let rw = SeriesStore::default();
        let range = aligned(0, 4);
        rw.insert(&key(1), &range, &built(1, &[(0, 5.0)], &[]));
        let dir = std::env::temp_dir().join("lastmile-store-ro-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.bin");
        rw.save_snapshot(&path, 42).unwrap();

        let (ro, _) = SeriesStore::load_snapshot(
            &path,
            42,
            StoreConfig {
                mode: CacheMode::ReadOnly,
                ..StoreConfig::default()
            },
        )
        .unwrap();
        assert!(matches!(ro.lookup(&key(1), &range), Lookup::Hit(_)));
        assert!(
            !ro.insert(&key(2), &range, &built(2, &[(0, 1.0)], &[]))
                .inserted
        );
        assert_eq!(ro.len(), 1);
    }

    #[test]
    fn off_mode_bypasses_everything() {
        let store = SeriesStore::new(StoreConfig {
            mode: CacheMode::Off,
            ..StoreConfig::default()
        });
        let range = aligned(0, 4);
        assert!(matches!(store.lookup(&key(1), &range), Lookup::Bypass));
        assert!(
            !store
                .insert(&key(1), &range, &built(1, &[(0, 5.0)], &[]))
                .inserted
        );
    }

    #[test]
    fn capacity_cap_evicts_and_counts() {
        let store = SeriesStore::new(StoreConfig {
            shards: 1,
            max_entries: 2,
            mode: CacheMode::ReadWrite,
        });
        let range = aligned(0, 2);
        for p in 1..=5u32 {
            store.insert(&key(p), &range, &built(p, &[(0, f64::from(p))], &[]));
        }
        assert_eq!(store.len(), 2);
        assert_eq!(store.counters().evictions, 3);
        // Evicted probes miss (recompute), resident ones still hit.
        let hits = (1..=5u32)
            .filter(|&p| matches!(store.lookup(&key(p), &range), Lookup::Hit(_)))
            .count();
        assert_eq!(hits, 2);
    }

    #[test]
    fn eviction_is_cost_aware_heavy_coverage_survives() {
        let store = SeriesStore::new(StoreConfig {
            shards: 1,
            max_entries: 2,
            mode: CacheMode::ReadWrite,
        });
        // Probe 1 carries a week of coverage (336 bins); the rest carry
        // 2 bins each. Under pressure the cheap entries must be the
        // victims, never the expensive one.
        let heavy = aligned(0, 336);
        store.insert(&key(1), &heavy, &built(1, &[(0, 1.0)], &[]));
        for p in 2..=6u32 {
            store.insert(
                &key(p),
                &aligned(0, 2),
                &built(p, &[(0, f64::from(p))], &[]),
            );
        }
        assert_eq!(store.len(), 2);
        assert_eq!(store.counters().evictions, 4);
        assert!(
            matches!(store.lookup(&key(1), &heavy), Lookup::Hit(_)),
            "heavily-covered series evicted under pressure"
        );
        // The other survivor is the last writer (never its own victim);
        // everything between was evicted cheapest-first.
        assert!(matches!(
            store.lookup(&key(6), &aligned(0, 2)),
            Lookup::Hit(_)
        ));
        for p in 2..=5u32 {
            assert!(
                matches!(store.lookup(&key(p), &aligned(0, 2)), Lookup::Miss),
                "probe {p} should have been evicted"
            );
        }
    }

    #[test]
    fn cache_mode_parses() {
        assert_eq!("off".parse::<CacheMode>().unwrap(), CacheMode::Off);
        assert_eq!("ro".parse::<CacheMode>().unwrap(), CacheMode::ReadOnly);
        assert_eq!("rw".parse::<CacheMode>().unwrap(), CacheMode::ReadWrite);
        assert!("banana".parse::<CacheMode>().is_err());
    }

    #[test]
    fn concurrent_mixed_use_is_safe_and_deterministic() {
        let store = SeriesStore::new(StoreConfig {
            shards: 4,
            ..StoreConfig::default()
        });
        let range = aligned(0, 48);
        std::thread::scope(|scope| {
            for t in 0..8u32 {
                let store = &store;
                scope.spawn(move || {
                    for p in 0..50u32 {
                        let probe = p % 25; // heavy key overlap across threads
                        match store.lookup(&key(probe), &range) {
                            Lookup::Hit(pre) => {
                                let v: Vec<(i64, f64)> = pre.series.iter_bins().collect();
                                assert_eq!(v, vec![(0, f64::from(probe)), (5, 1.0)]);
                            }
                            _ => {
                                store.insert(
                                    &key(probe),
                                    &range,
                                    &built(probe, &[(0, f64::from(probe)), (5, 1.0)], &[]),
                                );
                            }
                        }
                        let _ = t;
                    }
                });
            }
        });
        assert_eq!(store.len(), 25);
    }
}
