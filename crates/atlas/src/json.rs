//! The RIPE Atlas API JSON wire format.
//!
//! The paper's published toolchain ingests traceroute results as served by
//! the Atlas API: one JSON object per traceroute with `prb_id`, `msm_id`,
//! `timestamp`, and a `result` array of hops, each hop holding a `result`
//! array of reply objects — `{"from": "...", "rtt": 12.3, ...}` for an
//! answer or `{"x": "*"}` for a timeout.
//!
//! [`AtlasTraceroute`] mirrors that shape field-for-field (unknown fields
//! are ignored on input, standard fields are emitted on output), and
//! converts losslessly to and from the internal
//! [`TracerouteResult`] model. This keeps the reproduction's analysis
//! pipeline wire-compatible: point it at real Atlas JSON and it parses.

use crate::probe::ProbeId;
use crate::traceroute::{Hop, Reply, TracerouteResult};
use lastmile_timebase::UnixTime;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::IpAddr;

/// One reply entry in the Atlas `result` array.
#[derive(Clone, Debug, Default, Serialize, Deserialize, PartialEq)]
pub struct AtlasReply {
    /// Responding address (absent for timeouts).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub from: Option<String>,
    /// Round-trip time in milliseconds (absent for timeouts).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub rtt: Option<f64>,
    /// `"*"` marker on timeouts.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub x: Option<String>,
    /// Reply size in bytes (cosmetic; emitted for realism).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub size: Option<u32>,
    /// Reply TTL (cosmetic).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub ttl: Option<u8>,
}

/// One hop entry in the Atlas `result` array.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct AtlasHop {
    /// 1-based hop (TTL).
    pub hop: u8,
    /// Replies for this hop.
    pub result: Vec<AtlasReply>,
}

/// A complete Atlas traceroute document.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct AtlasTraceroute {
    /// Probe firmware version (cosmetic).
    pub fw: u32,
    /// Address family: 4 or 6.
    pub af: u8,
    /// Destination address.
    pub dst_addr: String,
    /// The probe's source address (usually private).
    pub src_addr: String,
    /// The probe's public address as seen by Atlas infrastructure.
    pub from: String,
    /// Measurement id.
    pub msm_id: u32,
    /// Probe id.
    pub prb_id: u32,
    /// Unix timestamp of the run.
    pub timestamp: i64,
    /// Probe protocol, e.g. `ICMP` or `UDP`.
    pub proto: String,
    /// Always `"traceroute"`.
    #[serde(rename = "type")]
    pub kind: String,
    /// Hops.
    pub result: Vec<AtlasHop>,
}

/// Errors converting wire JSON into the internal model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConvertError {
    /// `dst_addr` or `src_addr` is not a valid IP address.
    BadAddress(String),
    /// The document is not a traceroute.
    NotATraceroute(String),
}

impl fmt::Display for ConvertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConvertError::BadAddress(s) => write!(f, "invalid address in Atlas document: {s}"),
            ConvertError::NotATraceroute(k) => write!(f, "expected a traceroute document, got {k}"),
        }
    }
}

impl std::error::Error for ConvertError {}

impl AtlasTraceroute {
    /// Convert wire format to the internal model.
    ///
    /// Reply entries with unparsable `from` addresses are treated as
    /// timeouts (defensive: real Atlas data contains occasional garbage),
    /// but a bad `dst_addr`/`src_addr` fails the whole document.
    pub fn to_model(&self) -> Result<TracerouteResult, ConvertError> {
        if self.kind != "traceroute" {
            return Err(ConvertError::NotATraceroute(self.kind.clone()));
        }
        let dst: IpAddr = self
            .dst_addr
            .parse()
            .map_err(|_| ConvertError::BadAddress(self.dst_addr.clone()))?;
        let src: IpAddr = self
            .src_addr
            .parse()
            .map_err(|_| ConvertError::BadAddress(self.src_addr.clone()))?;
        let hops = self
            .result
            .iter()
            .map(|h| Hop {
                hop: h.hop,
                replies: h
                    .result
                    .iter()
                    .map(|r| {
                        let from = r.from.as_deref().and_then(|s| s.parse().ok());
                        match (from, r.rtt) {
                            (Some(a), Some(rtt)) => Reply::answered(a, rtt),
                            _ => Reply::timeout(),
                        }
                    })
                    .collect(),
            })
            .collect();
        Ok(TracerouteResult {
            probe: ProbeId(self.prb_id),
            msm_id: self.msm_id,
            timestamp: UnixTime::from_secs(self.timestamp),
            dst,
            src,
            hops,
        })
    }

    /// Build the wire format from the internal model. `public_addr` fills
    /// the Atlas `from` field (the probe's public address).
    pub fn from_model(tr: &TracerouteResult, public_addr: IpAddr) -> AtlasTraceroute {
        AtlasTraceroute {
            fw: 5080,
            af: if tr.dst.is_ipv4() { 4 } else { 6 },
            dst_addr: tr.dst.to_string(),
            src_addr: tr.src.to_string(),
            from: public_addr.to_string(),
            msm_id: tr.msm_id,
            prb_id: tr.probe.0,
            timestamp: tr.timestamp.as_secs(),
            proto: "ICMP".to_string(),
            kind: "traceroute".to_string(),
            result: tr
                .hops
                .iter()
                .map(|h| AtlasHop {
                    hop: h.hop,
                    result: h
                        .replies
                        .iter()
                        .map(|r| match (r.from, r.rtt_ms) {
                            (Some(a), Some(rtt)) => AtlasReply {
                                from: Some(a.to_string()),
                                rtt: Some(rtt),
                                x: None,
                                size: Some(28),
                                ttl: Some(64 - h.hop.min(63)),
                            },
                            _ => AtlasReply {
                                x: Some("*".to_string()),
                                ..Default::default()
                            },
                        })
                        .collect(),
                })
                .collect(),
        }
    }
}

/// Parse one Atlas JSON document into the internal model.
pub fn parse_traceroute(json: &str) -> Result<TracerouteResult, Box<dyn std::error::Error>> {
    let doc: AtlasTraceroute = serde_json::from_str(json)?;
    Ok(doc.to_model()?)
}

/// Parse a JSON array of Atlas documents (the API's list form).
///
/// The array is framed element-by-element with [`crate::framing`] rather
/// than deserialised as one `Vec` — same single-pass splitter the
/// streaming ingest uses — so errors carry the failing element's byte
/// offset. The first bad element (unparsable JSON, non-traceroute
/// document, or unframeable bytes) fails the whole call, matching the
/// strictness of whole-buffer deserialisation.
pub fn parse_traceroutes(json: &str) -> Result<Vec<TracerouteResult>, Box<dyn std::error::Error>> {
    let mut out: Vec<TracerouteResult> = Vec::new();
    let mut first_err: Option<String> = None;
    let mut emit = |frame: crate::framing::Frame<'_>| {
        if first_err.is_some() {
            return;
        }
        match frame {
            crate::framing::Frame::Doc { offset, bytes } => {
                let text = match std::str::from_utf8(bytes) {
                    Ok(t) => t,
                    Err(e) => {
                        first_err = Some(format!("element at byte {offset}: {e}"));
                        return;
                    }
                };
                match serde_json::from_str::<AtlasTraceroute>(text).map_err(|e| e.to_string()) {
                    Ok(doc) => match doc.to_model() {
                        Ok(tr) => out.push(tr),
                        Err(e) => first_err = Some(format!("element at byte {offset}: {e}")),
                    },
                    Err(e) => first_err = Some(format!("element at byte {offset}: {e}")),
                }
            }
            crate::framing::Frame::Junk { offset, reason, .. } => {
                first_err = Some(format!("at byte {offset}: {reason}"))
            }
        }
    };
    let mut splitter = crate::framing::DocSplitter::new();
    splitter.feed(json.as_bytes(), &mut emit);
    let kind = splitter.kind();
    splitter.finish(&mut emit);
    if kind != Some(crate::framing::FrameKind::Array) {
        return Err("expected a top-level JSON array of Atlas documents".into());
    }
    if let Some(e) = first_err {
        return Err(e.into());
    }
    Ok(out)
}

/// Serialise one internal traceroute to Atlas JSON.
pub fn to_atlas_json(tr: &TracerouteResult, public_addr: IpAddr) -> String {
    serde_json::to_string(&AtlasTraceroute::from_model(tr, public_addr))
        .expect("traceroute serialization cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A real-shaped Atlas document (trimmed).
    const SAMPLE: &str = r#"{
        "fw": 4790, "af": 4,
        "dst_addr": "193.0.14.129",
        "src_addr": "192.168.1.10",
        "from": "20.0.0.55",
        "msm_id": 5001, "prb_id": 6042,
        "timestamp": 1567296000,
        "proto": "ICMP", "type": "traceroute",
        "result": [
            {"hop": 1, "result": [
                {"from": "192.168.1.1", "rtt": 0.5, "size": 28, "ttl": 64},
                {"from": "192.168.1.1", "rtt": 0.62, "size": 28, "ttl": 64},
                {"from": "192.168.1.1", "rtt": 0.48, "size": 28, "ttl": 64}
            ]},
            {"hop": 2, "result": [
                {"from": "20.0.0.1", "rtt": 5.1, "size": 28, "ttl": 63},
                {"x": "*"},
                {"from": "20.0.0.1", "rtt": 4.9, "size": 28, "ttl": 63}
            ]}
        ]
    }"#;

    #[test]
    fn parses_atlas_shaped_json() {
        let tr = parse_traceroute(SAMPLE).unwrap();
        assert_eq!(tr.probe, ProbeId(6042));
        assert_eq!(tr.msm_id, 5001);
        assert_eq!(tr.timestamp.as_secs(), 1_567_296_000);
        assert_eq!(tr.hops.len(), 2);
        assert_eq!(tr.hops[0].replies.len(), 3);
        assert!(tr.hops[1].replies[1].from.is_none(), "timeout preserved");
        assert_eq!(tr.edge_address().unwrap().to_string(), "20.0.0.1");
    }

    #[test]
    fn unknown_fields_are_ignored() {
        let json = SAMPLE.replacen(
            "\"fw\": 4790,",
            "\"fw\": 4790, \"lts\": 22, \"group_id\": 5001,",
            1,
        );
        assert!(parse_traceroute(&json).is_ok());
    }

    #[test]
    fn round_trip_through_wire_format() {
        let tr = parse_traceroute(SAMPLE).unwrap();
        let json = to_atlas_json(&tr, "20.0.0.55".parse().unwrap());
        let back = parse_traceroute(&json).unwrap();
        assert_eq!(back, tr);
    }

    #[test]
    fn array_form_parses() {
        let json = format!("[{SAMPLE},{SAMPLE}]");
        let list = parse_traceroutes(&json).unwrap();
        assert_eq!(list.len(), 2);
    }

    #[test]
    fn empty_array_parses_and_non_array_is_rejected() {
        assert!(parse_traceroutes("[]").unwrap().is_empty());
        assert!(parse_traceroutes(" [ ] ").unwrap().is_empty());
        assert!(
            parse_traceroutes(SAMPLE).is_err(),
            "bare object is not a list"
        );
        assert!(parse_traceroutes("").is_err());
    }

    #[test]
    fn array_errors_carry_the_element_offset() {
        let err = parse_traceroutes("[ {\"bogus\":1} ]")
            .unwrap_err()
            .to_string();
        assert!(err.contains("at byte 2"), "{err}");
        let truncated = format!("[{SAMPLE},{}", &SAMPLE[..40]);
        let err = parse_traceroutes(&truncated).unwrap_err().to_string();
        assert!(err.contains("truncated"), "{err}");
    }

    #[test]
    fn rejects_non_traceroute_type() {
        let json = SAMPLE.replace("\"type\": \"traceroute\"", "\"type\": \"ping\"");
        let doc: AtlasTraceroute = serde_json::from_str(&json).unwrap();
        assert_eq!(
            doc.to_model().unwrap_err(),
            ConvertError::NotATraceroute("ping".into())
        );
    }

    #[test]
    fn rejects_bad_dst_addr() {
        let json = SAMPLE.replace("193.0.14.129", "not-an-ip");
        let doc: AtlasTraceroute = serde_json::from_str(&json).unwrap();
        assert!(matches!(
            doc.to_model().unwrap_err(),
            ConvertError::BadAddress(_)
        ));
    }

    #[test]
    fn garbage_reply_address_degrades_to_timeout() {
        let json = SAMPLE.replace(
            "\"from\": \"20.0.0.1\", \"rtt\": 5.1",
            "\"from\": \"bogus\", \"rtt\": 5.1",
        );
        let tr = parse_traceroute(&json).unwrap();
        assert!(!tr.hops[1].replies[0].is_answered());
        // The hop still has one good reply.
        assert_eq!(tr.hops[1].rtts().count(), 1);
    }

    #[test]
    fn timeout_serializes_as_star() {
        let tr = parse_traceroute(SAMPLE).unwrap();
        let json = to_atlas_json(&tr, "20.0.0.55".parse().unwrap());
        assert!(json.contains(r#"{"x":"*"}"#), "{json}");
    }
}
