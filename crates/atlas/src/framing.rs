//! Incremental framing of Atlas JSON inputs: split a byte stream into
//! record-aligned document frames without ever holding the whole input.
//!
//! Real Atlas data arrives in two shapes — JSON Lines (one document per
//! line, the format of `magellan`/Atlas daily dumps) and whole-file JSON
//! arrays (the API's list form). Both are framed by [`DocSplitter`], a
//! push-based state machine: feed it byte chunks of any size (a document
//! split across a chunk boundary is carried over), and it emits each
//! complete document's bytes together with its absolute byte offset.
//!
//! ## Framing rules
//!
//! * The input's shape is decided by its first non-whitespace byte (after
//!   an optional UTF-8 byte-order mark): `[` means a top-level array,
//!   anything else means JSON Lines.
//! * **Lines**: documents are separated by `\n`; a trailing `\r` (CRLF
//!   input) is stripped; whitespace-only lines are skipped; a final line
//!   without a newline is still a document.
//! * **Array**: elements are scanned with bracket/brace depth, string and
//!   escape state, so commas inside nested structures or string literals
//!   never split a document. Separators are lenient — any mix of commas
//!   and whitespace between elements is accepted (real dumps contain
//!   sloppy concatenations), and a missing final `]` after a complete
//!   element is tolerated (routine truncation).
//! * Bytes the splitter cannot frame — input ending in the middle of an
//!   array element (a truncated final document) or content after the
//!   top-level `]` — are emitted as [`Frame::Junk`] with a reason, so
//!   callers can quarantine rather than die.
//!
//! The splitter frames bytes; it does not validate JSON. A garbage array
//! element (`[{...}, oops, {...}]`) is framed as the document `oops` and
//! left for the parser to reject, which keeps framing single-pass and
//! gives per-record error granularity downstream.

/// What the first non-whitespace byte said the input is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameKind {
    /// One document per line.
    Lines,
    /// A top-level JSON array of documents.
    Array,
}

/// One framed run of bytes handed to the `emit` callback.
#[derive(Debug)]
pub enum Frame<'a> {
    /// A complete document (surrounding whitespace trimmed).
    Doc {
        /// Absolute byte offset of the document's first byte.
        offset: u64,
        /// The document's bytes.
        bytes: &'a [u8],
    },
    /// Bytes that cannot be framed as a document.
    Junk {
        /// Absolute byte offset of the run's first byte.
        offset: u64,
        /// The unframeable bytes.
        bytes: &'a [u8],
        /// Why the bytes could not be framed.
        reason: &'static str,
    },
}

const BOM: [u8; 3] = [0xEF, 0xBB, 0xBF];

/// Reason attached to a truncated final array element.
pub const TRUNCATED_DOC: &str = "input ended inside an array element (truncated document)";
/// Reason attached to bytes following the top-level `]`.
pub const TRAILING_CONTENT: &str = "content after the top-level array close";

#[derive(Debug)]
enum State {
    /// Skipping the optional BOM and leading whitespace; `matched_bom`
    /// counts BOM bytes consumed so far (they may span a chunk boundary).
    Start { matched_bom: usize },
    /// JSON Lines: collecting the current line.
    Lines,
    /// Array: between elements (also right after `[`).
    Separators,
    /// Array: inside an element.
    Element {
        depth: u32,
        in_string: bool,
        escape: bool,
    },
    /// Array: after the top-level `]`. `reported` records whether
    /// trailing content was already flagged — it is flagged at most once
    /// (at its first byte) so framing is invariant to chunk boundaries.
    Closed { reported: bool },
}

/// Push-based document splitter. Feed chunks with [`DocSplitter::feed`],
/// then call [`DocSplitter::finish`] to flush the final document (or
/// flag it as truncated).
#[derive(Debug)]
pub struct DocSplitter {
    state: State,
    /// Absolute offset of the next byte to be processed.
    pos: u64,
    /// Bytes of the current incomplete document, when it spans chunks.
    pending: Vec<u8>,
    /// Absolute offset of the current document's first byte.
    doc_offset: u64,
    kind: Option<FrameKind>,
}

impl Default for DocSplitter {
    fn default() -> DocSplitter {
        DocSplitter::new()
    }
}

impl DocSplitter {
    pub fn new() -> DocSplitter {
        DocSplitter {
            state: State::Start { matched_bom: 0 },
            pos: 0,
            pending: Vec::new(),
            doc_offset: 0,
            kind: None,
        }
    }

    /// The input shape, once the first non-whitespace byte has been seen.
    pub fn kind(&self) -> Option<FrameKind> {
        self.kind
    }

    /// Process one chunk, emitting every document that completes in it.
    /// Emitted slices borrow either from `chunk` or from the splitter's
    /// carry-over buffer; copy them if they must outlive the call.
    pub fn feed(&mut self, chunk: &[u8], emit: &mut dyn FnMut(Frame<'_>)) {
        let mut i = 0;
        while i < chunk.len() {
            match &mut self.state {
                State::Start { matched_bom } => {
                    let matched = *matched_bom;
                    let b = chunk[i];
                    if self.pos == matched as u64 && matched < 3 && b == BOM[matched] {
                        self.state = State::Start {
                            matched_bom: matched + 1,
                        };
                        self.pos += 1;
                        i += 1;
                    } else if matched > 0 && matched < 3 {
                        // A BOM prefix that never completed: those held
                        // bytes are content. Replay them as the start of
                        // a line (they cannot be `[`).
                        self.kind = Some(FrameKind::Lines);
                        self.state = State::Lines;
                        self.doc_offset = self.pos - matched as u64;
                        self.pending.extend_from_slice(&BOM[..matched]);
                        // Do not advance i: reprocess chunk[i] as Lines.
                    } else if b.is_ascii_whitespace() {
                        self.pos += 1;
                        i += 1;
                    } else if b == b'[' {
                        self.kind = Some(FrameKind::Array);
                        self.state = State::Separators;
                        self.pos += 1;
                        i += 1;
                    } else {
                        self.kind = Some(FrameKind::Lines);
                        self.state = State::Lines;
                        self.doc_offset = self.pos;
                        // Reprocess chunk[i] as Lines.
                    }
                }
                State::Lines => {
                    // Scan to the next newline; emit straight from the
                    // chunk when the whole line is inside it.
                    let rest = &chunk[i..];
                    match rest.iter().position(|&b| b == b'\n') {
                        Some(nl) => {
                            let frame_offset;
                            let line: &[u8] = if self.pending.is_empty() {
                                frame_offset = self.pos;
                                &rest[..nl]
                            } else {
                                self.pending.extend_from_slice(&rest[..nl]);
                                frame_offset = self.doc_offset;
                                &self.pending
                            };
                            let line = trim_line(line);
                            if !line.is_empty() {
                                emit(Frame::Doc {
                                    offset: frame_offset,
                                    bytes: line,
                                });
                            }
                            self.pending.clear();
                            self.pos += (nl + 1) as u64;
                            self.doc_offset = self.pos;
                            i += nl + 1;
                        }
                        None => {
                            if self.pending.is_empty() {
                                self.doc_offset = self.pos;
                            }
                            self.pending.extend_from_slice(rest);
                            self.pos += rest.len() as u64;
                            i = chunk.len();
                        }
                    }
                }
                State::Separators => {
                    let b = chunk[i];
                    if b.is_ascii_whitespace() || b == b',' {
                        self.pos += 1;
                        i += 1;
                    } else if b == b']' {
                        self.state = State::Closed { reported: false };
                        self.pos += 1;
                        i += 1;
                    } else {
                        self.state = State::Element {
                            depth: 0,
                            in_string: false,
                            escape: false,
                        };
                        self.doc_offset = self.pos;
                        self.pending.clear();
                        // Reprocess chunk[i] as the element's first byte.
                    }
                }
                State::Element {
                    depth,
                    in_string,
                    escape,
                } => {
                    let b = chunk[i];
                    let terminated = if *in_string {
                        if *escape {
                            *escape = false;
                        } else if b == b'\\' {
                            *escape = true;
                        } else if b == b'"' {
                            *in_string = false;
                        }
                        false
                    } else {
                        match b {
                            b'"' => {
                                *in_string = true;
                                false
                            }
                            b'{' | b'[' => {
                                *depth += 1;
                                false
                            }
                            b'}' | b']' if *depth > 0 => {
                                *depth -= 1;
                                false
                            }
                            // At depth 0 a comma ends the element and a
                            // `]` ends both the element and the array
                            // (depth > 0 was handled above). A stray `}`
                            // is content for the parser to reject.
                            b',' if *depth == 0 => true,
                            b']' => true,
                            _ => false,
                        }
                    };
                    if terminated {
                        let doc = trim_line(&self.pending);
                        if !doc.is_empty() {
                            emit(Frame::Doc {
                                offset: self.doc_offset,
                                bytes: doc,
                            });
                        }
                        self.pending.clear();
                        self.state = if b == b']' {
                            State::Closed { reported: false }
                        } else {
                            State::Separators
                        };
                    } else {
                        self.pending.push(b);
                    }
                    self.pos += 1;
                    i += 1;
                }
                State::Closed { reported } => {
                    let rest = &chunk[i..];
                    match rest.iter().position(|&b| !b.is_ascii_whitespace()) {
                        Some(j) if !*reported => {
                            emit(Frame::Junk {
                                offset: self.pos + j as u64,
                                bytes: &rest[j..],
                                reason: TRAILING_CONTENT,
                            });
                            *reported = true;
                        }
                        _ => {}
                    }
                    self.pos += rest.len() as u64;
                    i = chunk.len();
                }
            }
        }
    }

    /// Flush the end of the input: the final newline-less line is a
    /// document; an unfinished array element is junk (truncated).
    pub fn finish(self, emit: &mut dyn FnMut(Frame<'_>)) {
        match self.state {
            State::Start { matched_bom } => {
                // Only whitespace (and possibly a BOM prefix) was seen. A
                // partial BOM is content — surface it for the parser.
                if matched_bom > 0 && matched_bom < 3 {
                    emit(Frame::Doc {
                        offset: self.pos - matched_bom as u64,
                        bytes: &BOM[..matched_bom],
                    });
                }
            }
            State::Lines => {
                let line = trim_line(&self.pending);
                if !line.is_empty() {
                    emit(Frame::Doc {
                        offset: self.doc_offset,
                        bytes: line,
                    });
                }
            }
            State::Element { .. } => {
                let doc = trim_line(&self.pending);
                if !doc.is_empty() {
                    emit(Frame::Junk {
                        offset: self.doc_offset,
                        bytes: doc,
                        reason: TRUNCATED_DOC,
                    });
                }
            }
            // A missing final `]` after complete elements is tolerated
            // (routine truncation), and a closed array ends cleanly.
            State::Separators | State::Closed { .. } => {}
        }
    }

    /// Frame a complete in-memory input in one call.
    pub fn split_all(input: &[u8], emit: &mut dyn FnMut(Frame<'_>)) {
        let mut splitter = DocSplitter::new();
        splitter.feed(input, emit);
        splitter.finish(emit);
    }
}

/// Strip surrounding ASCII whitespace (covers the `\r` of CRLF input).
fn trim_line(bytes: &[u8]) -> &[u8] {
    let start = bytes
        .iter()
        .position(|b| !b.is_ascii_whitespace())
        .unwrap_or(bytes.len());
    let end = bytes
        .iter()
        .rposition(|b| !b.is_ascii_whitespace())
        .map_or(start, |e| e + 1);
    &bytes[start..end]
}

#[cfg(test)]
mod tests {
    use super::*;

    type OwnedDocs = Vec<(u64, Vec<u8>)>;
    type OwnedJunk = Vec<(u64, Vec<u8>, String)>;

    /// Collect (offset, doc) and (offset, junk, reason) frames, feeding
    /// the input in chunks of `chunk` bytes.
    fn split(input: &[u8], chunk: usize) -> (OwnedDocs, OwnedJunk) {
        let mut docs = Vec::new();
        let mut junk = Vec::new();
        let mut splitter = DocSplitter::new();
        let mut emit = |frame: Frame<'_>| match frame {
            Frame::Doc { offset, bytes } => docs.push((offset, bytes.to_vec())),
            Frame::Junk {
                offset,
                bytes,
                reason,
            } => junk.push((offset, bytes.to_vec(), reason.to_string())),
        };
        for piece in input.chunks(chunk.max(1)) {
            splitter.feed(piece, &mut emit);
        }
        splitter.finish(&mut emit);
        (docs, junk)
    }

    fn docs_only(input: &[u8], chunk: usize) -> Vec<String> {
        let (docs, junk) = split(input, chunk);
        assert!(junk.is_empty(), "unexpected junk: {junk:?}");
        docs.iter()
            .map(|(_, d)| String::from_utf8(d.clone()).unwrap())
            .collect()
    }

    #[test]
    fn lines_basic_with_offsets() {
        let input = b"{\"a\":1}\n\n  \n{\"b\":2}\n";
        for chunk in [1, 2, 3, 7, 100] {
            let (docs, junk) = split(input, chunk);
            assert!(junk.is_empty());
            assert_eq!(
                docs,
                vec![(0, b"{\"a\":1}".to_vec()), (12, b"{\"b\":2}".to_vec())],
                "chunk={chunk}"
            );
        }
    }

    #[test]
    fn lines_crlf_and_missing_final_newline() {
        assert_eq!(
            docs_only(b"{\"a\":1}\r\n{\"b\":2}", 3),
            ["{\"a\":1}", "{\"b\":2}"]
        );
    }

    #[test]
    fn bom_is_skipped_in_both_modes() {
        assert_eq!(docs_only(b"\xEF\xBB\xBF{\"a\":1}\n", 1), ["{\"a\":1}"]);
        assert_eq!(docs_only(b"\xEF\xBB\xBF[1,2]", 2), ["1", "2"]);
    }

    #[test]
    fn partial_bom_is_content() {
        let (docs, junk) = split(b"\xEF\xBB", 1);
        assert!(junk.is_empty());
        assert_eq!(docs, vec![(0, vec![0xEF, 0xBB])]);
        // A BOM prefix followed by other bytes becomes a line.
        let (docs, _) = split(b"\xEFoops\n", 2);
        assert_eq!(docs, vec![(0, b"\xEFoops".to_vec())]);
    }

    #[test]
    fn array_elements_with_nesting_strings_and_escapes() {
        let input = br#"[ {"a":[1,2],"s":"x,]}"} , {"b":"\"],"} , 3.5, null ]"#;
        for chunk in [1, 2, 5, 13, 100] {
            assert_eq!(
                docs_only(input, chunk),
                [
                    r#"{"a":[1,2],"s":"x,]}"}"#,
                    r#"{"b":"\"],"}"#,
                    "3.5",
                    "null"
                ],
                "chunk={chunk}"
            );
        }
    }

    #[test]
    fn array_offsets_point_at_elements() {
        let (docs, _) = split(b"[10, 20]", 100);
        assert_eq!(docs, vec![(1, b"10".to_vec()), (5, b"20".to_vec())]);
    }

    #[test]
    fn empty_inputs_and_empty_arrays() {
        for input in [
            &b""[..],
            b"   \n\t ",
            b"[]",
            b"[ ]",
            b"[ , , ]",
            b"\xEF\xBB\xBF",
        ] {
            let (docs, junk) = split(input, 1);
            assert!(docs.is_empty(), "{input:?}");
            assert!(junk.is_empty(), "{input:?}");
        }
    }

    #[test]
    fn truncated_final_element_is_junk() {
        let (docs, junk) = split(br#"[{"a":1},{"b":"#, 4);
        assert_eq!(docs, vec![(1, b"{\"a\":1}".to_vec())]);
        assert_eq!(junk.len(), 1);
        assert_eq!(junk[0].0, 9);
        assert_eq!(junk[0].1, b"{\"b\":".to_vec());
        assert_eq!(junk[0].2, TRUNCATED_DOC);
        // Truncation inside a string literal as well.
        let (_, junk) = split(br#"[{"a":"unterminated"#, 100);
        assert_eq!(junk.len(), 1);
        assert_eq!(junk[0].2, TRUNCATED_DOC);
    }

    #[test]
    fn missing_final_bracket_after_complete_element_is_tolerated() {
        let (docs, junk) = split(br#"[{"a":1},"#, 3);
        assert_eq!(docs.len(), 1);
        assert!(junk.is_empty());
    }

    #[test]
    fn content_after_array_close_is_junk() {
        let (docs, junk) = split(b"[1] trailing", 100);
        assert_eq!(docs, vec![(1, b"1".to_vec())]);
        assert_eq!(junk.len(), 1);
        assert_eq!(junk[0].0, 4);
        assert_eq!(junk[0].1, b"trailing".to_vec());
        assert_eq!(junk[0].2, TRAILING_CONTENT);
    }

    #[test]
    fn garbage_between_elements_is_framed_for_the_parser() {
        // Framing is lenient: `oops` becomes a document the JSON parser
        // rejects, so only that record is lost.
        assert_eq!(docs_only(b"[1, oops, 2]", 2), ["1", "oops", "2"]);
    }

    #[test]
    fn kind_is_reported() {
        let mut s = DocSplitter::new();
        assert_eq!(s.kind(), None);
        s.feed(b"  [", &mut |_| {});
        assert_eq!(s.kind(), Some(FrameKind::Array));
        let mut s = DocSplitter::new();
        s.feed(b"{\"a\":1}", &mut |_| {});
        assert_eq!(s.kind(), Some(FrameKind::Lines));
    }
}
