//! Incremental framing of Atlas JSON inputs: split a byte stream into
//! record-aligned document frames without ever holding the whole input.
//!
//! Real Atlas data arrives in two shapes — JSON Lines (one document per
//! line, the format of `magellan`/Atlas daily dumps) and whole-file JSON
//! arrays (the API's list form). Both are framed by [`DocSplitter`], a
//! push-based state machine: feed it byte chunks of any size (a document
//! split across a chunk boundary is carried over), and it emits each
//! complete document's bytes together with its absolute byte offset.
//!
//! ## Framing rules
//!
//! * The input's shape is decided by its first non-whitespace byte (after
//!   an optional UTF-8 byte-order mark): `[` means a top-level array,
//!   anything else means JSON Lines.
//! * **Lines**: documents are separated by `\n`; a trailing `\r` (CRLF
//!   input) is stripped; whitespace-only lines are skipped; a final line
//!   without a newline is still a document.
//! * **Array**: elements are scanned with bracket/brace depth, string and
//!   escape state, so commas inside nested structures or string literals
//!   never split a document. Separators are lenient — any mix of commas
//!   and whitespace between elements is accepted (real dumps contain
//!   sloppy concatenations), and a missing final `]` after a complete
//!   element is tolerated (routine truncation).
//! * Bytes the splitter cannot frame — input ending in the middle of an
//!   array element (a truncated final document) or content after the
//!   top-level `]` — are emitted as [`Frame::Junk`] with a reason, so
//!   callers can quarantine rather than die.
//!
//! The splitter frames bytes; it does not validate JSON. A garbage array
//! element (`[{...}, oops, {...}]`) is framed as the document `oops` and
//! left for the parser to reject, which keeps framing single-pass and
//! gives per-record error granularity downstream.
//!
//! ## Bulk scanning and the zero-copy frame lifetime rule
//!
//! The hot loops never walk the input one byte at a time. Line mode
//! jumps newline-to-newline ([`memscan::memchr`]). Array-element mode
//! loads one 8-byte word at a time and asks
//! [`memscan::json_scan_mask`] for an exact per-lane mask of the bytes
//! the state machine cares about (`"` `\` `,` `{` `}` `[` `]`); only
//! the flagged lanes are visited, in order, with string/escape/depth
//! state updated per lane. Runs of ordinary bytes cost one SWAR mask
//! per 8 bytes, and — unlike a memchr-per-token loop — structural-dense
//! JSON never reloads the same word twice.
//!
//! Emitted `Frame` slices obey one lifetime rule, which parallel ingest
//! relies on for zero-copy batching: a document that completes inside
//! the chunk passed to [`DocSplitter::feed`] is emitted as a **subslice
//! of that chunk** (no intermediate copy); only a document that spans a
//! `feed` boundary is staged in the splitter's carry buffer and emitted
//! borrowing from it. Either way the slice is only valid during the
//! `emit` call — copy it (or retain the chunk allocation) to keep it.

/// What the first non-whitespace byte said the input is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameKind {
    /// One document per line.
    Lines,
    /// A top-level JSON array of documents.
    Array,
}

/// One framed run of bytes handed to the `emit` callback.
#[derive(Debug)]
pub enum Frame<'a> {
    /// A complete document (surrounding whitespace trimmed).
    Doc {
        /// Absolute byte offset of the document's first byte.
        offset: u64,
        /// The document's bytes.
        bytes: &'a [u8],
    },
    /// Bytes that cannot be framed as a document.
    Junk {
        /// Absolute byte offset of the run's first byte.
        offset: u64,
        /// The unframeable bytes.
        bytes: &'a [u8],
        /// Why the bytes could not be framed.
        reason: &'static str,
    },
}

const BOM: [u8; 3] = [0xEF, 0xBB, 0xBF];

/// Reason attached to a truncated final array element.
pub const TRUNCATED_DOC: &str = "input ended inside an array element (truncated document)";
/// Reason attached to bytes following the top-level `]`.
pub const TRAILING_CONTENT: &str = "content after the top-level array close";

#[derive(Debug)]
enum State {
    /// Skipping the optional BOM and leading whitespace; `matched_bom`
    /// counts BOM bytes consumed so far (they may span a chunk boundary).
    Start { matched_bom: usize },
    /// JSON Lines: collecting the current line.
    Lines,
    /// Array: between elements (also right after `[`).
    Separators,
    /// Array: inside an element.
    Element {
        depth: u32,
        in_string: bool,
        escape: bool,
    },
    /// Array: after the top-level `]`. `reported` records whether
    /// trailing content was already flagged — it is flagged at most once
    /// (at its first byte) so framing is invariant to chunk boundaries.
    Closed { reported: bool },
}

/// Push-based document splitter. Feed chunks with [`DocSplitter::feed`],
/// then call [`DocSplitter::finish`] to flush the final document (or
/// flag it as truncated).
#[derive(Debug)]
pub struct DocSplitter {
    state: State,
    /// Absolute offset of the next byte to be processed.
    pos: u64,
    /// Bytes of the current incomplete document, when it spans chunks.
    pending: Vec<u8>,
    /// Absolute offset of the current document's first byte.
    doc_offset: u64,
    kind: Option<FrameKind>,
}

impl Default for DocSplitter {
    fn default() -> DocSplitter {
        DocSplitter::new()
    }
}

impl DocSplitter {
    pub fn new() -> DocSplitter {
        DocSplitter {
            state: State::Start { matched_bom: 0 },
            pos: 0,
            pending: Vec::new(),
            doc_offset: 0,
            kind: None,
        }
    }

    /// The input shape, once the first non-whitespace byte has been seen.
    pub fn kind(&self) -> Option<FrameKind> {
        self.kind
    }

    /// Process one chunk, emitting every document that completes in it.
    /// Emitted slices borrow either from `chunk` or from the splitter's
    /// carry-over buffer; copy them if they must outlive the call.
    pub fn feed(&mut self, chunk: &[u8], emit: &mut dyn FnMut(Frame<'_>)) {
        let mut i = 0;
        while i < chunk.len() {
            match &mut self.state {
                State::Start { matched_bom } => {
                    let matched = *matched_bom;
                    let b = chunk[i];
                    if self.pos == matched as u64 && matched < 3 && b == BOM[matched] {
                        self.state = State::Start {
                            matched_bom: matched + 1,
                        };
                        self.pos += 1;
                        i += 1;
                    } else if matched > 0 && matched < 3 {
                        // A BOM prefix that never completed: those held
                        // bytes are content. Replay them as the start of
                        // a line (they cannot be `[`).
                        self.kind = Some(FrameKind::Lines);
                        self.state = State::Lines;
                        self.doc_offset = self.pos - matched as u64;
                        self.pending.extend_from_slice(&BOM[..matched]);
                        // Do not advance i: reprocess chunk[i] as Lines.
                    } else if b.is_ascii_whitespace() {
                        self.pos += 1;
                        i += 1;
                    } else if b == b'[' {
                        self.kind = Some(FrameKind::Array);
                        self.state = State::Separators;
                        self.pos += 1;
                        i += 1;
                    } else {
                        self.kind = Some(FrameKind::Lines);
                        self.state = State::Lines;
                        self.doc_offset = self.pos;
                        // Reprocess chunk[i] as Lines.
                    }
                }
                State::Lines => {
                    // Scan to the next newline; emit straight from the
                    // chunk when the whole line is inside it.
                    let rest = &chunk[i..];
                    match memscan::memchr(b'\n', rest) {
                        Some(nl) => {
                            let frame_offset;
                            let line: &[u8] = if self.pending.is_empty() {
                                frame_offset = self.pos;
                                &rest[..nl]
                            } else {
                                self.pending.extend_from_slice(&rest[..nl]);
                                frame_offset = self.doc_offset;
                                &self.pending
                            };
                            let line = trim_line(line);
                            if !line.is_empty() {
                                emit(Frame::Doc {
                                    offset: frame_offset,
                                    bytes: line,
                                });
                            }
                            self.pending.clear();
                            self.pos += (nl + 1) as u64;
                            self.doc_offset = self.pos;
                            i += nl + 1;
                        }
                        None => {
                            if self.pending.is_empty() {
                                self.doc_offset = self.pos;
                            }
                            self.pending.extend_from_slice(rest);
                            self.pos += rest.len() as u64;
                            i = chunk.len();
                        }
                    }
                }
                State::Separators => {
                    // Bulk-skip the separator run (whitespace/commas).
                    let rest = &chunk[i..];
                    match rest
                        .iter()
                        .position(|&b| !(b.is_ascii_whitespace() || b == b','))
                    {
                        None => {
                            self.pos += rest.len() as u64;
                            i = chunk.len();
                        }
                        Some(j) => {
                            self.pos += j as u64;
                            i += j;
                            if chunk[i] == b']' {
                                self.state = State::Closed { reported: false };
                                self.pos += 1;
                                i += 1;
                            } else {
                                self.state = State::Element {
                                    depth: 0,
                                    in_string: false,
                                    escape: false,
                                };
                                self.doc_offset = self.pos;
                                self.pending.clear();
                                // Reprocess chunk[i] as the element's
                                // first byte.
                            }
                        }
                    }
                }
                State::Element {
                    depth,
                    in_string,
                    escape,
                } => {
                    // Bulk-scan the element one word at a time: each
                    // 8-byte load yields an exact mask of the bytes the
                    // state machine dispatches on (quotes, backslashes,
                    // brackets, commas), and only those lanes are
                    // visited — string content, numbers, and key names
                    // in between cost one mask per word, not one match
                    // per byte. Atlas JSON is structural-dense, so the
                    // mask is walked bit by bit with string/escape/depth
                    // state updated in order; re-scanning from every
                    // token (the memchr-per-token shape) would reload
                    // the same words many times over. The element's
                    // bytes stay in `chunk` — nothing is copied unless
                    // the element outlives this chunk.
                    let start = i;
                    // `(index, byte)` of the terminator, once found.
                    let mut term: Option<(usize, u8)> = None;
                    let mut j = i;
                    'scan: while j < chunk.len() {
                        if *escape {
                            // A backslash ended the previous word or
                            // chunk: it escapes exactly one byte,
                            // whatever that byte is.
                            *escape = false;
                            j += 1;
                            continue;
                        }
                        // 32-byte stride while all four words are
                        // escape-free (the norm): one quote-parity pass
                        // over 32 lanes, braces walked, commas computed
                        // only when a terminator is reachable (depth 0).
                        if j + 4 * memscan::WORD_BYTES <= chunk.len() {
                            let ws = [
                                memscan::load_word(&chunk[j..]),
                                memscan::load_word(&chunk[j + memscan::WORD_BYTES..]),
                                memscan::load_word(&chunk[j + 2 * memscan::WORD_BYTES..]),
                                memscan::load_word(&chunk[j + 3 * memscan::WORD_BYTES..]),
                            ];
                            if !ws.iter().any(|&w| memscan::has_byte(w, b'\\')) {
                                let q = memscan::compact4(ws.map(memscan::quote_lanes));
                                let inside = memscan::prefix_xor32(q)
                                    ^ if *in_string { u32::MAX } else { 0 };
                                // `braceish` over-approximates (strays
                                // dispatch as no-ops below) — worth it
                                // for one compare per word instead of
                                // two.
                                let braces =
                                    memscan::compact4(ws.map(memscan::braceish_lanes)) & !inside;
                                let comma32 =
                                    || memscan::compact4(ws.map(memscan::comma_lanes)) & !inside;
                                let mut commas = 0u32;
                                let mut v = braces;
                                if *depth == 0 {
                                    commas = comma32();
                                    v |= commas;
                                }
                                while v != 0 {
                                    let k = v.trailing_zeros() as usize;
                                    v &= v - 1;
                                    let b = (ws[k / memscan::WORD_BYTES]
                                        >> ((k % memscan::WORD_BYTES) * 8))
                                        as u8;
                                    match b {
                                        b'{' | b'[' => *depth += 1,
                                        b'}' | b']' if *depth > 0 => {
                                            *depth -= 1;
                                            if *depth == 0 {
                                                if commas == 0 {
                                                    commas = comma32();
                                                }
                                                v |= commas & memscan::compact_lanes_after32(k);
                                            }
                                        }
                                        b',' if *depth == 0 => {
                                            term = Some((j + k, b));
                                            break 'scan;
                                        }
                                        b']' => {
                                            term = Some((j + k, b));
                                            break 'scan;
                                        }
                                        // A stray `}` at depth 0 (and a
                                        // comma armed at stride start
                                        // but reached at depth > 0) is
                                        // content for the parser.
                                        _ => {}
                                    }
                                }
                                *in_string ^= q.count_ones() & 1 == 1;
                                j += 4 * memscan::WORD_BYTES;
                                continue;
                            }
                        }
                        if j + memscan::WORD_BYTES <= chunk.len() {
                            let w = memscan::load_word(&chunk[j..]);
                            if memscan::backslash_lanes(w) == 0 {
                                // Quote-parity fast path (the norm —
                                // Atlas JSON rarely escapes anything):
                                // with no backslash in the word, string
                                // membership is pure quote parity, so
                                // the in-string mask comes from one
                                // prefix-XOR and quotes are never
                                // visited at all. Only braces (and, at
                                // depth 0, commas) outside strings are
                                // walked for depth/terminator tracking.
                                let q = memscan::compact(memscan::quote_lanes(w));
                                let inside =
                                    memscan::prefix_xor(q) ^ if *in_string { 0xFF } else { 0 };
                                let braces = memscan::compact(memscan::braceish_lanes(w)) & !inside;
                                let commas = memscan::compact(memscan::comma_lanes(w)) & !inside;
                                let mut v = braces;
                                if *depth == 0 {
                                    v |= commas;
                                }
                                while v != 0 {
                                    let k = v.trailing_zeros() as usize;
                                    v &= v - 1;
                                    let b = (w >> (k * 8)) as u8;
                                    match b {
                                        b'{' | b'[' => *depth += 1,
                                        b'}' | b']' if *depth > 0 => {
                                            *depth -= 1;
                                            if *depth == 0 {
                                                v |= commas & memscan::compact_lanes_after(k);
                                            }
                                        }
                                        b',' if *depth == 0 => {
                                            term = Some((j + k, b));
                                            break 'scan;
                                        }
                                        b']' => {
                                            term = Some((j + k, b));
                                            break 'scan;
                                        }
                                        // A stray `}` at depth 0 (and a
                                        // comma armed at word start but
                                        // reached at depth > 0) is
                                        // content for the parser.
                                        _ => {}
                                    }
                                }
                                *in_string ^= q.count_ones() & 1 == 1;
                                j += memscan::WORD_BYTES;
                                continue;
                            }
                            // Escape-bearing word: walk every relevant
                            // lane sequentially, tracking string and
                            // escape state byte-exactly. Comma lanes
                            // join the walk only while a comma could
                            // terminate the element (depth 0); the
                            // depth>0→0 transition below re-arms the
                            // word's remaining comma lanes.
                            let mut m = memscan::json_scan_mask_nocomma(w);
                            if *depth == 0 {
                                m |= memscan::comma_lanes(w);
                            }
                            while m != 0 {
                                let k = memscan::first_lane(m);
                                m &= m - 1;
                                let b = (w >> (k * 8)) as u8;
                                if *in_string {
                                    match b {
                                        b'"' => *in_string = false,
                                        b'\\' => {
                                            // Drop the escaped byte's
                                            // lane (it may be a quote
                                            // or another backslash); if
                                            // the backslash is the last
                                            // lane, the escape crosses
                                            // into the next word.
                                            if k + 1 < memscan::WORD_BYTES {
                                                m &= !memscan::lane_bit(k + 1);
                                            } else {
                                                *escape = true;
                                            }
                                        }
                                        _ => {}
                                    }
                                } else {
                                    match b {
                                        b'"' => *in_string = true,
                                        b'{' | b'[' => *depth += 1,
                                        b'}' | b']' if *depth > 0 => {
                                            *depth -= 1;
                                            if *depth == 0 {
                                                m |= memscan::comma_lanes(w)
                                                    & memscan::lanes_after(k);
                                            }
                                        }
                                        // At depth 0 a comma ends the
                                        // element and a `]` ends both
                                        // the element and the array. A
                                        // stray `}` or `\` is content
                                        // for the parser to reject.
                                        b',' if *depth == 0 => {
                                            term = Some((j + k, b));
                                            break 'scan;
                                        }
                                        b']' => {
                                            term = Some((j + k, b));
                                            break 'scan;
                                        }
                                        _ => {}
                                    }
                                }
                            }
                            j += memscan::WORD_BYTES;
                        } else {
                            // Sub-word tail: same state machine, byte
                            // at a time.
                            let b = chunk[j];
                            if *in_string {
                                match b {
                                    b'"' => *in_string = false,
                                    b'\\' => *escape = true,
                                    _ => {}
                                }
                            } else {
                                match b {
                                    b'"' => *in_string = true,
                                    b'{' | b'[' => *depth += 1,
                                    b'}' | b']' if *depth > 0 => *depth -= 1,
                                    b',' if *depth == 0 => {
                                        term = Some((j, b));
                                        break 'scan;
                                    }
                                    b']' => {
                                        term = Some((j, b));
                                        break 'scan;
                                    }
                                    _ => {}
                                }
                            }
                            j += 1;
                        }
                    }
                    match term {
                        Some((t, b)) => {
                            let in_chunk = &chunk[start..t];
                            let doc: &[u8] = if self.pending.is_empty() {
                                trim_line(in_chunk)
                            } else {
                                self.pending.extend_from_slice(in_chunk);
                                trim_line(&self.pending)
                            };
                            if !doc.is_empty() {
                                emit(Frame::Doc {
                                    offset: self.doc_offset,
                                    bytes: doc,
                                });
                            }
                            self.pending.clear();
                            self.state = if b == b']' {
                                State::Closed { reported: false }
                            } else {
                                State::Separators
                            };
                            self.pos += (t + 1 - start) as u64;
                            i = t + 1;
                        }
                        None => {
                            // The element continues into the next chunk:
                            // only now do its bytes hit the carry buffer.
                            self.pending.extend_from_slice(&chunk[start..]);
                            self.pos += (chunk.len() - start) as u64;
                            i = chunk.len();
                        }
                    }
                }
                State::Closed { reported } => {
                    let rest = &chunk[i..];
                    match rest.iter().position(|&b| !b.is_ascii_whitespace()) {
                        Some(j) if !*reported => {
                            emit(Frame::Junk {
                                offset: self.pos + j as u64,
                                bytes: &rest[j..],
                                reason: TRAILING_CONTENT,
                            });
                            *reported = true;
                        }
                        _ => {}
                    }
                    self.pos += rest.len() as u64;
                    i = chunk.len();
                }
            }
        }
    }

    /// Flush the end of the input: the final newline-less line is a
    /// document; an unfinished array element is junk (truncated).
    pub fn finish(self, emit: &mut dyn FnMut(Frame<'_>)) {
        match self.state {
            State::Start { matched_bom } => {
                // Only whitespace (and possibly a BOM prefix) was seen. A
                // partial BOM is content — surface it for the parser.
                if matched_bom > 0 && matched_bom < 3 {
                    emit(Frame::Doc {
                        offset: self.pos - matched_bom as u64,
                        bytes: &BOM[..matched_bom],
                    });
                }
            }
            State::Lines => {
                let line = trim_line(&self.pending);
                if !line.is_empty() {
                    emit(Frame::Doc {
                        offset: self.doc_offset,
                        bytes: line,
                    });
                }
            }
            State::Element { .. } => {
                let doc = trim_line(&self.pending);
                if !doc.is_empty() {
                    emit(Frame::Junk {
                        offset: self.doc_offset,
                        bytes: doc,
                        reason: TRUNCATED_DOC,
                    });
                }
            }
            // A missing final `]` after complete elements is tolerated
            // (routine truncation), and a closed array ends cleanly.
            State::Separators | State::Closed { .. } => {}
        }
    }

    /// Frame a complete in-memory input in one call.
    pub fn split_all(input: &[u8], emit: &mut dyn FnMut(Frame<'_>)) {
        let mut splitter = DocSplitter::new();
        splitter.feed(input, emit);
        splitter.finish(emit);
    }
}

/// Strip surrounding ASCII whitespace (covers the `\r` of CRLF input).
fn trim_line(bytes: &[u8]) -> &[u8] {
    let start = bytes
        .iter()
        .position(|b| !b.is_ascii_whitespace())
        .unwrap_or(bytes.len());
    let end = bytes
        .iter()
        .rposition(|b| !b.is_ascii_whitespace())
        .map_or(start, |e| e + 1);
    &bytes[start..end]
}

#[cfg(test)]
mod tests {
    use super::*;

    type OwnedDocs = Vec<(u64, Vec<u8>)>;
    type OwnedJunk = Vec<(u64, Vec<u8>, String)>;

    /// Collect (offset, doc) and (offset, junk, reason) frames, feeding
    /// the input in chunks of `chunk` bytes.
    fn split(input: &[u8], chunk: usize) -> (OwnedDocs, OwnedJunk) {
        let mut docs = Vec::new();
        let mut junk = Vec::new();
        let mut splitter = DocSplitter::new();
        let mut emit = |frame: Frame<'_>| match frame {
            Frame::Doc { offset, bytes } => docs.push((offset, bytes.to_vec())),
            Frame::Junk {
                offset,
                bytes,
                reason,
            } => junk.push((offset, bytes.to_vec(), reason.to_string())),
        };
        for piece in input.chunks(chunk.max(1)) {
            splitter.feed(piece, &mut emit);
        }
        splitter.finish(&mut emit);
        (docs, junk)
    }

    fn docs_only(input: &[u8], chunk: usize) -> Vec<String> {
        let (docs, junk) = split(input, chunk);
        assert!(junk.is_empty(), "unexpected junk: {junk:?}");
        docs.iter()
            .map(|(_, d)| String::from_utf8(d.clone()).unwrap())
            .collect()
    }

    #[test]
    fn lines_basic_with_offsets() {
        let input = b"{\"a\":1}\n\n  \n{\"b\":2}\n";
        for chunk in [1, 2, 3, 7, 100] {
            let (docs, junk) = split(input, chunk);
            assert!(junk.is_empty());
            assert_eq!(
                docs,
                vec![(0, b"{\"a\":1}".to_vec()), (12, b"{\"b\":2}".to_vec())],
                "chunk={chunk}"
            );
        }
    }

    #[test]
    fn lines_crlf_and_missing_final_newline() {
        assert_eq!(
            docs_only(b"{\"a\":1}\r\n{\"b\":2}", 3),
            ["{\"a\":1}", "{\"b\":2}"]
        );
    }

    #[test]
    fn bom_is_skipped_in_both_modes() {
        assert_eq!(docs_only(b"\xEF\xBB\xBF{\"a\":1}\n", 1), ["{\"a\":1}"]);
        assert_eq!(docs_only(b"\xEF\xBB\xBF[1,2]", 2), ["1", "2"]);
    }

    #[test]
    fn partial_bom_is_content() {
        let (docs, junk) = split(b"\xEF\xBB", 1);
        assert!(junk.is_empty());
        assert_eq!(docs, vec![(0, vec![0xEF, 0xBB])]);
        // A BOM prefix followed by other bytes becomes a line.
        let (docs, _) = split(b"\xEFoops\n", 2);
        assert_eq!(docs, vec![(0, b"\xEFoops".to_vec())]);
    }

    #[test]
    fn array_elements_with_nesting_strings_and_escapes() {
        let input = br#"[ {"a":[1,2],"s":"x,]}"} , {"b":"\"],"} , 3.5, null ]"#;
        for chunk in [1, 2, 5, 13, 100] {
            assert_eq!(
                docs_only(input, chunk),
                [
                    r#"{"a":[1,2],"s":"x,]}"}"#,
                    r#"{"b":"\"],"}"#,
                    "3.5",
                    "null"
                ],
                "chunk={chunk}"
            );
        }
    }

    #[test]
    fn array_offsets_point_at_elements() {
        let (docs, _) = split(b"[10, 20]", 100);
        assert_eq!(docs, vec![(1, b"10".to_vec()), (5, b"20".to_vec())]);
    }

    #[test]
    fn empty_inputs_and_empty_arrays() {
        for input in [
            &b""[..],
            b"   \n\t ",
            b"[]",
            b"[ ]",
            b"[ , , ]",
            b"\xEF\xBB\xBF",
        ] {
            let (docs, junk) = split(input, 1);
            assert!(docs.is_empty(), "{input:?}");
            assert!(junk.is_empty(), "{input:?}");
        }
    }

    #[test]
    fn truncated_final_element_is_junk() {
        let (docs, junk) = split(br#"[{"a":1},{"b":"#, 4);
        assert_eq!(docs, vec![(1, b"{\"a\":1}".to_vec())]);
        assert_eq!(junk.len(), 1);
        assert_eq!(junk[0].0, 9);
        assert_eq!(junk[0].1, b"{\"b\":".to_vec());
        assert_eq!(junk[0].2, TRUNCATED_DOC);
        // Truncation inside a string literal as well.
        let (_, junk) = split(br#"[{"a":"unterminated"#, 100);
        assert_eq!(junk.len(), 1);
        assert_eq!(junk[0].2, TRUNCATED_DOC);
    }

    #[test]
    fn missing_final_bracket_after_complete_element_is_tolerated() {
        let (docs, junk) = split(br#"[{"a":1},"#, 3);
        assert_eq!(docs.len(), 1);
        assert!(junk.is_empty());
    }

    #[test]
    fn content_after_array_close_is_junk() {
        let (docs, junk) = split(b"[1] trailing", 100);
        assert_eq!(docs, vec![(1, b"1".to_vec())]);
        assert_eq!(junk.len(), 1);
        assert_eq!(junk[0].0, 4);
        assert_eq!(junk[0].1, b"trailing".to_vec());
        assert_eq!(junk[0].2, TRAILING_CONTENT);
    }

    #[test]
    fn garbage_between_elements_is_framed_for_the_parser() {
        // Framing is lenient: `oops` becomes a document the JSON parser
        // rejects, so only that record is lost.
        assert_eq!(docs_only(b"[1, oops, 2]", 2), ["1", "oops", "2"]);
    }

    #[test]
    fn kind_is_reported() {
        let mut s = DocSplitter::new();
        assert_eq!(s.kind(), None);
        s.feed(b"  [", &mut |_| {});
        assert_eq!(s.kind(), Some(FrameKind::Array));
        let mut s = DocSplitter::new();
        s.feed(b"{\"a\":1}", &mut |_| {});
        assert_eq!(s.kind(), Some(FrameKind::Lines));
    }

    #[test]
    fn bulk_scanner_boundaries_are_chunk_invariant() {
        // Inputs aimed at the word-stride scanner's edges: a backslash
        // as the last byte of a feed, escaped quotes landing on 8-byte
        // word boundaries, commas excluded at depth, and structural
        // bytes at every lane of the first word. Every chunk size from
        // 1 up must frame identically to a whole-input feed.
        let adversarial: &[&[u8]] = &[
            br#"[{"e":"\\"},{"e":"\\\\"}]"#,
            br#"[{"q":"\"\"\"\"\"\"\""}]"#,
            br#"[{"pad":"xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"},{"a":1}]"#,
            br#"[{"d":[[[[[[[[[[1]]]]]]]]]]},{"m":{"a":1,"b":2,"c":3}}]"#,
            b"{\"e\":\"\\\\\"}\n{\"q\":\"\\\"\"}\n",
            b"{\"a\":\"12345678\"}\r\n{\"b\":\"123456\"}\r\n",
        ];
        for input in adversarial {
            let whole = split(input, usize::MAX);
            for chunk in 1..=input.len() {
                assert_eq!(
                    split(input, chunk),
                    whole,
                    "chunk={chunk} input={:?}",
                    String::from_utf8_lossy(input)
                );
            }
        }
    }
}
