//! # lastmile-atlas
//!
//! A faithful data model of the parts of the RIPE Atlas platform the
//! IMC 2020 paper consumes: probes and anchors, the 22 IPv4 *built-in*
//! traceroute measurements, traceroute results with per-hop RTT triples,
//! and (de)serialization of the Atlas API's JSON wire format.
//!
//! The paper "recycles the numerous public measurement data offered by
//! Atlas": every probe runs the built-ins towards all root DNS servers and
//! the Atlas controllers every 30 minutes, plus two randomly selected
//! addresses every 15 minutes — 24 traceroutes per probe per 30-minute
//! bin, each hop answered by three RTT replies (§2). This crate models
//! that supply side; the analysis lives in `lastmile-core` and the
//! *network* being measured is simulated by `lastmile-netsim`.
//!
//! Modules:
//!
//! * [`probe`] — probe identity: hardware version (v1/v2/v3), anchor flag,
//!   AS and country, public address, geographic tag.
//! * [`traceroute`] — measurement results: hops, replies, timeouts.
//! * [`measurement`] — the built-in measurement catalogue and its
//!   deterministic schedule (which traceroutes exist in a time range).
//! * [`json`] — the Atlas API JSON format (`prb_id`, `msm_id`, `result`
//!   arrays with `from`/`rtt` or `x: "*"` entries), round-trippable.
//! * [`framing`] — incremental splitting of JSON Lines / JSON array
//!   inputs into record-aligned document frames, for streaming ingest.
//!
//! ## Example
//!
//! ```
//! use lastmile_atlas::measurement::BuiltinCatalogue;
//! use lastmile_timebase::{BinSpec, TimeRange, UnixTime};
//!
//! let catalogue = BuiltinCatalogue::standard();
//! assert_eq!(catalogue.len(), 22); // the paper's "22 IPv4 built-ins"
//!
//! // Any probe runs 24 built-in traceroutes per 30-minute bin.
//! let bin = TimeRange::new(UnixTime::from_secs(0), UnixTime::from_secs(1800));
//! let n = catalogue.schedule(lastmile_atlas::ProbeId(1), &bin).count();
//! assert_eq!(n, 24);
//! ```

pub mod framing;
pub mod json;
pub mod measurement;
pub mod probe;
pub mod traceroute;

pub use measurement::{BuiltinCatalogue, MeasurementId, ScheduledRun, TargetKind};
pub use probe::{Probe, ProbeId, ProbeVersion};
pub use traceroute::{Hop, Reply, TracerouteResult};
