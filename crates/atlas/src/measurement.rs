//! The built-in measurement catalogue and schedule.
//!
//! §2 of the paper: "We fetched data from the 22 IPv4 built-in traceroute
//! measurements to obtain a steady number of RTT samples. These
//! measurements are executed by all probes towards all root DNS servers
//! and RIPE Atlas controllers every 30 minutes, and two randomly selected
//! addresses every 15 minutes." And §2.1: "every 30 minutes we obtain 24
//! traceroutes".
//!
//! The catalogue therefore contains:
//!
//! * 13 root DNS server targets, every 30 minutes;
//! *  7 Atlas controller/infrastructure targets, every 30 minutes;
//! *  2 "random address" measurements, every 15 minutes (firing twice per
//!    30-minute bin).
//!
//! 13 + 7 = 20 runs at the 30-minute cadence plus 2 × 2 runs at the
//! 15-minute cadence = **24 traceroutes per probe per 30-minute bin**,
//! from **22** measurement definitions — both of the paper's numbers.
//!
//! Scheduling is deterministic: each (probe, measurement) pair gets a
//! stable pseudo-random phase offset inside its period, mirroring how
//! Atlas spreads built-in load rather than firing all probes in sync.

use crate::probe::ProbeId;
use lastmile_timebase::{TimeRange, UnixTime};
use serde::{Deserialize, Serialize};
use std::net::{IpAddr, Ipv4Addr};

/// An Atlas measurement identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
#[serde(transparent)]
pub struct MeasurementId(pub u32);

/// What kind of target a built-in measurement probes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum TargetKind {
    /// One of the 13 root DNS servers (a-m).
    RootDns(u8),
    /// RIPE Atlas controller / infrastructure.
    Controller(u8),
    /// The "two randomly selected addresses" measurements.
    RandomAddress(u8),
}

/// One built-in measurement definition.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BuiltinMeasurement {
    /// Measurement id (stable, Atlas-style 5xxx).
    pub id: MeasurementId,
    /// Target class.
    pub kind: TargetKind,
    /// Destination address probed.
    pub target: IpAddr,
    /// Period between runs, in seconds (1800 or 900).
    pub period_secs: i64,
}

/// One scheduled traceroute execution.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ScheduledRun {
    /// The measurement being run.
    pub msm_id: MeasurementId,
    /// Target class of the measurement.
    pub kind: TargetKind,
    /// Destination address.
    pub target: IpAddr,
    /// When the traceroute starts.
    pub at: UnixTime,
}

impl BuiltinMeasurement {
    /// Address family of the target (4 or 6).
    pub fn af(&self) -> u8 {
        if self.target.is_ipv4() {
            4
        } else {
            6
        }
    }
}

impl ScheduledRun {
    /// Address family of the target (4 or 6).
    pub fn af(&self) -> u8 {
        if self.target.is_ipv4() {
            4
        } else {
            6
        }
    }
}

/// The full built-in catalogue.
#[derive(Clone, Debug)]
pub struct BuiltinCatalogue {
    measurements: Vec<BuiltinMeasurement>,
}

impl BuiltinCatalogue {
    /// The standard 22-measurement catalogue described in the paper.
    ///
    /// Target addresses are synthetic but stable; what matters to the
    /// pipeline is their count and cadence, not their values.
    pub fn standard() -> BuiltinCatalogue {
        let mut measurements = Vec::with_capacity(22);
        // 13 root DNS servers, every 30 minutes (msm 5001..5013).
        for i in 0..13u8 {
            measurements.push(BuiltinMeasurement {
                id: MeasurementId(5001 + u32::from(i)),
                kind: TargetKind::RootDns(i),
                target: IpAddr::V4(Ipv4Addr::new(193, 0, 14, 129 + i)),
                period_secs: 1800,
            });
        }
        // 7 controllers, every 30 minutes (msm 5020..5026).
        for i in 0..7u8 {
            measurements.push(BuiltinMeasurement {
                id: MeasurementId(5020 + u32::from(i)),
                kind: TargetKind::Controller(i),
                target: IpAddr::V4(Ipv4Addr::new(193, 0, 19, 1 + i)),
                period_secs: 1800,
            });
        }
        // 2 random-address measurements, every 15 minutes (msm 5051, 5052).
        for i in 0..2u8 {
            measurements.push(BuiltinMeasurement {
                id: MeasurementId(5051 + u32::from(i)),
                kind: TargetKind::RandomAddress(i),
                target: IpAddr::V4(Ipv4Addr::new(193, 0, 21, 1 + i)),
                period_secs: 900,
            });
        }
        BuiltinCatalogue { measurements }
    }

    /// The IPv6 built-in catalogue: the 13 root DNS servers probed over
    /// IPv6 every 30 minutes (Atlas msm 6001–6013). Only probes with IPv6
    /// connectivity run these; the paper's delay analysis uses the IPv4
    /// set, but the platform (and this model) carries both.
    pub fn standard_v6() -> BuiltinCatalogue {
        let mut measurements = Vec::with_capacity(13);
        for i in 0..13u8 {
            let bits: u128 = (0x2001_0500u128 << 96) | u128::from(i);
            measurements.push(BuiltinMeasurement {
                id: MeasurementId(6001 + u32::from(i)),
                kind: TargetKind::RootDns(i),
                target: IpAddr::V6(std::net::Ipv6Addr::from(bits)),
                period_secs: 1800,
            });
        }
        BuiltinCatalogue { measurements }
    }

    /// Number of measurement definitions (22 for the standard catalogue).
    pub fn len(&self) -> usize {
        self.measurements.len()
    }

    /// Whether the catalogue is empty.
    pub fn is_empty(&self) -> bool {
        self.measurements.is_empty()
    }

    /// The measurement definitions.
    pub fn measurements(&self) -> &[BuiltinMeasurement] {
        &self.measurements
    }

    /// Expected traceroutes per probe per 30-minute bin (24 for the
    /// standard catalogue).
    pub fn runs_per_30min(&self) -> usize {
        self.measurements
            .iter()
            .map(|m| (1800 / m.period_secs) as usize)
            .sum()
    }

    /// All runs of all measurements for `probe` within `window`, in
    /// chronological order.
    ///
    /// Each (probe, measurement) pair runs with a stable phase offset
    /// inside its period so a fleet of probes does not fire synchronously
    /// (as on the real platform).
    pub fn schedule(
        &self,
        probe: ProbeId,
        window: &TimeRange,
    ) -> impl Iterator<Item = ScheduledRun> + '_ {
        let window = *window;
        let mut runs: Vec<ScheduledRun> = self
            .measurements
            .iter()
            .flat_map(move |m| {
                let phase = phase_offset(probe, m.id, m.period_secs);
                // First run at or after window.start with this phase.
                let start = window.start().as_secs();
                let k = (start - phase).div_euclid(m.period_secs)
                    + i64::from((start - phase).rem_euclid(m.period_secs) != 0);
                let first = k * m.period_secs + phase;
                (0..)
                    .map(move |j| UnixTime::from_secs(first + j * m.period_secs))
                    .take_while(move |t| window.contains(*t))
                    .map(move |t| ScheduledRun {
                        msm_id: m.id,
                        kind: m.kind,
                        target: m.target,
                        at: t,
                    })
            })
            .collect();
        runs.sort_by_key(|r| (r.at, r.msm_id));
        runs.into_iter()
    }
}

/// Deterministic per-(probe, measurement) phase in `[0, period)`.
fn phase_offset(probe: ProbeId, msm: MeasurementId, period: i64) -> i64 {
    let mut x = (u64::from(probe.0) << 32) ^ u64::from(msm.0);
    // splitmix64 scramble.
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^= x >> 31;
    (x % period as u64) as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_catalogue_matches_paper_counts() {
        let c = BuiltinCatalogue::standard();
        assert_eq!(c.len(), 22);
        assert_eq!(c.runs_per_30min(), 24);
        let roots = c
            .measurements()
            .iter()
            .filter(|m| matches!(m.kind, TargetKind::RootDns(_)))
            .count();
        assert_eq!(roots, 13);
    }

    #[test]
    fn msm_ids_are_unique() {
        let c = BuiltinCatalogue::standard();
        let mut ids: Vec<u32> = c.measurements().iter().map(|m| m.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 22);
    }

    #[test]
    fn v6_catalogue_has_13_roots_at_30min() {
        let c = BuiltinCatalogue::standard_v6();
        assert_eq!(c.len(), 13);
        assert!(c.measurements().iter().all(|m| m.af() == 6));
        assert!(c.measurements().iter().all(|m| m.period_secs == 1800));
        assert_eq!(c.runs_per_30min(), 13);
        let w = TimeRange::new(UnixTime::from_secs(0), UnixTime::from_secs(1800));
        assert_eq!(c.schedule(ProbeId(4), &w).count(), 13);
        // Disjoint id space from the v4 catalogue.
        let v4: std::collections::BTreeSet<u32> = BuiltinCatalogue::standard()
            .measurements()
            .iter()
            .map(|m| m.id.0)
            .collect();
        assert!(c.measurements().iter().all(|m| !v4.contains(&m.id.0)));
    }

    #[test]
    fn af_accessor() {
        let v4 = BuiltinCatalogue::standard();
        assert!(v4.measurements().iter().all(|m| m.af() == 4));
    }

    #[test]
    fn thirty_minute_bin_has_24_runs() {
        let c = BuiltinCatalogue::standard();
        for probe in [1u32, 42, 9999] {
            for bin_start in [0i64, 1800, 86_400] {
                let w = TimeRange::new(
                    UnixTime::from_secs(bin_start),
                    UnixTime::from_secs(bin_start + 1800),
                );
                let n = c.schedule(ProbeId(probe), &w).count();
                assert_eq!(n, 24, "probe {probe} bin {bin_start}");
            }
        }
    }

    #[test]
    fn one_day_has_1152_runs() {
        let c = BuiltinCatalogue::standard();
        let w = TimeRange::new(UnixTime::from_secs(0), UnixTime::from_secs(86_400));
        assert_eq!(c.schedule(ProbeId(7), &w).count(), 48 * 24);
    }

    #[test]
    fn schedule_is_deterministic_and_probe_dependent() {
        let c = BuiltinCatalogue::standard();
        let w = TimeRange::new(UnixTime::from_secs(0), UnixTime::from_secs(3600));
        let a: Vec<_> = c.schedule(ProbeId(1), &w).collect();
        let b: Vec<_> = c.schedule(ProbeId(1), &w).collect();
        assert_eq!(a, b, "same probe must schedule identically");
        let other: Vec<_> = c.schedule(ProbeId(2), &w).collect();
        assert_eq!(a.len(), other.len());
        assert_ne!(
            a.iter().map(|r| r.at).collect::<Vec<_>>(),
            other.iter().map(|r| r.at).collect::<Vec<_>>(),
            "different probes must be phase-shifted"
        );
    }

    #[test]
    fn runs_are_chronological_and_inside_window() {
        let c = BuiltinCatalogue::standard();
        let w = TimeRange::new(UnixTime::from_secs(10_000), UnixTime::from_secs(20_000));
        let runs: Vec<_> = c.schedule(ProbeId(3), &w).collect();
        assert!(!runs.is_empty());
        for r in &runs {
            assert!(w.contains(r.at));
        }
        for pair in runs.windows(2) {
            assert!(pair[0].at <= pair[1].at);
        }
    }

    #[test]
    fn fifteen_minute_measurements_fire_twice_per_bin() {
        let c = BuiltinCatalogue::standard();
        let w = TimeRange::new(UnixTime::from_secs(0), UnixTime::from_secs(1800));
        let random_runs = c
            .schedule(ProbeId(11), &w)
            .filter(|r| matches!(r.kind, TargetKind::RandomAddress(_)))
            .count();
        assert_eq!(random_runs, 4); // 2 measurements x 2 firings
    }

    #[test]
    fn empty_window_schedules_nothing() {
        let c = BuiltinCatalogue::standard();
        let w = TimeRange::new(UnixTime::from_secs(100), UnixTime::from_secs(100));
        assert_eq!(c.schedule(ProbeId(1), &w).count(), 0);
    }
}
