//! Probe identity and metadata.
//!
//! Three probe properties matter to the paper's filtering rules:
//!
//! * **anchors** are excluded — "this type of probe is usually located in
//!   datacenters, thus without a typical last-mile connectivity" (§2); the
//!   only use of anchors is Appendix B's probes-vs-anchor comparison;
//! * **hardware version** — "v1 and v2 probes can be less reliable"; the
//!   paper includes them for coverage in the large-scale survey (§3) but
//!   avoids them in the Tokyo case study (§4);
//! * **location** — §4 selects only probes in the Greater Tokyo Area, via
//!   a geographic tag.

use lastmile_prefix::Asn;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::IpAddr;

/// A RIPE Atlas probe identifier.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct ProbeId(pub u32);

impl fmt::Display for ProbeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "prb{}", self.0)
    }
}

/// Probe hardware generations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum ProbeVersion {
    /// First generation (Lantronix); least reliable timing.
    V1,
    /// Second generation; also flagged as less reliable by prior work.
    V2,
    /// Third generation and later (TP-Link/NanoPi); the reliable baseline.
    V3,
}

impl ProbeVersion {
    /// Whether prior work flags this generation's timing as less reliable
    /// ("v1 and v2 probes can be less reliable", citing Holterbach et al.).
    pub fn is_less_reliable(self) -> bool {
        matches!(self, ProbeVersion::V1 | ProbeVersion::V2)
    }
}

/// Static metadata of one probe.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Probe {
    /// Probe identifier.
    pub id: ProbeId,
    /// Origin AS of the probe's public IPv4 address.
    pub asn: Asn,
    /// ISO 3166-1 alpha-2 country code, e.g. `JP`.
    pub country: String,
    /// Free-form geographic area tag (the paper uses the Greater Tokyo
    /// Area: Tokyo, Yokohama, Chiba, Saitama). Empty when unknown.
    pub area: String,
    /// Whether this is an Atlas *anchor* (datacenter-hosted).
    pub is_anchor: bool,
    /// Hardware generation.
    pub version: ProbeVersion,
    /// The probe's public IPv4 address, used for the longest-prefix-match
    /// ASN resolution when the first public hop is not announced in BGP.
    pub public_addr: IpAddr,
}

impl Probe {
    /// Whether the probe qualifies for last-mile analysis at all
    /// (anchors never do).
    pub fn has_last_mile(&self) -> bool {
        !self.is_anchor
    }

    /// Whether the probe is inside the given area tag (case-insensitive).
    pub fn in_area(&self, area: &str) -> bool {
        self.area.eq_ignore_ascii_case(area)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe(id: u32) -> Probe {
        Probe {
            id: ProbeId(id),
            asn: 64500,
            country: "JP".to_string(),
            area: "Tokyo".to_string(),
            is_anchor: false,
            version: ProbeVersion::V3,
            public_addr: "20.0.0.1".parse().unwrap(),
        }
    }

    #[test]
    fn anchors_have_no_last_mile() {
        let mut p = probe(1);
        assert!(p.has_last_mile());
        p.is_anchor = true;
        assert!(!p.has_last_mile());
    }

    #[test]
    fn version_reliability_flags() {
        assert!(ProbeVersion::V1.is_less_reliable());
        assert!(ProbeVersion::V2.is_less_reliable());
        assert!(!ProbeVersion::V3.is_less_reliable());
    }

    #[test]
    fn area_matching_is_case_insensitive() {
        let p = probe(1);
        assert!(p.in_area("tokyo"));
        assert!(p.in_area("Tokyo"));
        assert!(!p.in_area("Yokohama"));
    }

    #[test]
    fn probe_id_display_and_serde() {
        let id = ProbeId(6042);
        assert_eq!(id.to_string(), "prb6042");
        let json = serde_json::to_string(&id).unwrap();
        assert_eq!(json, "6042"); // transparent: bare number like Atlas
        assert_eq!(serde_json::from_str::<ProbeId>("6042").unwrap(), id);
    }

    #[test]
    fn probe_serde_round_trip() {
        let p = probe(77);
        let json = serde_json::to_string(&p).unwrap();
        let back: Probe = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
