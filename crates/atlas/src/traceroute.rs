//! Traceroute results.
//!
//! A traceroute is a sequence of hops; each hop gets (up to) three probe
//! packets, each answered by a reply carrying a source address and an RTT,
//! or lost (`*`). The paper's last-mile estimator (in `lastmile-core`)
//! needs the *last private* and *first public* hops with their reply RTTs;
//! this module provides the result model and those hop-classification
//! accessors.

use crate::probe::ProbeId;
use lastmile_prefix::special;
use lastmile_timebase::UnixTime;
use std::net::IpAddr;

/// One reply to one traceroute packet.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Reply {
    /// Source address of the ICMP reply; `None` for a timeout (`*`).
    pub from: Option<IpAddr>,
    /// Round-trip time in milliseconds; `None` for a timeout.
    pub rtt_ms: Option<f64>,
}

impl Reply {
    /// A reply with an address and RTT.
    pub fn answered(from: IpAddr, rtt_ms: f64) -> Reply {
        Reply {
            from: Some(from),
            rtt_ms: Some(rtt_ms),
        }
    }

    /// A timeout (`*` in traceroute output).
    pub fn timeout() -> Reply {
        Reply {
            from: None,
            rtt_ms: None,
        }
    }

    /// Whether this reply carries a usable RTT.
    pub fn is_answered(&self) -> bool {
        self.from.is_some() && self.rtt_ms.is_some()
    }
}

/// One hop of a traceroute: a TTL value and its replies.
#[derive(Clone, PartialEq, Debug)]
pub struct Hop {
    /// 1-based hop number (the TTL used).
    pub hop: u8,
    /// Replies received for this hop (normally 3).
    pub replies: Vec<Reply>,
}

impl Hop {
    /// The consensus responding address of this hop: the first answered
    /// reply's source. Real paths can (rarely) answer from multiple
    /// addresses per hop under load balancing; the built-in measurements
    /// are paris-traceroute so one address per hop is the norm.
    pub fn address(&self) -> Option<IpAddr> {
        self.replies.iter().find_map(|r| r.from)
    }

    /// All usable RTT samples of this hop.
    pub fn rtts(&self) -> impl Iterator<Item = f64> + '_ {
        self.replies.iter().filter_map(|r| r.rtt_ms)
    }

    /// Whether the hop responded at all.
    pub fn responded(&self) -> bool {
        self.replies.iter().any(Reply::is_answered)
    }

    /// Whether the hop's responding address is private/special-use
    /// (RFC1918, CGN, link-local, …). Unresponsive hops are neither
    /// private nor public.
    pub fn is_private(&self) -> bool {
        self.address().is_some_and(|a| !special::is_public(a))
    }

    /// Whether the hop's responding address is publicly routable.
    pub fn is_public(&self) -> bool {
        self.address().is_some_and(special::is_public)
    }
}

/// A complete traceroute result from one probe to one target.
#[derive(Clone, PartialEq, Debug)]
pub struct TracerouteResult {
    /// The probe that ran the measurement.
    pub probe: ProbeId,
    /// Atlas measurement id this run belongs to.
    pub msm_id: u32,
    /// Measurement start time.
    pub timestamp: UnixTime,
    /// Destination address.
    pub dst: IpAddr,
    /// The probe's source address as it sees itself (usually private).
    pub src: IpAddr,
    /// Hops in ascending TTL order.
    pub hops: Vec<Hop>,
}

impl TracerouteResult {
    /// The **last private** hop before the first public hop — the near end
    /// of the paper's last-mile segment. Skips unresponsive hops; returns
    /// `None` if no private hop responded before the first public one.
    pub fn last_private_hop(&self) -> Option<&Hop> {
        let first_pub = self.first_public_index()?;
        self.hops[..first_pub].iter().rev().find(|h| h.is_private())
    }

    /// The **first public** hop — "the first public IP address seen in the
    /// traceroute", the paper's proxy for the ISP edge.
    pub fn first_public_hop(&self) -> Option<&Hop> {
        self.first_public_index().map(|i| &self.hops[i])
    }

    fn first_public_index(&self) -> Option<usize> {
        self.hops.iter().position(Hop::is_public)
    }

    /// The address of the first public hop, if any.
    pub fn edge_address(&self) -> Option<IpAddr> {
        self.first_public_hop()?.address()
    }

    /// Whether the traceroute is usable for last-mile estimation: both a
    /// responding private hop and a following public hop exist.
    pub fn has_last_mile_span(&self) -> bool {
        self.last_private_hop().is_some() && self.first_public_hop().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    fn hop(n: u8, addr: Option<&str>, rtts: &[f64]) -> Hop {
        let replies = match addr {
            Some(a) => rtts.iter().map(|&r| Reply::answered(ip(a), r)).collect(),
            None => vec![Reply::timeout(); 3],
        };
        Hop { hop: n, replies }
    }

    fn tr(hops: Vec<Hop>) -> TracerouteResult {
        TracerouteResult {
            probe: ProbeId(1),
            msm_id: 5001,
            timestamp: UnixTime::from_secs(1_567_296_000),
            dst: ip("20.99.0.1"),
            src: ip("192.168.1.10"),
            hops,
        }
    }

    #[test]
    fn typical_home_path() {
        let t = tr(vec![
            hop(1, Some("192.168.1.1"), &[0.5, 0.6, 0.4]),
            hop(2, Some("20.0.0.1"), &[5.0, 5.5, 4.8]),
            hop(3, Some("20.0.1.1"), &[9.0, 9.2, 8.8]),
        ]);
        assert_eq!(
            t.last_private_hop().unwrap().address(),
            Some(ip("192.168.1.1"))
        );
        assert_eq!(
            t.first_public_hop().unwrap().address(),
            Some(ip("20.0.0.1"))
        );
        assert_eq!(t.edge_address(), Some(ip("20.0.0.1")));
        assert!(t.has_last_mile_span());
    }

    #[test]
    fn cgn_path_uses_deepest_private_hop() {
        // Home router then CGN 100.64/10: the CGN hop is the last private.
        let t = tr(vec![
            hop(1, Some("192.168.1.1"), &[0.5]),
            hop(2, Some("100.64.0.1"), &[2.0]),
            hop(3, Some("20.0.0.1"), &[6.0]),
        ]);
        assert_eq!(
            t.last_private_hop().unwrap().address(),
            Some(ip("100.64.0.1"))
        );
    }

    #[test]
    fn unresponsive_hop_is_skipped() {
        let t = tr(vec![
            hop(1, Some("192.168.1.1"), &[0.5]),
            hop(2, None, &[]),
            hop(3, Some("20.0.0.1"), &[6.0]),
        ]);
        assert_eq!(
            t.last_private_hop().unwrap().address(),
            Some(ip("192.168.1.1"))
        );
        assert_eq!(
            t.first_public_hop().unwrap().address(),
            Some(ip("20.0.0.1"))
        );
    }

    #[test]
    fn all_private_path_has_no_span() {
        let t = tr(vec![
            hop(1, Some("192.168.1.1"), &[0.5]),
            hop(2, Some("10.0.0.1"), &[1.0]),
        ]);
        assert!(t.first_public_hop().is_none());
        assert!(t.last_private_hop().is_none());
        assert!(!t.has_last_mile_span());
    }

    #[test]
    fn public_first_hop_has_no_private_side() {
        // Datacenter-style path (an anchor would look like this).
        let t = tr(vec![
            hop(1, Some("20.0.0.1"), &[0.3]),
            hop(2, Some("20.0.1.1"), &[0.8]),
        ]);
        assert!(t.first_public_hop().is_some());
        assert!(t.last_private_hop().is_none());
        assert!(!t.has_last_mile_span());
    }

    #[test]
    fn private_hop_after_public_is_ignored() {
        // Some transit networks leak private addresses mid-path; the
        // estimator must only consider private hops BEFORE the edge.
        let t = tr(vec![
            hop(1, Some("192.168.1.1"), &[0.5]),
            hop(2, Some("20.0.0.1"), &[6.0]),
            hop(3, Some("10.255.0.1"), &[9.0]),
        ]);
        assert_eq!(
            t.last_private_hop().unwrap().address(),
            Some(ip("192.168.1.1"))
        );
        assert_eq!(
            t.first_public_hop().unwrap().address(),
            Some(ip("20.0.0.1"))
        );
    }

    #[test]
    fn hop_rtt_iteration_skips_timeouts() {
        let mut h = hop(1, Some("192.168.1.1"), &[0.5, 0.7]);
        h.replies.push(Reply::timeout());
        let rtts: Vec<f64> = h.rtts().collect();
        assert_eq!(rtts, vec![0.5, 0.7]);
        assert!(h.responded());
        let dead = hop(2, None, &[]);
        assert!(!dead.responded());
        assert!(!dead.is_private() && !dead.is_public());
    }

    #[test]
    fn empty_traceroute() {
        let t = tr(vec![]);
        assert!(!t.has_last_mile_span());
        assert!(t.edge_address().is_none());
    }
}
