//! Property-based tests for the incremental document splitter: framing
//! must be invariant to how the input is chunked, offsets must always
//! point back into the original bytes, and arbitrary garbage must never
//! panic the state machine.

use lastmile_atlas::framing::{DocSplitter, Frame, FrameKind};
use proptest::prelude::*;

/// An owned frame for comparison across chunkings.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Owned {
    Doc { offset: u64, bytes: Vec<u8> },
    Junk { offset: u64, reason: &'static str },
}

fn own(frame: Frame<'_>) -> Owned {
    match frame {
        Frame::Doc { offset, bytes } => Owned::Doc {
            offset,
            bytes: bytes.to_vec(),
        },
        Frame::Junk { offset, reason, .. } => Owned::Junk { offset, reason },
    }
}

/// Split with one `feed` per chunk; chunk sizes cycle through `sizes`.
fn split_chunked(input: &[u8], sizes: &[usize]) -> (Vec<Owned>, Option<FrameKind>) {
    let mut frames = Vec::new();
    let mut splitter = DocSplitter::new();
    let mut at = 0;
    let mut i = 0;
    while at < input.len() {
        let step = sizes[i % sizes.len()].max(1).min(input.len() - at);
        i += 1;
        splitter.feed(&input[at..at + step], &mut |f| frames.push(own(f)));
        at += step;
    }
    let kind = splitter.kind();
    splitter.finish(&mut |f| frames.push(own(f)));
    (frames, kind)
}

fn split_whole(input: &[u8]) -> (Vec<Owned>, Option<FrameKind>) {
    split_chunked(input, &[usize::MAX])
}

/// A small JSON object document: nested enough to exercise depth
/// tracking, string/escape state, and bracket characters inside strings.
/// Objects only — a document starting with `[` is (correctly) read as a
/// top-level array open, so the lines generator must not produce one.
fn arb_doc() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("{}".to_string()),
        Just(r#"{"a":1}"#.to_string()),
        Just(r#"{"a":[1,{"b":"}]"}]}"#.to_string()),
        Just(r#"{"s":"comma, ] and \" escape"}"#.to_string()),
        Just(r#"{"nested":{"deep":[{"x":[[]]}]}}"#.to_string()),
        prop::collection::vec(b'a'..=b'z', 1..7)
            .prop_map(|s| format!(r#"{{"k":"{}"}}"#, String::from_utf8(s).unwrap())),
        // Adversarial shapes for the bulk scanner: escape runs whose
        // backslashes straddle chunk and word boundaries, strings dense
        // in escaped quotes, nesting deep enough to spend many words
        // inside brackets, and long structural-free runs that must be
        // skipped in full word strides.
        (1usize..40).prop_map(|k| format!(r#"{{"e":"{}"}}"#, r"\\".repeat(k))),
        (1usize..30).prop_map(|k| format!(r#"{{"q":"{}"}}"#, "\\\"".repeat(k))),
        (1usize..40).prop_map(|d| format!(r#"{{"d":{}{}}}"#, "[".repeat(d), "]".repeat(d))),
        (1usize..150).prop_map(|k| format!(r#"{{"pad":"{}"}}"#, "x".repeat(k))),
    ]
}

/// An array element: any object doc, or an array-typed value (legal as
/// an element even though it could not start a JSON Lines document).
fn arb_array_element() -> impl Strategy<Value = String> {
    prop_oneof![
        3 => arb_doc(),
        1 => Just("[]".to_string()),
        1 => Just("[1,2,[3]]".to_string()),
    ]
}

fn arb_chunk_sizes() -> impl Strategy<Value = Vec<usize>> {
    // Sizes deliberately cross the scanner's 8-byte word stride and the
    // 64-byte neighbourhood where a doc both starts and ends inside one
    // word; size 1 forces every state transition across a feed boundary.
    prop::collection::vec(1usize..100, 1..8)
}

/// Assemble a JSON Lines input: optional BOM, docs separated by LF or
/// CRLF, optional whitespace-only lines in between, optional missing
/// final newline.
fn arb_lines_input() -> impl Strategy<Value = (Vec<u8>, Vec<String>)> {
    (
        prop::collection::vec((arb_doc(), any::<bool>(), 0usize..3), 0..6),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(docs, bom, final_newline)| {
            let mut out: Vec<u8> = if bom { vec![0xEF, 0xBB, 0xBF] } else { vec![] };
            let mut expect = Vec::new();
            let n = docs.len();
            for (i, (doc, crlf, blank_lines)) in docs.into_iter().enumerate() {
                for _ in 0..blank_lines {
                    out.extend_from_slice(b"  \n");
                }
                out.extend_from_slice(doc.as_bytes());
                expect.push(doc);
                if i + 1 < n || final_newline {
                    out.extend_from_slice(if crlf { b"\r\n" } else { b"\n" });
                }
            }
            (out, expect)
        })
}

/// Assemble an array-form input: optional BOM, docs separated by commas
/// with random whitespace (including newlines) around them.
fn arb_array_input() -> impl Strategy<Value = (Vec<u8>, Vec<String>)> {
    (
        prop::collection::vec((arb_array_element(), 0usize..3), 0..6),
        any::<bool>(),
    )
        .prop_map(|(docs, bom)| {
            let pad = |k: usize| &"  \n\t \r\n"[..k.min(6)];
            let mut out: Vec<u8> = if bom { vec![0xEF, 0xBB, 0xBF] } else { vec![] };
            out.push(b'[');
            let mut expect = Vec::new();
            for (i, (doc, padding)) in docs.into_iter().enumerate() {
                if i > 0 {
                    out.push(b',');
                }
                out.extend_from_slice(pad(padding).as_bytes());
                out.extend_from_slice(doc.as_bytes());
                expect.push(doc);
            }
            out.extend_from_slice(b" ]");
            (out, expect)
        })
}

proptest! {
    /// Chunking is invisible: any chunk-size sequence yields exactly the
    /// frames and kind of a single whole-input feed.
    #[test]
    fn lines_chunking_is_invariant(
        (input, _) in arb_lines_input(),
        sizes in arb_chunk_sizes(),
    ) {
        prop_assert_eq!(split_chunked(&input, &sizes), split_whole(&input));
    }

    #[test]
    fn array_chunking_is_invariant(
        (input, _) in arb_array_input(),
        sizes in arb_chunk_sizes(),
    ) {
        prop_assert_eq!(split_chunked(&input, &sizes), split_whole(&input));
    }

    /// Every document comes back intact, in order, and its offset points
    /// at exactly those bytes in the original input.
    #[test]
    fn lines_docs_round_trip_with_true_offsets(
        (input, expect) in arb_lines_input(),
        sizes in arb_chunk_sizes(),
    ) {
        let (frames, kind) = split_chunked(&input, &sizes);
        let docs: Vec<&Owned> = frames
            .iter()
            .filter(|f| matches!(f, Owned::Doc { .. }))
            .collect();
        prop_assert_eq!(docs.len(), expect.len());
        for (frame, want) in docs.iter().zip(&expect) {
            let Owned::Doc { offset, bytes } = frame else { unreachable!() };
            prop_assert_eq!(bytes.as_slice(), want.as_bytes());
            let at = *offset as usize;
            prop_assert_eq!(&input[at..at + bytes.len()], want.as_bytes());
        }
        prop_assert!(frames.iter().all(|f| matches!(f, Owned::Doc { .. })));
        if !expect.is_empty() {
            prop_assert_eq!(kind, Some(FrameKind::Lines));
        }
    }

    #[test]
    fn array_docs_round_trip_with_true_offsets(
        (input, expect) in arb_array_input(),
        sizes in arb_chunk_sizes(),
    ) {
        let (frames, kind) = split_chunked(&input, &sizes);
        prop_assert_eq!(kind, Some(FrameKind::Array));
        prop_assert_eq!(frames.len(), expect.len());
        for (frame, want) in frames.iter().zip(&expect) {
            let Owned::Doc { offset, bytes } = frame else {
                panic!("junk frame: {frame:?}");
            };
            prop_assert_eq!(bytes.as_slice(), want.as_bytes());
            let at = *offset as usize;
            prop_assert_eq!(&input[at..at + bytes.len()], want.as_bytes());
        }
    }

    /// Truncating an array input anywhere never loses preceding complete
    /// documents and never fabricates documents the full input lacks.
    #[test]
    fn truncated_arrays_keep_complete_prefix(
        (input, _) in arb_array_input(),
        cut_seed in any::<usize>(),
        sizes in arb_chunk_sizes(),
    ) {
        // Never cut inside the BOM: a partial BOM is surfaced as content
        // by design, which this prefix property does not model.
        let bom = if input.starts_with(&[0xEF, 0xBB, 0xBF]) { 3 } else { 0 };
        let cut = bom + cut_seed % (input.len() + 1 - bom);
        let (full, _) = split_whole(&input);
        let (truncated, _) = split_chunked(&input[..cut], &sizes);
        let full_docs: Vec<&Owned> = full
            .iter()
            .filter(|f| matches!(f, Owned::Doc { .. }))
            .collect();
        let cut_docs: Vec<&Owned> = truncated
            .iter()
            .filter(|f| matches!(f, Owned::Doc { .. }))
            .collect();
        // Every doc recovered from the prefix is a doc of the full input,
        // in order; at most one final junk frame marks the torn tail.
        prop_assert!(cut_docs.len() <= full_docs.len());
        for (a, b) in cut_docs.iter().zip(&full_docs) {
            prop_assert_eq!(*a, *b);
        }
        let junk = truncated
            .iter()
            .filter(|f| matches!(f, Owned::Junk { .. }))
            .count();
        prop_assert!(junk <= 1, "{truncated:?}");
    }

    /// Arbitrary bytes at arbitrary chunkings: no panics, frames stay in
    /// offset order, and every frame's offset lies within the input.
    #[test]
    fn garbage_never_panics_and_offsets_are_sane(
        input in prop::collection::vec(any::<u8>(), 0..300),
        sizes in arb_chunk_sizes(),
    ) {
        let (frames, _) = split_chunked(&input, &sizes);
        let mut last = 0u64;
        for f in &frames {
            let offset = match f {
                Owned::Doc { offset, .. } | Owned::Junk { offset, .. } => *offset,
            };
            prop_assert!(offset >= last, "{frames:?}");
            prop_assert!(offset <= input.len() as u64);
            last = offset;
        }
    }
}

#[test]
fn empty_array_and_whitespace_only_inputs_yield_no_docs() {
    for input in [
        &b"[]"[..],
        b"[ \n ]",
        b"",
        b"   \n \r\n ",
        b"\xEF\xBB\xBF",
        b"\xEF\xBB\xBF[]",
    ] {
        let (frames, _) = split_whole(input);
        assert!(frames.is_empty(), "{:?} -> {frames:?}", input);
    }
}
