//! Figure 2: Welch periodograms of the Figure 1 signals, y-axis
//! normalized to average peak-to-peak amplitude.
//!
//! The paper reads ISP_DE as flat noise and ISP_US as daily-dominated
//! with ~0.4 ms amplitude in 2018–2019 and 1.19 ms in April 2020.
//!
//! Output: `results/fig2.csv` with one spectrum per (ISP, period).

use crate::common::{analyze_many, Ctx};
use lastmile_repro::core::pipeline::PipelineConfig;
use lastmile_repro::dsp::welch::DAILY_CYCLES_PER_HOUR;
use lastmile_repro::netsim::scenarios::examples::{fig1_world, ISP_DE_ASN, ISP_US_ASN};
use lastmile_repro::runner::ProbeSelection;
use lastmile_repro::timebase::MeasurementPeriod;

pub fn run(ctx: &Ctx) {
    let world = fig1_world(ctx.seed);
    let periods = MeasurementPeriod::survey_periods();
    let jobs: Vec<_> = [ISP_DE_ASN, ISP_US_ASN]
        .into_iter()
        .flat_map(|asn| {
            periods
                .iter()
                .map(move |p| (asn, *p, ProbeSelection::regular()))
        })
        .collect();
    eprintln!("[fig2] analysing {} populations...", jobs.len());
    let analyses = analyze_many(&world, &jobs, &PipelineConfig::paper());

    let mut rows = Vec::new();
    println!("Figure 2 — Welch periodograms (peak-to-peak amplitude, ms)\n");
    println!(
        "{:<8} {:<9} {:>14} {:>14} {:>12}",
        "ISP", "period", "daily amp", "prominent f", "daily?"
    );
    for ((asn, period, _), analysis) in jobs.iter().zip(&analyses) {
        let isp = if *asn == ISP_DE_ASN {
            "ISP_DE"
        } else {
            "ISP_US"
        };
        let Some(signal) = analysis.aggregated.contiguous() else {
            println!("{isp:<8} {:<9} (signal too sparse)", period.label());
            continue;
        };
        let cfg = lastmile_repro::dsp::welch::WelchConfig::for_daily_analysis(
            analysis.aggregated.bin().samples_per_hour(),
        );
        let spec = lastmile_repro::dsp::welch::welch_peak_to_peak(&signal, &cfg)
            .expect("contiguous signal analyses");
        for (f, a) in spec.frequencies.iter().zip(&spec.peak_to_peak) {
            rows.push(format!("{isp},{},{f:.6},{a:.5}", period.label()));
        }
        let detection = analysis.detection.as_ref().expect("detection ran");
        println!(
            "{:<8} {:<9} {:>12.3}ms {:>11.4}c/h {:>12}",
            isp,
            period.label(),
            spec.amplitude_near(DAILY_CYCLES_PER_HOUR).unwrap_or(0.0),
            detection.prominent_frequency().unwrap_or(0.0),
            detection.prominent_is_daily,
        );
    }
    ctx.write_csv(
        "fig2.csv",
        "isp,period,freq_cycles_per_hour,p2p_amplitude_ms",
        &rows,
    );
    println!("\npaper's shape: ISP_DE spectra flat; ISP_US daily bin (1/24 c/h) dominant,");
    println!("~0.4 ms in 2018-2019 rising to ~1.19 ms in 2020-04 (classified Mild).");
}
