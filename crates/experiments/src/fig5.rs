//! Figure 5: aggregated last-mile queuing delay for the three major
//! Tokyo eyeball networks, September 19–26 2019, with markers on daily
//! maxima.
//!
//! Output: `results/fig5.csv` (time series) and
//! `results/fig5_maxima.csv` (daily maxima).

use crate::common::{analyze_many, Ctx};
use lastmile_repro::core::pipeline::PipelineConfig;
use lastmile_repro::netsim::scenarios::tokyo::*;
use lastmile_repro::runner::ProbeSelection;
use lastmile_repro::timebase::{CivilDateTime, MeasurementPeriod};

pub fn run(ctx: &Ctx) {
    let world = tokyo_world(ctx.seed);
    let period = MeasurementPeriod::tokyo_cdn_2019();
    let isps = [
        ("ISP_A", ISP_A_ASN),
        ("ISP_B", ISP_B_ASN),
        ("ISP_C", ISP_C_ASN),
    ];
    let jobs: Vec<_> = isps
        .iter()
        .map(|&(_, asn)| (asn, period, ProbeSelection::in_area("Tokyo")))
        .collect();
    eprintln!("[fig5] analysing the Tokyo populations...");
    let analyses = analyze_many(&world, &jobs, &PipelineConfig::paper());

    let mut rows = Vec::new();
    let mut max_rows = Vec::new();
    println!(
        "Figure 5 — aggregated queuing delay in Tokyo ({})\n",
        period.label()
    );
    println!(
        "{:<8} {:>7} {:>12} {:>14}",
        "ISP", "probes", "peak (ms)", "daily maxima"
    );
    for ((name, _), analysis) in isps.iter().zip(&analyses) {
        for (t, v) in analysis.aggregated.iter() {
            if let Some(v) = v {
                rows.push(format!("{name},{},{v:.4}", t.as_secs()));
            }
        }
        let maxima = analysis.aggregated.daily_maxima();
        for (day, v) in &maxima {
            max_rows.push(format!(
                "{name},{},{v:.4}",
                CivilDateTime::from_unix(*day).date
            ));
        }
        let maxima_str: Vec<String> = maxima.iter().map(|(_, v)| format!("{v:.1}")).collect();
        println!(
            "{:<8} {:>7} {:>10.2}ms   [{}]",
            name,
            analysis.probes_used(),
            analysis.aggregated.max().unwrap_or(0.0),
            maxima_str.join(", "),
        );
    }
    ctx.write_csv("fig5.csv", "isp,unix_time,agg_queuing_ms", &rows);
    ctx.write_csv("fig5_maxima.csv", "isp,date,daily_max_ms", &max_rows);
    println!("\npaper's shape: ISP_A (8 probes) and ISP_B (5 probes) rise to several ms at");
    println!("peak hours every day; ISP_C (8 probes) stays an order of magnitude lower.");
}
