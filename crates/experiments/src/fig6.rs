//! Figure 6: median CDN throughput for the Tokyo ISPs in 30-minute bins —
//! broadband (top: ISP_A/ISP_B halve at peak), mobile (middle: steady
//! above 20 Mbps), and ISP_C broadband+mobile (bottom: both flat) — with
//! markers on daily minima.
//!
//! Output: `results/fig6.csv` (series) and `results/fig6_minima.csv`.

use crate::common::Ctx;
use lastmile_repro::cdnlog::throughput::daily_minima;
use lastmile_repro::cdnlog::{
    binned_median_throughput, CdnGeneratorConfig, CdnLogGenerator, LogFilter,
};
use lastmile_repro::netsim::scenarios::tokyo::*;
use lastmile_repro::netsim::ServiceClass;
use lastmile_repro::stats::median;
use lastmile_repro::timebase::{BinSpec, MeasurementPeriod, UnixTime};

pub fn run(ctx: &Ctx) {
    let world = tokyo_world(ctx.seed);
    let period = MeasurementPeriod::tokyo_cdn_2019();
    let cdn = CdnLogGenerator::new(&world, CdnGeneratorConfig::default_tokyo(ctx.seed ^ 0xCD));

    let mut rows = Vec::new();
    let mut min_rows = Vec::new();
    println!("Figure 6 — median throughput (Mbps), 30-minute bins\n");
    println!(
        "{:<8} {:<10} {:>10} {:>12} {:>12}",
        "ISP", "service", "night", "peak(21JST)", "daily minima"
    );
    let series_for = |asn: u32, class: ServiceClass| -> Vec<(UnixTime, f64)> {
        let logs = cdn.generate(asn, class, &period.range());
        let filter = match class {
            ServiceClass::Mobile => LogFilter::paper_mobile(),
            _ => LogFilter::paper_broadband(),
        };
        let kept: Vec<_> = filter.apply(&logs, world.registry()).cloned().collect();
        binned_median_throughput(kept.iter(), BinSpec::thirty_minutes())
    };

    for (name, asn) in [
        ("ISP_A", ISP_A_ASN),
        ("ISP_B", ISP_B_ASN),
        ("ISP_C", ISP_C_ASN),
    ] {
        for (svc, class) in [
            ("broadband", ServiceClass::BroadbandV4),
            ("mobile", ServiceClass::Mobile),
        ] {
            let series = series_for(asn, class);
            for &(t, v) in &series {
                rows.push(format!("{name},{svc},{},{v:.3}", t.as_secs()));
            }
            let minima = daily_minima(&series);
            for &(d, v) in &minima {
                min_rows.push(format!("{name},{svc},{},{v:.3}", d.as_secs()));
            }
            let med_at = |hour: u8| {
                let v: Vec<f64> = series
                    .iter()
                    .filter(|(t, _)| t.hour_of_day() == hour)
                    .map(|&(_, v)| v)
                    .collect();
                median(&v).unwrap_or(f64::NAN)
            };
            let minima_str: Vec<String> = minima.iter().map(|(_, v)| format!("{v:.0}")).collect();
            println!(
                "{:<8} {:<10} {:>9.1} {:>11.1}   [{}]",
                name,
                svc,
                med_at(19), // 04:00 JST
                med_at(12), // 21:00 JST
                minima_str.join(","),
            );
        }
    }
    ctx.write_csv(
        "fig6.csv",
        "isp,service,unix_time,median_throughput_mbps",
        &rows,
    );
    ctx.write_csv(
        "fig6_minima.csv",
        "isp,service,unix_time,daily_min_mbps",
        &min_rows,
    );
    println!("\npaper's shape: ISP_A/ISP_B broadband throughput less than half at peak;");
    println!("mobile consistently above 20 Mbps; ISP_C flat on both services.");
}
