//! Figure 8 (Appendix B): ISP_D's probes vs its anchor across four
//! periods — the probes congest to tens of milliseconds at peak hours,
//! the datacenter-hosted anchor stays flat.
//!
//! Output: `results/fig8.csv` (weekly-folded series per source × period).

use crate::common::Ctx;
use lastmile_repro::core::pipeline::PipelineConfig;
use lastmile_repro::netsim::scenarios::anchor::{anchor_world, fig8_periods, ISP_D_ASN};
use lastmile_repro::runner::{analyze_population, ProbeSelection};

pub fn run(ctx: &Ctx) {
    let world = anchor_world(ctx.seed);
    let mut rows = Vec::new();
    println!("Figure 8 — ISP_D probes vs anchor\n");
    println!(
        "{:<10} {:>7} {:>16} {:>16} {:>9}",
        "period", "probes", "probes max (ms)", "anchor max (ms)", "class"
    );
    for period in fig8_periods() {
        let probes = analyze_population(
            &world,
            ISP_D_ASN,
            &period,
            PipelineConfig::paper(),
            &ProbeSelection::regular(),
        );
        let mut anchor_cfg = PipelineConfig::paper();
        anchor_cfg.min_probes = 1;
        anchor_cfg.min_probes_per_bin = 1;
        let anchor = analyze_population(
            &world,
            ISP_D_ASN,
            &period,
            anchor_cfg,
            &ProbeSelection::anchors(),
        );
        for (source, analysis) in [("probes", &probes), ("anchor", &anchor)] {
            for (hours, v) in analysis.aggregated.fold_weekly() {
                rows.push(format!("{source},{},{hours:.2},{v:.4}", period.label()));
            }
        }
        println!(
            "{:<10} {:>7} {:>16.2} {:>16.2} {:>9}",
            period.label(),
            probes.probes_used(),
            probes.aggregated.max().unwrap_or(0.0),
            anchor.aggregated.max().unwrap_or(0.0),
            probes.class(),
        );
    }
    ctx.write_csv(
        "fig8.csv",
        "source,period,hours_since_monday,agg_queuing_ms",
        &rows,
    );
    println!("\npaper's shape: probes peak in the tens of ms every period (highest under");
    println!("the 2020 lockdown); the anchor's delay never leaves the floor.");
}
