//! The experiment harness: one subcommand per figure/statistic of the
//! paper, each printing the series the paper reports and writing CSVs
//! into `results/`.
//!
//! ```text
//! experiments <fig1|fig2|fig3|fig4|fig5|fig6|fig7|fig8|fig9|summary|all>
//!             [--seed N] [--scale N_ASES] [--out DIR] [--threads N]
//! ```
//!
//! `--scale` shrinks the §3 survey below the paper's 646 ASes for quick
//! runs; everything else is full scale by default.

mod common;
mod fig1;
mod fig2;
mod fig3;
mod fig4;
mod fig5;
mod fig6;
mod fig7;
mod fig8;
mod fig9;
mod summary;

use common::Ctx;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("usage: experiments <fig1..fig9|summary|all> [--seed N] [--scale N] [--out DIR] [--threads N]");
        std::process::exit(2);
    };

    let mut ctx = Ctx::default();
    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        let value = || {
            it.clone()
                .next()
                .unwrap_or_else(|| {
                    eprintln!("missing value for {flag}");
                    std::process::exit(2);
                })
                .clone()
        };
        match flag.as_str() {
            "--seed" => {
                ctx.seed = value().parse().expect("--seed takes an integer");
                it.next();
            }
            "--scale" => {
                ctx.survey_ases = value().parse().expect("--scale takes an integer");
                it.next();
            }
            "--out" => {
                ctx.out_dir = value();
                it.next();
            }
            "--threads" => {
                ctx.threads = value().parse().expect("--threads takes an integer");
                it.next();
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    std::fs::create_dir_all(&ctx.out_dir).expect("create output directory");

    let started = std::time::Instant::now();
    match cmd.as_str() {
        "fig1" => fig1::run(&ctx),
        "fig2" => fig2::run(&ctx),
        "fig3" => fig3::run(&ctx),
        "fig4" => fig4::run(&ctx),
        "fig5" => fig5::run(&ctx),
        "fig6" => fig6::run(&ctx),
        "fig7" => fig7::run(&ctx),
        "fig8" => fig8::run(&ctx),
        "fig9" => fig9::run(&ctx),
        "summary" => summary::run(&ctx),
        "all" => {
            fig1::run(&ctx);
            fig2::run(&ctx);
            fig3::run(&ctx);
            fig4::run(&ctx);
            fig5::run(&ctx);
            fig6::run(&ctx);
            fig7::run(&ctx);
            fig8::run(&ctx);
            fig9::run(&ctx);
            summary::run(&ctx);
        }
        other => {
            eprintln!("unknown experiment {other}");
            std::process::exit(2);
        }
    }
    eprintln!("\n[{cmd} done in {:.1}s]", started.elapsed().as_secs_f64());
}
