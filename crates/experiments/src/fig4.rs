//! Figure 4: classification breakdown by APNIC eyeball-rank bucket,
//! September 2019 vs April 2020, plus the headline COVID-19 jump
//! (paper: reported ASes 45 → 70, +55%, concentrated in large eyeballs).
//!
//! Output: `results/fig4.csv` (period, bucket, class, count, percent).

use crate::common::Ctx;
use lastmile_repro::core::detect::CongestionClass;
use lastmile_repro::timebase::MeasurementPeriod;

pub fn run(ctx: &Ctx) {
    let (_, report) = ctx.survey();
    let sep = MeasurementPeriod::september_2019().id();
    let apr = MeasurementPeriod::april_2020().id();

    let mut rows = Vec::new();
    println!("Figure 4 — class breakdown by eyeball rank bucket\n");
    for id in [sep, apr] {
        println!("{}:", id.label());
        println!(
            "  {:<14} {:>6} {:>7} {:>7} {:>7} {:>7}",
            "rank bucket", "ASes", "Severe", "Mild", "Low", "None"
        );
        for (bucket, classes) in report.rank_breakdown(id) {
            let total: usize = classes.values().sum();
            let g = |c: CongestionClass| classes.get(&c).copied().unwrap_or(0);
            println!(
                "  {:<14} {:>6} {:>7} {:>7} {:>7} {:>7}",
                bucket,
                total,
                g(CongestionClass::Severe),
                g(CongestionClass::Mild),
                g(CongestionClass::Low),
                g(CongestionClass::None),
            );
            for class in CongestionClass::ALL {
                let count = g(class);
                let pct = if total > 0 {
                    100.0 * count as f64 / total as f64
                } else {
                    0.0
                };
                rows.push(format!("{},{bucket},{class},{count},{pct:.1}", id.label()));
            }
        }
        println!();
    }

    let before = report.reported_count(sep);
    let after = report.reported_count(apr);
    println!(
        "reported ASes {} -> {} ({:+.0}%); paper: 45 -> 70 (+55%)",
        before,
        after,
        (after as f64 / before as f64 - 1.0) * 100.0
    );
    ctx.write_csv("fig4.csv", "period,rank_bucket,class,count,percent", &rows);
    println!("\npaper's shape: congestion concentrates in the top-1000 eyeball buckets,");
    println!("and the April 2020 increase lands mostly in large eyeballs.");
}
