//! §3's headline statistics over the full survey:
//!
//! * ~90% of monitored ASes classify None; ~47 ASes reported per period;
//! * 36 ASes reported in at least half of the six longitudinal periods;
//! * April 2020: reported ASes +55%;
//! * geography: 53 of 98 monitored countries have at least one report,
//!   23 have a Severe AS; Japan holds the most Severe reports (~18%),
//!   then the U.S. (~8%); of Japan's top-10 eyeballs, 5 reported at least
//!   once and 3 constantly.
//!
//! Output: `results/summary.csv` (one row per AS × period).

use crate::common::Ctx;
use lastmile_repro::core::detect::CongestionClass;
use lastmile_repro::runner::eyeballs_from_ground_truth;
use lastmile_repro::timebase::MeasurementPeriod;

pub fn run(ctx: &Ctx) {
    let (scenario, report) = ctx.survey();
    let eyeballs = eyeballs_from_ground_truth(&scenario.ground_truth);

    println!("Survey summary — {} ASes\n", scenario.ground_truth.len());
    println!("{}", report.render_text());

    let longitudinal: Vec<_> = MeasurementPeriod::longitudinal()
        .iter()
        .map(|p| p.id())
        .collect();

    // Headline numbers.
    let monitored = report.monitored(longitudinal[5]) as f64;
    let mean_reported: f64 = longitudinal
        .iter()
        .map(|&p| report.reported_count(p))
        .sum::<usize>() as f64
        / longitudinal.len() as f64;
    println!(
        "mean reported ASes per longitudinal period : {mean_reported:.1} ({:.0}% None; paper: ~47, ~90% None)",
        (1.0 - mean_reported / monitored) * 100.0
    );
    let persistent = report.persistent_asns(&longitudinal, longitudinal.len() / 2);
    println!(
        "ASes reported in >= half of the periods    : {} (paper: 36)",
        persistent.len()
    );
    let sep = MeasurementPeriod::september_2019().id();
    let apr = MeasurementPeriod::april_2020().id();
    println!(
        "COVID-19 jump (Sep 2019 -> Apr 2020)       : {} -> {} ({:+.0}%; paper: 45 -> 70, +55%)",
        report.reported_count(sep),
        report.reported_count(apr),
        (report.reported_count(apr) as f64 / report.reported_count(sep) as f64 - 1.0) * 100.0
    );

    // Geography.
    let countries = report.countries_with_reports(&longitudinal);
    println!(
        "countries with >= 1 reported AS            : {} (paper: 53 of 98)",
        countries.len()
    );
    let severe = report.severe_reports_by_country(&longitudinal);
    let total_severe: usize = severe.values().sum();
    let mut by_count: Vec<_> = severe.iter().collect();
    by_count.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
    println!(
        "countries with >= 1 Severe AS              : {} (paper: 23)",
        severe.len()
    );
    for (country, count) in by_count.iter().take(4) {
        println!(
            "  severe reports in {country:<3}                     : {count} ({:.0}% of all; paper: JP 18%, US 8%)",
            100.0 * **count as f64 / total_severe.max(1) as f64
        );
    }

    // Japan's top-10 eyeballs.
    let top_jp = eyeballs.top_of_country("JP", 10);
    let mut reported_once = 0;
    let mut reported_always = 0;
    for e in &top_jp {
        let appearances = longitudinal
            .iter()
            .filter(|&&p| {
                report
                    .period_rows(p)
                    .any(|r| r.asn == e.asn && r.class != CongestionClass::None)
            })
            .count();
        if appearances >= 1 {
            reported_once += 1;
        }
        if appearances == longitudinal.len() {
            reported_always += 1;
        }
    }
    println!(
        "of Japan's top-{} eyeballs: reported >= once : {reported_once}, constantly: {reported_always} (paper: 5 and 3 of top-10)",
        top_jp.len()
    );

    // Per-row CSV for downstream analysis.
    let rows: Vec<String> = report
        .rows()
        .iter()
        .map(|r| {
            format!(
                "{},{},{},{:.4},{},{},{},{}",
                r.period.label(),
                r.asn,
                r.class,
                r.daily_amplitude_ms,
                r.prominent_is_daily,
                r.probes,
                r.country.as_deref().unwrap_or(""),
                r.rank.map(|x| x.to_string()).unwrap_or_default(),
            )
        })
        .collect();
    ctx.write_csv(
        "summary.csv",
        "period,asn,class,daily_amplitude_ms,prominent_is_daily,probes,country,rank",
        &rows,
    );

    // A machine-readable survey report, in the spirit of the paper's
    // public results server (last-mile-congestion.github.io).
    let periods_json: Vec<serde_json::Value> = report
        .periods()
        .iter()
        .map(|&p| {
            let counts = report.class_counts(p);
            serde_json::json!({
                "period": p.label(),
                "monitored": report.monitored(p),
                "reported": report.reported_count(p),
                "daily_fraction": report.daily_fraction(p),
                "classes": counts
                    .iter()
                    .map(|(c, n)| (c.name().to_string(), *n))
                    .collect::<std::collections::BTreeMap<_, _>>(),
            })
        })
        .collect();
    let doc = serde_json::json!({
        "paper": "Persistent Last-mile Congestion: Not so Uncommon (IMC 2020)",
        "ases": scenario.ground_truth.len(),
        "periods": periods_json,
        "persistent_asns": report.persistent_asns(&longitudinal, longitudinal.len() / 2),
        "countries_with_reports": report.countries_with_reports(&longitudinal),
        "severe_by_country": report.severe_reports_by_country(&longitudinal),
    });
    let path = format!("{}/survey_report.json", ctx.out_dir);
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&doc).expect("report encodes"),
    )
    .expect("write survey report");
    eprintln!("[json] wrote {path}");
}
