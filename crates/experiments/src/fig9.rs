//! Figure 9 (Appendix C): IPv4 vs IPv6 throughput for the three Tokyo
//! ISPs. IPv6 rides IPoE past the congested PPPoE equipment, so ISP_A and
//! ISP_B keep their IPv6 throughput at peak hours while IPv4 collapses;
//! ISP_C shows no difference.
//!
//! Output: `results/fig9.csv`.

use crate::common::Ctx;
use lastmile_repro::cdnlog::{
    binned_median_throughput, CdnGeneratorConfig, CdnLogGenerator, LogFilter,
};
use lastmile_repro::netsim::scenarios::tokyo::*;
use lastmile_repro::netsim::ServiceClass;
use lastmile_repro::stats::median;
use lastmile_repro::timebase::{BinSpec, MeasurementPeriod};

pub fn run(ctx: &Ctx) {
    let world = tokyo_world(ctx.seed);
    let period = MeasurementPeriod::tokyo_cdn_2019();
    let cdn = CdnLogGenerator::new(&world, CdnGeneratorConfig::default_tokyo(ctx.seed ^ 0xCD));

    let mut rows = Vec::new();
    println!("Figure 9 — IPv4 vs IPv6 throughput (Mbps)\n");
    println!(
        "{:<8} {:>10} {:>10} {:>10} {:>10}",
        "ISP", "v4 night", "v4 peak", "v6 night", "v6 peak"
    );
    for (name, asn) in [
        ("ISP_A", ISP_A_ASN),
        ("ISP_B", ISP_B_ASN),
        ("ISP_C", ISP_C_ASN),
    ] {
        let mut peaks = Vec::new();
        for (family, class, v6) in [
            ("IPv4", ServiceClass::BroadbandV4, false),
            ("IPv6", ServiceClass::BroadbandV6, true),
        ] {
            let logs = cdn.generate(asn, class, &period.range());
            let filter = LogFilter {
                exclude_mobile: !v6,
                ..LogFilter::paper_broadband()
            }
            .family(v6);
            let kept: Vec<_> = filter.apply(&logs, world.registry()).cloned().collect();
            let series = binned_median_throughput(kept.iter(), BinSpec::thirty_minutes());
            for &(t, v) in &series {
                rows.push(format!("{name},{family},{},{v:.3}", t.as_secs()));
            }
            let med_at = |hour: u8| {
                let v: Vec<f64> = series
                    .iter()
                    .filter(|(t, _)| t.hour_of_day() == hour)
                    .map(|&(_, v)| v)
                    .collect();
                median(&v).unwrap_or(f64::NAN)
            };
            peaks.push((med_at(19), med_at(12))); // 04:00 and 21:00 JST
        }
        println!(
            "{:<8} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            name, peaks[0].0, peaks[0].1, peaks[1].0, peaks[1].1
        );
    }
    ctx.write_csv(
        "fig9.csv",
        "isp,family,unix_time,median_throughput_mbps",
        &rows,
    );
    println!("\npaper's shape: IPv6 outperforms IPv4, most visibly at peak hours for");
    println!("ISP_A and ISP_B; ISP_C's two families stay comparable.");
}
