//! Figure 7: aggregated queuing delay vs throughput scatter for ISP_A and
//! ISP_C, with Spearman's ρ (paper: −0.6 and 0.0) and the ">1 ms delay ⇒
//! low throughput" observation.
//!
//! Output: `results/fig7.csv` (isp, delay, throughput pairs).

use crate::common::{analyze_many, Ctx};
use lastmile_repro::cdnlog::{
    binned_median_throughput, CdnGeneratorConfig, CdnLogGenerator, LogFilter,
};
use lastmile_repro::core::correlate::{
    delay_throughput_rho, join_by_time, max_throughput_above_delay,
};
use lastmile_repro::core::pipeline::PipelineConfig;
use lastmile_repro::netsim::scenarios::tokyo::*;
use lastmile_repro::netsim::ServiceClass;
use lastmile_repro::runner::ProbeSelection;
use lastmile_repro::timebase::{BinSpec, MeasurementPeriod};

pub fn run(ctx: &Ctx) {
    let world = tokyo_world(ctx.seed);
    let period = MeasurementPeriod::tokyo_cdn_2019();
    let cdn = CdnLogGenerator::new(&world, CdnGeneratorConfig::default_tokyo(ctx.seed ^ 0xCD));
    let isps = [("ISP_A", ISP_A_ASN), ("ISP_C", ISP_C_ASN)];
    let jobs: Vec<_> = isps
        .iter()
        .map(|&(_, asn)| (asn, period, ProbeSelection::in_area("Tokyo")))
        .collect();
    eprintln!("[fig7] analysing delay and generating CDN logs...");
    let analyses = analyze_many(&world, &jobs, &PipelineConfig::paper());

    let mut rows = Vec::new();
    println!("Figure 7 — delay vs throughput\n");
    println!(
        "{:<8} {:>7} {:>9} {:>24}",
        "ISP", "pairs", "rho", "max thpt @ delay>1ms"
    );
    for ((name, asn), analysis) in isps.iter().zip(&analyses) {
        let logs = cdn.generate(*asn, ServiceClass::BroadbandV4, &period.range());
        let filter = LogFilter::paper_broadband();
        let kept: Vec<_> = filter.apply(&logs, world.registry()).cloned().collect();
        let thr = binned_median_throughput(kept.iter(), BinSpec::fifteen_minutes());
        let pairs = join_by_time(&analysis.aggregated, thr);
        for &(d, t) in &pairs {
            rows.push(format!("{name},{d:.4},{t:.3}"));
        }
        let rho = delay_throughput_rho(&pairs).unwrap_or(f64::NAN);
        let above = max_throughput_above_delay(&pairs, 1.0);
        println!(
            "{:<8} {:>7} {:>9.2} {:>20}",
            name,
            pairs.len(),
            rho,
            above
                .map(|v| format!("{v:.1} Mbps"))
                .unwrap_or_else(|| "n/a (never)".into()),
        );
    }
    ctx.write_csv(
        "fig7.csv",
        "isp,agg_queuing_ms,median_throughput_mbps",
        &rows,
    );
    println!("\npaper's shape: ISP_A rho = -0.6 with throughput always low above 1 ms of");
    println!("delay; ISP_C rho = 0.0 (no relationship).");
}
