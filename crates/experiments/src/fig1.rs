//! Figure 1: one week of aggregated last-mile queuing delay for ISP_DE
//! (top, flat) and ISP_US (bottom, diurnal; amplified April 2020), seven
//! measurement periods.
//!
//! Output: `results/fig1.csv` with one weekly-folded series per
//! (ISP, period), plus the per-period summary the paper's legend carries
//! (probe counts) and the §2.2 per-probe statistic (the fraction of
//! ISP_US probes with daily delay over 5 ms tripling under COVID-19).

use crate::common::{analyze_many, Ctx};
use lastmile_repro::core::pipeline::PipelineConfig;
use lastmile_repro::netsim::scenarios::examples::{
    active_probe_count, fig1_world, ISP_DE_ASN, ISP_US_ASN,
};
use lastmile_repro::runner::ProbeSelection;
use lastmile_repro::timebase::MeasurementPeriod;

pub fn run(ctx: &Ctx) {
    let world = fig1_world(ctx.seed);
    let periods = MeasurementPeriod::survey_periods();
    let jobs: Vec<_> = [ISP_DE_ASN, ISP_US_ASN]
        .into_iter()
        .flat_map(|asn| {
            periods
                .iter()
                .map(move |p| (asn, *p, ProbeSelection::regular()))
        })
        .collect();
    eprintln!("[fig1] analysing {} populations...", jobs.len());
    let analyses = analyze_many(&world, &jobs, &PipelineConfig::paper());

    let mut rows = Vec::new();
    println!("Figure 1 — weekly aggregated queuing delay (ms)\n");
    println!(
        "{:<8} {:<9} {:>7} {:>10} {:>10} {:>12}",
        "ISP", "period", "probes", "median", "peak", ">5ms probes"
    );
    for ((asn, period, _), analysis) in jobs.iter().zip(&analyses) {
        let isp = if *asn == ISP_DE_ASN {
            "ISP_DE"
        } else {
            "ISP_US"
        };
        for (hours, v) in analysis.aggregated.fold_weekly() {
            rows.push(format!("{isp},{},{hours:.2},{v:.4}", period.label()));
        }
        let folded = analysis.aggregated.fold_weekly();
        let vals: Vec<f64> = folded.iter().map(|&(_, v)| v).collect();
        let median = lastmile_repro::stats::median(&vals).unwrap_or(0.0);
        let peak = analysis.aggregated.max().unwrap_or(0.0);
        let over5 = analysis.fraction_of_probes_above(5.0, 0.02);
        println!(
            "{:<8} {:<9} {:>7} {:>9.2}ms {:>9.2}ms {:>11.1}%",
            isp,
            period.label(),
            active_probe_count(&world, *asn, period),
            median,
            peak,
            over5 * 100.0
        );
    }
    ctx.write_csv(
        "fig1.csv",
        "isp,period,hours_since_monday,agg_queuing_ms",
        &rows,
    );
    println!("\npaper's shape: ISP_DE flat in every period; ISP_US shows a small consistent");
    println!("diurnal pattern that widens and grows in April 2020, and the fraction of its");
    println!("probes with daily delay over 5 ms roughly triples under lockdown.");
}
