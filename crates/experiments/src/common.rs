//! Shared harness context: options, cached heavy computations, CSV output.

use lastmile_repro::core::pipeline::{PipelineConfig, PopulationAnalysis};
use lastmile_repro::core::report::SurveyReport;
use lastmile_repro::netsim::scenarios::survey::{survey_world, SurveyConfig, SurveyScenario};
use lastmile_repro::netsim::TracerouteEngine;
use lastmile_repro::netsim::World;
use lastmile_repro::obs::trace;
use lastmile_repro::runner::{
    analyze_population_stored, eyeballs_from_ground_truth, run_survey, ProbeSelection,
    SurveyOptions,
};
use lastmile_repro::store::SeriesStore;
use lastmile_repro::timebase::MeasurementPeriod;
use std::io::Write;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Harness options plus lazily computed shared state.
pub struct Ctx {
    /// Master seed for every world.
    pub seed: u64,
    /// Number of survey ASes (paper: 646).
    pub survey_ases: usize,
    /// Output directory for CSVs.
    pub out_dir: String,
    /// Worker threads (0 = all cores).
    pub threads: usize,
    survey: OnceLock<(SurveyScenario, SurveyReport)>,
}

impl Default for Ctx {
    fn default() -> Self {
        Ctx {
            seed: 20200427,
            survey_ases: 646,
            out_dir: "results".to_string(),
            threads: 0,
            survey: OnceLock::new(),
        }
    }
}

impl Ctx {
    /// The survey scenario and its classification report over all seven
    /// periods — computed once, shared by fig3/fig4/summary.
    pub fn survey(&self) -> &(SurveyScenario, SurveyReport) {
        self.survey.get_or_init(|| {
            eprintln!(
                "[survey] simulating {} ASes x 7 periods (use --scale to shrink)...",
                self.survey_ases
            );
            let scenario = survey_world(&SurveyConfig {
                seed: self.seed,
                n_ases: self.survey_ases,
                max_probes_per_as: 20,
            });
            let eyeballs = eyeballs_from_ground_truth(&scenario.ground_truth);
            let report = run_survey(
                &scenario.world,
                &MeasurementPeriod::survey_periods(),
                &eyeballs,
                &SurveyOptions {
                    threads: self.threads,
                    ..Default::default()
                },
            );
            (scenario, report)
        })
    }

    /// Write a CSV file into the output directory, creating the
    /// directory first if needed.
    pub fn write_csv(&self, name: &str, header: &str, rows: &[String]) {
        if let Err(e) = std::fs::create_dir_all(&self.out_dir) {
            panic!(
                "cannot create output directory {:?}: {e} \
                 (pass a writable directory via --out)",
                self.out_dir
            );
        }
        let path = format!("{}/{}", self.out_dir, name);
        let mut f = std::fs::File::create(&path)
            .unwrap_or_else(|e| panic!("cannot create CSV {path:?}: {e}"));
        writeln!(f, "{header}").expect("write CSV header");
        for row in rows {
            writeln!(f, "{row}").expect("write CSV row");
        }
        eprintln!("[csv] wrote {path} ({} rows)", rows.len());
    }
}

/// Analyse several (ASN, period, selection) populations in parallel.
///
/// Jobs are drained from a shared atomic cursor (work stealing), so a
/// worker that lands on a probe-heavy population simply takes fewer jobs
/// — static chunking let one heavy chunk bound the whole run. All
/// workers share one traceroute engine and one in-memory series store:
/// experiments that analyse the same probes under several periods or
/// selections (fig4's per-period Tokyo splits, fig8's longitudinal
/// windows) simulate and bin each probe once and serve the rest from the
/// store. Results come back in job order regardless of scheduling.
pub fn analyze_many(
    world: &World,
    jobs: &[(u32, MeasurementPeriod, ProbeSelection)],
    cfg: &PipelineConfig,
) -> Vec<PopulationAnalysis> {
    let n_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(jobs.len().max(1));
    let engine = TracerouteEngine::new(world);
    let store = SeriesStore::default();
    let next = AtomicUsize::new(0);
    let mut out: Vec<Option<PopulationAnalysis>> = Vec::new();
    out.resize_with(jobs.len(), || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_threads)
            .map(|_| {
                let engine = &engine;
                let store = &store;
                let next = &next;
                scope.spawn(move || {
                    let mut done: Vec<(usize, PopulationAnalysis)> = Vec::new();
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        let Some((asn, period, selection)) = jobs.get(idx) else {
                            break;
                        };
                        let span = trace::span_with("population", |a| {
                            a.u64("asn", u64::from(*asn)).str("period", period.label());
                        });
                        done.push((
                            idx,
                            analyze_population_stored(engine, *asn, period, *cfg, selection, store),
                        ));
                        drop(span);
                    }
                    done
                })
            })
            .collect();
        for h in handles {
            for (idx, analysis) in h.join().expect("analysis worker panicked") {
                out[idx] = Some(analysis);
            }
        }
    });
    out.into_iter()
        .map(|o| o.expect("all jobs completed"))
        .collect()
}
