//! Shared harness context: options, cached heavy computations, CSV output.

use lastmile_repro::core::pipeline::{PipelineConfig, PopulationAnalysis};
use lastmile_repro::core::report::SurveyReport;
use lastmile_repro::netsim::scenarios::survey::{survey_world, SurveyConfig, SurveyScenario};
use lastmile_repro::netsim::World;
use lastmile_repro::runner::{
    analyze_population, eyeballs_from_ground_truth, run_survey, ProbeSelection, SurveyOptions,
};
use lastmile_repro::timebase::MeasurementPeriod;
use std::io::Write;
use std::sync::OnceLock;

/// Harness options plus lazily computed shared state.
pub struct Ctx {
    /// Master seed for every world.
    pub seed: u64,
    /// Number of survey ASes (paper: 646).
    pub survey_ases: usize,
    /// Output directory for CSVs.
    pub out_dir: String,
    /// Worker threads (0 = all cores).
    pub threads: usize,
    survey: OnceLock<(SurveyScenario, SurveyReport)>,
}

impl Default for Ctx {
    fn default() -> Self {
        Ctx {
            seed: 20200427,
            survey_ases: 646,
            out_dir: "results".to_string(),
            threads: 0,
            survey: OnceLock::new(),
        }
    }
}

impl Ctx {
    /// The survey scenario and its classification report over all seven
    /// periods — computed once, shared by fig3/fig4/summary.
    pub fn survey(&self) -> &(SurveyScenario, SurveyReport) {
        self.survey.get_or_init(|| {
            eprintln!(
                "[survey] simulating {} ASes x 7 periods (use --scale to shrink)...",
                self.survey_ases
            );
            let scenario = survey_world(&SurveyConfig {
                seed: self.seed,
                n_ases: self.survey_ases,
                max_probes_per_as: 20,
            });
            let eyeballs = eyeballs_from_ground_truth(&scenario.ground_truth);
            let report = run_survey(
                &scenario.world,
                &MeasurementPeriod::survey_periods(),
                &eyeballs,
                &SurveyOptions {
                    threads: self.threads,
                    ..Default::default()
                },
            );
            (scenario, report)
        })
    }

    /// Write a CSV file into the output directory.
    pub fn write_csv(&self, name: &str, header: &str, rows: &[String]) {
        let path = format!("{}/{}", self.out_dir, name);
        let mut f = std::fs::File::create(&path).expect("create CSV");
        writeln!(f, "{header}").expect("write CSV header");
        for row in rows {
            writeln!(f, "{row}").expect("write CSV row");
        }
        eprintln!("[csv] wrote {path} ({} rows)", rows.len());
    }
}

/// Analyse several (ASN, period, selection) populations in parallel.
pub fn analyze_many(
    world: &World,
    jobs: &[(u32, MeasurementPeriod, ProbeSelection)],
    cfg: &PipelineConfig,
) -> Vec<PopulationAnalysis> {
    let mut out: Vec<Option<PopulationAnalysis>> = Vec::new();
    out.resize_with(jobs.len(), || None);
    let n_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let chunk = jobs.len().div_ceil(n_threads).max(1);
    std::thread::scope(|scope| {
        for (slot_chunk, job_chunk) in out.chunks_mut(chunk).zip(jobs.chunks(chunk)) {
            scope.spawn(move || {
                for (slot, (asn, period, selection)) in slot_chunk.iter_mut().zip(job_chunk) {
                    *slot = Some(analyze_population(world, *asn, period, *cfg, selection));
                }
            });
        }
    });
    out.into_iter()
        .map(|o| o.expect("all jobs completed"))
        .collect()
}
