//! Figure 3: distributions over all monitored ASes, six longitudinal
//! periods — (top) the prominent frequency of each AS's aggregated
//! signal, (bottom) the peak-to-peak amplitude of prominent daily
//! components.
//!
//! Paper's readings: the daily frequency dominates the prominent-frequency
//! CDF; of the daily ASes ~83% are below 0.5 ms, ~7% in 0.5–1, ~6% in
//! 1–3, ~4% above 3 ms.
//!
//! Output: `results/fig3_frequencies.csv`, `results/fig3_amplitudes.csv`.

use crate::common::Ctx;
use lastmile_repro::timebase::MeasurementPeriod;

pub fn run(ctx: &Ctx) {
    let (_, report) = ctx.survey();
    let mut freq_rows = Vec::new();
    let mut amp_rows = Vec::new();

    println!("Figure 3 — prominent frequencies and daily amplitudes\n");
    println!(
        "{:<9} {:>6} {:>11} {:>9} {:>9} {:>9} {:>9}",
        "period", "ASes", "daily-frac", "<0.5ms", "0.5-1ms", "1-3ms", ">3ms"
    );
    for period in MeasurementPeriod::longitudinal() {
        let id = period.id();
        for f in report.prominent_frequencies(id) {
            freq_rows.push(format!("{},{f:.6}", id.label()));
        }
        let cdf = report.daily_amplitude_cdf(id);
        for (v, frac) in cdf.points() {
            amp_rows.push(format!("{},{v:.5},{frac:.5}", id.label()));
        }
        let below_half = cdf.fraction_at_or_below(0.5);
        let low = cdf.fraction_in(0.5, 1.0);
        let mild = cdf.fraction_in(1.0, 3.0);
        let severe = 1.0 - cdf.fraction_at_or_below(3.0);
        println!(
            "{:<9} {:>6} {:>10.0}% {:>8.0}% {:>8.0}% {:>8.0}% {:>8.0}%",
            id.label(),
            report.monitored(id),
            report.daily_fraction(id) * 100.0,
            below_half * 100.0,
            low * 100.0,
            mild * 100.0,
            severe * 100.0,
        );
    }
    ctx.write_csv(
        "fig3_frequencies.csv",
        "period,prominent_freq_cycles_per_hour",
        &freq_rows,
    );
    ctx.write_csv(
        "fig3_amplitudes.csv",
        "period,daily_p2p_amplitude_ms,cdf",
        &amp_rows,
    );
    println!("\npaper's shape: daily component dominates; amplitude split ~83/7/6/4%.");
}
