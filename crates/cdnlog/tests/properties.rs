//! Property-based tests for the CDN log substrate.

use lastmile_cdnlog::{binned_median_throughput, AccessLogRecord, CacheStatus, LogFilter};
use lastmile_prefix::{AsRegistry, Prefix, PrefixRole};
use lastmile_timebase::{BinSpec, UnixTime};
use proptest::prelude::*;
use std::net::{IpAddr, Ipv4Addr};

fn arb_record() -> impl Strategy<Value = AccessLogRecord> {
    (
        any::<u32>(),        // client v4 bits
        0i64..2_000_000_000, // timestamp
        1u64..2_000_000_000, // bytes
        0.0f64..600_000.0,   // duration ms (includes 0: unusable)
        any::<bool>(),       // cache hit?
    )
        .prop_map(|(client, t, bytes, duration_ms, hit)| AccessLogRecord {
            client: IpAddr::V4(Ipv4Addr::from(client)),
            timestamp: UnixTime::from_secs(t),
            bytes,
            duration_ms: (duration_ms * 1000.0).round() / 1000.0, // TSV keeps 3 decimals
            cache: if hit {
                CacheStatus::Hit
            } else {
                CacheStatus::Miss
            },
        })
}

fn registry() -> AsRegistry {
    let mut r = AsRegistry::new();
    r.announce(
        1,
        "0.0.0.0/1".parse::<Prefix>().unwrap(),
        PrefixRole::Broadband,
    );
    r.announce(
        2,
        "128.0.0.0/2".parse::<Prefix>().unwrap(),
        PrefixRole::Mobile,
    );
    r
}

proptest! {
    /// TSV round trip is lossless (at the emitted precision).
    #[test]
    fn tsv_round_trip(rec in arb_record()) {
        let line = rec.to_tsv();
        let back = AccessLogRecord::from_tsv(&line).unwrap();
        prop_assert_eq!(back, rec);
    }

    /// The filter is monotone: every record accepted by the paper filter
    /// is a >3MB cache hit, and never a mobile client.
    #[test]
    fn filter_accepts_only_qualifying_records(records in prop::collection::vec(arb_record(), 0..60)) {
        let reg = registry();
        let f = LogFilter::paper_broadband();
        for r in f.apply(&records, &reg) {
            prop_assert!(r.bytes > 3_000_000);
            prop_assert_eq!(r.cache, CacheStatus::Hit);
            prop_assert!(!reg.is_mobile(r.client));
        }
        // Family-restricted views partition the accepted set.
        let all: Vec<_> = f.apply(&records, &reg).collect();
        let v4 = f.clone().family(false);
        let v6 = f.clone().family(true);
        let n4 = v4.apply(&records, &reg).count();
        let n6 = v6.apply(&records, &reg).count();
        prop_assert_eq!(all.len(), n4 + n6);
    }

    /// Binned medians lie within the envelope of the contributing
    /// records' throughputs, and bins are strictly increasing in time.
    #[test]
    fn binned_median_is_bounded(records in prop::collection::vec(arb_record(), 1..80)) {
        let bin = BinSpec::fifteen_minutes();
        let series = binned_median_throughput(records.iter(), bin);
        for w in series.windows(2) {
            prop_assert!(w[0].0 < w[1].0);
        }
        for (start, v) in &series {
            let idx = bin.bin_index(*start);
            let members: Vec<f64> = records
                .iter()
                .filter(|r| bin.bin_index(r.timestamp) == idx)
                .filter_map(|r| r.throughput_mbps())
                .collect();
            prop_assert!(!members.is_empty());
            let lo = members.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = members.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(*v >= lo - 1e-9 && *v <= hi + 1e-9, "{} not in [{}, {}]", v, lo, hi);
        }
    }
}
