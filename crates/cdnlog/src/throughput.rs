//! Binned median throughput (§4.2).
//!
//! "As with the delay measurement, we measure throughput per IP and
//! compute ASN aggregates by computing the median value in 15-minute
//! time-bins."
//!
//! [`binned_median_throughput`] does the two-level aggregation: first a
//! median per client IP within each bin (so one busy client cannot
//! dominate), then the median across clients — matching the per-IP
//! phrasing and giving the robustness the rest of the paper's pipeline is
//! built on.

use crate::record::AccessLogRecord;
use lastmile_stats::median_in_place;
use lastmile_timebase::{BinSpec, UnixTime};
use std::collections::BTreeMap;
use std::net::IpAddr;

/// Per-bin median throughput across clients, `(bin start, Mbps)`,
/// chronological. Records without a derivable throughput are skipped.
pub fn binned_median_throughput<'a>(
    records: impl IntoIterator<Item = &'a AccessLogRecord>,
    bin: BinSpec,
) -> Vec<(UnixTime, f64)> {
    // bin -> client -> throughputs
    let mut bins: BTreeMap<i64, BTreeMap<IpAddr, Vec<f64>>> = BTreeMap::new();
    for r in records {
        let Some(mbps) = r.throughput_mbps() else {
            continue;
        };
        bins.entry(bin.bin_index(r.timestamp))
            .or_default()
            .entry(r.client)
            .or_default()
            .push(mbps);
    }
    bins.into_iter()
        .filter_map(|(b, clients)| {
            let mut per_client: Vec<f64> = clients
                .into_values()
                .filter_map(|mut v| median_in_place(&mut v))
                .collect();
            median_in_place(&mut per_client).map(|m| (bin.index_start(b), m))
        })
        .collect()
}

/// Daily minima of a throughput series — Figure 6's markers sit "on daily
/// minimum throughput".
pub fn daily_minima(series: &[(UnixTime, f64)]) -> Vec<(UnixTime, f64)> {
    let mut out: BTreeMap<i64, f64> = BTreeMap::new();
    for &(t, v) in series {
        let day = t.days_since_epoch();
        out.entry(day).and_modify(|m| *m = m.min(v)).or_insert(v);
    }
    out.into_iter()
        .map(|(d, v)| (UnixTime::from_secs(d * 86_400), v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::CacheStatus;

    fn rec(client: &str, t: i64, mbps: f64) -> AccessLogRecord {
        // 1-second transfers: bytes = mbps * 1e6 / 8.
        AccessLogRecord {
            client: client.parse().unwrap(),
            timestamp: UnixTime::from_secs(t),
            bytes: (mbps * 1e6 / 8.0) as u64,
            duration_ms: 1000.0,
            cache: CacheStatus::Hit,
        }
    }

    #[test]
    fn two_level_median() {
        // Bin 0: client A has [10, 50] (median 30), client B has [40].
        // Cross-client median = median(30, 40) = 35.
        let records = vec![
            rec("20.0.0.1", 10, 10.0),
            rec("20.0.0.1", 20, 50.0),
            rec("20.0.0.2", 30, 40.0),
        ];
        let series = binned_median_throughput(&records, BinSpec::fifteen_minutes());
        assert_eq!(series.len(), 1);
        assert_eq!(series[0].0, UnixTime::from_secs(0));
        assert!((series[0].1 - 35.0).abs() < 1e-9);
    }

    #[test]
    fn heavy_client_cannot_dominate() {
        // Client A hammers with 100 slow transfers; clients B and C are
        // fast. The per-IP median keeps A as a single vote.
        let mut records = Vec::new();
        for i in 0..100 {
            records.push(rec("20.0.0.1", i, 5.0));
        }
        records.push(rec("20.0.0.2", 5, 50.0));
        records.push(rec("20.0.0.3", 6, 52.0));
        let series = binned_median_throughput(&records, BinSpec::fifteen_minutes());
        assert!((series[0].1 - 50.0).abs() < 1e-9, "{}", series[0].1);
    }

    #[test]
    fn bins_are_chronological_and_separate() {
        let records = vec![rec("20.0.0.1", 0, 10.0), rec("20.0.0.1", 900, 30.0)];
        let series = binned_median_throughput(&records, BinSpec::fifteen_minutes());
        assert_eq!(series.len(), 2);
        assert!(series[0].0 < series[1].0);
        assert_eq!(series[0].1, 10.0);
        assert_eq!(series[1].1, 30.0);
    }

    #[test]
    fn zero_duration_records_are_skipped() {
        let mut bad = rec("20.0.0.1", 0, 10.0);
        bad.duration_ms = 0.0;
        let series = binned_median_throughput(&[bad], BinSpec::fifteen_minutes());
        assert!(series.is_empty());
    }

    #[test]
    fn daily_minima_markers() {
        let series = vec![
            (UnixTime::from_secs(1000), 50.0),
            (UnixTime::from_secs(50_000), 18.0),
            (UnixTime::from_secs(86_400 + 100), 45.0),
            (UnixTime::from_secs(86_400 + 50_000), 22.0),
        ];
        let minima = daily_minima(&series);
        assert_eq!(minima.len(), 2);
        assert_eq!(minima[0].1, 18.0);
        assert_eq!(minima[1].1, 22.0);
    }

    #[test]
    fn empty_input() {
        let series = binned_median_throughput(&[], BinSpec::fifteen_minutes());
        assert!(series.is_empty());
        assert!(daily_minima(&[]).is_empty());
    }
}
