//! Synthetic CDN access-log generation.
//!
//! The paper's CDN dataset is proprietary (Verizon Digital Media Services
//! logs from Tokyo, ~150k unique client IPs). This generator replaces it
//! with logs produced from the *same simulated network* that the
//! traceroute engine measures, which preserves the property §4.3 tests
//! for: throughput and last-mile queuing delay co-vary if and only if the
//! shared access segment is the bottleneck.
//!
//! ## Transfer model
//!
//! A client's transfer rate is
//!
//! ```text
//!   rate = min(line_rate × client_share,  C · MSS / (RTT · √p))
//! ```
//!
//! the Mathis TCP throughput law capped by the access line and the
//! client's local share of it. RTT and loss come from the world's
//! [`lastmile_netsim::AccessState`] at the request instant, so evening
//! queuing on a legacy PPPoE segment raises RTT and p and the rate
//! collapses — while LTE and IPoE clients of the same AS sail through.
//!
//! The netsim loss model tracks *queue stress* (up to ~2% at saturation);
//! TCP's p in the Mathis law is the per-window loss seen by long flows,
//! which is far smaller. [`CdnGeneratorConfig::loss_scale`] converts one
//! to the other and is the single calibration constant of the generator.

use crate::record::{AccessLogRecord, CacheStatus};
use lastmile_netsim::rng;
use lastmile_netsim::{ServiceClass, World};
use lastmile_prefix::Asn;
use lastmile_timebase::{BinSpec, TimeRange};
use rand::rngs::SmallRng;
use rand::Rng;

/// Mathis constant `C` (√(3/2) for periodic loss).
const MATHIS_C: f64 = 1.22;
/// TCP maximum segment size, bytes.
const MSS_BYTES: f64 = 1460.0;
/// Baseline residual loss on an otherwise clean path.
const BASELINE_LOSS: f64 = 6e-5;

/// Generator parameters.
#[derive(Clone, Debug)]
pub struct CdnGeneratorConfig {
    /// Seed (independent of the world seed so log sampling can be varied
    /// without changing the network).
    pub seed: u64,
    /// Distinct client IPs per (AS, service class).
    pub clients: usize,
    /// Log records per 15-minute bin per (AS, service class).
    pub requests_per_bin: usize,
    /// Scale from netsim queue-stress loss to Mathis per-window loss.
    pub loss_scale: f64,
    /// Fraction of requests served from cache.
    pub cache_hit_rate: f64,
}

impl CdnGeneratorConfig {
    /// Defaults tuned to reproduce Figure 6's shape at a tractable volume.
    pub fn default_tokyo(seed: u64) -> CdnGeneratorConfig {
        CdnGeneratorConfig {
            seed,
            clients: 1500,
            requests_per_bin: 400,
            loss_scale: 0.3,
            cache_hit_rate: 0.92,
        }
    }

    /// A smaller configuration for unit tests.
    pub fn test_scale(seed: u64) -> CdnGeneratorConfig {
        CdnGeneratorConfig {
            seed,
            clients: 120,
            requests_per_bin: 80,
            loss_scale: 0.3,
            cache_hit_rate: 0.92,
        }
    }
}

/// Generates access logs for services of a simulated world.
pub struct CdnLogGenerator<'w> {
    world: &'w World,
    cfg: CdnGeneratorConfig,
}

impl<'w> CdnLogGenerator<'w> {
    /// Create a generator.
    pub fn new(world: &'w World, cfg: CdnGeneratorConfig) -> CdnLogGenerator<'w> {
        CdnLogGenerator { world, cfg }
    }

    /// Generate the logs of one (AS, service class) over a window,
    /// chronological. Returns an empty vector when the AS does not offer
    /// the service.
    pub fn generate(
        &self,
        asn: Asn,
        class: ServiceClass,
        window: &TimeRange,
    ) -> Vec<AccessLogRecord> {
        let Some(prefix) = self.world.client_prefix(asn, class) else {
            return Vec::new();
        };
        let bins = BinSpec::fifteen_minutes();
        let class_tag = match class {
            ServiceClass::BroadbandV4 => 1u64,
            ServiceClass::BroadbandV6 => 2,
            ServiceClass::Mobile => 3,
        };
        let mut out = Vec::new();
        for bin_start in bins.starts_in(window) {
            let mut brng = rng::rng_for(
                self.cfg.seed,
                &[u64::from(asn), class_tag, bin_start.as_secs() as u64],
            );
            for _ in 0..self.cfg.requests_per_bin {
                let client_idx = brng.gen_range(0..self.cfg.clients) as u128;
                let Some(client) = prefix.nth_address(1000 + client_idx) else {
                    continue;
                };
                let t = bin_start + brng.gen_range(0..bins.width_secs());
                let Some(state) = self.world.access_state(asn, class, t) else {
                    continue;
                };

                // Per-client heterogeneity, stable across the window. LTE
                // schedulers grant a larger share of the (lower) cell rate
                // than a home's share of its FTTH line.
                let share_u = rng::unit_f64(
                    self.cfg.seed,
                    &[u64::from(asn), class_tag, client_idx as u64, 7],
                );
                let share = match class {
                    ServiceClass::Mobile => 0.55 + 0.35 * share_u,
                    _ => 0.35 + 0.4 * share_u,
                };
                let rtt_jitter = 0.85
                    + 0.3
                        * rng::unit_f64(
                            self.cfg.seed,
                            &[u64::from(asn), class_tag, client_idx as u64, 8],
                        );

                let rtt_s = (state.rtt_ms() * rtt_jitter).max(1.0) / 1000.0;
                let p = BASELINE_LOSS + state.loss_rate * self.cfg.loss_scale;
                let mathis_mbps = MATHIS_C * MSS_BYTES * 8.0 / (rtt_s * p.sqrt()) / 1e6;
                let line_mbps = state.line_rate_mbps * share;
                let rate_mbps = mathis_mbps.min(line_mbps).max(0.05);

                let bytes = object_size_bytes(&mut brng);
                let duration_ms = bytes as f64 * 8.0 / (rate_mbps * 1e6) * 1000.0;
                let cache = if brng.gen::<f64>() < self.cfg.cache_hit_rate {
                    CacheStatus::Hit
                } else {
                    CacheStatus::Miss
                };
                out.push(AccessLogRecord {
                    client,
                    timestamp: t,
                    bytes,
                    duration_ms,
                    cache,
                });
            }
        }
        out.sort_by_key(|r| r.timestamp);
        out
    }

    /// Generate and merge logs for several services of one AS — the raw
    /// feed as a CDN would record it, before any filtering.
    pub fn generate_mixed(
        &self,
        asn: Asn,
        classes: &[ServiceClass],
        window: &TimeRange,
    ) -> Vec<AccessLogRecord> {
        let mut out: Vec<AccessLogRecord> = classes
            .iter()
            .flat_map(|&c| self.generate(asn, c, window))
            .collect();
        out.sort_by_key(|r| r.timestamp);
        out
    }
}

/// Log-normal-ish object sizes: median ~0.7 MB, a healthy tail above the
/// paper's 3 MB threshold (video segments), floor 1 KB.
fn object_size_bytes(rng: &mut SmallRng) -> u64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos();
    (13.5 + 1.8 * z).exp().clamp(1e3, 2e9) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::LogFilter;
    use crate::throughput::binned_median_throughput;
    use lastmile_netsim::scenarios::tokyo::{tokyo_world, ISP_A_ASN, ISP_C_ASN};
    use lastmile_timebase::CivilDate;

    fn one_day() -> TimeRange {
        let start = CivilDate::new(2019, 9, 25).midnight();
        TimeRange::new(start, start + 86_400)
    }

    #[test]
    fn generates_plausible_volume() {
        let w = tokyo_world(1);
        let gen = CdnLogGenerator::new(&w, CdnGeneratorConfig::test_scale(2));
        let logs = gen.generate(ISP_A_ASN, ServiceClass::BroadbandV4, &one_day());
        // 96 bins x 80 requests.
        assert_eq!(logs.len(), 96 * 80);
        // Chronological.
        assert!(logs.windows(2).all(|w| w[0].timestamp <= w[1].timestamp));
        // Clients come from the AS's broadband prefix.
        for r in logs.iter().take(20) {
            assert_eq!(w.registry().asn_of(r.client), Some(ISP_A_ASN));
            assert!(!w.registry().is_mobile(r.client));
        }
    }

    #[test]
    fn deterministic() {
        let w = tokyo_world(1);
        let gen = CdnLogGenerator::new(&w, CdnGeneratorConfig::test_scale(2));
        let a = gen.generate(ISP_A_ASN, ServiceClass::BroadbandV4, &one_day());
        let b = gen.generate(ISP_A_ASN, ServiceClass::BroadbandV4, &one_day());
        assert_eq!(a, b);
    }

    #[test]
    fn congested_evening_halves_throughput() {
        let w = tokyo_world(1);
        let gen = CdnLogGenerator::new(&w, CdnGeneratorConfig::test_scale(2));
        let logs = gen.generate(ISP_A_ASN, ServiceClass::BroadbandV4, &one_day());
        let filter = LogFilter::paper_broadband();
        let kept: Vec<_> = filter.apply(&logs, w.registry()).cloned().collect();
        assert!(kept.len() > 500, "filter kept {}", kept.len());
        let series = binned_median_throughput(kept.iter(), BinSpec::fifteen_minutes());
        // JST evening 21:00 = 12:00 UTC; JST early morning 04:00 = 19:00 UTC.
        let med_at = |hour: u8| {
            let vals: Vec<f64> = series
                .iter()
                .filter(|(t, _)| t.hour_of_day() == hour)
                .map(|&(_, v)| v)
                .collect();
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        let peak = med_at(12);
        let night = med_at(19);
        assert!(
            peak < night * 0.55,
            "peak {peak:.1} Mbps must be less than half of off-peak {night:.1} Mbps"
        );
        assert!(night > 30.0, "off-peak median {night:.1} Mbps");
    }

    #[test]
    fn clean_isp_and_mobile_stay_stable() {
        let w = tokyo_world(1);
        let gen = CdnLogGenerator::new(&w, CdnGeneratorConfig::test_scale(2));
        for (asn, class) in [
            (ISP_C_ASN, ServiceClass::BroadbandV4),
            (ISP_A_ASN, ServiceClass::Mobile),
            (ISP_A_ASN, ServiceClass::BroadbandV6),
        ] {
            let logs = gen.generate(asn, class, &one_day());
            let filter = match class {
                ServiceClass::Mobile => LogFilter::paper_mobile(),
                _ => LogFilter {
                    exclude_mobile: false,
                    ..LogFilter::paper_broadband()
                },
            };
            let kept: Vec<_> = filter.apply(&logs, w.registry()).cloned().collect();
            let series = binned_median_throughput(kept.iter(), BinSpec::fifteen_minutes());
            let vals: Vec<f64> = series.iter().map(|&(_, v)| v).collect();
            let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            assert!(
                lo > hi * 0.55,
                "AS{asn} {class:?}: min {lo:.1} vs max {hi:.1} should be stable"
            );
            if class == ServiceClass::Mobile {
                assert!(
                    lo > 20.0,
                    "mobile medians must stay above 20 Mbps, got {lo:.1}"
                );
            }
        }
    }

    #[test]
    fn unknown_service_generates_nothing() {
        let w = tokyo_world(1);
        let gen = CdnLogGenerator::new(&w, CdnGeneratorConfig::test_scale(2));
        let logs = gen.generate(99999, ServiceClass::BroadbandV4, &one_day());
        assert!(logs.is_empty());
    }

    #[test]
    fn mixed_feed_contains_both_families() {
        let w = tokyo_world(1);
        let gen = CdnLogGenerator::new(&w, CdnGeneratorConfig::test_scale(2));
        let logs = gen.generate_mixed(
            ISP_A_ASN,
            &[ServiceClass::BroadbandV4, ServiceClass::BroadbandV6],
            &one_day(),
        );
        let v6 = logs.iter().filter(|r| r.is_ipv6()).count();
        assert!(v6 > 0 && v6 < logs.len());
        assert!(logs.windows(2).all(|w| w[0].timestamp <= w[1].timestamp));
    }

    #[test]
    fn object_sizes_have_a_3mb_tail() {
        let mut r = rng::rng_for(1, &[2, 3]);
        let sizes: Vec<u64> = (0..5000).map(|_| object_size_bytes(&mut r)).collect();
        let over_3mb = sizes.iter().filter(|&&s| s > 3_000_000).count() as f64 / 5000.0;
        assert!(
            (0.1..0.5).contains(&over_3mb),
            "fraction of >3MB objects: {over_3mb}"
        );
        assert!(sizes.iter().all(|&s| s >= 1000));
    }
}
