//! CDN access-log records.
//!
//! One record per completed HTTP object delivery, with the fields the
//! paper's pipeline needs: client address (family distinguishes the
//! Appendix C IPv4/IPv6 comparison), timestamp, object size, transfer
//! duration, and cache status. Throughput is *derived* (`bytes × 8 /
//! duration`), as it would be from real logs.
//!
//! Records serialise to a tab-separated line format (the lingua franca of
//! CDN log pipelines) via [`AccessLogRecord::to_tsv`] /
//! [`AccessLogRecord::from_tsv`].

use lastmile_timebase::UnixTime;
use std::fmt;
use std::net::IpAddr;
use std::str::FromStr;

/// Whether the CDN served the object from cache.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CacheStatus {
    /// Served from the edge cache — transfer speed reflects the access
    /// path, which is why the paper keeps only these.
    Hit,
    /// Fetched from origin — origin latency pollutes the measurement.
    Miss,
}

impl fmt::Display for CacheStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CacheStatus::Hit => "HIT",
            CacheStatus::Miss => "MISS",
        })
    }
}

impl FromStr for CacheStatus {
    type Err = ParseRecordError;

    fn from_str(s: &str) -> Result<CacheStatus, ParseRecordError> {
        match s {
            "HIT" => Ok(CacheStatus::Hit),
            "MISS" => Ok(CacheStatus::Miss),
            _ => Err(ParseRecordError::BadField("cache")),
        }
    }
}

/// One delivered object.
#[derive(Clone, Debug, PartialEq)]
pub struct AccessLogRecord {
    /// Client address.
    pub client: IpAddr,
    /// Request completion time.
    pub timestamp: UnixTime,
    /// Object size in bytes.
    pub bytes: u64,
    /// Transfer duration in milliseconds.
    pub duration_ms: f64,
    /// Cache status.
    pub cache: CacheStatus,
}

impl AccessLogRecord {
    /// Transfer throughput in Mbps (`None` for zero-duration records,
    /// which real logs do contain for tiny objects).
    pub fn throughput_mbps(&self) -> Option<f64> {
        if self.duration_ms <= 0.0 {
            return None;
        }
        Some(self.bytes as f64 * 8.0 / (self.duration_ms / 1000.0) / 1e6)
    }

    /// Whether the client connected over IPv6.
    pub fn is_ipv6(&self) -> bool {
        self.client.is_ipv6()
    }

    /// Serialise to one TSV line: `timestamp client bytes duration cache`.
    pub fn to_tsv(&self) -> String {
        format!(
            "{}\t{}\t{}\t{:.3}\t{}",
            self.timestamp.as_secs(),
            self.client,
            self.bytes,
            self.duration_ms,
            self.cache
        )
    }

    /// Parse one TSV line.
    pub fn from_tsv(line: &str) -> Result<AccessLogRecord, ParseRecordError> {
        let mut parts = line.split('\t');
        let mut next = || parts.next().ok_or(ParseRecordError::MissingField);
        let timestamp: i64 = next()?
            .parse()
            .map_err(|_| ParseRecordError::BadField("timestamp"))?;
        let client: IpAddr = next()?
            .parse()
            .map_err(|_| ParseRecordError::BadField("client"))?;
        let bytes: u64 = next()?
            .parse()
            .map_err(|_| ParseRecordError::BadField("bytes"))?;
        let duration_ms: f64 = next()?
            .parse()
            .map_err(|_| ParseRecordError::BadField("duration"))?;
        let cache: CacheStatus = next()?.parse()?;
        Ok(AccessLogRecord {
            client,
            timestamp: UnixTime::from_secs(timestamp),
            bytes,
            duration_ms,
            cache,
        })
    }
}

/// Errors parsing a TSV log line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParseRecordError {
    /// The line has fewer than five fields.
    MissingField,
    /// A field failed to parse.
    BadField(&'static str),
}

impl fmt::Display for ParseRecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseRecordError::MissingField => write!(f, "log line has too few fields"),
            ParseRecordError::BadField(name) => write!(f, "invalid {name} field"),
        }
    }
}

impl std::error::Error for ParseRecordError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec() -> AccessLogRecord {
        AccessLogRecord {
            client: "20.0.0.77".parse().unwrap(),
            timestamp: UnixTime::from_secs(1_568_900_000),
            bytes: 5_000_000,
            duration_ms: 1000.0,
            cache: CacheStatus::Hit,
        }
    }

    #[test]
    fn throughput_derivation() {
        // 5 MB in 1 s = 40 Mbit / 1 s = 40 Mbps.
        assert!((rec().throughput_mbps().unwrap() - 40.0).abs() < 1e-9);
        let zero = AccessLogRecord {
            duration_ms: 0.0,
            ..rec()
        };
        assert_eq!(zero.throughput_mbps(), None);
    }

    #[test]
    fn tsv_round_trip() {
        let r = rec();
        let line = r.to_tsv();
        assert_eq!(AccessLogRecord::from_tsv(&line).unwrap(), r);
        // v6 client too.
        let r6 = AccessLogRecord {
            client: "2400:cb00::1".parse().unwrap(),
            ..rec()
        };
        assert!(r6.is_ipv6());
        assert_eq!(AccessLogRecord::from_tsv(&r6.to_tsv()).unwrap(), r6);
    }

    #[test]
    fn tsv_parse_errors() {
        assert_eq!(
            AccessLogRecord::from_tsv("1"),
            Err(ParseRecordError::MissingField)
        );
        assert_eq!(
            AccessLogRecord::from_tsv("1\t2"),
            Err(ParseRecordError::BadField("client"))
        );
        assert_eq!(
            AccessLogRecord::from_tsv("x\t20.0.0.1\t5\t1.0\tHIT"),
            Err(ParseRecordError::BadField("timestamp"))
        );
        assert_eq!(
            AccessLogRecord::from_tsv("1\tnot-ip\t5\t1.0\tHIT"),
            Err(ParseRecordError::BadField("client"))
        );
        assert_eq!(
            AccessLogRecord::from_tsv("1\t20.0.0.1\t5\t1.0\tWARM"),
            Err(ParseRecordError::BadField("cache"))
        );
    }

    #[test]
    fn cache_status_round_trip() {
        assert_eq!("HIT".parse::<CacheStatus>().unwrap(), CacheStatus::Hit);
        assert_eq!("MISS".parse::<CacheStatus>().unwrap(), CacheStatus::Miss);
        assert_eq!(CacheStatus::Hit.to_string(), "HIT");
    }
}
