//! # lastmile-cdnlog
//!
//! The CDN access-log side of the IMC 2020 validation (§4.2–§4.3 and
//! Appendix C), built from scratch: a log-record model, the paper's
//! filtering pipeline, throughput estimation, and a synthetic log
//! generator driven by the `lastmile-netsim` world so that throughput
//! co-varies with last-mile queuing exactly when the simulated bottleneck
//! is the shared access segment.
//!
//! The paper's §4.2 recipe, stage by stage:
//!
//! 1. logs "collected in Tokyo" from "a large commercial CDN"
//!    (~150k unique IPs) — [`generate::CdnLogGenerator`];
//! 2. "we filter out all entries corresponding to mobile prefixes as
//!    advertised on their website" — [`filter::LogFilter`] +
//!    [`lastmile_prefix::AsRegistry::is_mobile`];
//! 3. "we select only requests for objects greater than 3MB and marked as
//!    cache-hit. This allows us to account for TCP dynamics and artifacts
//!    caused by CDN functioning" — [`filter::LogFilter`];
//! 4. "we measure throughput per IP and compute ASN aggregates by
//!    computing the median value in 15-minute time-bins" —
//!    [`throughput::binned_median_throughput`].
//!
//! The generator's transfer model is Mathis-style TCP throughput
//! `rate = C · MSS / (RTT · √p)` capped by the access line rate and a
//! per-client share — so when the evening queue raises RTT and loss on a
//! legacy PPPoE segment, throughput halves, reproducing Figure 6.

pub mod cc;
pub mod filter;
pub mod generate;
pub mod record;
pub mod throughput;

pub use cc::CongestionControl;
pub use filter::LogFilter;
pub use generate::{CdnGeneratorConfig, CdnLogGenerator};
pub use record::{AccessLogRecord, CacheStatus};
pub use throughput::binned_median_throughput;
