//! The paper's log-filtering pipeline (§4.2).
//!
//! "Since the studied ASes provide both broadband and mobile services, we
//! filter out all entries corresponding to mobile prefixes as advertised
//! on their website. Then we select only requests for objects greater
//! than 3MB and marked as cache-hit."
//!
//! [`LogFilter`] implements each rule as an independent toggle so the
//! ablation benchmarks can measure what each filter contributes.

use crate::record::{AccessLogRecord, CacheStatus};
use lastmile_prefix::AsRegistry;

/// The §4.2 record filter.
#[derive(Clone, Debug)]
pub struct LogFilter {
    /// Keep only objects strictly larger than this (paper: 3 MB).
    pub min_bytes: u64,
    /// Keep only cache hits.
    pub require_cache_hit: bool,
    /// Drop clients inside advertised mobile prefixes.
    pub exclude_mobile: bool,
    /// Keep only this address family, when set (`true` = IPv6) —
    /// Appendix C splits the two.
    pub family_v6: Option<bool>,
}

/// 3 MB, the paper's object-size threshold.
pub const PAPER_MIN_BYTES: u64 = 3_000_000;

impl LogFilter {
    /// The paper's broadband filter: > 3 MB, cache hits, mobile excluded.
    pub fn paper_broadband() -> LogFilter {
        LogFilter {
            min_bytes: PAPER_MIN_BYTES,
            require_cache_hit: true,
            exclude_mobile: true,
            family_v6: None,
        }
    }

    /// The mobile-users view: same size/cache rules, mobile *included
    /// only* (everything else dropped) — Figure 6's middle plot.
    pub fn paper_mobile() -> LogFilter {
        LogFilter {
            exclude_mobile: false,
            ..LogFilter::paper_broadband()
        }
    }

    /// Restrict to one address family (Appendix C).
    pub fn family(mut self, v6: bool) -> LogFilter {
        self.family_v6 = Some(v6);
        self
    }

    /// Whether a record passes. `registry` resolves mobile prefixes.
    pub fn accepts(&self, record: &AccessLogRecord, registry: &AsRegistry) -> bool {
        if record.bytes <= self.min_bytes {
            return false;
        }
        if self.require_cache_hit && record.cache != CacheStatus::Hit {
            return false;
        }
        if self.exclude_mobile && registry.is_mobile(record.client) {
            return false;
        }
        if let Some(v6) = self.family_v6 {
            if record.is_ipv6() != v6 {
                return false;
            }
        }
        true
    }

    /// Filter a batch, preserving order.
    pub fn apply<'a>(
        &'a self,
        records: &'a [AccessLogRecord],
        registry: &'a AsRegistry,
    ) -> impl Iterator<Item = &'a AccessLogRecord> {
        records.iter().filter(move |r| self.accepts(r, registry))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lastmile_prefix::{Prefix, PrefixRole};
    use lastmile_timebase::UnixTime;

    fn registry() -> AsRegistry {
        let mut r = AsRegistry::new();
        r.announce(
            100,
            "20.0.0.0/16".parse::<Prefix>().unwrap(),
            PrefixRole::Broadband,
        );
        r.announce(
            101,
            "20.1.0.0/16".parse::<Prefix>().unwrap(),
            PrefixRole::Mobile,
        );
        r
    }

    fn rec(client: &str, bytes: u64, cache: CacheStatus) -> AccessLogRecord {
        AccessLogRecord {
            client: client.parse().unwrap(),
            timestamp: UnixTime::from_secs(0),
            bytes,
            duration_ms: 1000.0,
            cache,
        }
    }

    #[test]
    fn size_threshold_is_strict() {
        let f = LogFilter::paper_broadband();
        let reg = registry();
        assert!(!f.accepts(&rec("20.0.0.1", 3_000_000, CacheStatus::Hit), &reg));
        assert!(f.accepts(&rec("20.0.0.1", 3_000_001, CacheStatus::Hit), &reg));
        assert!(!f.accepts(&rec("20.0.0.1", 10_000, CacheStatus::Hit), &reg));
    }

    #[test]
    fn cache_misses_are_dropped() {
        let f = LogFilter::paper_broadband();
        let reg = registry();
        assert!(!f.accepts(&rec("20.0.0.1", 5_000_000, CacheStatus::Miss), &reg));
    }

    #[test]
    fn mobile_clients_are_dropped_from_broadband_view() {
        let f = LogFilter::paper_broadband();
        let reg = registry();
        assert!(f.accepts(&rec("20.0.0.1", 5_000_000, CacheStatus::Hit), &reg));
        assert!(!f.accepts(&rec("20.1.0.1", 5_000_000, CacheStatus::Hit), &reg));
        // The mobile view keeps them.
        let m = LogFilter::paper_mobile();
        assert!(m.accepts(&rec("20.1.0.1", 5_000_000, CacheStatus::Hit), &reg));
    }

    #[test]
    fn family_restriction() {
        let reg = registry();
        let v6_only = LogFilter::paper_broadband().family(true);
        assert!(!v6_only.accepts(&rec("20.0.0.1", 5_000_000, CacheStatus::Hit), &reg));
        assert!(v6_only.accepts(&rec("2400:cb00::1", 5_000_000, CacheStatus::Hit), &reg));
        let v4_only = LogFilter::paper_broadband().family(false);
        assert!(v4_only.accepts(&rec("20.0.0.1", 5_000_000, CacheStatus::Hit), &reg));
    }

    #[test]
    fn apply_preserves_order() {
        let reg = registry();
        let records = vec![
            rec("20.0.0.1", 5_000_000, CacheStatus::Hit),
            rec("20.0.0.2", 1_000, CacheStatus::Hit),
            rec("20.0.0.3", 6_000_000, CacheStatus::Hit),
        ];
        let f = LogFilter::paper_broadband();
        let kept: Vec<_> = f
            .apply(&records, &reg)
            .map(|r| r.client.to_string())
            .collect();
        assert_eq!(kept, vec!["20.0.0.1", "20.0.0.3"]);
    }
}
