//! Congestion-control sensitivity models (the §6 discussion).
//!
//! The paper's discussion argues that "the original version of BBR that
//! disregards packet loss may be detrimental in the context of persistent
//! last-mile congestion, as it may put more burden to already overwhelmed
//! devices. Thus, the improvements brought by BBR v2 (i.e. account for
//! loss and ECN) are essential in this context."
//!
//! This module turns that argument into a quantitative model:
//!
//! * **loss-based** flows (Reno/CUBIC) follow the Mathis law — they back
//!   off as queue-induced loss rises, which is what lets the evening
//!   congestion show up as the Figure 6 throughput halving;
//! * **BBRv1** paces at its bottleneck-bandwidth estimate regardless of
//!   loss, sustaining its rate through the congested evening *and*
//!   keeping up to two extra bandwidth-delay products of data in flight —
//!   a standing queue added on top of the shared segment's own backlog;
//! * **BBRv2** behaves like BBRv1 until loss crosses its ~2% ceiling,
//!   then backs off multiplicatively, bounding the extra standing queue.
//!
//! [`mixed_traffic_queue_ms`] composes a population: given the share of
//! BBRv1 traffic on a congested segment, how much standing queue do the
//! non-backing-off flows add for everyone?

use lastmile_netsim::AccessState;

/// Mathis constant `C`.
const MATHIS_C: f64 = 1.22;
/// TCP maximum segment size, bytes.
const MSS_BYTES: f64 = 1460.0;
/// Loss rate above which BBRv2's loss ceiling engages (the "2% loss
/// threshold" of the BBRv2 design).
const BBR2_LOSS_CEILING: f64 = 0.02;
/// BBRv1's steady-state inflight as a multiple of the BDP (cwnd_gain = 2).
const BBR1_INFLIGHT_GAIN: f64 = 2.0;

/// A TCP congestion-control algorithm, as seen by the access segment.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CongestionControl {
    /// Loss-based AIMD (Reno/CUBIC): Mathis-law throughput.
    LossBased,
    /// BBR version 1: ignores loss entirely.
    BbrV1,
    /// BBR version 2: loss-aware (backs off above the loss ceiling).
    BbrV2,
}

impl CongestionControl {
    /// Steady-state throughput of one flow whose fair line share is
    /// `share_mbps`, under the given access-path state.
    pub fn throughput_mbps(self, state: &AccessState, share_mbps: f64) -> f64 {
        let rtt_s = (state.rtt_ms() / 1000.0).max(1e-4);
        let p = state.loss_rate.max(1e-6);
        match self {
            CongestionControl::LossBased => {
                let mathis = MATHIS_C * MSS_BYTES * 8.0 / (rtt_s * p.sqrt()) / 1e6;
                mathis.min(share_mbps)
            }
            // BBRv1 holds its bandwidth estimate regardless of loss.
            CongestionControl::BbrV1 => share_mbps,
            // BBRv2 matches BBRv1 below the ceiling, then backs off in
            // proportion to how far loss exceeds it.
            CongestionControl::BbrV2 => {
                if p <= BBR2_LOSS_CEILING {
                    share_mbps
                } else {
                    share_mbps * (BBR2_LOSS_CEILING / p).sqrt()
                }
            }
        }
    }

    /// Extra standing queue (ms) one flow of this algorithm keeps in the
    /// shared buffer, beyond its fair BDP.
    ///
    /// Loss-based flows drain to roughly one BDP on each backoff: ~0.
    /// BBRv1 keeps `cwnd_gain × BDP` in flight, i.e. up to one extra
    /// base-RTT worth of data queued. BBRv2 does the same only below its
    /// loss ceiling.
    pub fn standing_queue_ms(self, state: &AccessState) -> f64 {
        let extra_bdp_ms = state.base_rtt_ms * (BBR1_INFLIGHT_GAIN - 1.0);
        match self {
            CongestionControl::LossBased => 0.0,
            CongestionControl::BbrV1 => extra_bdp_ms,
            CongestionControl::BbrV2 => {
                if state.loss_rate <= BBR2_LOSS_CEILING {
                    extra_bdp_ms
                } else {
                    0.0
                }
            }
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            CongestionControl::LossBased => "loss-based (CUBIC/Reno)",
            CongestionControl::BbrV1 => "BBR v1",
            CongestionControl::BbrV2 => "BBR v2",
        }
    }
}

/// The added standing queue on a shared segment when a fraction of its
/// flows run each congestion control, weighted by traffic share.
///
/// `mix` is a list of `(algorithm, traffic_fraction)`; fractions should
/// sum to ~1 (asserted within 1%).
pub fn mixed_traffic_queue_ms(state: &AccessState, mix: &[(CongestionControl, f64)]) -> f64 {
    let total: f64 = mix.iter().map(|&(_, f)| f).sum();
    assert!(
        (total - 1.0).abs() < 0.01,
        "traffic fractions must sum to 1, got {total}"
    );
    mix.iter()
        .map(|&(cc, f)| f * cc.standing_queue_ms(state))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn congested_state() -> AccessState {
        AccessState {
            base_rtt_ms: 8.0,
            queuing_ms: 5.0,
            loss_rate: 0.018,
            line_rate_mbps: 100.0,
        }
    }

    fn overwhelmed_state() -> AccessState {
        AccessState {
            base_rtt_ms: 8.0,
            queuing_ms: 30.0,
            loss_rate: 0.05,
            line_rate_mbps: 100.0,
        }
    }

    fn clean_state() -> AccessState {
        AccessState {
            base_rtt_ms: 8.0,
            queuing_ms: 0.0,
            loss_rate: 0.0,
            line_rate_mbps: 100.0,
        }
    }

    #[test]
    fn loss_based_backs_off_under_congestion() {
        let clean = CongestionControl::LossBased.throughput_mbps(&clean_state(), 50.0);
        let congested = CongestionControl::LossBased.throughput_mbps(&congested_state(), 50.0);
        assert!(
            (clean - 50.0).abs() < 1e-9,
            "clean path is line-limited: {clean}"
        );
        assert!(
            congested < 15.0,
            "congested loss-based throughput {congested}"
        );
    }

    #[test]
    fn bbr1_ignores_loss_entirely() {
        for state in [clean_state(), congested_state(), overwhelmed_state()] {
            assert_eq!(CongestionControl::BbrV1.throughput_mbps(&state, 50.0), 50.0);
        }
    }

    #[test]
    fn bbr2_backs_off_only_above_its_ceiling() {
        // 1.8% loss: below the 2% ceiling, full rate.
        assert_eq!(
            CongestionControl::BbrV2.throughput_mbps(&congested_state(), 50.0),
            50.0
        );
        // 5% loss: backs off.
        let t = CongestionControl::BbrV2.throughput_mbps(&overwhelmed_state(), 50.0);
        assert!(t < 50.0 && t > 10.0, "{t}");
        // And still far gentler than loss-based at the same loss.
        let lb = CongestionControl::LossBased.throughput_mbps(&overwhelmed_state(), 50.0);
        assert!(t > lb);
    }

    #[test]
    fn standing_queue_ranks_v1_worst() {
        let s = overwhelmed_state();
        let v1 = CongestionControl::BbrV1.standing_queue_ms(&s);
        let v2 = CongestionControl::BbrV2.standing_queue_ms(&s);
        let lb = CongestionControl::LossBased.standing_queue_ms(&s);
        assert!(v1 > 0.0);
        assert_eq!(lb, 0.0);
        assert_eq!(
            v2, 0.0,
            "v2 sheds its standing queue once loss exceeds the ceiling"
        );
        // Below the ceiling v2 queues like v1 (it is probing just as hard).
        let mild = congested_state();
        assert_eq!(
            CongestionControl::BbrV2.standing_queue_ms(&mild),
            CongestionControl::BbrV1.standing_queue_ms(&mild)
        );
    }

    #[test]
    fn mixed_traffic_queue_scales_with_bbr1_share() {
        let s = overwhelmed_state();
        let none = mixed_traffic_queue_ms(&s, &[(CongestionControl::LossBased, 1.0)]);
        let third = mixed_traffic_queue_ms(
            &s,
            &[
                (CongestionControl::LossBased, 0.67),
                (CongestionControl::BbrV1, 0.33),
            ],
        );
        let all = mixed_traffic_queue_ms(&s, &[(CongestionControl::BbrV1, 1.0)]);
        assert_eq!(none, 0.0);
        assert!(third > 0.0 && third < all);
        assert!(
            (all - 8.0).abs() < 1e-9,
            "one extra BDP at base RTT 8 ms: {all}"
        );
        // Replacing v1 with v2 under heavy loss removes the burden.
        let v2 = mixed_traffic_queue_ms(
            &s,
            &[
                (CongestionControl::LossBased, 0.67),
                (CongestionControl::BbrV2, 0.33),
            ],
        );
        assert_eq!(v2, 0.0);
    }

    #[test]
    #[should_panic(expected = "must sum to 1")]
    fn mix_fractions_are_checked() {
        let _ = mixed_traffic_queue_ms(&clean_state(), &[(CongestionControl::BbrV1, 0.4)]);
    }
}
