//! The sustained-ladder profile: stepped open-loop arrival rates.
//!
//! Each rung offers a fixed arrival rate for a dwell period and records
//! what came of it — offered vs achieved rate, latency percentiles,
//! shed rate. Stacked, the rungs trace the daemon's
//! throughput-vs-latency curve: the knee is the first rung where
//! achieved stops tracking offered and p99 (or the shed rate) takes
//! off. This is the curve `BENCH_serve.json` records.

use crate::client::scrape_shed_counters;
use crate::engine::run_open_loop;
use crate::mix::{Mix, Plan};
use crate::report::{EndpointTallies, LoadReport, RungReport, ShedReconciliation};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// One ladder run's shape.
#[derive(Clone, Debug)]
pub struct LadderConfig {
    pub addr: SocketAddr,
    pub addr_label: String,
    /// Offered arrival rates (requests/second), one rung each, in
    /// order.
    pub rates: Vec<f64>,
    /// Time spent at each rung.
    pub dwell: Duration,
    /// Client worker threads — the in-flight cap; arrivals past it are
    /// counted `not_sent`.
    pub concurrency: usize,
    pub mix: Mix,
    pub plan: Plan,
}

/// Run the ladder profile.
pub fn run_ladder(config: LadderConfig) -> Result<LoadReport, String> {
    let mut mix = config.mix.clone();
    mix.validate(&config.plan)?;
    if config.rates.is_empty() {
        return Err("ladder needs at least one rate".into());
    }
    if let Some(bad) = config.rates.iter().find(|r| !r.is_finite() || **r <= 0.0) {
        return Err(format!("ladder rate {bad} must be a positive number"));
    }
    let started = Instant::now();
    let mut tallies = EndpointTallies::default();
    let mut rungs = Vec::with_capacity(config.rates.len());
    // Scrape the daemon's shed counters before the first rung and at
    // every rung boundary: each rung records the server-side shed delta
    // it caused, and the whole run reconciles the client-side 503 tally
    // against the server's counters. A failed scrape (fake server in
    // tests, non-lastmile target) disables the reconciliation rather
    // than failing the run.
    let baseline = scrape_shed_counters(config.addr, config.plan.timeout);
    let mut before = baseline;
    for &rate in &config.rates {
        let rung_started = Instant::now();
        let rung_tallies = run_open_loop(
            config.addr,
            &mut mix,
            &config.plan,
            rate,
            config.dwell,
            config.concurrency,
        );
        // Achieved rate is measured against the rung's true wall time:
        // the dispatch loop runs for `dwell`, but the tail of in-flight
        // requests drains after it.
        let rung_wall = rung_started.elapsed().as_secs_f64();
        let mut rung = RungReport::from_tally(
            rate,
            rung_wall.max(f64::MIN_POSITIVE),
            &rung_tallies.total(),
        );
        let after = before.and_then(|_| scrape_shed_counters(config.addr, config.plan.timeout));
        if let (Some(b), Some(a)) = (before, after) {
            rung.server_shed = Some(a.total().saturating_sub(b.total()));
        }
        before = after;
        rungs.push(rung);
        tallies.merge(&rung_tallies);
    }
    let totals = tallies.total();
    // `before` now holds the post-run scrape (or None if any scrape
    // failed along the way, which disables the check entirely).
    let shed_check = match (baseline, before) {
        (Some(first), Some(last)) => Some(ShedReconciliation::check(
            totals.shed,
            last.total().saturating_sub(first.total()),
            totals.errors,
        )),
        _ => None,
    };
    Ok(LoadReport {
        profile: "ladder".into(),
        addr: config.addr_label,
        mix: mix.spec(),
        concurrency: config.concurrency.max(1) as u64,
        wall_secs: started.elapsed().as_secs_f64(),
        consistent: totals.consistent(),
        totals: totals.summary(),
        endpoints: tallies.summaries(),
        rungs,
        bursts: vec![],
        shed_check,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mix::Endpoint;
    use std::io::{Read, Write};
    use std::net::TcpListener;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    #[test]
    fn ladder_reports_one_rung_per_rate() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let server = std::thread::spawn(move || {
            while !stop2.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((mut stream, _)) => {
                        std::thread::spawn(move || {
                            let mut buf = [0u8; 1024];
                            let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
                            let _ = stream.read(&mut buf);
                            let _ =
                                stream.write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok");
                        });
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(1)),
                }
            }
        });
        let report = run_ladder(LadderConfig {
            addr,
            addr_label: addr.to_string(),
            rates: vec![40.0, 80.0],
            dwell: Duration::from_millis(200),
            concurrency: 8,
            mix: Mix::single(Endpoint::Healthz),
            plan: Plan {
                timeout: Duration::from_secs(2),
                ..Plan::default()
            },
        })
        .expect("ladder runs");
        stop.store(true, Ordering::Relaxed);
        server.join().unwrap();
        assert_eq!(report.profile, "ladder");
        assert_eq!(report.rungs.len(), 2);
        assert!(report.consistent);
        // 40 rps × 0.2 s = 8 arrivals, 80 × 0.2 = 16.
        assert_eq!(report.rungs[0].attempted + report.rungs[0].not_sent, 8);
        assert_eq!(report.rungs[1].attempted + report.rungs[1].not_sent, 16);
        assert!(report.rungs[0].achieved_rps > 0.0);
        assert_eq!(
            report.totals.attempted + report.totals.not_sent,
            24,
            "{report:?}"
        );
        // The fake server's `/metrics` answer isn't the daemon's JSON
        // schema, so reconciliation is silently skipped.
        assert_eq!(report.shed_check, None);
        assert!(report.rungs.iter().all(|r| r.server_shed.is_none()));
    }

    #[test]
    fn ladder_reconciles_sheds_against_a_metrics_scrape() {
        // A fake daemon that answers `/metrics` with the lastmile JSON
        // schema (static counters) and everything else with 200: zero
        // client-side sheds against a zero server-side delta must
        // reconcile as consistent, with per-rung deltas recorded.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let server = std::thread::spawn(move || {
            while !stop2.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((mut stream, _)) => {
                        std::thread::spawn(move || {
                            let mut buf = [0u8; 1024];
                            let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
                            let n = stream.read(&mut buf).unwrap_or(0);
                            let head = String::from_utf8_lossy(&buf[..n]).to_string();
                            let response: &[u8] = if head.starts_with("GET /metrics") {
                                b"HTTP/1.1 200 OK\r\n\r\n{\"serve\":{\"rejected_busy\":2,\"admission\":{\
                                  \"cheap\":{\"shed\":1},\"heavy\":{\"shed\":0},\"intake\":{\"shed\":0}}}}\n"
                            } else {
                                b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok"
                            };
                            let _ = stream.write_all(response);
                        });
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(1)),
                }
            }
        });
        let report = run_ladder(LadderConfig {
            addr,
            addr_label: addr.to_string(),
            rates: vec![40.0],
            dwell: Duration::from_millis(200),
            concurrency: 8,
            mix: Mix::single(Endpoint::Healthz),
            plan: Plan {
                timeout: Duration::from_secs(2),
                ..Plan::default()
            },
        })
        .expect("ladder runs");
        stop.store(true, Ordering::Relaxed);
        server.join().unwrap();
        let check = report.shed_check.expect("reconciliation ran");
        assert!(check.consistent, "{check:?}");
        assert_eq!(check.client_shed, 0);
        assert_eq!(check.server_shed_delta, 0);
        assert_eq!(report.rungs[0].server_shed, Some(0));
    }

    #[test]
    fn ladder_rejects_bad_rates() {
        let plan = Plan::default();
        let base = LadderConfig {
            addr: "127.0.0.1:1".parse().unwrap(),
            addr_label: "x".into(),
            rates: vec![],
            dwell: Duration::from_millis(10),
            concurrency: 1,
            mix: Mix::single(Endpoint::Healthz),
            plan,
        };
        assert!(run_ladder(base.clone()).is_err());
        let mut zero = base;
        zero.rates = vec![0.0];
        assert!(run_ladder(zero).is_err());
    }
}
