//! The raw-TCP one-shot HTTP client every profile is built on.
//!
//! One request per connection, `Connection: close` — exactly the subset
//! the daemon serves — so a "request" here measures what a real client
//! pays: connect, write, first-byte-to-close read. Timeouts bound every
//! phase; a stuck daemon costs the generator one worker slot for the
//! timeout, never forever.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// What one request came back with.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Outcome {
    /// HTTP status code.
    pub status: u16,
    /// Connect-to-connection-closed wall time.
    pub nanos: u64,
    /// The `Retry-After` hint, when the daemon sent one (503 sheds).
    pub retry_after: Option<u64>,
    /// Body bytes received.
    pub body_len: usize,
    /// `cost_class` named in a 503 shed body, when present.
    pub cost_class: Option<String>,
}

/// Resolve `addr` ("host:port") once, up front — per-request DNS would
/// put the resolver in the latency measurement.
pub fn resolve(addr: &str) -> Result<SocketAddr, String> {
    addr.to_socket_addrs()
        .map_err(|e| format!("resolve {addr}: {e}"))?
        .next()
        .ok_or_else(|| format!("resolve {addr}: no address"))
}

/// Issue one request and read the full response. `body` non-empty means
/// a POST with `Content-Length`. Errors are connect/IO-level failures;
/// any parsed HTTP status (including 5xx) is an `Ok` outcome.
pub fn one_shot(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &[u8],
    timeout: Duration,
) -> std::io::Result<Outcome> {
    let started = Instant::now();
    let stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut stream = stream;
    let mut request =
        format!("{method} {path} HTTP/1.1\r\nHost: loadgen\r\nConnection: close\r\n").into_bytes();
    if !body.is_empty() {
        request.extend_from_slice(format!("Content-Length: {}\r\n", body.len()).as_bytes());
    }
    request.extend_from_slice(b"\r\n");
    request.extend_from_slice(body);
    // One write for head + body: fewer syscalls per request, and the
    // daemon sees the whole request in the first read.
    stream.write_all(&request)?;
    stream.flush()?;
    let mut raw = Vec::with_capacity(4096);
    stream.read_to_end(&mut raw)?;
    let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    parse_response(&raw, nanos)
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed response"))
}

/// Minimal response parse: status line, `Retry-After`, body length, and
/// the `cost_class` a shed body names.
fn parse_response(raw: &[u8], nanos: u64) -> Option<Outcome> {
    let head_end = find_head_end(raw)?;
    let head = std::str::from_utf8(&raw[..head_end]).ok()?;
    let mut lines = head.lines();
    let status: u16 = lines.next()?.split(' ').nth(1)?.parse().ok()?;
    let retry_after = lines
        .filter_map(|l| l.split_once(':'))
        .find(|(k, _)| k.trim().eq_ignore_ascii_case("retry-after"))
        .and_then(|(_, v)| v.trim().parse().ok());
    let body = &raw[head_end..];
    let cost_class = (status == 503)
        .then(|| {
            let text = std::str::from_utf8(body).ok()?;
            let (_, tail) = text.split_once("\"cost_class\":\"")?;
            Some(tail.split('"').next()?.to_string())
        })
        .flatten();
    Some(Outcome {
        status,
        nanos,
        retry_after,
        body_len: body.len(),
        cost_class,
    })
}

/// Index just past the blank line terminating the head (CRLF or bare
/// LF, the same tolerance the daemon extends to its clients).
fn find_head_end(raw: &[u8]) -> Option<usize> {
    raw.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|i| i + 4)
        .or_else(|| raw.windows(2).position(|w| w == b"\n\n").map(|i| i + 2))
}

/// Ask the daemon for a real ASN to aim per-ASN endpoints at: the first
/// row of the `/v1/populations` table. `None` when the endpoint is
/// unreachable or the table is empty.
pub fn discover_asn(addr: SocketAddr, timeout: Duration) -> Option<u32> {
    let body = {
        let mut stream = TcpStream::connect_timeout(&addr, timeout).ok()?;
        stream.set_read_timeout(Some(timeout)).ok()?;
        stream.set_write_timeout(Some(timeout)).ok()?;
        stream
            .write_all(
                b"GET /v1/populations HTTP/1.1\r\nHost: loadgen\r\nConnection: close\r\n\r\n",
            )
            .ok()?;
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).ok()?;
        let head_end = find_head_end(&raw)?;
        raw.split_off(head_end)
    };
    let doc: serde_json::Value = serde_json::from_str(std::str::from_utf8(&body).ok()?).ok()?;
    let rows = doc.as_array()?;
    rows.iter()
        .filter_map(|row| u32::try_from(row.get("asn")?.as_u64()?).ok())
        .next()
}

/// The server-side shed counters a `/metrics` scrape exposes, summed
/// for reconciliation against the client-side 503 tally.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShedCounters {
    /// Admission (over-budget) sheds, summed across cost classes.
    pub admission_shed: u64,
    /// Queue-overflow sheds (`rejected_busy`).
    pub rejected_busy: u64,
}

impl ShedCounters {
    /// Every 503 the server says it sent.
    pub fn total(self) -> u64 {
        self.admission_shed + self.rejected_busy
    }
}

/// Scrape the daemon's JSON `/metrics` document for its shed counters.
/// `None` when the endpoint is unreachable or isn't this daemon's
/// schema (a fake server in tests, a non-lastmile target) — callers
/// skip reconciliation rather than fail.
pub fn scrape_shed_counters(addr: SocketAddr, timeout: Duration) -> Option<ShedCounters> {
    let body = {
        let mut stream = TcpStream::connect_timeout(&addr, timeout).ok()?;
        stream.set_read_timeout(Some(timeout)).ok()?;
        stream.set_write_timeout(Some(timeout)).ok()?;
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: loadgen\r\nConnection: close\r\n\r\n")
            .ok()?;
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).ok()?;
        let head_end = find_head_end(&raw)?;
        raw.split_off(head_end)
    };
    let doc: serde_json::Value = serde_json::from_str(std::str::from_utf8(&body).ok()?).ok()?;
    let serve = doc.get("serve")?;
    let admission = serve.get("admission")?;
    let mut admission_shed = 0u64;
    for class in ["cheap", "heavy", "intake"] {
        admission_shed += admission.get(class)?.get("shed")?.as_u64()?;
    }
    Some(ShedCounters {
        admission_shed,
        rejected_busy: serve.get("rejected_busy")?.as_u64()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// One-connection fake server: answer with `response`, return what
    /// the client sent.
    fn fake_server(response: &'static [u8]) -> (SocketAddr, std::thread::JoinHandle<Vec<u8>>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().unwrap();
        let join = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accept");
            let mut got = vec![0u8; 4096];
            let n = stream.read(&mut got).unwrap_or(0);
            got.truncate(n);
            stream.write_all(response).unwrap();
            got
        });
        (addr, join)
    }

    #[test]
    fn one_shot_parses_status_latency_and_body() {
        let (addr, join) = fake_server(b"HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nhello");
        let out = one_shot(addr, "GET", "/x", b"", Duration::from_secs(5)).expect("outcome");
        assert_eq!(out.status, 200);
        assert_eq!(out.body_len, 5);
        assert!(out.nanos > 0);
        assert_eq!(out.retry_after, None);
        assert_eq!(out.cost_class, None);
        let sent = String::from_utf8(join.join().unwrap()).unwrap();
        assert!(sent.starts_with("GET /x HTTP/1.1\r\n"), "{sent}");
        assert!(sent.contains("Connection: close"), "{sent}");
    }

    #[test]
    fn one_shot_extracts_shed_hint_and_cost_class() {
        let (addr, join) = fake_server(
            b"HTTP/1.1 503 Service Unavailable\r\nRetry-After: 4\r\n\r\n{\"error\":\"over budget\",\"cost_class\":\"heavy\",\"retry_after_secs\":4}\n",
        );
        let out = one_shot(addr, "GET", "/v1/classify", b"", Duration::from_secs(5)).unwrap();
        assert_eq!(out.status, 503);
        assert_eq!(out.retry_after, Some(4));
        assert_eq!(out.cost_class.as_deref(), Some("heavy"));
        join.join().unwrap();
    }

    #[test]
    fn one_shot_posts_a_body_with_content_length() {
        let (addr, join) = fake_server(b"HTTP/1.1 202 Accepted\r\n\r\n{}");
        let out = one_shot(
            addr,
            "POST",
            "/v1/traceroutes",
            b"{\"x\":1}\n",
            Duration::from_secs(5),
        )
        .unwrap();
        assert_eq!(out.status, 202);
        let sent = String::from_utf8(join.join().unwrap()).unwrap();
        assert!(
            sent.starts_with("POST /v1/traceroutes HTTP/1.1\r\n"),
            "{sent}"
        );
        assert!(sent.contains("Content-Length: 8"), "{sent}");
        assert!(sent.ends_with("{\"x\":1}\n"), "{sent}");
    }

    #[test]
    fn connect_refused_is_an_error_not_an_outcome() {
        // Bind then drop: the port is (very likely) refused right after.
        let addr = TcpListener::bind("127.0.0.1:0")
            .unwrap()
            .local_addr()
            .unwrap();
        assert!(one_shot(addr, "GET", "/", b"", Duration::from_millis(200)).is_err());
    }

    #[test]
    fn discover_asn_reads_the_populations_table() {
        let (addr, join) = fake_server(
            b"HTTP/1.1 200 OK\r\n\r\n[{\"asn\":3215,\"traceroutes\":9},{\"asn\":5089,\"traceroutes\":3}]\n",
        );
        assert_eq!(discover_asn(addr, Duration::from_secs(5)), Some(3215));
        join.join().unwrap();
    }

    #[test]
    fn scrape_shed_counters_sums_classes_and_queue_sheds() {
        let (addr, join) = fake_server(
            b"HTTP/1.1 200 OK\r\n\r\n{\"serve\":{\"rejected_busy\":3,\"admission\":{\
              \"cheap\":{\"budget\":4,\"admitted\":10,\"shed\":1,\"in_flight\":0},\
              \"heavy\":{\"budget\":1,\"admitted\":5,\"shed\":7,\"in_flight\":0},\
              \"intake\":{\"budget\":4,\"admitted\":0,\"shed\":0,\"in_flight\":0}}}}\n",
        );
        let counters = scrape_shed_counters(addr, Duration::from_secs(5)).expect("counters");
        assert_eq!(counters.admission_shed, 8);
        assert_eq!(counters.rejected_busy, 3);
        assert_eq!(counters.total(), 11);
        join.join().unwrap();
    }

    #[test]
    fn scrape_shed_counters_is_none_for_foreign_schemas() {
        let (addr, join) = fake_server(b"HTTP/1.1 200 OK\r\n\r\n{\"whatever\":1}\n");
        assert_eq!(scrape_shed_counters(addr, Duration::from_secs(5)), None);
        join.join().unwrap();
    }
}
