//! Result accounting: per-endpoint tallies folded into one JSON report.
//!
//! The accounting invariant every profile is held to (and
//! `scripts/check.sh` asserts): every request the generator *attempted*
//! on the wire is exactly one of served (`ok`), shed by the daemon
//! (`shed`, a 503), or failed (`errors` — connect refused, timeout,
//! malformed response). Client-side drops — arrivals the open-loop
//! scheduler had no free worker for — never touched the wire and are
//! counted separately as `not_sent`, so a saturated *generator* can't
//! masquerade as a healthy server.

use crate::mix::{Endpoint, ENDPOINTS};
use crate::Outcome;
use lastmile_obs::{Histogram, HistogramSummary};
use serde::Serialize;
use std::collections::BTreeMap;

/// Mutable accumulator for one endpoint (or the run total).
#[derive(Clone, Debug, Default)]
pub struct Tally {
    pub attempted: u64,
    pub ok: u64,
    pub shed: u64,
    pub errors: u64,
    pub not_sent: u64,
    /// Body bytes received across ok responses.
    pub bytes: u64,
    /// Largest `Retry-After` hint seen on a shed.
    pub retry_after_max: u64,
    /// Latency of served (non-503) responses.
    pub latency_ok: Histogram,
    /// Latency of shed 503s — how fast the daemon turns traffic away.
    pub latency_shed: Histogram,
}

impl Tally {
    /// Fold in one wire outcome.
    pub fn record(&mut self, outcome: &Outcome) {
        self.attempted += 1;
        if outcome.status == 503 {
            self.shed += 1;
            self.latency_shed.record(outcome.nanos);
            if let Some(hint) = outcome.retry_after {
                self.retry_after_max = self.retry_after_max.max(hint);
            }
        } else if (200..400).contains(&outcome.status) {
            self.ok += 1;
            self.bytes += outcome.body_len as u64;
            self.latency_ok.record(outcome.nanos);
        } else {
            self.errors += 1;
        }
    }

    /// Fold in one transport failure (connect/IO/timeout).
    pub fn record_error(&mut self) {
        self.attempted += 1;
        self.errors += 1;
    }

    /// Fold in one client-side drop (open-loop arrival with no worker).
    pub fn record_not_sent(&mut self) {
        self.not_sent += 1;
    }

    /// Fold another tally (e.g. one worker's) into this one.
    pub fn merge(&mut self, other: &Tally) {
        self.attempted += other.attempted;
        self.ok += other.ok;
        self.shed += other.shed;
        self.errors += other.errors;
        self.not_sent += other.not_sent;
        self.bytes += other.bytes;
        self.retry_after_max = self.retry_after_max.max(other.retry_after_max);
        self.latency_ok.merge(&other.latency_ok);
        self.latency_shed.merge(&other.latency_shed);
    }

    /// `attempted == ok + shed + errors` — the accounting invariant.
    pub fn consistent(&self) -> bool {
        self.attempted == self.ok + self.shed + self.errors
    }

    /// The exported form.
    pub fn summary(&self) -> TallySummary {
        TallySummary {
            attempted: self.attempted,
            ok: self.ok,
            shed: self.shed,
            errors: self.errors,
            not_sent: self.not_sent,
            shed_rate: if self.attempted == 0 {
                0.0
            } else {
                self.shed as f64 / self.attempted as f64
            },
            bytes: self.bytes,
            retry_after_max: self.retry_after_max,
            latency: self.latency_ok.summary(),
            shed_latency: self.latency_shed.summary(),
        }
    }
}

/// Per-endpoint tallies, indexed densely by [`Endpoint::index`].
#[derive(Clone, Debug, Default)]
pub struct EndpointTallies(pub [Tally; 6]);

impl EndpointTallies {
    pub fn get_mut(&mut self, endpoint: Endpoint) -> &mut Tally {
        &mut self.0[endpoint.index()]
    }

    pub fn merge(&mut self, other: &EndpointTallies) {
        for (mine, theirs) in self.0.iter_mut().zip(&other.0) {
            mine.merge(theirs);
        }
    }

    /// Everything folded into one run-total tally.
    pub fn total(&self) -> Tally {
        let mut total = Tally::default();
        for tally in &self.0 {
            total.merge(tally);
        }
        total
    }

    /// Per-endpoint summaries, skipping endpoints never attempted.
    pub fn summaries(&self) -> BTreeMap<String, TallySummary> {
        ENDPOINTS
            .into_iter()
            .filter(|e| {
                let t = &self.0[e.index()];
                t.attempted + t.not_sent > 0
            })
            .map(|e| (e.key().to_string(), self.0[e.index()].summary()))
            .collect()
    }
}

/// Serialized counters + percentiles of one [`Tally`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize)]
pub struct TallySummary {
    pub attempted: u64,
    pub ok: u64,
    pub shed: u64,
    pub errors: u64,
    pub not_sent: u64,
    pub shed_rate: f64,
    pub bytes: u64,
    pub retry_after_max: u64,
    pub latency: HistogramSummary,
    pub shed_latency: HistogramSummary,
}

/// One rung of the sustained ladder: what was offered, what came back.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize)]
pub struct RungReport {
    /// Target arrival rate (requests/second) of this rung.
    pub offered_rps: f64,
    /// Served responses per second of dwell — the throughput actually
    /// achieved at this offered rate.
    pub achieved_rps: f64,
    pub dwell_secs: f64,
    pub attempted: u64,
    pub ok: u64,
    pub shed: u64,
    pub errors: u64,
    pub not_sent: u64,
    pub shed_rate: f64,
    pub p50_nanos: u64,
    pub p99_nanos: u64,
    pub max_nanos: u64,
    /// Server-observed shed delta across this rung (admission sheds +
    /// queue overflow), scraped from `/metrics` at the rung boundaries.
    /// `None` when the target's metrics endpoint isn't scrapeable.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub server_shed: Option<u64>,
}

impl RungReport {
    /// Summarize one rung's tally against its schedule.
    pub fn from_tally(offered_rps: f64, dwell_secs: f64, tally: &Tally) -> RungReport {
        let s = tally.latency_ok.summary();
        RungReport {
            offered_rps,
            achieved_rps: if dwell_secs > 0.0 {
                tally.ok as f64 / dwell_secs
            } else {
                0.0
            },
            dwell_secs,
            attempted: tally.attempted,
            ok: tally.ok,
            shed: tally.shed,
            errors: tally.errors,
            not_sent: tally.not_sent,
            shed_rate: if tally.attempted == 0 {
                0.0
            } else {
                tally.shed as f64 / tally.attempted as f64
            },
            p50_nanos: s.p50_nanos,
            p99_nanos: s.p99_nanos,
            max_nanos: s.max_nanos,
            server_shed: None,
        }
    }
}

/// Client-vs-server shed cross-check: the number of 503s the client
/// tallied against the growth of the server's own shed counters over
/// the run, scraped from `/metrics` before and after. The two views
/// are allowed to differ by the connection-error count (an error may
/// be a shed whose response was lost) plus any sheds the server dealt
/// to *other* clients mid-run — so the check is one-sided: the server
/// must account for at least `client_shed - connection_errors`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize)]
pub struct ShedReconciliation {
    /// 503s the client received.
    pub client_shed: u64,
    /// Growth of the server's shed counters (admission + queue) across
    /// the run.
    pub server_shed_delta: u64,
    /// Client-side transport errors — the allowed slack.
    pub connection_errors: u64,
    /// `server_shed_delta + connection_errors >= client_shed`.
    pub consistent: bool,
}

impl ShedReconciliation {
    pub fn check(client_shed: u64, server_shed_delta: u64, connection_errors: u64) -> Self {
        ShedReconciliation {
            client_shed,
            server_shed_delta,
            connection_errors,
            consistent: server_shed_delta + connection_errors >= client_shed,
        }
    }
}

/// One burst's outcome.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize)]
pub struct BurstReport {
    pub requests: u64,
    pub ok: u64,
    pub shed: u64,
    pub errors: u64,
    pub wall_secs: f64,
    pub p99_nanos: u64,
}

/// The top-level JSON document one profile run produces.
#[derive(Clone, Debug, Default, Serialize)]
pub struct LoadReport {
    /// `burst` / `ladder` / `fanout`.
    pub profile: String,
    /// Daemon address driven.
    pub addr: String,
    /// Canonical mix spec (`classify=1,...`).
    pub mix: String,
    /// Generator worker threads (concurrent in-flight cap).
    pub concurrency: u64,
    /// Whole-run wall time.
    pub wall_secs: f64,
    /// Run totals across endpoints.
    pub totals: TallySummary,
    /// `attempted == ok + shed + errors` held across all tallies.
    pub consistent: bool,
    /// Per-endpoint breakdown (endpoints never attempted omitted).
    pub endpoints: BTreeMap<String, TallySummary>,
    /// Ladder profile only: one entry per rung.
    #[serde(skip_serializing_if = "Vec::is_empty")]
    pub rungs: Vec<RungReport>,
    /// Burst profile only: one entry per burst.
    #[serde(skip_serializing_if = "Vec::is_empty")]
    pub bursts: Vec<BurstReport>,
    /// Client-vs-server shed cross-check (ladder profile against a
    /// scrapeable daemon only).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub shed_check: Option<ShedReconciliation>,
}

impl LoadReport {
    /// Pretty JSON with a trailing newline.
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("report serializes");
        s.push('\n');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok_outcome(nanos: u64, body_len: usize) -> Outcome {
        Outcome {
            status: 200,
            nanos,
            body_len,
            ..Outcome::default()
        }
    }

    #[test]
    fn tally_classifies_and_stays_consistent() {
        let mut t = Tally::default();
        t.record(&ok_outcome(1_000, 10));
        t.record(&ok_outcome(3_000, 20));
        t.record(&Outcome {
            status: 503,
            nanos: 200,
            retry_after: Some(4),
            ..Outcome::default()
        });
        t.record(&Outcome {
            status: 404,
            nanos: 500,
            ..Outcome::default()
        });
        t.record_error();
        t.record_not_sent();
        assert!(t.consistent());
        let s = t.summary();
        assert_eq!(
            (s.attempted, s.ok, s.shed, s.errors, s.not_sent),
            (5, 2, 1, 2, 1)
        );
        assert_eq!(s.bytes, 30);
        assert_eq!(s.retry_after_max, 4);
        assert_eq!(s.latency.count, 2);
        assert_eq!(s.latency.max_nanos, 3_000);
        assert_eq!(s.shed_latency.count, 1);
        assert!((s.shed_rate - 0.2).abs() < 1e-9);
    }

    #[test]
    fn endpoint_tallies_merge_and_total() {
        let mut a = EndpointTallies::default();
        a.get_mut(Endpoint::Classify).record(&ok_outcome(1_000, 5));
        let mut b = EndpointTallies::default();
        b.get_mut(Endpoint::Classify).record(&ok_outcome(2_000, 5));
        b.get_mut(Endpoint::Healthz).record(&ok_outcome(100, 3));
        a.merge(&b);
        let total = a.total();
        assert_eq!(total.attempted, 3);
        assert_eq!(total.ok, 3);
        assert!(total.consistent());
        let summaries = a.summaries();
        assert_eq!(summaries.len(), 2, "untouched endpoints omitted");
        assert_eq!(summaries["classify"].ok, 2);
        assert_eq!(summaries["healthz"].ok, 1);
    }

    #[test]
    fn rung_report_computes_rates() {
        let mut t = Tally::default();
        for _ in 0..8 {
            t.record(&ok_outcome(1_000_000, 1));
        }
        t.record(&Outcome {
            status: 503,
            nanos: 100,
            ..Outcome::default()
        });
        t.record_not_sent();
        let r = RungReport::from_tally(10.0, 2.0, &t);
        assert_eq!(r.offered_rps, 10.0);
        assert_eq!(r.achieved_rps, 4.0);
        assert_eq!(r.attempted, 9);
        assert_eq!(r.not_sent, 1);
        assert!((r.shed_rate - 1.0 / 9.0).abs() < 1e-9);
        assert!(r.p99_nanos >= r.p50_nanos);
    }

    #[test]
    fn load_report_serializes_with_golden_keys() {
        let mut tallies = EndpointTallies::default();
        tallies
            .get_mut(Endpoint::Series)
            .record(&ok_outcome(5_000, 2));
        let report = LoadReport {
            profile: "fanout".into(),
            addr: "127.0.0.1:1".into(),
            mix: "series=1".into(),
            concurrency: 4,
            wall_secs: 1.5,
            totals: tallies.total().summary(),
            consistent: tallies.total().consistent(),
            endpoints: tallies.summaries(),
            rungs: vec![],
            bursts: vec![],
            shed_check: None,
        };
        let json = report.to_json();
        for key in [
            "profile",
            "addr",
            "mix",
            "concurrency",
            "wall_secs",
            "totals",
            "consistent",
            "endpoints",
            "series",
            "attempted",
            "shed_rate",
            "latency",
            "p99_nanos",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // Empty profile sections stay out of the document.
        assert!(!json.contains("\"rungs\""));
        assert!(!json.contains("\"bursts\""));
        assert!(!json.contains("\"shed_check\""));
        assert!(json.ends_with('\n'));
    }

    #[test]
    fn shed_reconciliation_allows_connection_error_slack() {
        // Exact match: consistent.
        assert!(ShedReconciliation::check(5, 5, 0).consistent);
        // Server saw more (other clients mid-run): still consistent.
        assert!(ShedReconciliation::check(5, 9, 0).consistent);
        // Client 503s the server can't account for: inconsistent…
        assert!(!ShedReconciliation::check(5, 3, 0).consistent);
        // …unless connection errors cover the gap.
        assert!(ShedReconciliation::check(5, 3, 2).consistent);
        assert!(!ShedReconciliation::check(5, 3, 1).consistent);
    }
}
