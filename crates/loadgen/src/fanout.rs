//! The fanout profile: a weighted endpoint mix sustained at one rate.
//!
//! Where the ladder asks "how much can it take", fanout asks "who
//! suffers": a mix like `classify=4,series=1,intake=1` floods the heavy
//! endpoint while trickling cheap reads and live-intake POSTs through
//! the same pool, and the per-endpoint tallies show whether the
//! admission budgets kept the cheap traffic's latency bounded and the
//! POSTs landing (racing re-analysis epochs) while classify sheds.

use crate::engine::run_open_loop;
use crate::mix::{Mix, Plan};
use crate::report::LoadReport;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// One fanout run's shape.
#[derive(Clone, Debug)]
pub struct FanoutConfig {
    pub addr: SocketAddr,
    pub addr_label: String,
    /// Offered arrival rate (requests/second) across the whole mix.
    pub rate: f64,
    /// Run length.
    pub duration: Duration,
    /// Client worker threads — the in-flight cap.
    pub concurrency: usize,
    pub mix: Mix,
    pub plan: Plan,
}

/// Run the fanout profile.
pub fn run_fanout(config: FanoutConfig) -> Result<LoadReport, String> {
    let mut mix = config.mix.clone();
    mix.validate(&config.plan)?;
    if !config.rate.is_finite() || config.rate <= 0.0 {
        return Err(format!(
            "fanout rate {} must be a positive number",
            config.rate
        ));
    }
    let started = Instant::now();
    let tallies = run_open_loop(
        config.addr,
        &mut mix,
        &config.plan,
        config.rate,
        config.duration,
        config.concurrency,
    );
    let totals = tallies.total();
    Ok(LoadReport {
        profile: "fanout".into(),
        addr: config.addr_label,
        mix: mix.spec(),
        concurrency: config.concurrency.max(1) as u64,
        wall_secs: started.elapsed().as_secs_f64(),
        consistent: totals.consistent(),
        totals: totals.summary(),
        endpoints: tallies.summaries(),
        rungs: vec![],
        bursts: vec![],
        shed_check: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mix::Endpoint;
    use std::io::{Read, Write};
    use std::net::TcpListener;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    #[test]
    fn fanout_splits_traffic_by_weight() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let server = std::thread::spawn(move || {
            while !stop2.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((mut stream, _)) => {
                        std::thread::spawn(move || {
                            let mut buf = [0u8; 2048];
                            let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
                            let _ = stream.read(&mut buf);
                            let _ =
                                stream.write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok");
                        });
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(1)),
                }
            }
        });
        let report = run_fanout(FanoutConfig {
            addr,
            addr_label: addr.to_string(),
            rate: 80.0,
            duration: Duration::from_millis(300),
            concurrency: 8,
            mix: Mix::parse("healthz=3,intake=1").unwrap(),
            plan: Plan {
                post_body: b"{\"x\":1}\n".to_vec(),
                timeout: Duration::from_secs(2),
                ..Plan::default()
            },
        })
        .expect("fanout runs");
        stop.store(true, Ordering::Relaxed);
        server.join().unwrap();
        assert_eq!(report.profile, "fanout");
        assert!(report.consistent);
        // 80 rps × 0.3 s = 24 arrivals, split 3:1.
        let scheduled = report.totals.attempted + report.totals.not_sent;
        assert_eq!(scheduled, 24);
        let healthz = &report.endpoints["healthz"];
        let intake = &report.endpoints["intake"];
        assert_eq!(healthz.attempted + healthz.not_sent, 18);
        assert_eq!(intake.attempted + intake.not_sent, 6);
    }

    #[test]
    fn fanout_refuses_intake_without_a_body() {
        let config = FanoutConfig {
            addr: "127.0.0.1:1".parse().unwrap(),
            addr_label: "x".into(),
            rate: 10.0,
            duration: Duration::from_millis(10),
            concurrency: 1,
            mix: Mix::single(Endpoint::Intake),
            plan: Plan::default(),
        };
        let err = run_fanout(config).expect_err("must refuse");
        assert!(err.contains("intake"), "{err}");
    }
}
