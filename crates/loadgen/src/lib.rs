//! `lastmile-loadgen`: an open-loop load generator for the `lastmile
//! serve` daemon.
//!
//! `BENCH_serve.json` used to be produced by polite, mostly-sequential
//! `curl` loops — a closed-loop client that slows down exactly when the
//! server does, which is precisely how you *fail* to find a knee in the
//! throughput-vs-latency curve. This crate drives the daemon the way
//! real traffic does: requests are released on a wall-clock schedule
//! regardless of how the previous ones are faring (open loop), over raw
//! `std::net` TCP with the same one-request-per-connection HTTP/1.1
//! subset the daemon speaks. No external dependencies beyond the
//! workspace's vendored `serde`.
//!
//! Three profiles:
//!
//! * [`burst`] — N connections released at once, repeated B times: the
//!   thundering-herd shape that exercises the accept queue and the
//!   fast lane.
//! * [`ladder`] — stepped arrival rates (open loop, fixed worker pool,
//!   client-side drops counted as `not_sent`), dwelling at each rung
//!   and recording offered vs achieved rate, latency percentiles, and
//!   shed rate per rung: the throughput-vs-latency curve.
//! * [`fanout`] — a weighted endpoint [`mix`](mix::Mix) (including
//!   `POST /v1/traceroutes` intake floods racing live re-analysis)
//!   sustained at one rate: the cost-class starvation probe.
//!
//! Every profile reports per-endpoint log-linear latency histograms
//! (reusing [`lastmile_obs`]'s), plus shed accounting that must satisfy
//! `attempted == ok + shed + errors` — the invariant `scripts/check.sh`
//! asserts.

pub mod burst;
pub mod client;
pub mod fanout;
pub mod ladder;
pub mod mix;
pub mod report;

mod engine;

pub use burst::{run_burst, BurstConfig};
pub use client::{discover_asn, one_shot, resolve, scrape_shed_counters, Outcome, ShedCounters};
pub use fanout::{run_fanout, FanoutConfig};
pub use ladder::{run_ladder, LadderConfig};
pub use mix::{Endpoint, Mix, Plan};
pub use report::{BurstReport, LoadReport, RungReport, ShedReconciliation, Tally, TallySummary};
