//! The open-loop dispatch engine shared by the ladder and fanout
//! profiles (bursts are simpler and spawn directly).
//!
//! A fixed pool of client threads drains a bounded job channel; a
//! dispatcher releases jobs on the wall-clock schedule `interval = 1 /
//! rate`, *never* waiting for responses. When every worker is busy and
//! the channel is full, the arrival is dropped client-side and counted
//! as `not_sent` — the open-loop discipline: a slow server must not
//! slow the arrival process down, it must make the drop/shed numbers
//! grow. Workers keep thread-local tallies (histograms merge cheaply at
//! join), so the hot path is lock-free.

use crate::client::one_shot;
use crate::mix::{Endpoint, Mix, Plan};
use crate::report::EndpointTallies;
use std::net::SocketAddr;
use std::sync::mpsc::{Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One scheduled request.
struct Job {
    endpoint: Endpoint,
}

/// Drive `mix` at `rate` requests/second for `dwell`, with at most
/// `concurrency` requests in flight. Returns the merged tallies.
pub fn run_open_loop(
    addr: SocketAddr,
    mix: &mut Mix,
    plan: &Plan,
    rate: f64,
    dwell: Duration,
    concurrency: usize,
) -> EndpointTallies {
    let concurrency = concurrency.max(1);
    let total_jobs = (rate * dwell.as_secs_f64()).round() as u64;
    let interval = Duration::from_secs_f64(1.0 / rate.max(f64::MIN_POSITIVE));
    let (tx, rx) = std::sync::mpsc::sync_channel::<Job>(concurrency);
    let rx = Arc::new(Mutex::new(rx));
    let mut dispatcher_tallies = EndpointTallies::default();
    let mut merged = EndpointTallies::default();
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..concurrency)
            .map(|_| {
                let rx = Arc::clone(&rx);
                scope.spawn(move || worker(addr, plan, &rx))
            })
            .collect();
        let start = Instant::now();
        for n in 0..total_jobs {
            // Open loop: fire at start + n*interval regardless of how
            // the server is doing.
            let due = start + interval.mul_f64(n as f64);
            if let Some(wait) = due.checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
            let endpoint = mix.pick();
            match tx.try_send(Job { endpoint }) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) => {
                    dispatcher_tallies.get_mut(endpoint).record_not_sent();
                }
                Err(TrySendError::Disconnected(_)) => unreachable!("workers outlive dispatch"),
            }
        }
        drop(tx); // workers drain the channel, then exit
        for w in workers {
            merged.merge(&w.join().expect("loadgen worker"));
        }
    });
    merged.merge(&dispatcher_tallies);
    merged
}

/// One client worker: pull jobs until the channel closes.
fn worker(addr: SocketAddr, plan: &Plan, rx: &Mutex<Receiver<Job>>) -> EndpointTallies {
    let mut tallies = EndpointTallies::default();
    loop {
        // Lock only for the dequeue — holding it across a request would
        // serialize the pool.
        let job = match rx.lock().expect("loadgen queue lock").recv() {
            Ok(job) => job,
            Err(_) => return tallies,
        };
        let (method, path, body) = plan.request(job.endpoint);
        match one_shot(addr, method, &path, body, plan.timeout) {
            Ok(outcome) => tallies.get_mut(job.endpoint).record(&outcome),
            Err(_) => tallies.get_mut(job.endpoint).record_error(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpListener;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    /// Tiny threaded fake server answering 200 to everything, counting
    /// connections, until dropped.
    struct FakeServer {
        addr: SocketAddr,
        served: Arc<AtomicU64>,
        stop: Arc<AtomicBool>,
        join: Option<std::thread::JoinHandle<()>>,
    }

    impl FakeServer {
        fn start() -> FakeServer {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
            listener.set_nonblocking(true).unwrap();
            let addr = listener.local_addr().unwrap();
            let served = Arc::new(AtomicU64::new(0));
            let stop = Arc::new(AtomicBool::new(false));
            let (served2, stop2) = (Arc::clone(&served), Arc::clone(&stop));
            let join = std::thread::spawn(move || {
                while !stop2.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((mut stream, _)) => {
                            let served = Arc::clone(&served2);
                            std::thread::spawn(move || {
                                let mut buf = [0u8; 2048];
                                let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
                                let _ = stream.read(&mut buf);
                                let _ = stream
                                    .write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok");
                                served.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(1)),
                    }
                }
            });
            FakeServer {
                addr,
                served,
                stop,
                join: Some(join),
            }
        }
    }

    impl Drop for FakeServer {
        fn drop(&mut self) {
            self.stop.store(true, Ordering::Relaxed);
            if let Some(join) = self.join.take() {
                join.join().ok();
            }
        }
    }

    #[test]
    fn open_loop_attempts_the_scheduled_count_and_stays_consistent() {
        let server = FakeServer::start();
        let mut mix = Mix::single(Endpoint::Healthz);
        let plan = Plan {
            timeout: Duration::from_secs(2),
            ..Plan::default()
        };
        // 200 rps for 0.25 s = 50 scheduled arrivals.
        let tallies = run_open_loop(
            server.addr,
            &mut mix,
            &plan,
            200.0,
            Duration::from_millis(250),
            8,
        );
        let total = tallies.total();
        assert!(total.consistent(), "attempted != ok + shed + errors");
        assert_eq!(total.attempted + total.not_sent, 50);
        assert!(total.ok > 0, "nothing served: {total:?}");
        assert_eq!(total.shed, 0);
        assert!(server.served.load(Ordering::Relaxed) >= total.ok);
    }
}
