//! The burst profile: N connections released simultaneously, repeated.
//!
//! This is the thundering-herd shape — everything arrives in the same
//! instant, so the daemon's accept queue, fast lane, and shed path all
//! fire at once. Each burst joins fully before the next begins (the
//! point is the instantaneous spike, not sustained pressure — that's
//! the ladder's job).

use crate::client::one_shot;
use crate::mix::{Mix, Plan};
use crate::report::{BurstReport, EndpointTallies, LoadReport, Tally};
use std::net::SocketAddr;
use std::time::Instant;

/// One burst run's shape.
#[derive(Clone, Debug)]
pub struct BurstConfig {
    pub addr: SocketAddr,
    pub addr_label: String,
    /// Connections released at once per burst.
    pub requests: usize,
    /// Bursts (each fully joined before the next).
    pub bursts: usize,
    pub mix: Mix,
    pub plan: Plan,
}

/// Run the burst profile.
pub fn run_burst(config: BurstConfig) -> Result<LoadReport, String> {
    let mut mix = config.mix.clone();
    mix.validate(&config.plan)?;
    let requests = config.requests.max(1);
    let bursts = config.bursts.max(1);
    let started = Instant::now();
    let mut tallies = EndpointTallies::default();
    let mut burst_reports = Vec::with_capacity(bursts);
    for _ in 0..bursts {
        let burst_started = Instant::now();
        // Pick each request's endpoint up front (the mix is sequential
        // state), then release them all at once.
        let endpoints: Vec<_> = (0..requests).map(|_| mix.pick()).collect();
        let mut burst_tallies = EndpointTallies::default();
        std::thread::scope(|scope| {
            let handles: Vec<_> = endpoints
                .iter()
                .map(|&endpoint| {
                    let plan = &config.plan;
                    let addr = config.addr;
                    scope.spawn(move || {
                        let (method, path, body) = plan.request(endpoint);
                        (endpoint, one_shot(addr, method, &path, body, plan.timeout))
                    })
                })
                .collect();
            for handle in handles {
                let (endpoint, result) = handle.join().expect("burst client");
                match result {
                    Ok(outcome) => burst_tallies.get_mut(endpoint).record(&outcome),
                    Err(_) => burst_tallies.get_mut(endpoint).record_error(),
                }
            }
        });
        let total = burst_tallies.total();
        burst_reports.push(BurstReport {
            requests: requests as u64,
            ok: total.ok,
            shed: total.shed,
            errors: total.errors,
            wall_secs: burst_started.elapsed().as_secs_f64(),
            p99_nanos: total.latency_ok.summary().p99_nanos,
        });
        tallies.merge(&burst_tallies);
    }
    let totals: Tally = tallies.total();
    Ok(LoadReport {
        profile: "burst".into(),
        addr: config.addr_label,
        mix: mix.spec(),
        concurrency: requests as u64,
        wall_secs: started.elapsed().as_secs_f64(),
        consistent: totals.consistent(),
        totals: totals.summary(),
        endpoints: tallies.summaries(),
        rungs: vec![],
        bursts: burst_reports,
        shed_check: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mix::Endpoint;
    use std::io::{Read, Write};
    use std::net::TcpListener;
    use std::time::Duration;

    #[test]
    fn burst_accounts_every_connection() {
        // A fake server that answers the first connection of each pair
        // 200 and the second 503: the tallies must see both kinds.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            for n in 0..6 {
                let (mut stream, _) = listener.accept().expect("accept");
                let mut buf = [0u8; 1024];
                let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
                let _ = stream.read(&mut buf);
                let response: &[u8] = if n % 2 == 0 {
                    b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok"
                } else {
                    b"HTTP/1.1 503 Service Unavailable\r\nRetry-After: 2\r\n\r\n{\"error\":\"accept queue full\",\"cost_class\":\"cheap\",\"retry_after_secs\":2}\n"
                };
                let _ = stream.write_all(response);
            }
        });
        let report = run_burst(BurstConfig {
            addr,
            addr_label: addr.to_string(),
            requests: 3,
            bursts: 2,
            mix: Mix::single(Endpoint::Healthz),
            plan: Plan {
                timeout: Duration::from_secs(2),
                ..Plan::default()
            },
        })
        .expect("burst runs");
        server.join().unwrap();
        assert_eq!(report.profile, "burst");
        assert_eq!(report.bursts.len(), 2);
        assert!(report.consistent);
        assert_eq!(report.totals.attempted, 6);
        assert_eq!(
            report.totals.ok + report.totals.shed + report.totals.errors,
            6
        );
        assert_eq!(report.totals.ok, 3);
        assert_eq!(report.totals.shed, 3);
        assert_eq!(report.totals.retry_after_max, 2);
        assert_eq!(report.endpoints["healthz"].attempted, 6);
    }
}
