//! Weighted endpoint mixes, scheduled deterministically.
//!
//! A fanout run needs "1 part classify, 4 parts series, 2 parts
//! intake"-style traffic. Rather than an RNG (whose seed would have to
//! be plumbed, logged, and defended), the schedule is *smooth weighted
//! round-robin*: each pick adds every endpoint's weight to its credit,
//! takes the endpoint with the most credit, and charges it the total
//! weight. The resulting sequence is deterministic, hits exact ratios
//! over every window of `total_weight` picks, and interleaves (for
//! weights 1,1,2: `C A B C` repeating — never `A B C C`), which is what
//! an arrival process should look like.

use std::time::Duration;

/// The daemon endpoints the generator can aim at.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Endpoint {
    /// `GET /v1/classify` — the heavy full-classification document.
    Classify,
    /// `GET /v1/classify/{asn}` — one pre-rendered document.
    ClassifyAsn,
    /// `GET /v1/series/{asn}` — the aggregated signal.
    Series,
    /// `GET /v1/populations` — the per-population table.
    Populations,
    /// `GET /healthz` — the probe.
    Healthz,
    /// `POST /v1/traceroutes` — live intake.
    Intake,
}

/// All endpoints, in the stable order reports use.
pub const ENDPOINTS: [Endpoint; 6] = [
    Endpoint::Classify,
    Endpoint::ClassifyAsn,
    Endpoint::Series,
    Endpoint::Populations,
    Endpoint::Healthz,
    Endpoint::Intake,
];

impl Endpoint {
    /// Stable name: mix-spec key and report key.
    pub fn key(self) -> &'static str {
        match self {
            Endpoint::Classify => "classify",
            Endpoint::ClassifyAsn => "classify_asn",
            Endpoint::Series => "series",
            Endpoint::Populations => "populations",
            Endpoint::Healthz => "healthz",
            Endpoint::Intake => "intake",
        }
    }

    /// Dense index into per-endpoint tables.
    pub fn index(self) -> usize {
        match self {
            Endpoint::Classify => 0,
            Endpoint::ClassifyAsn => 1,
            Endpoint::Series => 2,
            Endpoint::Populations => 3,
            Endpoint::Healthz => 4,
            Endpoint::Intake => 5,
        }
    }

    fn from_key(key: &str) -> Option<Endpoint> {
        ENDPOINTS.into_iter().find(|e| e.key() == key)
    }
}

/// Everything endpoint templates need beyond the path shape: which ASN
/// the per-ASN endpoints hit, and the body an intake POST carries.
#[derive(Clone, Debug, Default)]
pub struct Plan {
    /// Target for `classify_asn` / `series` (0 ⇒ those endpoints 404,
    /// which the tallies would surface as errors — callers should
    /// discover a real one via [`crate::discover_asn`]).
    pub asn: u32,
    /// One intake POST body (JSONL records). Empty + an `intake` weight
    /// is a config error caught by [`Mix::validate`].
    pub post_body: Vec<u8>,
    /// Timeout for every request.
    pub timeout: Duration,
}

impl Plan {
    /// The `(method, path, body)` of one request against `endpoint`.
    pub fn request(&self, endpoint: Endpoint) -> (&'static str, String, &[u8]) {
        match endpoint {
            Endpoint::Classify => ("GET", "/v1/classify".to_string(), &[][..]),
            Endpoint::ClassifyAsn => ("GET", format!("/v1/classify/{}", self.asn), &[][..]),
            Endpoint::Series => ("GET", format!("/v1/series/{}", self.asn), &[][..]),
            Endpoint::Populations => ("GET", "/v1/populations".to_string(), &[][..]),
            Endpoint::Healthz => ("GET", "/healthz".to_string(), &[][..]),
            Endpoint::Intake => ("POST", "/v1/traceroutes".to_string(), &self.post_body[..]),
        }
    }
}

/// A weighted endpoint mix plus its smooth-WRR scheduling state.
#[derive(Clone, Debug)]
pub struct Mix {
    /// `(endpoint, weight)`, weights ≥ 1.
    entries: Vec<(Endpoint, u64)>,
    /// Current credit per entry (smooth WRR state).
    credit: Vec<i64>,
}

impl Mix {
    /// Parse `"classify=1,series=4,intake=2"`. Order in the spec is
    /// preserved (it breaks credit ties).
    pub fn parse(spec: &str) -> Result<Mix, String> {
        let mut entries = Vec::new();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, weight) = part
                .split_once('=')
                .ok_or_else(|| format!("mix entry '{part}': expected endpoint=weight"))?;
            let endpoint = Endpoint::from_key(key.trim()).ok_or_else(|| {
                let known: Vec<_> = ENDPOINTS.iter().map(|e| e.key()).collect();
                format!(
                    "mix entry '{part}': unknown endpoint (known: {})",
                    known.join(", ")
                )
            })?;
            let weight: u64 = weight
                .trim()
                .parse()
                .map_err(|_| format!("mix entry '{part}': weight must be a number"))?;
            if weight == 0 {
                return Err(format!("mix entry '{part}': weight must be ≥ 1"));
            }
            if entries.iter().any(|(e, _)| *e == endpoint) {
                return Err(format!("mix entry '{part}': endpoint repeated"));
            }
            entries.push((endpoint, weight));
        }
        if entries.is_empty() {
            return Err("mix is empty".to_string());
        }
        let credit = vec![0; entries.len()];
        Ok(Mix { entries, credit })
    }

    /// A mix of exactly one endpoint.
    pub fn single(endpoint: Endpoint) -> Mix {
        Mix {
            entries: vec![(endpoint, 1)],
            credit: vec![0],
        }
    }

    /// Whether the mix sends intake POSTs (which need a `post_body`).
    pub fn wants_intake(&self) -> bool {
        self.entries.iter().any(|(e, _)| *e == Endpoint::Intake)
    }

    /// Reject plans the mix cannot be driven with.
    pub fn validate(&self, plan: &Plan) -> Result<(), String> {
        if self.wants_intake() && plan.post_body.is_empty() {
            return Err("mix includes intake but no POST body was provided (--post-file)".into());
        }
        let per_asn = [Endpoint::ClassifyAsn, Endpoint::Series];
        if plan.asn == 0 && self.entries.iter().any(|(e, _)| per_asn.contains(e)) {
            return Err("mix includes per-ASN endpoints but no ASN is known".into());
        }
        Ok(())
    }

    /// The next endpoint in the smooth-WRR sequence.
    pub fn pick(&mut self) -> Endpoint {
        let total: i64 = self.entries.iter().map(|(_, w)| *w as i64).sum();
        let mut best = 0;
        for (i, (_, weight)) in self.entries.iter().enumerate() {
            self.credit[i] += *weight as i64;
            if self.credit[i] > self.credit[best] {
                best = i;
            }
        }
        self.credit[best] -= total;
        self.entries[best].0
    }

    /// `"classify=1,series=4"` — the canonical spec of this mix.
    pub fn spec(&self) -> String {
        self.entries
            .iter()
            .map(|(e, w)| format!("{}={w}", e.key()))
            .collect::<Vec<_>>()
            .join(",")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_and_rejects_nonsense() {
        let mix = Mix::parse("classify=1, series=4,intake=2").expect("parses");
        assert_eq!(mix.spec(), "classify=1,series=4,intake=2");
        assert!(mix.wants_intake());
        assert!(Mix::parse("").is_err());
        assert!(Mix::parse("classify").is_err());
        assert!(Mix::parse("warp=1").is_err());
        assert!(Mix::parse("classify=0").is_err());
        assert!(Mix::parse("classify=x").is_err());
        assert!(Mix::parse("classify=1,classify=2").is_err());
    }

    #[test]
    fn smooth_wrr_hits_exact_ratios_and_interleaves() {
        let mut mix = Mix::parse("classify=1,series=2,healthz=1").expect("parses");
        let picks: Vec<Endpoint> = (0..400).map(|_| mix.pick()).collect();
        let count = |e: Endpoint| picks.iter().filter(|p| **p == e).count();
        assert_eq!(count(Endpoint::Classify), 100);
        assert_eq!(count(Endpoint::Series), 200);
        assert_eq!(count(Endpoint::Healthz), 100);
        // Smoothness: the weight-2 endpoint never runs 3+ in a row.
        let mut run = 0;
        for p in &picks {
            run = if *p == Endpoint::Series { run + 1 } else { 0 };
            assert!(run <= 2, "series clustered: {picks:?}");
        }
        // Deterministic: a fresh mix replays the same sequence.
        let mut again = Mix::parse("classify=1,series=2,healthz=1").unwrap();
        let replay: Vec<Endpoint> = (0..400).map(|_| again.pick()).collect();
        assert_eq!(picks, replay);
    }

    #[test]
    fn plan_builds_requests_and_validate_catches_gaps() {
        let plan = Plan {
            asn: 3215,
            post_body: b"{}\n".to_vec(),
            timeout: Duration::from_secs(1),
        };
        assert_eq!(
            plan.request(Endpoint::ClassifyAsn).1,
            "/v1/classify/3215".to_string()
        );
        let (method, path, body) = plan.request(Endpoint::Intake);
        assert_eq!((method, path.as_str()), ("POST", "/v1/traceroutes"));
        assert_eq!(body, b"{}\n");
        let intake = Mix::single(Endpoint::Intake);
        assert!(intake.validate(&plan).is_ok());
        assert!(intake.validate(&Plan::default()).is_err());
        let series = Mix::single(Endpoint::Series);
        assert!(series.validate(&Plan::default()).is_err());
        assert!(Mix::single(Endpoint::Classify)
            .validate(&Plan::default())
            .is_ok());
    }
}
