//! `lastmile loadgen` — drive a running daemon with the open-loop load
//! harness (`lastmile-loadgen`).
//!
//! ```text
//! lastmile loadgen --addr HOST:PORT --profile burst|ladder|fanout ...
//! ```
//!
//! Profiles:
//!
//! * `burst`: `--requests N` connections released at once, `--bursts B`
//!   times.
//! * `ladder`: `--rates 50,100,200` offered rates (rps), `--dwell-ms`
//!   per rung — the throughput-vs-latency curve.
//! * `fanout`: `--rate RPS` sustained over `--duration-ms`, across a
//!   weighted `--mix classify=4,series=1,intake=1`.
//!
//! Per-ASN endpoints (`classify_asn`, `series`) aim at `--asn`, or at
//! the first row of the daemon's `/v1/populations` table when the flag
//! is absent. Intake POSTs send `--post-batch` lines of `--post-file`
//! per request. The JSON report prints to stdout with `--json` and/or
//! lands at `--out`; a human summary always goes to stderr. Exit is
//! nonzero when the shed accounting is inconsistent (`attempted != ok +
//! shed + errors`), or when the ladder's client-vs-server shed
//! reconciliation fails — the self-checks `scripts/check.sh` leans on.

use crate::Flags;
use lastmile_repro::loadgen::{
    discover_asn, resolve, run_burst, run_fanout, run_ladder, BurstConfig, Endpoint, FanoutConfig,
    LadderConfig, LoadReport, Mix, Plan,
};
use std::time::Duration;

pub fn run(flags: &Flags) -> Result<(), String> {
    let addr_label = flags.required("addr")?.to_string();
    let addr = resolve(&addr_label)?;
    let profile = flags.optional("profile").unwrap_or("fanout");
    let timeout = Duration::from_millis(flags.parsed::<u64>("timeout-ms")?.unwrap_or(10_000));
    let concurrency = flags.parsed::<usize>("concurrency")?.unwrap_or(16);

    let mix = match flags.optional("mix") {
        Some(spec) => Mix::parse(spec)?,
        // Each profile's natural default: bursts and ladders hammer the
        // heavy endpoint (that's where the knee is), fanout exercises
        // the documented read mix.
        None if profile == "fanout" => {
            Mix::parse("classify=4,classify_asn=2,series=2,populations=1,healthz=1")?
        }
        None => Mix::single(Endpoint::Classify),
    };

    let plan = Plan {
        asn: match flags.parsed::<u32>("asn")? {
            Some(asn) => asn,
            None => discover_asn(addr, timeout).unwrap_or(0),
        },
        post_body: post_body(flags)?,
        timeout,
    };

    let report = match profile {
        "burst" => run_burst(BurstConfig {
            addr,
            addr_label,
            requests: flags.parsed::<usize>("requests")?.unwrap_or(32),
            bursts: flags.parsed::<usize>("bursts")?.unwrap_or(3),
            mix,
            plan,
        })?,
        "ladder" => run_ladder(LadderConfig {
            addr,
            addr_label,
            rates: parse_rates(flags.optional("rates").unwrap_or("25,50,100,200,400"))?,
            dwell: Duration::from_millis(flags.parsed::<u64>("dwell-ms")?.unwrap_or(2_000)),
            concurrency,
            mix,
            plan,
        })?,
        "fanout" => run_fanout(FanoutConfig {
            addr,
            addr_label,
            rate: flags.parsed::<f64>("rate")?.unwrap_or(50.0),
            duration: Duration::from_millis(flags.parsed::<u64>("duration-ms")?.unwrap_or(5_000)),
            concurrency,
            mix,
            plan,
        })?,
        other => return Err(format!("unknown --profile {other} (burst|ladder|fanout)")),
    };

    emit(flags, &report)?;
    if !report.consistent {
        return Err(format!(
            "shed accounting inconsistent: attempted {} != ok {} + shed {} + errors {}",
            report.totals.attempted, report.totals.ok, report.totals.shed, report.totals.errors
        ));
    }
    // The ladder also reconciles client-side 503s against the daemon's
    // own shed counters (scraped from `/metrics` at rung boundaries);
    // a mismatch beyond connection-error slack is a metrics bug.
    if let Some(check) = report.shed_check.filter(|c| !c.consistent) {
        return Err(format!(
            "shed reconciliation failed: client saw {} sheds but the server's counters \
             moved by {} (+{} connection errors of slack)",
            check.client_shed, check.server_shed_delta, check.connection_errors
        ));
    }
    Ok(())
}

/// `--rates "25,50,100"` → offered rps per rung.
fn parse_rates(spec: &str) -> Result<Vec<f64>, String> {
    spec.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.parse::<f64>()
                .map_err(|_| format!("--rates entry '{s}' is not a number"))
        })
        .collect()
}

/// The body one intake POST carries: the first `--post-batch` lines of
/// `--post-file` (the whole file by default).
fn post_body(flags: &Flags) -> Result<Vec<u8>, String> {
    let Some(path) = flags.optional("post-file") else {
        return Ok(Vec::new());
    };
    let contents =
        std::fs::read_to_string(path).map_err(|e| format!("read --post-file {path}: {e}"))?;
    let batch = flags.parsed::<usize>("post-batch")?.unwrap_or(usize::MAX);
    let mut body = String::new();
    for line in contents
        .lines()
        .filter(|l| !l.trim().is_empty())
        .take(batch)
    {
        body.push_str(line);
        body.push('\n');
    }
    if body.is_empty() {
        return Err(format!("--post-file {path} has no records"));
    }
    Ok(body.into_bytes())
}

/// Report outputs: `--out FILE`, `--json` (stdout), and the stderr
/// summary line scripts grep.
fn emit(flags: &Flags, report: &LoadReport) -> Result<(), String> {
    let json = report.to_json();
    if let Some(path) = flags.optional("out") {
        std::fs::write(path, &json).map_err(|e| format!("write --out {path}: {e}"))?;
    }
    if flags.switch("json") {
        print!("{json}");
    }
    let t = &report.totals;
    eprintln!(
        "[loadgen] {} {}: attempted {} ok {} shed {} errors {} not_sent {} | p50 {:.2}ms p99 {:.2}ms | {:.1}s",
        report.profile,
        report.mix,
        t.attempted,
        t.ok,
        t.shed,
        t.errors,
        t.not_sent,
        t.latency.p50_nanos as f64 / 1e6,
        t.latency.p99_nanos as f64 / 1e6,
        report.wall_secs,
    );
    Ok(())
}
