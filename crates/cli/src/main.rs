//! `lastmile` — the command-line face of the reproduction, in the spirit
//! of the paper's released tooling (raclette): point it at RIPE-Atlas-
//! format traceroute data and get per-AS persistent-congestion
//! classifications, or export simulated datasets for downstream tools.
//!
//! ```text
//! lastmile classify --traceroutes FILE [--probes FILE] [--start T --end T] [--json]
//! lastmile hygiene  --traceroutes FILE [--probes FILE] [--start T --end T] [--threshold MS]
//! lastmile simulate --scenario tokyo|fig1|anchor --out DIR [--seed N] [--days N]
//! ```
//!
//! Traceroute input is Atlas wire format: either a JSON array or JSON
//! Lines (one document per line — the format of `magellan`/Atlas dumps).
//! Probe metadata (`--probes`) is a JSON array of probe objects carrying
//! `id`, `asn`, `country`, `area`, `is_anchor`, `version`, `public_addr`;
//! without it, all traceroutes are analysed as a single population and
//! anchors cannot be excluded.

mod bgp;
mod cache;
mod classify;
mod fleet;
mod hygiene;
mod input;
mod lint;
mod loadgen;
mod progress;
mod serve;
mod simulate;
mod stats;
mod throughput;

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Parsed command-line flags: `--name value` pairs after the subcommand.
/// `Clone` so a long-lived daemon can hand a copy to its re-analysis
/// engine.
#[derive(Clone)]
pub struct Flags {
    values: BTreeMap<String, String>,
    switches: Vec<String>,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Flags, String> {
        let mut values = BTreeMap::new();
        let mut switches = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let arg = &args[i];
            let Some(name) = arg.strip_prefix("--") else {
                return Err(format!("unexpected argument {arg}"));
            };
            // Boolean switches take no value.
            if matches!(
                name,
                "json" | "anchors-only" | "stats" | "ingest-serial" | "progress" | "watch"
            ) {
                switches.push(name.to_string());
                i += 1;
                continue;
            }
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("--{name} needs a value"))?;
            values.insert(name.to_string(), value.clone());
            i += 2;
        }
        Ok(Flags { values, switches })
    }

    /// A required string flag.
    pub fn required(&self, name: &str) -> Result<&str, String> {
        self.values
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| format!("missing --{name}"))
    }

    /// An optional string flag.
    pub fn optional(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// An optional parsed flag.
    pub fn parsed<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        match self.values.get(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("invalid value for --{name}: {v}")),
        }
    }

    /// Whether a boolean switch is present.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

fn usage() -> &'static str {
    "usage:\n  \
     lastmile classify --traceroutes FILE [--probes FILE | --bgp TABLE.csv] [--start UNIX --end UNIX] [--min-probes N] [--cache-dir DIR [--cache off|ro|rw]] [--ingest-threads N] [--ingest-serial] [--quarantine FILE] [--json] [--stats | --stats-out FILE] [--populations-csv FILE] [--progress]\n  \
     lastmile hygiene  --traceroutes FILE [--probes FILE] [--start UNIX --end UNIX] [--threshold MS] [--ingest-threads N] [--ingest-serial] [--quarantine FILE] [--stats | --stats-out FILE] [--populations-csv FILE] [--progress]\n  \
     lastmile throughput --cdn FILE.tsv --bgp TABLE.csv [--bin-minutes 15] [--view broadband|mobile|v4|v6] [--csv OUT]\n  \
     lastmile simulate --scenario tokyo|fig1|anchor --out DIR [--seed N] [--days N] [--cache-dir DIR [--cache off|ro|rw]]\n  \
     lastmile fleet gen --spec SPEC.json --out DIR [--seed N] [--threads N] [--probes-per-as N [--sample-mode biased|uniform] [--sample-seed N]]\n                       \
[--cache-dir DIR [--cache off|ro|rw]]\n  \
     lastmile fleet score --truth DIR/truth.json --classified FILE.json [--min-recall F] [--max-peering-fp N] [--json]\n  \
     lastmile serve    --traceroutes FILE [classify flags] [--addr HOST:PORT] [--serve-workers N] [--serve-queue N] [--retry-after SECS] [--ready-file FILE]\n                       \
[--serve-budget-cheap N --serve-budget-heavy N --serve-budget-intake N (0 = workers)]\n                       \
[--watch [--watch-poll-ms MS] [--live-offset-file FILE]] [--live-spool FILE] [--reanalyze-debounce-ms MS]\n                       \
[--ops-sample-ms MS (default 1000, 0 = off)] [--access-log FILE]\n  \
     lastmile loadgen  --addr HOST:PORT --profile burst|ladder|fanout [--mix classify=4,series=1,...] [--concurrency N] [--timeout-ms MS]\n                       \
[burst: --requests N --bursts B] [ladder: --rates 25,50,100 --dwell-ms MS] [fanout: --rate RPS --duration-ms MS]\n                       \
[--asn N] [--post-file FILE.jsonl [--post-batch N]] [--out FILE] [--json]\n  \
     lastmile lint     [--prom FILE] [--access-log FILE] [--fleet SPEC.json] (validate Prometheus exposition / access-log JSON lines / fleet specs)\n\n\
     any subcommand also takes --trace FILE to write a Chrome/Perfetto trace of the run\n\
     (streamed to disk as the run goes; serve drains it incrementally until shutdown)"
}

/// How often the `--trace` stream drains ring buffers to disk. Long
/// commands (a `serve` daemon running for days) persist spans as they
/// go instead of losing the oldest to wrap-around at exit; short
/// commands just get one final drain at finish.
const TRACE_DRAIN_EVERY: std::time::Duration = std::time::Duration::from_millis(500);

/// Install the tracer and start streaming it to a Chrome trace-event
/// JSON file (load it at <https://ui.perfetto.dev> or chrome://tracing).
fn start_trace(path: &str) -> Result<lastmile_repro::obs::trace::TraceStream, String> {
    lastmile_repro::obs::trace::install();
    lastmile_repro::obs::trace::TraceStream::start(path, TRACE_DRAIN_EVERY)
        .map_err(|e| format!("create --trace {path}: {e}"))
}

/// Final drain + footer; the file is a complete document after this.
fn finish_trace(stream: lastmile_repro::obs::trace::TraceStream, path: &str) -> Result<(), String> {
    stream
        .finish()
        .map_err(|e| format!("write --trace {path}: {e}"))?;
    eprintln!("[trace] wrote {path}");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{}", usage());
        return ExitCode::from(2);
    };
    // `fleet` takes an action word (`gen`|`score`) before its flags;
    // peel it off so the strictly `--name value` flag parser never sees
    // a positional.
    let fleet_action = (cmd == "fleet")
        .then(|| args.get(1).filter(|a| !a.starts_with("--")).cloned())
        .flatten();
    let flag_start = if fleet_action.is_some() { 2 } else { 1 };
    let flags = match Flags::parse(&args[flag_start..]) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n{}", usage());
            return ExitCode::from(2);
        }
    };
    // `--trace` installs the tracer and starts the disk stream before
    // dispatch so every span of the run is captured, and finishes it
    // after — even when the subcommand fails, since a trace of a failing
    // run is exactly what you want to look at.
    let trace_path = flags.optional("trace").map(str::to_string);
    let trace_stream = match trace_path.as_deref().map(start_trace).transpose() {
        Ok(stream) => stream,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "classify" => classify::run(&flags),
        "hygiene" => hygiene::run(&flags),
        "simulate" => simulate::run(&flags),
        "fleet" => fleet::run(fleet_action.as_deref(), &flags),
        "throughput" => throughput::run(&flags),
        "serve" => serve::run(&flags),
        "loadgen" => loadgen::run(&flags),
        "lint" => lint::run(&flags),
        other => Err(format!("unknown subcommand {other}\n{}", usage())),
    };
    let finished = trace_stream
        .map(|stream| finish_trace(stream, trace_path.as_deref().expect("stream implies path")));
    let result = match (result, finished) {
        (Ok(()), Some(Err(e))) => Err(e),
        (Err(e), Some(Err(te))) => {
            eprintln!("error: {te}");
            Err(e)
        }
        (r, _) => r,
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Flags;

    fn parse(args: &[&str]) -> Result<Flags, String> {
        Flags::parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn values_and_switches() {
        let f = parse(&["--traceroutes", "a.jsonl", "--json", "--seed", "42"]).unwrap();
        assert_eq!(f.required("traceroutes").unwrap(), "a.jsonl");
        assert_eq!(f.parsed::<u64>("seed").unwrap(), Some(42));
        assert!(f.switch("json"));
        assert!(!f.switch("anchors-only"));
        assert_eq!(f.optional("missing"), None);
        assert!(f.required("missing").is_err());
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(parse(&["--seed"]).is_err());
        assert!(parse(&["positional"]).is_err());
    }

    #[test]
    fn bad_parse_is_an_error() {
        let f = parse(&["--seed", "banana"]).unwrap();
        assert!(f.parsed::<u64>("seed").is_err());
    }
}
