//! `lastmile classify`: per-AS persistent-congestion classification from
//! Atlas-format traceroute data on disk.

use crate::bgp::load_table;
use crate::input::{group_by_asn, load_probes, resolve_window, stream_traceroutes};
use crate::Flags;
use lastmile_repro::atlas::ProbeId;
use lastmile_repro::core::pipeline::{AsPipeline, PipelineConfig, PopulationAnalysis};
use lastmile_repro::obs::{RunMetrics, StageTimer};
use lastmile_repro::prefix::Asn;
use lastmile_repro::runner::record_population_metrics;
use lastmile_repro::timebase::UnixTime;
use std::collections::BTreeMap;

/// Shared plumbing for `classify` and `hygiene`: stream the file (twice —
/// once for the time span, once for the analysis) and return one
/// [`PopulationAnalysis`] per ASN (ASN 0 = "all probes" when no metadata
/// is given). When `metrics` is given, pipeline counters and stage
/// timings are accumulated into it.
pub fn analyze_file(
    flags: &Flags,
    metrics: Option<&RunMetrics>,
) -> Result<Vec<(Asn, PopulationAnalysis)>, String> {
    let path = flags.required("traceroutes")?;
    let probes = flags.optional("probes").map(load_probes).transpose()?;
    let bgp = flags.optional("bgp").map(load_table).transpose()?;
    let anchors_only = flags.switch("anchors-only");

    // Pass 1: find the data span.
    let mut data_min: Option<UnixTime> = None;
    let mut data_max: Option<UnixTime> = None;
    let (parsed, skipped) = stream_traceroutes(path, |tr| {
        data_min = Some(data_min.map_or(tr.timestamp, |m| m.min(tr.timestamp)));
        data_max = Some(data_max.map_or(tr.timestamp, |m| m.max(tr.timestamp)));
    })?;
    eprintln!("[input] {parsed} traceroutes parsed, {skipped} skipped");
    let window = resolve_window(
        flags.parsed::<i64>("start")?,
        flags.parsed::<i64>("end")?,
        data_min,
        data_max,
    )?;

    // Probe → ASN routing.
    let probe_to_asn: Option<BTreeMap<ProbeId, Asn>> = probes.as_ref().map(|list| {
        group_by_asn(list, anchors_only)
            .into_iter()
            .flat_map(|(asn, ids)| ids.into_iter().map(move |id| (id, asn)))
            .collect()
    });

    let mut cfg = PipelineConfig::paper();
    if let Some(min_probes) = flags.parsed::<usize>("min-probes")? {
        cfg.min_probes = min_probes;
        cfg.min_probes_per_bin = min_probes.min(cfg.min_probes_per_bin);
    }

    // Pass 2: route into per-AS pipelines. Probe metadata wins; otherwise
    // the BGP table maps the first public hop (the paper's ISP edge) to
    // its origin ASN; otherwise everything is one population (ASN 0).
    let mut pipelines: BTreeMap<Asn, AsPipeline> = BTreeMap::new();
    let ingest_timer = StageTimer::start();
    stream_traceroutes(path, |tr| {
        let asn = match (&probe_to_asn, &bgp) {
            (Some(map), _) => match map.get(&tr.probe) {
                Some(&asn) => asn,
                None => return, // unknown or filtered probe
            },
            (None, Some(table)) => match tr.edge_address().and_then(|a| table.lookup(a)) {
                Some((_, &asn)) => asn,
                None => return, // no public hop or unrouted edge
            },
            (None, None) => 0,
        };
        pipelines
            .entry(asn)
            .or_insert_with(|| AsPipeline::new(cfg, window))
            .ingest(&tr);
    })?;
    if let Some(m) = metrics {
        m.add_ingest_nanos(ingest_timer.elapsed_nanos());
    }

    Ok(pipelines
        .into_iter()
        .map(|(asn, p)| {
            let analysis = p.finish();
            if let Some(m) = metrics {
                // Streaming interleaves populations, so ingest time is
                // accounted once above; per-task wall = pipeline stages.
                let s = &analysis.stats;
                record_population_metrics(
                    m,
                    &analysis,
                    s.series_nanos + s.aggregate_nanos + s.detect_nanos,
                );
            }
            (asn, analysis)
        })
        .collect())
}

pub fn run(flags: &Flags) -> Result<(), String> {
    let wants_stats = flags.switch("stats") || flags.optional("stats-out").is_some();
    let metrics = wants_stats.then(RunMetrics::new);
    let run_timer = StageTimer::start();
    let results = analyze_file(flags, metrics.as_ref())?;
    if let Some(m) = &metrics {
        m.set_wall(&run_timer);
    }
    if results.is_empty() {
        return Err("no analysable traceroutes in the window".into());
    }
    if flags.switch("json") {
        let docs: Vec<serde_json::Value> = results
            .iter()
            .map(|(asn, a)| {
                let d = a.detection.as_ref();
                serde_json::json!({
                    "asn": asn,
                    "probes": a.probes_used(),
                    "class": a.class().name(),
                    "daily_amplitude_ms": d.map(|d| d.daily_amplitude_ms),
                    "prominent_frequency_cph": d.and_then(|d| d.prominent_frequency()),
                    "prominent_is_daily": d.map(|d| d.prominent_is_daily),
                    "max_agg_delay_ms": a.aggregated.max(),
                    "coverage": a.aggregated.coverage(),
                })
            })
            .collect();
        println!(
            "{}",
            serde_json::to_string_pretty(&docs).expect("json encodes")
        );
    } else {
        println!(
            "{:<10} {:>7} {:>8} {:>12} {:>12} {:>9}",
            "asn", "probes", "class", "daily amp", "max delay", "coverage"
        );
        for (asn, a) in &results {
            let amp = a
                .detection
                .as_ref()
                .map(|d| format!("{:.2} ms", d.daily_amplitude_ms))
                .unwrap_or_else(|| "-".into());
            println!(
                "{:<10} {:>7} {:>8} {:>12} {:>9.2} ms {:>9.2}",
                if *asn == 0 {
                    "all".to_string()
                } else {
                    format!("AS{asn}")
                },
                a.probes_used(),
                a.class().name(),
                amp,
                a.aggregated.max().unwrap_or(0.0),
                a.aggregated.coverage(),
            );
        }
    }
    if let Some(m) = &metrics {
        let json = m.snapshot().to_json();
        match flags.optional("stats-out") {
            Some(path) => std::fs::write(path, &json)
                .map_err(|e| format!("cannot write --stats-out {path}: {e}"))?,
            // stderr keeps stdout clean for the classification output.
            None => eprint!("{json}"),
        }
    }
    Ok(())
}
